//! `bench-batching` — measures the end-to-end effect of the group-commit
//! batching pipeline against the legacy one-frame-per-packet path.
//!
//! ```text
//! bench-batching [--short] [messages-per-sender]
//! ```
//!
//! Two identical workloads run on a 16-server bus (`TopologySpec::bus(4, 4)`
//! — four 4-server domains bridged by a backbone) with full matrix stamps
//! and persistence enabled, the configuration where batching has to earn
//! its keep:
//!
//! - **batched**: the default [`BatchPolicy`] (32 frames / 256 KiB per
//!   packet, flush at end of step) with clients submitting bursts through
//!   [`Mom::send_batch`], so stamping, link coalescing and the group commit
//!   all amortize;
//! - **unbatched**: `BatchPolicy::disabled()` with one [`Mom::send`] per
//!   message — the wire format and transaction boundary of the seed.
//!
//! Each run floods the bus with ring traffic (`server i → server i+1 mod
//! 16`, a mix of intra- and cross-domain routes), waits for quiescence,
//! and reads throughput and wire cost off the metrics registry. Results
//! are printed and written to `BENCH_batching.json`.
//!
//! `--short` (or `BENCH_SHORT=1`) runs a few hundred messages as a CI
//! smoke test: it exercises the full pipeline and fails on panic or
//! non-quiescence, but asserts no performance ratios.

use std::time::{Duration, Instant};

use aaa_middleware::prelude::*;

const BURST: usize = 32;

/// Outcome of one benchmark run.
struct RunResult {
    label: &'static str,
    messages: u64,
    elapsed: Duration,
    tx_bytes: u64,
    tx_packets: u64,
    group_commits: u64,
    stamp_bytes: u64,
}

impl RunResult {
    fn msgs_per_sec(&self) -> f64 {
        self.messages as f64 / self.elapsed.as_secs_f64()
    }

    fn bytes_per_msg(&self) -> f64 {
        self.tx_bytes as f64 / self.messages as f64
    }
}

fn aid(s: u16, l: u32) -> AgentId {
    AgentId::new(ServerId::new(s), l)
}

/// Runs the ring workload and returns the measured totals.
fn run(
    label: &'static str,
    policy: BatchPolicy,
    batched_sends: bool,
    per_sender: usize,
) -> Result<RunResult> {
    let servers: u16 = 16;
    let mom = MomBuilder::new(TopologySpec::bus(4, 4))
        .clock(ClockConfig::mode(StampMode::Full))
        .runtime(RuntimeConfig::threaded().persist(true).record_trace(false))
        .net(NetConfig::memory().batch(policy))
        .build()?;
    // A no-op sink on every server: we measure the middleware, not agents.
    for s in 0..servers {
        mom.register_agent(
            ServerId::new(s),
            1,
            Box::new(FnAgent::new(|_ctx, _from, _note| {})),
        )?;
    }

    let total = per_sender as u64 * u64::from(servers);
    let note = Notification::signal("bench");
    let start = Instant::now();
    if batched_sends {
        for s in 0..servers {
            let from = aid(s, 9);
            let to = aid((s + 1) % servers, 1);
            let mut left = per_sender;
            while left > 0 {
                let n = left.min(BURST);
                let batch: Vec<_> = (0..n).map(|_| (to, note.clone())).collect();
                mom.send_batch(from, batch, SendOptions::new())?;
                left -= n;
            }
        }
    } else {
        for s in 0..servers {
            let from = aid(s, 9);
            let to = aid((s + 1) % servers, 1);
            for _ in 0..per_sender {
                mom.send(from, to, note.clone())?;
            }
        }
    }
    assert!(
        mom.quiesce(Duration::from_secs(120)),
        "{label}: bus failed to quiesce"
    );
    let elapsed = start.elapsed();

    let snap = mom.metrics();
    let delivered = snap.sum_counter("aaa_channel_delivered_total");
    assert_eq!(delivered, total, "{label}: lost messages");
    let result = RunResult {
        label,
        messages: total,
        elapsed,
        tx_bytes: snap.sum_counter("aaa_net_tx_bytes_total"),
        tx_packets: snap.sum_counter("aaa_net_tx_frames_total"),
        group_commits: snap.sum_counter("aaa_persist_group_commit_total"),
        stamp_bytes: snap.sum_counter("aaa_channel_stamp_bytes_total"),
    };
    mom.shutdown();
    Ok(result)
}

fn json_run(r: &RunResult) -> String {
    format!(
        "  \"{}\": {{\n    \"messages\": {},\n    \"elapsed_ms\": {:.1},\n    \
         \"messages_per_sec\": {:.1},\n    \"tx_bytes\": {},\n    \
         \"bytes_per_msg\": {:.1},\n    \"wire_packets\": {},\n    \
         \"group_commits\": {},\n    \"stamp_bytes\": {}\n  }}",
        r.label,
        r.messages,
        r.elapsed.as_secs_f64() * 1e3,
        r.msgs_per_sec(),
        r.tx_bytes,
        r.bytes_per_msg(),
        r.tx_packets,
        r.group_commits,
        r.stamp_bytes,
    )
}

fn main() -> Result<()> {
    let args: Vec<String> = std::env::args().collect();
    let short = args.iter().any(|a| a == "--short") || std::env::var_os("BENCH_SHORT").is_some();
    let per_sender: usize = args
        .iter()
        .skip(1)
        .find(|a| !a.starts_with("--"))
        .and_then(|s| s.parse().ok())
        .unwrap_or(if short { 24 } else { 512 });

    eprintln!(
        "bench-batching: 16-server bus(4,4), {per_sender} msgs/sender, burst {BURST}{}",
        if short { " [short]" } else { "" }
    );

    let batched = run("batched", BatchPolicy::default(), true, per_sender)?;
    let unbatched = run("unbatched", BatchPolicy::disabled(), false, per_sender)?;

    let speedup = batched.msgs_per_sec() / unbatched.msgs_per_sec();
    let byte_ratio = batched.bytes_per_msg() / unbatched.bytes_per_msg();

    for r in [&batched, &unbatched] {
        eprintln!(
            "  {:>9}: {:>8.0} msg/s  {:>6.1} B/msg  {:>6} packets  {:>6} commits",
            r.label,
            r.msgs_per_sec(),
            r.bytes_per_msg(),
            r.tx_packets,
            r.group_commits,
        );
    }
    eprintln!("  speedup {speedup:.2}x  bytes/msg ratio {byte_ratio:.2}x");

    let json = format!(
        "{{\n  \"bench\": \"batching\",\n  \"topology\": \"bus(4,4)\",\n  \
         \"servers\": 16,\n  \"burst\": {BURST},\n  \"short\": {short},\n\
         {},\n{},\n  \"speedup\": {speedup:.3},\n  \"bytes_per_msg_ratio\": {byte_ratio:.3}\n}}\n",
        json_run(&batched),
        json_run(&unbatched),
    );
    match std::fs::write("BENCH_batching.json", &json) {
        Ok(()) => eprintln!("  wrote BENCH_batching.json"),
        Err(e) => eprintln!("  failed to write BENCH_batching.json: {e}"),
    }

    if !short {
        assert!(
            speedup >= 2.0,
            "batching speedup regressed: {speedup:.2}x < 2.0x"
        );
        assert!(
            byte_ratio <= 0.6,
            "batching wire-cost ratio regressed: {byte_ratio:.2}x > 0.6x"
        );
    }
    Ok(())
}
