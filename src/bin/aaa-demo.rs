//! `aaa-demo` — a command-line tour of the middleware.
//!
//! ```text
//! aaa-demo <topology> [n] [messages]
//! aaa-demo file <path> [messages]
//!
//!   topology:  flat | bus | daisy | tree | figure2
//!   n:         number of servers (default 9; ignored for figure2)
//!   messages:  random end-to-end messages to send (default 50)
//!   file:      load the topology from a text file (one domain per line,
//!              whitespace-separated server ids, `#` comments)
//! ```
//!
//! Builds the requested topology, floods it with random echo traffic,
//! waits for quiescence, then reports routing structure, per-server
//! statistics and the causality verdict of the recorded trace.

use std::time::Duration;

use aaa_middleware::base::{AgentId, ServerId};
use aaa_middleware::mom::{EchoAgent, MomBuilder, Notification};
use aaa_middleware::topology::{trace_route, RoutingTable, TopologySpec};

fn usage() -> ! {
    eprintln!("usage: aaa-demo <flat|bus|daisy|tree|figure2> [n] [messages]");
    eprintln!("       aaa-demo file <path> [messages]");
    std::process::exit(2);
}

fn spec_for(kind: &str, n: u16) -> TopologySpec {
    match kind {
        "flat" => TopologySpec::single_domain(n),
        "bus" => {
            let k = f64::from(n).sqrt().round().clamp(1.0, f64::from(u16::MAX)) as u16;
            let s = n.div_ceil(k);
            TopologySpec::bus(k, s)
        }
        "daisy" => {
            let s = 3u16;
            let k = ((n + 1) / (s - 1)).max(1);
            TopologySpec::daisy(k, s)
        }
        "tree" => TopologySpec::tree(2, 2, (n / 7).clamp(2, 6)),
        "figure2" => TopologySpec::from_domains(vec![
            vec![0, 1, 2],
            vec![3, 4],
            vec![6, 7],
            vec![2, 4, 5, 6],
        ]),
        _ => usage(),
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().collect();
    let kind = args.get(1).map(String::as_str).unwrap_or_else(|| usage());
    let (spec, messages) = if kind == "file" {
        let path = args.get(2).map(String::as_str).unwrap_or_else(|| usage());
        let text = std::fs::read_to_string(path)?;
        let messages: usize = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(50);
        (TopologySpec::parse(&text)?, messages)
    } else {
        let n: u16 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(9);
        let messages: usize = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(50);
        (spec_for(kind, n), messages)
    };
    let mom = MomBuilder::new(spec).build()?;
    let topo = mom.topology();
    let count = u16::try_from(topo.server_count()).unwrap_or(u16::MAX);

    println!(
        "topology: {kind} with {count} servers, {} domains",
        topo.domain_count()
    );
    for d in topo.domains() {
        let members: Vec<String> = d.members().iter().map(ToString::to_string).collect();
        println!("  {}: {{{}}}", d.id(), members.join(", "));
    }
    let routers: Vec<String> = topo.routers().iter().map(ToString::to_string).collect();
    println!("routers: {{{}}}", routers.join(", "));

    let tables = RoutingTable::build_all(topo)?;
    let origin = tables.first().ok_or("empty topology")?;
    let far = (0..count)
        .map(ServerId::new)
        .max_by_key(|s| origin.hops(*s).unwrap_or(0))
        .unwrap_or_else(|| ServerId::new(0));
    let path: Vec<String> = trace_route(&tables, ServerId::new(0), far)?
        .iter()
        .map(ToString::to_string)
        .collect();
    println!("longest route from S0: {}", path.join(" -> "));

    for s in 0..count {
        mom.register_agent(ServerId::new(s), 1, Box::new(EchoAgent))?;
    }
    // A fixed-stride pseudo-random workload (deterministic, dependency-free).
    let mut x: u64 = 0x9E3779B97F4A7C15;
    for _ in 0..messages {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
        let from = u16::try_from((x >> 33) % u64::from(count)).unwrap_or(0);
        let mut to = u16::try_from((x >> 17) % u64::from(count)).unwrap_or(0);
        if to == from {
            to = (to + 1) % count;
        }
        mom.send(
            AgentId::new(ServerId::new(from), 99),
            AgentId::new(ServerId::new(to), 1),
            Notification::signal("demo"),
        )?;
    }
    if !mom.quiesce(Duration::from_secs(30)) {
        eprintln!("bus did not quiesce");
        std::process::exit(1);
    }

    println!("\nper-server statistics:");
    println!("  server  delivered  forwarded  stamp-bytes");
    for s in 0..count {
        let st = mom.stats(ServerId::new(s))?;
        println!(
            "  {:>6}  {:>9}  {:>9}  {:>11}",
            format!("S{s}"),
            st.delivered,
            st.forwarded,
            st.stamp_bytes
        );
    }

    let trace = mom.trace()?;
    let (concurrent, total) = trace.concurrency();
    println!(
        "\ntrace: {} end-to-end messages, {}/{} concurrent pairs",
        trace.message_count(),
        concurrent,
        total
    );
    match trace.check_causality() {
        Ok(()) => println!("causal delivery: OK (theorem holds)"),
        Err(v) => println!("causal delivery: VIOLATED — {v}"),
    }
    mom.shutdown();
    Ok(())
}
