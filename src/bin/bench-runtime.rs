//! `bench-runtime` — head-to-head of the two execution substrates behind
//! the same sans-IO cores: one OS thread per server
//! (`RuntimeKind::Threaded`) versus the sharded event-loop pool
//! (`RuntimeKind::Evented`).
//!
//! ```text
//! bench-runtime [--short] [messages-per-sender]
//! ```
//!
//! The workload is the bench-batching ring (`server i → server i+1`,
//! bursts of 32 through [`Mom::send_batch`], a no-op sink agent on every
//! server) over three bus topologies:
//!
//! | topology | servers | threaded | evented |
//! |---|---|---|---|
//! | `bus(4,4)` | 16 | ✓ | ✓ |
//! | `bus(8,8)` | 64 | ✓ | ✓ |
//! | `bus(32,32)` | 1024 | — | ✓ |
//!
//! `bus(32,32)` is the C10K point: the threaded runtime would need 1024
//! OS threads (plus their polling wakeups) for it, which is exactly the
//! scaling wall the evented runtime removes — one process, a fixed shard
//! pool, 1024 multiplexed servers. Each run reports throughput and the
//! p99 send→deliver latency read off the per-server
//! `aaa_server_delivery_latency_us` histograms. Results go to stderr and
//! `BENCH_runtime.json`.
//!
//! `--short` (or `BENCH_SHORT=1`) runs a few messages per sender as a CI
//! smoke test: full pipeline, all five runs, no performance assertions.
//! The full run asserts the evented runtime clears 5× the threaded
//! throughput on `bus(8,8)` and delivers the complete `bus(32,32)`
//! workload.

use std::time::{Duration, Instant};

use aaa_middleware::obs::{HistogramSnapshot, SampleValue};
use aaa_middleware::prelude::*;

const BURST: usize = 32;

/// Outcome of one benchmark run.
struct RunResult {
    label: String,
    topology: &'static str,
    servers: u16,
    messages: u64,
    elapsed: Duration,
    p99_us: u64,
}

impl RunResult {
    fn msgs_per_sec(&self) -> f64 {
        self.messages as f64 / self.elapsed.as_secs_f64()
    }
}

fn aid(s: u16, l: u32) -> AgentId {
    AgentId::new(ServerId::new(s), l)
}

/// Merges every per-server sample of a histogram family and returns the
/// p99 bucket bound.
fn merged_p99(snap: &MetricsSnapshot, name: &str) -> u64 {
    let mut merged: Option<HistogramSnapshot> = None;
    for family in snap.families.iter().filter(|f| f.name == name) {
        for sample in &family.samples {
            let SampleValue::Histogram(h) = &sample.value else {
                continue;
            };
            match &mut merged {
                None => merged = Some(h.clone()),
                Some(m) => {
                    for (into, c) in m.counts.iter_mut().zip(&h.counts) {
                        *into += c;
                    }
                    m.sum += h.sum;
                    m.count += h.count;
                }
            }
        }
    }
    merged.and_then(|m| m.quantile(0.99)).unwrap_or(0)
}

/// Runs the ring workload on one (topology, runtime) combination.
fn run(
    kind: &str,
    topology: &'static str,
    k: u16,
    runtime: RuntimeConfig,
    per_sender: usize,
) -> Result<RunResult> {
    let servers = k * k;
    let label = format!("{kind}_bus{k}x{k}");
    let mom = MomBuilder::new(TopologySpec::bus(k, k))
        .clock(ClockConfig::mode(StampMode::Updates))
        .runtime(runtime.record_trace(false).metrics(true))
        .build()?;
    // A no-op sink on every server: we measure the runtimes, not agents.
    for s in 0..servers {
        mom.register_agent(
            ServerId::new(s),
            1,
            Box::new(FnAgent::new(|_ctx, _from, _note| {})),
        )?;
    }

    let total = per_sender as u64 * u64::from(servers);
    let note = Notification::signal("bench");
    let start = Instant::now();
    for s in 0..servers {
        let from = aid(s, 9);
        let to = aid((s + 1) % servers, 1);
        let mut left = per_sender;
        while left > 0 {
            let n = left.min(BURST);
            let batch: Vec<_> = (0..n).map(|_| (to, note.clone())).collect();
            mom.send_batch(from, batch, SendOptions::new())?;
            left -= n;
        }
    }
    assert!(
        mom.quiesce(Duration::from_secs(300)),
        "{label}: bus failed to quiesce"
    );
    let elapsed = start.elapsed();

    let snap = mom.metrics();
    let delivered = snap.sum_counter("aaa_channel_delivered_total");
    assert_eq!(delivered, total, "{label}: lost messages");
    let result = RunResult {
        label,
        topology,
        servers,
        messages: total,
        elapsed,
        p99_us: merged_p99(&snap, "aaa_server_delivery_latency_us"),
    };
    mom.shutdown();
    Ok(result)
}

fn json_run(r: &RunResult) -> String {
    format!(
        "  \"{}\": {{\n    \"topology\": \"{}\",\n    \"servers\": {},\n    \
         \"messages\": {},\n    \"elapsed_ms\": {:.1},\n    \
         \"messages_per_sec\": {:.1},\n    \"p99_latency_us\": {}\n  }}",
        r.label,
        r.topology,
        r.servers,
        r.messages,
        r.elapsed.as_secs_f64() * 1e3,
        r.msgs_per_sec(),
        r.p99_us,
    )
}

fn main() -> Result<()> {
    let args: Vec<String> = std::env::args().collect();
    let short = args.iter().any(|a| a == "--short") || std::env::var_os("BENCH_SHORT").is_some();
    let per_sender: usize = args
        .iter()
        .skip(1)
        .find(|a| !a.starts_with("--"))
        .and_then(|s| s.parse().ok())
        .unwrap_or(if short { 8 } else { 64 });
    // The 1024-server run scales the per-sender count down so the total
    // stays comparable to the 64-server runs.
    let per_sender_big = (per_sender / 8).max(2);

    eprintln!(
        "bench-runtime: ring workload, burst {BURST}, {per_sender} msgs/sender \
         ({per_sender_big} on bus(32,32)){}",
        if short { " [short]" } else { "" }
    );

    let runs = vec![
        run(
            "threaded",
            "bus(4,4)",
            4,
            RuntimeConfig::threaded(),
            per_sender,
        )?,
        run(
            "evented",
            "bus(4,4)",
            4,
            RuntimeConfig::evented(0),
            per_sender,
        )?,
        run(
            "threaded",
            "bus(8,8)",
            8,
            RuntimeConfig::threaded(),
            per_sender,
        )?,
        run(
            "evented",
            "bus(8,8)",
            8,
            RuntimeConfig::evented(0),
            per_sender,
        )?,
        run(
            "evented",
            "bus(32,32)",
            32,
            RuntimeConfig::evented(0),
            per_sender_big,
        )?,
    ];

    for r in &runs {
        eprintln!(
            "  {:>20}: {:>9.0} msg/s  p99 {:>8} µs  ({} msgs, {} servers)",
            r.label,
            r.msgs_per_sec(),
            r.p99_us,
            r.messages,
            r.servers,
        );
    }
    let rate = |label: &str| {
        runs.iter()
            .find(|r| r.label == label)
            .map(RunResult::msgs_per_sec)
            .unwrap_or(0.0)
    };
    let speedup_small = rate("evented_bus4x4") / rate("threaded_bus4x4");
    let speedup = rate("evented_bus8x8") / rate("threaded_bus8x8");
    eprintln!(
        "  evented/threaded speedup: {speedup_small:.2}x on bus(4,4), {speedup:.2}x on bus(8,8)"
    );

    let body: Vec<String> = runs.iter().map(json_run).collect();
    let json = format!(
        "{{\n  \"bench\": \"runtime\",\n  \"burst\": {BURST},\n  \"short\": {short},\n\
         {},\n  \"speedup_bus4x4\": {speedup_small:.3},\n  \"speedup_bus8x8\": {speedup:.3}\n}}\n",
        body.join(",\n"),
    );
    match std::fs::write("BENCH_runtime.json", &json) {
        Ok(()) => eprintln!("  wrote BENCH_runtime.json"),
        Err(e) => eprintln!("  failed to write BENCH_runtime.json: {e}"),
    }

    if !short {
        assert!(
            speedup >= 5.0,
            "evented runtime speedup regressed: {speedup:.2}x < 5.0x on bus(8,8)"
        );
    }
    Ok(())
}
