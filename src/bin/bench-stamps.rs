//! `bench-stamps` — the stamp-mode shootout: per-message stamp bytes, CPU
//! per deliver and postponed depth for every [`StampMode`], at domain
//! widths far beyond the paper's ~100-server comfort zone.
//!
//! ```text
//! bench-stamps [--short]
//! ```
//!
//! The protocol cost of a stamp mode is a property of [`CausalState`]
//! alone, so the shootout drives the clock layer directly: four *active*
//! servers exchange all-to-all traffic inside a domain *declared* to hold
//! `n` servers (the regime the ROADMAP north-star cares about: enormous
//! membership, sparse active communication). One link runs a tick late, so
//! frames genuinely postpone and the can-deliver scan is exercised.
//!
//! Legs:
//!
//! - **n = 100 and n = 1000, measured** — real protocol runs; stamp bytes
//!   are exact, CPU is wall-clock over the stamp/on-frame/deliver path.
//! - **n = 10000, modeled** — a full-mode matrix is 800 MB *per server*,
//!   so this leg is computed from the cost model instead of run: dense
//!   terms (`8n²` for full, `16n` for reduced) from the formulas, sparse
//!   per-message entry counts carried over from the n = 1000 measurement
//!   (they depend on traffic, not on declared width). Marked
//!   `"measured": false` in the output.
//!
//! Results go to `BENCH_stamps.json`. Without `--short` the run asserts
//! the acceptance bar: every bounded mode ships ≥10× fewer stamp bytes
//! than full at n = 1000.

use std::collections::VecDeque;
use std::time::{Duration, Instant};

use aaa_middleware::base::DomainServerId;
use aaa_middleware::clocks::{Batching, CausalState, PendingStamp, Stamp, StampMode, UpdateEntry};

/// Active servers exchanging traffic; everything else in the domain is
/// declared membership only.
const ACTIVE: usize = 4;

fn d(i: usize) -> DomainServerId {
    DomainServerId::new(u16::try_from(i).unwrap_or(u16::MAX))
}

/// One measured run of one mode at one declared width.
struct ModeResult {
    mode: StampMode,
    messages: u64,
    stamp_bytes: u64,
    /// Entries shipped by sparse stamps (delta / hybrid / reduced extras):
    /// the traffic-dependent, width-independent part of the cost model.
    sparse_entries: u64,
    protocol_cpu: Duration,
    delivers: u64,
    max_postponed: usize,
    modeled: bool,
}

impl ModeResult {
    fn bytes_per_msg(&self) -> f64 {
        self.stamp_bytes as f64 / self.messages.max(1) as f64
    }

    fn cpu_us_per_deliver(&self) -> f64 {
        self.protocol_cpu.as_secs_f64() * 1e6 / self.delivers.max(1) as f64
    }
}

/// Per-server resident clock state: the `SENT` matrix plus the equally
/// wide entry-state tags (both `n² × 8` bytes).
fn state_bytes_per_server(n: usize) -> u64 {
    2 * (n as u64) * (n as u64) * 8
}

struct Frame {
    from: usize,
    stamp: Option<Stamp>,
    pending: Option<PendingStamp>,
}

/// Runs `ticks` rounds of all-to-all traffic among the active servers in a
/// domain declared `n` wide, with the `active[0] → active[1]` link held
/// back one tick so later frames arrive before their causal predecessors.
// The symmetric (from, to) walks index clocks/links/postponed in parallel;
// zipped iterators would obscure which server each access belongs to.
#[allow(clippy::needless_range_loop)]
fn run_mode(n: usize, mode: StampMode, ticks: usize) -> ModeResult {
    let mut clocks: Vec<CausalState> = (0..ACTIVE)
        .map(|i| CausalState::new(d(i), n, mode))
        .collect();
    let mut links: Vec<Vec<VecDeque<Frame>>> = (0..ACTIVE)
        .map(|_| (0..ACTIVE).map(|_| VecDeque::new()).collect())
        .collect();
    let mut postponed: Vec<Vec<Frame>> = (0..ACTIVE).map(|_| Vec::new()).collect();

    let mut result = ModeResult {
        mode,
        messages: 0,
        stamp_bytes: 0,
        sparse_entries: 0,
        protocol_cpu: Duration::ZERO,
        delivers: 0,
        max_postponed: 0,
        modeled: false,
    };

    for tick in 0..ticks {
        // Sends: all-to-all among the active set, grouped per peer the way
        // the channel's batched path stamps bursts.
        for from in 0..ACTIVE {
            for to in 0..ACTIVE {
                if from == to {
                    continue;
                }
                let t0 = Instant::now();
                let stamp = clocks[from].stamp_send(d(to), Batching::Single);
                result.protocol_cpu += t0.elapsed();
                result.messages += 1;
                result.stamp_bytes += stamp.encoded_len() as u64;
                result.sparse_entries += match &stamp {
                    Stamp::Delta(e) | Stamp::Hybrid(e) => e.len() as u64,
                    Stamp::Reduced { extra, .. } => extra.len() as u64,
                    _ => 0,
                };
                links[from][to].push_back(Frame {
                    from,
                    stamp: Some(stamp),
                    pending: None,
                });
            }
        }
        // Arrivals: every link drains except the slow one, which stays one
        // tick behind (skips draining on even ticks, catches up on odd).
        for from in 0..ACTIVE {
            for to in 0..ACTIVE {
                if from == 0 && to == 1 && tick % 2 == 0 {
                    continue;
                }
                while let Some(mut frame) = links[from][to].pop_front() {
                    let Some(stamp) = frame.stamp.take() else {
                        continue;
                    };
                    let t0 = Instant::now();
                    frame.pending = Some(clocks[to].on_frame(d(from), stamp));
                    result.protocol_cpu += t0.elapsed();
                    postponed[to].push(frame);
                    result.max_postponed = result.max_postponed.max(postponed[to].len());
                }
            }
        }
        // Delivery: scan with a rotating start so blocked frames are
        // genuinely re-examined.
        for (who, queue) in postponed.iter_mut().enumerate() {
            loop {
                let len = queue.len();
                let mut hit = None;
                for off in 0..len {
                    let i = (off + tick) % len;
                    let Some(p) = queue[i].pending.as_ref() else {
                        continue;
                    };
                    let t0 = Instant::now();
                    let ok = clocks[who].can_deliver(d(queue[i].from), p);
                    result.protocol_cpu += t0.elapsed();
                    if ok {
                        hit = Some(i);
                        break;
                    }
                }
                let Some(i) = hit else { break };
                let frame = queue.remove(i);
                if let Some(p) = frame.pending.as_ref() {
                    let t0 = Instant::now();
                    clocks[who].deliver(d(frame.from), p);
                    result.protocol_cpu += t0.elapsed();
                }
                result.delivers += 1;
            }
        }
    }
    // Drain the slow link and whatever is still queued.
    loop {
        let mut progressed = false;
        for from in 0..ACTIVE {
            for to in 0..ACTIVE {
                while let Some(mut frame) = links[from][to].pop_front() {
                    let Some(stamp) = frame.stamp.take() else {
                        continue;
                    };
                    frame.pending = Some(clocks[to].on_frame(d(from), stamp));
                    postponed[to].push(frame);
                    progressed = true;
                }
            }
        }
        for (who, queue) in postponed.iter_mut().enumerate() {
            while let Some(i) = (0..queue.len()).find(|&i| {
                queue[i]
                    .pending
                    .as_ref()
                    .is_some_and(|p| clocks[who].can_deliver(d(queue[i].from), p))
            }) {
                let frame = queue.remove(i);
                if let Some(p) = frame.pending.as_ref() {
                    clocks[who].deliver(d(frame.from), p);
                }
                result.delivers += 1;
                progressed = true;
            }
        }
        if !progressed {
            break;
        }
    }
    let stuck: usize = postponed.iter().map(Vec::len).sum();
    assert_eq!(stuck, 0, "{mode} at n={n}: frames stuck after drain");
    assert_eq!(
        result.delivers, result.messages,
        "{mode} at n={n}: lost frames"
    );
    result
}

/// The n = 10000 leg, computed instead of run (see module docs): dense
/// byte terms from the encoding formulas, sparse entry counts carried over
/// from the measured leg at n = 1000.
fn model_mode(n: usize, measured: &ModeResult) -> ModeResult {
    let per_msg_entries = measured.sparse_entries as f64 / measured.messages.max(1) as f64;
    let entry_bytes = (per_msg_entries * UpdateEntry::WIRE_LEN as f64) as u64;
    let n = n as u64;
    let bytes_per_msg = match measured.mode {
        StampMode::Full => 4 + 8 * n * n,
        StampMode::Updates | StampMode::Hybrid => 4 + entry_bytes,
        StampMode::Reduced => 4 + 16 * n + 4 + entry_bytes,
        // `StampMode` is non_exhaustive: a new engine needs its own model.
        // Fall back to the dense bound so the bench keeps running.
        _ => 4 + 8 * n * n,
    };
    ModeResult {
        mode: measured.mode,
        messages: 1,
        stamp_bytes: bytes_per_msg,
        sparse_entries: per_msg_entries as u64,
        // CPU scales with the dense work per message: n² cells for full,
        // the measured (width-light) path otherwise.
        protocol_cpu: measured.protocol_cpu,
        delivers: measured.delivers,
        max_postponed: measured.max_postponed,
        modeled: true,
    }
}

fn json_mode(r: &ModeResult) -> String {
    format!(
        "      \"{}\": {{ \"stamp_bytes_per_msg\": {:.1}, \"cpu_us_per_deliver\": {:.2}, \
         \"max_postponed_depth\": {}, \"messages\": {} }}",
        r.mode,
        r.bytes_per_msg(),
        if r.modeled {
            -1.0
        } else {
            r.cpu_us_per_deliver()
        },
        r.max_postponed,
        if r.modeled { 0 } else { r.messages },
    )
}

fn json_leg(n: usize, measured: bool, modes: &[ModeResult]) -> String {
    let body: Vec<String> = modes.iter().map(json_mode).collect();
    format!(
        "    {{ \"n\": {n}, \"measured\": {measured}, \"state_bytes_per_server\": {},\n      \
         \"modes\": {{\n{}\n      }} }}",
        state_bytes_per_server(n),
        body.join(",\n")
    )
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let short = args.iter().any(|a| a == "--short") || std::env::var_os("BENCH_SHORT").is_some();

    // Tick counts sized so the full-matrix legs stay in the hundreds of
    // megabytes and seconds range; the sparse modes are cheap regardless.
    let widths: &[(usize, usize)] = if short {
        &[(100, 6)]
    } else {
        &[(100, 60), (1000, 20)]
    };

    eprintln!(
        "bench-stamps: {ACTIVE} active servers, widths {:?}{}",
        widths.iter().map(|(n, _)| *n).collect::<Vec<_>>(),
        if short { " [short]" } else { "" }
    );

    let mut legs = Vec::new();
    let mut at_1000: Vec<ModeResult> = Vec::new();
    for &(n, ticks) in widths {
        let modes: Vec<ModeResult> = StampMode::ALL
            .into_iter()
            .map(|mode| {
                let r = run_mode(n, mode, ticks);
                eprintln!(
                    "  n={n:>5} {:>8}: {:>12.1} B/msg  {:>8.2} us/deliver  depth {}",
                    r.mode.to_string(),
                    r.bytes_per_msg(),
                    r.cpu_us_per_deliver(),
                    r.max_postponed,
                );
                r
            })
            .collect();
        legs.push(json_leg(n, true, &modes));
        if n == 1000 {
            at_1000 = modes;
        }
    }

    let mut reductions = String::new();
    if !at_1000.is_empty() {
        // Modeled 10000-wide leg, derived from the 1000-wide measurement.
        let modeled: Vec<ModeResult> = at_1000.iter().map(|r| model_mode(10_000, r)).collect();
        for r in &modeled {
            eprintln!(
                "  n=10000 {:>8}: {:>12.1} B/msg  (modeled)",
                r.mode.to_string(),
                r.bytes_per_msg()
            );
        }
        legs.push(json_leg(10_000, false, &modeled));

        let full = at_1000
            .iter()
            .find(|r| r.mode == StampMode::Full)
            .map(ModeResult::bytes_per_msg);
        assert!(full.is_some(), "full leg ran");
        if let Some(full) = full {
            let mut parts = Vec::new();
            for r in &at_1000 {
                if r.mode == StampMode::Full {
                    continue;
                }
                let ratio = full / r.bytes_per_msg();
                eprintln!("  n=1000 {} vs full: {ratio:.1}x fewer stamp bytes", r.mode);
                parts.push(format!("    \"{}\": {ratio:.1}", r.mode));
                if !short {
                    assert!(
                        ratio >= 10.0,
                        "{} at n=1000 only {ratio:.1}x below full (need >=10x)",
                        r.mode
                    );
                }
            }
            reductions = format!(
                ",\n  \"stamp_bytes_reduction_vs_full_at_1000\": {{\n{}\n  }}",
                parts.join(",\n")
            );
        }
    }

    let json = format!(
        "{{\n  \"bench\": \"stamps\",\n  \"active_servers\": {ACTIVE},\n  \
         \"short\": {short},\n  \"legs\": [\n{}\n  ]{reductions}\n}}\n",
        legs.join(",\n")
    );
    match std::fs::write("BENCH_stamps.json", &json) {
        Ok(()) => eprintln!("  wrote BENCH_stamps.json"),
        Err(e) => eprintln!("  failed to write BENCH_stamps.json: {e}"),
    }
}
