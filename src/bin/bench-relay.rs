//! `bench-relay` — store-and-forward relay fan-out: warm versus cold.
//!
//! ```text
//! bench-relay [--short] [publications]
//! ```
//!
//! One relayed topic on server 0 of `single_domain(2)` fans each
//! publication out to N subscribers on server 1, so every delivery
//! crosses the wire as a relay-to-relay handoff before the subscriber's
//! home relay journals it in a per-subscriber queue (DESIGN.md §17).
//! Three runs:
//!
//! | run | queues | subscribers during publish | measured phase |
//! |---|---|---|---|
//! | `warm` | memory | connected | publish → drain |
//! | `cold_memory` | memory | disconnected | reconnect → drain |
//! | `cold_durable` | on disk | disconnected | reconnect → drain |
//!
//! `warm` is the live fan-out path (publish, journal, deliver, ACK, all
//! interleaved); the cold runs journal the whole backlog first and then
//! time the redelivery drain after every subscriber reconnects — the
//! store-and-forward half of the contract, in memory and against the
//! durable segment queues. Every run asserts exactly-once fan-out
//! (deliveries == subscribers × publications). Results go to stderr and
//! `BENCH_relay.json`: fan-out msg/s per run, the warm p99 of the
//! cross-server (handoff) leg, mean redelivery cost per message, and
//! the warm/cold ratios.
//!
//! `--short` (or `BENCH_SHORT=1`) shrinks the fleet for a CI smoke test:
//! full pipeline, all three runs, no performance assertions. The full
//! run asserts each phase clears 1 000 msg/s — a deliberately loose
//! floor that catches pathological regressions (an accidental O(subs)
//! walk per ACK, retry storms) without tracking hardware.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use aaa_middleware::mom::pubsub::{publication, subscription, TopicAgent};
use aaa_middleware::mom::{relay_agent, RelayConfig};
use aaa_middleware::obs::{HistogramSnapshot, SampleValue};
use aaa_middleware::prelude::*;

/// Outcome of one benchmark run.
struct RunResult {
    label: &'static str,
    subscribers: u32,
    publications: u64,
    deliveries: u64,
    elapsed: Duration,
    /// p99 send→deliver latency of the cross-server handoff leg; only
    /// meaningful for the warm run (the cold runs journal the backlog
    /// before the measured phase, so their histogram reflects the
    /// scripted outage, not the drain).
    p99_us: Option<u64>,
}

impl RunResult {
    fn msgs_per_sec(&self) -> f64 {
        self.deliveries as f64 / self.elapsed.as_secs_f64()
    }

    fn us_per_msg(&self) -> f64 {
        self.elapsed.as_secs_f64() * 1e6 / self.deliveries as f64
    }
}

fn aid(s: u16, l: u32) -> AgentId {
    AgentId::new(ServerId::new(s), l)
}

/// Merges every per-server sample of a histogram family and returns the
/// p99 bucket bound.
fn merged_p99(snap: &MetricsSnapshot, name: &str) -> u64 {
    let mut merged: Option<HistogramSnapshot> = None;
    for family in snap.families.iter().filter(|f| f.name == name) {
        for sample in &family.samples {
            let SampleValue::Histogram(h) = &sample.value else {
                continue;
            };
            match &mut merged {
                None => merged = Some(h.clone()),
                Some(m) => {
                    for (into, c) in m.counts.iter_mut().zip(&h.counts) {
                        *into += c;
                    }
                    m.sum += h.sum;
                    m.count += h.count;
                }
            }
        }
    }
    merged.and_then(|m| m.quantile(0.99)).unwrap_or(0)
}

/// Builds the topology, registers the relayed topic on server 0 plus
/// `subs` counting subscribers on server 1, and settles the
/// subscriptions.
fn setup(subs: u32, relay: RelayConfig) -> Result<(Mom, AgentId, Vec<AgentId>, Arc<AtomicU64>)> {
    let topic_server = ServerId::new(0);
    let sub_server = ServerId::new(1);
    let mom = MomBuilder::new(TopologySpec::single_domain(2))
        .runtime(RuntimeConfig::threaded().record_trace(false).metrics(true))
        .relay(relay)
        .build()?;
    let topic = mom.register_agent(
        topic_server,
        500_000,
        Box::new(TopicAgent::with_relay(relay_agent(topic_server))),
    )?;
    let delivered = Arc::new(AtomicU64::new(0));
    let mut handles = Vec::with_capacity(subs as usize);
    for i in 1..=subs {
        let delivered = delivered.clone();
        handles.push(mom.register_agent(
            sub_server,
            i,
            Box::new(FnAgent::new(move |_ctx, _from, _note| {
                delivered.fetch_add(1, Ordering::Relaxed);
            })),
        )?);
    }
    for sub in &handles {
        retry_backpressure(|| mom.send(*sub, topic, subscription()))?;
    }
    assert!(
        mom.quiesce(Duration::from_secs(120)),
        "subscriptions must settle before the measured phase"
    );
    Ok((mom, topic, handles, delivered))
}

/// Runs `op`, sleeping briefly and retrying while the server reports
/// [`Error::Backpressure`] — the documented flow-control contract: the
/// outstanding budget refills as in-flight traffic drains. The durable
/// run's fsync-bound journaling can lag a burst publisher, and the
/// retry wait is honestly part of the measured phase.
fn retry_backpressure<T>(mut op: impl FnMut() -> Result<T>) -> Result<T> {
    loop {
        match op() {
            Err(Error::Backpressure) => std::thread::sleep(Duration::from_millis(1)),
            other => return other,
        }
    }
}

/// Publishes `pubs` sequenced publications into the topic.
fn publish(mom: &Mom, topic: AgentId, pubs: u64) -> Result<()> {
    for seq in 1..=pubs {
        retry_backpressure(|| {
            mom.send(
                aid(0, 42),
                topic,
                publication("price", seq.to_string().into_bytes()),
            )
        })?;
    }
    Ok(())
}

/// Warm fan-out: every subscriber connected, time publish → drain.
fn run_warm(subs: u32, pubs: u64) -> Result<RunResult> {
    let (mom, topic, _handles, delivered) = setup(subs, RelayConfig::default())?;
    let start = Instant::now();
    publish(&mom, topic, pubs)?;
    assert!(
        mom.quiesce(Duration::from_secs(300)),
        "warm: fan-out failed to drain"
    );
    let elapsed = start.elapsed();
    let deliveries = delivered.load(Ordering::Relaxed);
    assert_eq!(
        deliveries,
        u64::from(subs) * pubs,
        "warm: exactly-once fan-out violated"
    );
    let p99 = merged_p99(&mom.metrics(), "aaa_server_delivery_latency_us");
    mom.shutdown();
    Ok(RunResult {
        label: "warm",
        subscribers: subs,
        publications: pubs,
        deliveries,
        elapsed,
        p99_us: Some(p99),
    })
}

/// Cold redelivery: disconnect everyone, journal the whole backlog, then
/// time reconnect → drain.
fn run_cold(label: &'static str, subs: u32, pubs: u64, relay: RelayConfig) -> Result<RunResult> {
    let (mom, topic, handles, delivered) = setup(subs, relay)?;
    for sub in &handles {
        retry_backpressure(|| mom.relay_disconnect(*sub))?;
    }
    publish(&mom, topic, pubs)?;
    assert!(
        mom.quiesce(Duration::from_secs(300)),
        "{label}: backlog failed to journal"
    );
    assert_eq!(
        delivered.load(Ordering::Relaxed),
        0,
        "{label}: cold subscribers must not receive live deliveries"
    );
    let enqueued = mom.metrics().sum_counter("aaa_relay_enqueued_total");
    assert_eq!(
        enqueued,
        u64::from(subs) * pubs,
        "{label}: every publication journals once per subscriber"
    );

    let start = Instant::now();
    for sub in &handles {
        retry_backpressure(|| mom.relay_connect(*sub))?;
    }
    assert!(
        mom.quiesce(Duration::from_secs(300)),
        "{label}: redelivery failed to drain"
    );
    let elapsed = start.elapsed();
    let deliveries = delivered.load(Ordering::Relaxed);
    assert_eq!(
        deliveries,
        u64::from(subs) * pubs,
        "{label}: exactly-once redelivery violated"
    );
    mom.shutdown();
    Ok(RunResult {
        label,
        subscribers: subs,
        publications: pubs,
        deliveries,
        elapsed,
        p99_us: None,
    })
}

fn json_run(r: &RunResult) -> String {
    let p99 = r
        .p99_us
        .map_or_else(|| "null".to_owned(), |v| v.to_string());
    format!(
        "  \"{}\": {{\n    \"subscribers\": {},\n    \"publications\": {},\n    \
         \"deliveries\": {},\n    \"elapsed_ms\": {:.1},\n    \
         \"messages_per_sec\": {:.1},\n    \"us_per_msg\": {:.2},\n    \
         \"p99_latency_us\": {p99}\n  }}",
        r.label,
        r.subscribers,
        r.publications,
        r.deliveries,
        r.elapsed.as_secs_f64() * 1e3,
        r.msgs_per_sec(),
        r.us_per_msg(),
    )
}

fn main() -> Result<()> {
    let args: Vec<String> = std::env::args().collect();
    let short = args.iter().any(|a| a == "--short") || std::env::var_os("BENCH_SHORT").is_some();
    let pubs: u64 = args
        .iter()
        .skip(1)
        .find(|a| !a.starts_with("--"))
        .and_then(|s| s.parse().ok())
        .unwrap_or(if short { 8 } else { 64 });
    let subs: u32 = if short { 32 } else { 512 };

    eprintln!(
        "bench-relay: {subs} subscribers, {pubs} publications \
         ({} deliveries/run){}",
        u64::from(subs) * pubs,
        if short { " [short]" } else { "" }
    );

    let dir = std::env::temp_dir().join(format!("aaa-bench-relay-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let runs = vec![
        run_warm(subs, pubs)?,
        run_cold("cold_memory", subs, pubs, RelayConfig::default())?,
        run_cold("cold_durable", subs, pubs, RelayConfig::default().dir(&dir))?,
    ];
    let _ = std::fs::remove_dir_all(&dir);

    for r in &runs {
        eprintln!(
            "  {:>12}: {:>9.0} msg/s  {:>8.2} µs/msg{}  ({} deliveries)",
            r.label,
            r.msgs_per_sec(),
            r.us_per_msg(),
            r.p99_us
                .map_or_else(String::new, |p| format!("  p99 {p:>6} µs")),
            r.deliveries,
        );
    }
    let rate = |label: &str| {
        runs.iter()
            .find(|r| r.label == label)
            .map(RunResult::msgs_per_sec)
            .unwrap_or(0.0)
    };
    let warm_vs_cold = rate("warm") / rate("cold_memory");
    let durable_cost = rate("cold_memory") / rate("cold_durable");
    eprintln!(
        "  warm/cold_memory ratio: {warm_vs_cold:.2}x, \
         memory/durable redelivery ratio: {durable_cost:.2}x"
    );

    let body: Vec<String> = runs.iter().map(json_run).collect();
    let json = format!(
        "{{\n  \"bench\": \"relay\",\n  \"short\": {short},\n{},\n  \
         \"warm_over_cold_memory\": {warm_vs_cold:.3},\n  \
         \"cold_memory_over_durable\": {durable_cost:.3}\n}}\n",
        body.join(",\n"),
    );
    match std::fs::write("BENCH_relay.json", &json) {
        Ok(()) => eprintln!("  wrote BENCH_relay.json"),
        Err(e) => eprintln!("  failed to write BENCH_relay.json: {e}"),
    }

    if !short {
        for r in &runs {
            assert!(
                r.msgs_per_sec() >= 1_000.0,
                "{}: fan-out rate collapsed: {:.0} msg/s < 1000",
                r.label,
                r.msgs_per_sec()
            );
        }
    }
    Ok(())
}
