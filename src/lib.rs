#![warn(missing_docs)]
#![forbid(unsafe_code)]

//! # AAA middleware — scalable causal ordering through domains of causality
//!
//! A from-scratch Rust reproduction of *Preserving Causality in a Scalable
//! Message-Oriented Middleware* (Laumay, Bruneton, Bellissard, Krakowiak —
//! MIDDLEWARE 2001).
//!
//! The crate is an umbrella that re-exports the workspace members:
//!
//! - [`base`] — identifiers, errors, virtual time;
//! - [`clocks`] — Lamport/vector/matrix clocks and the matrix-clock causal
//!   delivery protocol with the Appendix-A Updates optimization;
//! - [`topology`] — domains of causality, acyclicity checking, routing;
//! - [`trace`] — the paper's formal trace model (§4.2) and causality
//!   checkers;
//! - [`net`] — wire codec, the in-memory reliable link substrate, and the
//!   peer failure detector driving the self-healing runtime;
//! - [`chaos`] — deterministic fault injection: seeded fault plans and the
//!   [`chaos::FaultTransport`] wrapper that drops, duplicates, delays and
//!   partitions live traffic;
//! - [`obs`] — the observability layer: lock-free metrics registry,
//!   Prometheus/JSON exposition and the delivery-latency tracker;
//! - [`storage`] — stable storage and the recovery journal;
//! - [`mom`] — the message-oriented middleware itself: agent servers,
//!   engine, channel, causal router-servers;
//! - [`sim`] — the discrete-event simulator and calibrated cost model used
//!   to regenerate the paper's performance figures.
//!
//! # Quickstart
//!
//! ```
//! use aaa_middleware::mom::{ClockConfig, MomBuilder, RuntimeConfig, StampMode};
//! use aaa_middleware::topology::TopologySpec;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Three servers in one domain of causality, on the sharded
//! // event-loop runtime.
//! let spec = TopologySpec::single_domain(3);
//! let mut mom = MomBuilder::new(spec)
//!     .runtime(RuntimeConfig::evented(2))
//!     .clock(ClockConfig::mode(StampMode::Updates))
//!     .build()?;
//! # let _ = &mut mom;
//! # Ok(())
//! # }
//! ```

pub use aaa_base as base;
pub use aaa_chaos as chaos;
pub use aaa_clocks as clocks;
pub use aaa_mom as mom;
pub use aaa_net as net;
pub use aaa_obs as obs;
pub use aaa_sim as sim;
pub use aaa_storage as storage;
pub use aaa_topology as topology;
pub use aaa_trace as trace;

/// One-stop imports for building and observing an AAA bus.
///
/// Pulls together the handles a typical embedder needs — the builder and
/// bus, the agent traits, topology construction, the unified send options,
/// and the metrics/stats surface — so applications can start with
///
/// ```
/// use aaa_middleware::prelude::*;
///
/// # fn main() -> Result<()> { // `Result` here is the re-exported aaa_base::Result
/// let mut mom = MomBuilder::new(TopologySpec::single_domain(2)).build()?;
/// mom.register_agent(ServerId::new(0), 1, Box::new(EchoAgent))?;
/// let snapshot: MetricsSnapshot = mom.metrics();
/// assert_eq!(snapshot.sum_counter("aaa_channel_delivered_total"), 0);
/// mom.shutdown();
/// # Ok(())
/// # }
/// ```
pub mod prelude {
    pub use aaa_base::{
        Absorb, AgentId, DomainId, Error, MessageId, Result, ServerId, VDuration, VTime,
    };
    pub use aaa_chaos::{FaultPlan, FaultTransport};
    pub use aaa_clocks::{
        Batching, ClockEngine, FullEngine, HybridEngine, ReducedEngine, StampMode, UpdatesEngine,
    };
    pub use aaa_mom::{
        Agent, AgentMessage, BatchPolicy, ClockConfig, DeliveryPolicy, EchoAgent, FnAgent, Mom,
        MomBuilder, NetConfig, Notification, ReactionContext, RuntimeConfig, RuntimeKind,
        SendOptions, ServerConfig, StepStats, TransportKind,
    };
    pub use aaa_obs::{
        Counter, Gauge, Histogram, LatencyTracker, Meter, MetricsServer, MetricsSnapshot, Registry,
    };
    pub use aaa_sim::{CostModel, Simulation};
    pub use aaa_topology::{Topology, TopologySpec};
    pub use aaa_trace::TraceRecorder;
}
