//! No-op stand-ins for `#[derive(Serialize)]` / `#[derive(Deserialize)]`.
//!
//! This workspace only *derives* the serde traits (the types never pass
//! through an actual serializer), so emitting nothing is sufficient: the
//! marker traits in the vendored `serde` crate have blanket implementations.

use proc_macro::TokenStream;

/// Accepts and discards a `#[derive(Serialize)]` invocation.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts and discards a `#[derive(Deserialize)]` invocation.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
