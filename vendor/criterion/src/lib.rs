//! A minimal, dependency-free stand-in for the `criterion` benchmark harness.
//!
//! Implements the subset this workspace uses: [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_function`] / [`BenchmarkGroup::bench_with_input`],
//! [`Bencher::iter`] / [`Bencher::iter_with_setup`], [`BenchmarkId`],
//! [`Throughput`], and the [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement is deliberately simple: a short calibration pass sizes the
//! iteration count to a fixed time budget, then the mean ns/iter is printed.
//! When the binary is invoked with `--test` (as `cargo test` does for
//! `harness = false` bench targets) every routine runs exactly once so the
//! suite stays fast and merely proves the benchmarks still work.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export matching `criterion::black_box` (deprecated upstream in favour
/// of `std::hint::black_box`, which the workspace's benches already use).
pub use std::hint::black_box;

/// Measurement time budget per benchmark in bench mode.
const BUDGET: Duration = Duration::from_millis(60);

/// True when run under `cargo test` (`--test` flag) — run each routine once.
fn test_mode() -> bool {
    std::env::args().any(|a| a == "--test")
}

/// Units for reporting throughput.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier composed of a function name and a parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id like `"name/param"`.
    pub fn new(name: impl Display, param: impl Display) -> Self {
        BenchmarkId {
            id: format!("{name}/{param}"),
        }
    }

    /// Creates an id from the parameter alone.
    pub fn from_parameter(param: impl Display) -> Self {
        BenchmarkId {
            id: param.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Timing context handed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, running it `iters` times back to back.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` only, re-running `setup` before every iteration.
    pub fn iter_with_setup<S, R, FS, FR>(&mut self, mut setup: FS, mut routine: FR)
    where
        FS: FnMut() -> S,
        FR: FnMut(S) -> R,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

fn run_one(label: &str, throughput: Option<Throughput>, mut routine: impl FnMut(&mut Bencher)) {
    if test_mode() {
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        routine(&mut b);
        println!("bench {label}: ok (test mode)");
        return;
    }
    // Calibrate: one iteration to estimate cost.
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    routine(&mut b);
    let est = b.elapsed.max(Duration::from_nanos(20));
    let iters = (BUDGET.as_nanos() / est.as_nanos()).clamp(1, 1_000_000) as u64;
    let mut b = Bencher {
        iters,
        elapsed: Duration::ZERO,
    };
    routine(&mut b);
    let per_iter = b.elapsed.as_nanos() as f64 / iters.max(1) as f64;
    let tp = match throughput {
        Some(Throughput::Elements(n)) if per_iter > 0.0 => {
            format!("  ({:.2} Melem/s)", n as f64 * 1e3 / per_iter)
        }
        Some(Throughput::Bytes(n)) if per_iter > 0.0 => {
            format!(
                "  ({:.2} MiB/s)",
                n as f64 * 1e9 / per_iter / (1024.0 * 1024.0)
            )
        }
        _ => String::new(),
    };
    println!("bench {label}: {per_iter:.1} ns/iter  [{iters} iters]{tp}");
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    _parent: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    /// Sets the throughput used for the next benchmarks' reports.
    pub fn throughput(&mut self, t: Throughput) {
        self.throughput = Some(t);
    }

    /// Benchmarks `routine` under `id`.
    pub fn bench_function(&mut self, id: impl Display, routine: impl FnMut(&mut Bencher)) {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, self.throughput, routine);
    }

    /// Benchmarks `routine` under `id`, passing it `input`.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: impl FnMut(&mut Bencher, &I),
    ) {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, self.throughput, |b| routine(b, input));
    }

    /// Finishes the group (no-op; reports are printed eagerly).
    pub fn finish(self) {}
}

/// The top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            _parent: self,
        }
    }

    /// Benchmarks a standalone function.
    pub fn bench_function(&mut self, name: &str, routine: impl FnMut(&mut Bencher)) -> &mut Self {
        run_one(name, None, routine);
        self
    }
}

/// Declares a group function that runs each listed benchmark.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main`, running each listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_format() {
        assert_eq!(BenchmarkId::new("full", 16).to_string(), "full/16");
        assert_eq!(BenchmarkId::from_parameter(7).to_string(), "7");
    }

    #[test]
    fn bencher_counts_iterations() {
        let mut n = 0u64;
        let mut b = Bencher {
            iters: 10,
            elapsed: Duration::ZERO,
        };
        b.iter(|| n += 1);
        assert_eq!(n, 10);
        let mut setups = 0u64;
        b.iter_with_setup(
            || {
                setups += 1;
            },
            |()| {},
        );
        assert_eq!(setups, 10);
    }
}
