//! A minimal, dependency-free stand-in for the `rand` crate.
//!
//! Implements the subset this workspace uses: [`SeedableRng::seed_from_u64`],
//! [`rngs::StdRng`], and [`Rng`] with `gen`, `gen_bool`, and `gen_range` over
//! half-open and inclusive integer/float ranges. The generator is SplitMix64,
//! which is statistically strong enough for fault injection and property
//! tests, and deterministic per seed (though not bit-compatible with the real
//! crate's StdRng).

use std::ops::{Range, RangeInclusive};

/// A random number generator that can be seeded from a `u64`.
pub trait SeedableRng: Sized {
    /// Creates a generator deterministically from `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be sampled uniformly from an RNG over their full domain.
pub trait Standard: Sized {
    /// Draws a uniformly distributed value.
    fn sample(rng: &mut impl RngCore) -> Self;
}

impl Standard for u8 {
    fn sample(rng: &mut impl RngCore) -> Self {
        rng.next_u64() as u8
    }
}
impl Standard for u16 {
    fn sample(rng: &mut impl RngCore) -> Self {
        rng.next_u64() as u16
    }
}
impl Standard for u32 {
    fn sample(rng: &mut impl RngCore) -> Self {
        rng.next_u64() as u32
    }
}
impl Standard for u64 {
    fn sample(rng: &mut impl RngCore) -> Self {
        rng.next_u64()
    }
}
impl Standard for usize {
    fn sample(rng: &mut impl RngCore) -> Self {
        rng.next_u64() as usize
    }
}
impl Standard for bool {
    fn sample(rng: &mut impl RngCore) -> Self {
        rng.next_u64() & 1 == 1
    }
}
impl Standard for f64 {
    fn sample(rng: &mut impl RngCore) -> Self {
        // 53 random bits into [0, 1).
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Low-level source of randomness.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Ranges a value can be drawn from uniformly.
pub trait SampleRange<T> {
    /// Draws a value from the range. Panics if the range is empty.
    fn sample_from(self, rng: &mut impl RngCore) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from(self, rng: &mut impl RngCore) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128) - (self.start as u128);
                self.start + (rng.next_u64() as u128 % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from(self, rng: &mut impl RngCore) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u128) - (lo as u128) + 1;
                lo + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}

impl_sample_range_int!(u8, u16, u32, u64, usize, i32, i64);

impl SampleRange<f64> for Range<f64> {
    fn sample_from(self, rng: &mut impl RngCore) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// The user-facing convenience trait, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a uniformly distributed value of type `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "p={p} out of range");
        f64::sample(self) < p
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator (SplitMix64 in this stand-in).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng {
                state: state.wrapping_add(0x9E37_79B9_7F4A_7C15),
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 step.
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

/// Returns a generator seeded from the system clock (non-cryptographic).
pub fn thread_rng() -> rngs::StdRng {
    use std::time::{SystemTime, UNIX_EPOCH};
    let nanos = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0x5EED);
    SeedableRng::seed_from_u64(nanos)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: usize = r.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w: u64 = r.gen_range(0..=5);
            assert!(w <= 5);
            let f: f64 = r.gen_range(0.5..2.5);
            assert!((0.5..2.5).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            assert!(!r.gen_bool(0.0));
            assert!(r.gen_bool(1.0));
        }
    }

    #[test]
    fn gen_bool_rough_frequency() {
        let mut r = StdRng::seed_from_u64(99);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits={hits}");
    }
}
