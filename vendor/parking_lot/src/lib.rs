//! A minimal, dependency-free stand-in for `parking_lot`, backed by
//! `std::sync` primitives. Lock poisoning is transparently ignored, which
//! matches `parking_lot` semantics (no poisoning).

use std::sync::{self, TryLockError};

/// A mutex with `parking_lot`'s non-poisoning API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.0.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

/// A reader-writer lock with `parking_lot`'s non-poisoning API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// RAII read guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// RAII write guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.0.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.0.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(l.into_inner(), 6);
    }
}
