//! A minimal, dependency-free stand-in for the `crossbeam` crate.
//!
//! Implements the subset this workspace uses: multi-producer,
//! multi-consumer FIFO channels ([`channel::unbounded`] /
//! [`channel::bounded`]) and a polling [`select!`] macro over one or two
//! receivers with a `default(timeout)` arm.

pub mod channel;

/// A polling replacement for `crossbeam::channel::select!`.
///
/// Supports the shapes used in this workspace:
///
/// ```ignore
/// select! {
///     recv(rx_a) -> msg => { ... }
///     recv(rx_b) -> msg => { ... }
///     default(Duration::from_millis(5)) => { ... }
/// }
/// ```
///
/// Each `recv` arm binds `Result<T, RecvError>` like the real macro. The
/// implementation polls with a short sleep instead of parking on an event,
/// which is indistinguishable for the millisecond-scale timeouts used here.
#[macro_export]
macro_rules! select {
    (
        recv($r1:expr) -> $p1:pat => $b1:block
        default($timeout:expr) => $bd:block
    ) => {{
        let __cb_deadline = ::std::time::Instant::now() + $timeout;
        loop {
            if let ::std::option::Option::Some(__cb_r) = ($r1).__select_poll() {
                let $p1 = __cb_r;
                break $b1;
            }
            if ::std::time::Instant::now() >= __cb_deadline {
                break $bd;
            }
            ::std::thread::sleep(::std::time::Duration::from_micros(500));
        }
    }};
    (
        recv($r1:expr) -> $p1:pat => $b1:block
        recv($r2:expr) -> $p2:pat => $b2:block
        default($timeout:expr) => $bd:block
    ) => {{
        let __cb_deadline = ::std::time::Instant::now() + $timeout;
        loop {
            if let ::std::option::Option::Some(__cb_r) = ($r1).__select_poll() {
                let $p1 = __cb_r;
                break $b1;
            }
            if let ::std::option::Option::Some(__cb_r) = ($r2).__select_poll() {
                let $p2 = __cb_r;
                break $b2;
            }
            if ::std::time::Instant::now() >= __cb_deadline {
                break $bd;
            }
            ::std::thread::sleep(::std::time::Duration::from_micros(500));
        }
    }};
}
