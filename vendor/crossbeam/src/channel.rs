//! Multi-producer, multi-consumer FIFO channels.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Re-export so `crossbeam::channel::select!` works like the real crate.
pub use crate::select;

struct State<T> {
    queue: VecDeque<T>,
    senders: usize,
    receivers: usize,
}

struct Inner<T> {
    state: Mutex<State<T>>,
    /// Signalled when a message arrives or endpoints disconnect.
    ready: Condvar,
    /// `None` for unbounded channels.
    capacity: Option<usize>,
}

/// Error returned by [`Sender::send`] when all receivers are gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendError<T>(pub T);

impl<T> std::fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "sending on a disconnected channel")
    }
}

/// Error returned by [`Receiver::recv`] when the channel is empty and all
/// senders are gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

impl std::fmt::Display for RecvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "receiving on an empty and disconnected channel")
    }
}

/// Error returned by [`Receiver::try_recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// The channel is currently empty.
    Empty,
    /// All senders are gone and the channel is empty.
    Disconnected,
}

/// Error returned by [`Receiver::recv_timeout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// No message arrived before the timeout.
    Timeout,
    /// All senders are gone and the channel is empty.
    Disconnected,
}

/// The sending half of a channel.
pub struct Sender<T> {
    inner: Arc<Inner<T>>,
}

/// The receiving half of a channel.
pub struct Receiver<T> {
    inner: Arc<Inner<T>>,
}

impl<T> std::fmt::Debug for Sender<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Sender { .. }")
    }
}

impl<T> std::fmt::Debug for Receiver<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Receiver { .. }")
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.inner.state.lock().unwrap().senders += 1;
        Sender {
            inner: self.inner.clone(),
        }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.inner.state.lock().unwrap().receivers += 1;
        Receiver {
            inner: self.inner.clone(),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut st = self.inner.state.lock().unwrap();
        st.senders -= 1;
        if st.senders == 0 {
            self.inner.ready.notify_all();
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut st = self.inner.state.lock().unwrap();
        st.receivers -= 1;
        if st.receivers == 0 {
            self.inner.ready.notify_all();
        }
    }
}

impl<T> Sender<T> {
    /// Sends a message, blocking if a bounded channel is full.
    ///
    /// # Errors
    ///
    /// Returns [`SendError`] if every [`Receiver`] has been dropped.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let mut st = self.inner.state.lock().unwrap();
        loop {
            if st.receivers == 0 {
                return Err(SendError(value));
            }
            match self.inner.capacity {
                Some(cap) if st.queue.len() >= cap => {
                    st = self.inner.ready.wait(st).unwrap();
                }
                _ => break,
            }
        }
        st.queue.push_back(value);
        self.inner.ready.notify_all();
        Ok(())
    }
}

impl<T> Receiver<T> {
    /// Receives without blocking.
    ///
    /// # Errors
    ///
    /// [`TryRecvError::Empty`] if nothing is queued,
    /// [`TryRecvError::Disconnected`] if additionally every sender is gone.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut st = self.inner.state.lock().unwrap();
        match st.queue.pop_front() {
            Some(v) => {
                self.inner.ready.notify_all();
                Ok(v)
            }
            None if st.senders == 0 => Err(TryRecvError::Disconnected),
            None => Err(TryRecvError::Empty),
        }
    }

    /// Receives, blocking until a message arrives.
    ///
    /// # Errors
    ///
    /// Returns [`RecvError`] once the channel is empty and disconnected.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut st = self.inner.state.lock().unwrap();
        loop {
            if let Some(v) = st.queue.pop_front() {
                self.inner.ready.notify_all();
                return Ok(v);
            }
            if st.senders == 0 {
                return Err(RecvError);
            }
            st = self.inner.ready.wait(st).unwrap();
        }
    }

    /// Receives, blocking up to `timeout`.
    ///
    /// # Errors
    ///
    /// [`RecvTimeoutError::Timeout`] if nothing arrived in time,
    /// [`RecvTimeoutError::Disconnected`] if the channel is empty and every
    /// sender is gone.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut st = self.inner.state.lock().unwrap();
        loop {
            if let Some(v) = st.queue.pop_front() {
                self.inner.ready.notify_all();
                return Ok(v);
            }
            if st.senders == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            let (guard, _) = self.inner.ready.wait_timeout(st, deadline - now).unwrap();
            st = guard;
        }
    }

    /// Polling helper used by the `select!` macro: `None` when empty,
    /// `Some(Ok(_))` on a message, `Some(Err(_))` on disconnect. The
    /// concrete return type lets `select!` arms infer their binding type.
    #[doc(hidden)]
    pub fn __select_poll(&self) -> Option<Result<T, RecvError>> {
        match self.try_recv() {
            Ok(v) => Some(Ok(v)),
            Err(TryRecvError::Disconnected) => Some(Err(RecvError)),
            Err(TryRecvError::Empty) => None,
        }
    }

    /// Number of messages currently queued.
    pub fn len(&self) -> usize {
        self.inner.state.lock().unwrap().queue.len()
    }

    /// Returns `true` if no message is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

fn channel<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
    let inner = Arc::new(Inner {
        state: Mutex::new(State {
            queue: VecDeque::new(),
            senders: 1,
            receivers: 1,
        }),
        ready: Condvar::new(),
        capacity,
    });
    (
        Sender {
            inner: inner.clone(),
        },
        Receiver { inner },
    )
}

/// Creates an unbounded FIFO channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    channel(None)
}

/// Creates a bounded FIFO channel with the given capacity.
///
/// A capacity of zero is treated as one (this stand-in has no rendezvous
/// mode; the workspace only uses `bounded(1)` reply channels).
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    channel(Some(cap.max(1)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_and_disconnect() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.try_recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        drop(tx);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn timeout_paths() {
        let (tx, rx) = unbounded::<u8>();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(RecvTimeoutError::Timeout)
        );
        tx.send(9).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(5)), Ok(9));
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn cross_thread() {
        let (tx, rx) = bounded(1);
        let h = std::thread::spawn(move || {
            for i in 0..100 {
                tx.send(i).unwrap();
            }
        });
        for i in 0..100 {
            assert_eq!(rx.recv(), Ok(i));
        }
        h.join().unwrap();
    }

    #[test]
    fn send_to_dropped_receiver_fails() {
        let (tx, rx) = unbounded();
        drop(rx);
        assert!(tx.send(1).is_err());
    }

    #[test]
    fn select_macro_two_receivers() {
        let (tx1, rx1) = unbounded::<u8>();
        let (_tx2, rx2) = unbounded::<u8>();
        tx1.send(7).unwrap();
        let mut got = None;
        crate::select! {
            recv(rx1) -> v => { got = v.ok(); }
            recv(rx2) -> v => { got = v.ok().map(|x| x + 100); }
            default(Duration::from_millis(10)) => {}
        }
        assert_eq!(got, Some(7));
        let mut defaulted = false;
        crate::select! {
            recv(rx1) -> _v => {}
            recv(rx2) -> _v => {}
            default(Duration::from_millis(5)) => { defaulted = true; }
        }
        assert!(defaulted);
    }
}
