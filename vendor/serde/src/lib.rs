//! A minimal, dependency-free stand-in for `serde`.
//!
//! The workspace derives `Serialize`/`Deserialize` for forward compatibility
//! but never routes values through a serializer, so the traits here are pure
//! markers with blanket implementations, and the derive macros (re-exported
//! from the vendored `serde_derive` under the `derive` feature) expand to
//! nothing.

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de> {}

/// Marker trait standing in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}

impl<T: ?Sized> Serialize for T {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}
impl<T: for<'de> Deserialize<'de> + ?Sized> DeserializeOwned for T {}

/// Deserialization-side marker types.
pub mod de {
    pub use crate::{Deserialize, DeserializeOwned};
}

/// Serialization-side marker types.
pub mod ser {
    pub use crate::Serialize;
}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
