//! A minimal, dependency-free stand-in for the `bytes` crate.
//!
//! This workspace is built in a hermetic environment with no access to
//! crates.io, so the handful of external crates it uses are vendored as
//! API-compatible subsets. Only the surface the workspace actually uses is
//! implemented: [`Bytes`] (cheaply cloneable, sliceable, immutable byte
//! buffer), [`BytesMut`] (growable buffer that freezes into [`Bytes`]), and
//! the [`Buf`]/[`BufMut`] cursor traits.

use std::ops::Deref;
use std::sync::Arc;

/// A cheaply cloneable, immutable, contiguous slice of memory.
///
/// Internally an `Arc<[u8]>` plus a `(start, end)` window, so `clone`,
/// `slice`, `split_to` and `split_off` are O(1) and allocation-free.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Creates an empty `Bytes`.
    pub fn new() -> Self {
        Bytes::from_static(&[])
    }

    /// Creates `Bytes` from a static slice without copying.
    pub fn from_static(slice: &'static [u8]) -> Self {
        // A static slice still goes through Arc for representation
        // uniformity; the copy is once per call site constant.
        Bytes {
            data: Arc::from(slice),
            start: 0,
            end: slice.len(),
        }
    }

    /// Length of the view in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Returns `true` if the view is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Copies the view into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    /// Returns a sub-view of `self` for the given range (O(1), shared).
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn slice(&self, range: std::ops::Range<usize>) -> Bytes {
        assert!(range.start <= range.end && range.end <= self.len());
        Bytes {
            data: self.data.clone(),
            start: self.start + range.start,
            end: self.start + range.end,
        }
    }

    /// Splits off and returns the first `at` bytes; `self` keeps the rest.
    ///
    /// # Panics
    ///
    /// Panics if `at > self.len()`.
    pub fn split_to(&mut self, at: usize) -> Bytes {
        assert!(at <= self.len());
        let head = Bytes {
            data: self.data.clone(),
            start: self.start,
            end: self.start + at,
        };
        self.start += at;
        head
    }

    /// Splits off and returns the bytes after `at`; `self` keeps the head.
    ///
    /// # Panics
    ///
    /// Panics if `at > self.len()`.
    pub fn split_off(&mut self, at: usize) -> Bytes {
        assert!(at <= self.len());
        let tail = Bytes {
            data: self.data.clone(),
            start: self.start + at,
            end: self.end,
        };
        self.end = self.start + at;
        tail
    }

    fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl std::borrow::Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl Eq for Bytes {}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let len = v.len();
        Bytes {
            data: Arc::from(v.into_boxed_slice()),
            start: 0,
            end: len,
        }
    }
}

impl From<Box<[u8]>> for Bytes {
    fn from(v: Box<[u8]>) -> Self {
        let len = v.len();
        Bytes {
            data: Arc::from(v),
            start: 0,
            end: len,
        }
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Bytes::from(s.into_bytes())
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Self {
        Bytes::from_static(s.as_bytes())
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Self {
        Bytes::from_static(s)
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<T: IntoIterator<Item = u8>>(iter: T) -> Self {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

/// A growable byte buffer that can be frozen into [`Bytes`].
#[derive(Clone, Default, Debug, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
    /// Read cursor for the `Buf` impl.
    read: usize,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// Creates an empty buffer with at least `cap` bytes of capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            buf: Vec::with_capacity(cap),
            read: 0,
        }
    }

    /// Unread length in bytes.
    pub fn len(&self) -> usize {
        self.buf.len() - self.read
    }

    /// Returns `true` if no unread bytes remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Freezes the buffer into an immutable [`Bytes`].
    pub fn freeze(mut self) -> Bytes {
        if self.read > 0 {
            self.buf.drain(..self.read);
        }
        Bytes::from(self.buf)
    }

    /// Appends a slice to the buffer.
    pub fn extend_from_slice(&mut self, extend: &[u8]) {
        self.buf.extend_from_slice(extend);
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf[self.read..]
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

/// Read cursor over a byte buffer (subset of `bytes::Buf`).
pub trait Buf {
    /// Bytes remaining to read.
    fn remaining(&self) -> usize;
    /// The unread bytes.
    fn chunk(&self) -> &[u8];
    /// Advances the cursor by `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    /// Reads a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        let c = self.chunk();
        let v = u16::from_le_bytes([c[0], c[1]]);
        self.advance(2);
        v
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let c = self.chunk();
        let v = u32::from_le_bytes([c[0], c[1], c[2], c[3]]);
        self.advance(4);
        v
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let c = self.chunk();
        let v = u64::from_le_bytes([c[0], c[1], c[2], c[3], c[4], c[5], c[6], c[7]]);
        self.advance(8);
        v
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }
    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len());
        self.start += cnt;
    }
}

impl Buf for BytesMut {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self
    }
    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len());
        self.read += cnt;
    }
}

/// Write cursor over a growable byte buffer (subset of `bytes::BufMut`).
pub trait BufMut {
    /// Appends a slice.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
    /// Appends a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.buf.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_split() {
        let mut m = BytesMut::new();
        m.put_u8(1);
        m.put_u16_le(0xBEEF);
        m.put_u32_le(7);
        m.put_u64_le(u64::MAX);
        m.put_slice(b"xyz");
        let mut b = m.freeze();
        assert_eq!(b.len(), 1 + 2 + 4 + 8 + 3);
        assert_eq!(b.get_u8(), 1);
        assert_eq!(b.get_u16_le(), 0xBEEF);
        assert_eq!(b.get_u32_le(), 7);
        assert_eq!(b.get_u64_le(), u64::MAX);
        let head = b.split_to(1);
        assert_eq!(&head[..], b"x");
        let tail = b.split_off(1);
        assert_eq!(&b[..], b"y");
        assert_eq!(&tail[..], b"z");
    }

    #[test]
    fn equality_and_slicing() {
        let a = Bytes::from(vec![1, 2, 3, 4]);
        let s = a.slice(1..3);
        assert_eq!(&s[..], &[2, 3]);
        assert_eq!(s, Bytes::from(vec![2, 3]));
        assert!(Bytes::new().is_empty());
        assert_eq!(Bytes::from("ab"), Bytes::from_static(b"ab"));
    }
}
