//! Test-runner configuration and the deterministic RNG used for sampling.

pub use rand::rngs::StdRng as TestRng;
use rand::SeedableRng;

/// Creates the deterministic RNG used to sample all strategies of one test.
pub fn new_rng(seed: u64) -> TestRng {
    TestRng::seed_from_u64(seed)
}

/// Configuration for a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Returns a config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}
