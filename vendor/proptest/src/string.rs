//! A tiny regex-like string strategy.
//!
//! `&'static str` implements [`Strategy`] by interpreting the pattern as a
//! sequence of atoms — literal characters or character classes `[a-z]` —
//! each optionally followed by a repetition `{n}` or `{min,max}`. This
//! covers the patterns used in this workspace (e.g. `"[a-z]{0,12}"`); any
//! unparseable pattern falls back to generating the pattern text itself.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;

#[derive(Debug, Clone)]
enum Atom {
    Literal(char),
    /// Inclusive char ranges, e.g. `[a-z0-9]` → [('a','z'), ('0','9')].
    Class(Vec<(char, char)>),
}

#[derive(Debug, Clone)]
struct Piece {
    atom: Atom,
    min: usize,
    max: usize,
}

fn parse(pattern: &str) -> Option<Vec<Piece>> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut i = 0;
    let mut pieces = Vec::new();
    while i < chars.len() {
        let atom = match chars[i] {
            '[' => {
                let close = chars[i + 1..].iter().position(|&c| c == ']')? + i + 1;
                let mut ranges = Vec::new();
                let mut j = i + 1;
                while j < close {
                    if j + 2 < close && chars[j + 1] == '-' {
                        ranges.push((chars[j], chars[j + 2]));
                        j += 3;
                    } else {
                        ranges.push((chars[j], chars[j]));
                        j += 1;
                    }
                }
                if ranges.is_empty() {
                    return None;
                }
                i = close + 1;
                Atom::Class(ranges)
            }
            '{' | '}' | ']' => return None,
            c => {
                i += 1;
                Atom::Literal(c)
            }
        };
        let (min, max) = if i < chars.len() && chars[i] == '{' {
            let close = chars[i + 1..].iter().position(|&c| c == '}')? + i + 1;
            let body: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match body.split_once(',') {
                Some((lo, hi)) => (lo.trim().parse().ok()?, hi.trim().parse().ok()?),
                None => {
                    let n = body.trim().parse().ok()?;
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        if min > max {
            return None;
        }
        pieces.push(Piece { atom, min, max });
    }
    Some(pieces)
}

fn sample_pieces(pieces: &[Piece], rng: &mut TestRng) -> String {
    let mut out = String::new();
    for p in pieces {
        let reps = rng.gen_range(p.min..=p.max);
        for _ in 0..reps {
            match &p.atom {
                Atom::Literal(c) => out.push(*c),
                Atom::Class(ranges) => {
                    let (lo, hi) = ranges[rng.gen_range(0..ranges.len())];
                    let span = hi as u32 - lo as u32 + 1;
                    let code = lo as u32 + rng.gen_range(0..span);
                    out.push(char::from_u32(code).unwrap_or(lo));
                }
            }
        }
    }
    out
}

impl Strategy for &'static str {
    type Value = String;

    fn sample(&self, rng: &mut TestRng) -> String {
        match parse(self) {
            Some(pieces) => sample_pieces(&pieces, rng),
            None => (*self).to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::new_rng;

    #[test]
    fn lowercase_class_with_bounds() {
        let mut rng = new_rng(5);
        for _ in 0..300 {
            let s = "[a-z]{0,12}".sample(&mut rng);
            assert!(s.len() <= 12);
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
        }
    }

    #[test]
    fn literals_and_fixed_reps() {
        let mut rng = new_rng(6);
        assert_eq!("abc".sample(&mut rng), "abc");
        let s = "[0-1]{4}".sample(&mut rng);
        assert_eq!(s.len(), 4);
        assert!(s.chars().all(|c| c == '0' || c == '1'));
    }
}
