//! The [`Strategy`] trait and the combinators this workspace uses.

use crate::test_runner::TestRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// A source of random values of one type.
///
/// Unlike the real crate there is no value tree and no shrinking: `sample`
/// directly produces a value from the RNG.
pub trait Strategy {
    /// The type of value this strategy generates.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erases this strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        (**self).sample(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Uniform choice among several strategies (built by `prop_oneof!`).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Creates a union over `arms`.
    ///
    /// # Panics
    ///
    /// Panics if `arms` is empty.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        let k = rng.gen_range(0..self.arms.len());
        self.arms[k].sample(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::new_rng;

    #[test]
    fn ranges_tuples_map_union() {
        let mut rng = new_rng(1);
        for _ in 0..500 {
            let v = (0usize..5).sample(&mut rng);
            assert!(v < 5);
            let (a, b) = (0u16..3, 10u64..12).sample(&mut rng);
            assert!(a < 3 && (10..12).contains(&b));
            let m = (0u32..4).prop_map(|x| x * 10).sample(&mut rng);
            assert!(m % 10 == 0 && m < 40);
            let u = Union::new(vec![Just(1u8).boxed(), Just(2u8).boxed()]).sample(&mut rng);
            assert!(u == 1 || u == 2);
        }
    }
}
