//! A minimal, dependency-free stand-in for the `proptest` crate.
//!
//! Implements the subset this workspace uses: the [`proptest!`] macro with an
//! optional `#![proptest_config(ProptestConfig::with_cases(n))]` header,
//! `pat in strategy` arguments, `prop_assert!`-family assertions,
//! `prop_assume!`, [`prop_oneof!`], [`strategy::Just`], tuples, integer
//! ranges, [`collection::vec`], `any::<T>()`, `.prop_map`, and a tiny
//! character-class string strategy (enough for patterns like `"[a-z]{0,12}"`).
//!
//! Semantics: each test runs `cases` iterations with values sampled from a
//! deterministic per-test RNG (seeded from the test's module path + name).
//! There is **no shrinking** — failures report the assertion directly, which
//! is acceptable for a hermetic CI stand-in.

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// User-facing re-exports, mirroring `proptest::prelude`.
pub mod prelude {
    /// `prop::collection::vec(...)` etc. resolve through this alias, exactly
    /// like the real crate's `pub use crate as prop`.
    pub use crate as prop;
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// FNV-1a hash of a test path, used to derive a stable per-test seed.
#[doc(hidden)]
pub fn __seed_from_name(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Defines property tests. See the crate docs for supported syntax.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_impl!(@cfg ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(
            @cfg ($crate::test_runner::ProptestConfig::default())
            $($rest)*
        );
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg ($cfg:expr)) => {};
    (@cfg ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg = $cfg;
            let mut __rng = $crate::test_runner::new_rng($crate::__seed_from_name(
                concat!(module_path!(), "::", stringify!($name)),
            ));
            for __case in 0..__cfg.cases {
                let _ = __case;
                $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __rng);)*
                let __one_case = move || $body;
                __one_case();
            }
        }
        $crate::__proptest_impl!(@cfg ($cfg) $($rest)*);
    };
}

/// Asserts a condition inside a property test (no shrinking: plain `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Skips the current case when the precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)*)?) => {
        if !($cond) {
            return;
        }
    };
}

/// Builds a [`strategy::Union`] choosing uniformly among the given strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($s)),+
        ])
    };
}
