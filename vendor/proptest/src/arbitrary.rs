//! `any::<T>()` support for the primitive types the workspace samples.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;
use std::marker::PhantomData;

/// Types with a canonical "whole domain" strategy.
pub trait Arbitrary: Sized {
    /// Draws a uniformly distributed value of `Self`.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.gen()
            }
        }
    )*};
}

impl_arbitrary!(u8, u16, u32, u64, usize, bool);

impl Arbitrary for i64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen::<u64>() as i64
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen()
    }
}

/// Strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

/// Returns the whole-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}
