//! Collection strategies (`prop::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// An inclusive size bound for generated collections.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

/// Strategy generating `Vec`s of values from an element strategy.
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

/// Generates vectors whose length is drawn uniformly from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.size.lo..=self.size.hi);
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::new_rng;

    #[test]
    fn vec_lengths_respect_bounds() {
        let mut rng = new_rng(3);
        let strat = vec(0u8..10, 2..5);
        for _ in 0..200 {
            let v = strat.sample(&mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
    }
}
