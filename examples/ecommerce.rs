//! An e-commerce order pipeline across domains of causality.
//!
//! Storefront, inventory, payment and audit services run on different
//! servers in different domains (a daisy chain, as in Figure 9). Each
//! order triggers a causal chain of notifications:
//!
//! ```text
//! storefront --order--> inventory --reserve--> payment --confirm--> audit
//!       \______________________order-copy_______________________--> audit
//! ```
//!
//! The audit service must never record a confirmation before the order it
//! confirms — exactly the guarantee causal delivery provides, even though
//! the order copy and the confirmation travel different routes.
//!
//! Run with: `cargo run --example ecommerce`

use std::sync::Arc;
use std::time::Duration;

use aaa_middleware::base::{AgentId, ServerId};
use aaa_middleware::mom::{FnAgent, MomBuilder, Notification};
use aaa_middleware::topology::TopologySpec;
use parking_lot::Mutex;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Daisy of three domains: {0,1,2} storefront+audit, {2,3,4} inventory,
    // {4,5,6} payment. Servers 2 and 4 are causal router-servers.
    let spec = TopologySpec::daisy(3, 3);
    let mom = MomBuilder::new(spec).build()?;

    let storefront_server = ServerId::new(0);
    let audit_server = ServerId::new(1);
    let inventory_server = ServerId::new(3);
    let payment_server = ServerId::new(5);

    let audit_log: Arc<Mutex<Vec<String>>> = Default::default();

    // Audit: records everything it sees, and checks the invariant.
    let log = audit_log.clone();
    let audit = mom.register_agent(
        audit_server,
        1,
        Box::new(FnAgent::new(move |_ctx, _from, note| {
            let mut log = log.lock();
            let entry = format!("{}:{}", note.kind(), note.body_str().unwrap_or(""));
            if note.kind() == "confirmed" {
                let order = note.body_str().unwrap_or("").to_owned();
                assert!(
                    log.iter().any(|e| e == &format!("order:{order}")),
                    "audit saw confirmation of {order} before the order itself!"
                );
            }
            log.push(entry);
        })),
    )?;

    // Payment: confirms reservations to the audit service.
    let payment = mom.register_agent(
        payment_server,
        1,
        Box::new(FnAgent::new(move |ctx, _from, note| {
            if note.kind() == "reserve" {
                ctx.send(audit, Notification::new("confirmed", note.body().clone()));
            }
        })),
    )?;

    // Inventory: reserves stock, then asks payment to charge.
    let inventory = mom.register_agent(
        inventory_server,
        1,
        Box::new(FnAgent::new(move |ctx, _from, note| {
            if note.kind() == "order" {
                ctx.send(payment, Notification::new("reserve", note.body().clone()));
            }
        })),
    )?;

    // Storefront: records each order with audit, *then* forwards it to
    // inventory. The audit copy is sent first, so it causally precedes the
    // whole downstream chain (copy ≺ order ≺ reserve ≺ confirmed) — which
    // is what entitles the audit agent to its assertion below.
    let storefront = mom.register_agent(
        storefront_server,
        1,
        Box::new(FnAgent::new(move |ctx, _from, note| {
            if note.kind() == "place" {
                ctx.send(audit, Notification::new("order", note.body().clone()));
                ctx.send(inventory, Notification::new("order", note.body().clone()));
            }
        })),
    )?;

    // A customer places five orders.
    let customer = AgentId::new(storefront_server, 99);
    for i in 0..5 {
        mom.send(
            customer,
            storefront,
            Notification::new("place", format!("order-{i}")),
        )?;
    }
    assert!(
        mom.quiesce(Duration::from_secs(10)),
        "pipeline should drain"
    );

    let log = audit_log.lock();
    println!("audit log ({} entries):", log.len());
    for entry in log.iter() {
        println!("  {entry}");
    }
    assert_eq!(log.len(), 10, "5 orders + 5 confirmations");
    assert!(mom.trace()?.check_causality().is_ok());
    println!("every confirmation followed its order — causal delivery held across 3 domains");
    mom.shutdown();
    Ok(())
}
