//! Stock-exchange quotation dissemination — the paper's opening use case.
//!
//! A quote publisher lives in the exchange's domain; regional broker
//! servers live in their own domains, joined to the exchange by causal
//! router-servers (a bus organization). Causal delivery is what makes the
//! feed *safe*: when the exchange publishes `halt TICKER` after a stream
//! of quotes, no broker can observe the halt before the quotes that
//! caused it — even though they arrive over different multi-hop routes.
//!
//! Run with: `cargo run --example stock_ticker`

use std::sync::Arc;
use std::time::Duration;

use aaa_middleware::base::{AgentId, ServerId};
use aaa_middleware::mom::{FnAgent, MomBuilder, Notification};
use aaa_middleware::topology::TopologySpec;
use parking_lot::Mutex;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Domain 1: the exchange {0,1,2}; domains 2 and 3: two brokerage
    // regions; domain 0: the backbone joining the three routers 2, 3, 6.
    let spec = TopologySpec::from_domains(vec![
        vec![2, 3, 6], // backbone
        vec![0, 1, 2], // exchange
        vec![3, 4, 5], // region east
        vec![6, 7, 8], // region west
    ]);
    let mom = MomBuilder::new(spec).build()?;
    println!(
        "routers: {:?}",
        mom.topology()
            .routers()
            .iter()
            .map(|r| r.to_string())
            .collect::<Vec<_>>()
    );

    // Broker desks: every region server runs a feed consumer that refuses
    // to trade a ticker after seeing its halt.
    let feeds: Arc<Mutex<Vec<(ServerId, String)>>> = Default::default();
    let mut desks = Vec::new();
    for s in [4u16, 5, 7, 8] {
        let feeds = feeds.clone();
        let server = ServerId::new(s);
        desks.push(mom.register_agent(
            server,
            1,
            Box::new(FnAgent::new(move |_ctx, _from, note| {
                feeds
                    .lock()
                    .push((server, note.body_str().unwrap_or("").to_owned()));
            })),
        )?);
    }

    // The publisher on exchange server 0 fans quotes out to every desk.
    let publisher = AgentId::new(ServerId::new(0), 7);
    let publish = |kind: &str, body: String| -> Result<(), aaa_middleware::base::Error> {
        for desk in &desks {
            mom.send(publisher, *desk, Notification::new(kind, body.clone()))?;
        }
        Ok(())
    };

    publish("quote", "ACME 101.50".into())?;
    publish("quote", "ACME 99.10".into())?;
    publish("quote", "ACME 54.20".into())?; // flash crash...
    publish("halt", "HALT ACME".into())?; // ...the exchange halts trading

    assert!(mom.quiesce(Duration::from_secs(10)), "feed should drain");

    // Check the per-desk feeds: the halt is always last.
    let feeds = feeds.lock();
    for s in [4u16, 5, 7, 8] {
        let desk_feed: Vec<&str> = feeds
            .iter()
            .filter(|(srv, _)| *srv == ServerId::new(s))
            .map(|(_, m)| m.as_str())
            .collect();
        println!("desk S{s}: {desk_feed:?}");
        assert_eq!(desk_feed.len(), 4);
        assert_eq!(
            desk_feed.last().copied(),
            Some("HALT ACME"),
            "halt must arrive after its quotes"
        );
    }

    // And the global trace is causally consistent.
    assert!(mom.trace()?.check_causality().is_ok());
    println!("all desks saw the halt after the quotes that caused it — causal order held");
    mom.shutdown();
    Ok(())
}
