//! Explore the paper's domain organizations: bus, daisy and tree.
//!
//! Builds each Figure 9 organization, prints its domains, routers and a
//! few routes, and tabulates the §6.2 analytic message cost next to the
//! per-server control-state footprint.
//!
//! Run with: `cargo run --example topology_explorer`

use aaa_middleware::base::ServerId;
use aaa_middleware::topology::cost;
use aaa_middleware::topology::{trace_route, RoutingTable, Topology, TopologySpec};

fn explore(name: &str, topo: &Topology) -> Result<(), Box<dyn std::error::Error>> {
    println!("\n=== {name} ===");
    println!(
        "servers: {}, domains: {}",
        topo.server_count(),
        topo.domain_count()
    );
    for d in topo.domains() {
        let members: Vec<String> = d.members().iter().map(|s| s.to_string()).collect();
        println!("  {}: {{{}}}", d.id(), members.join(", "));
    }
    let routers: Vec<String> = topo.routers().iter().map(|r| r.to_string()).collect();
    println!("causal router-servers: {{{}}}", routers.join(", "));

    let tables = RoutingTable::build_all(topo)?;
    let servers = u16::try_from(topo.server_count()).unwrap_or(u16::MAX);
    let origin = tables.first().ok_or("empty topology")?;
    let far = (0..servers)
        .map(ServerId::new)
        .max_by_key(|s| origin.hops(*s).unwrap_or(0))
        .unwrap_or_else(|| ServerId::new(0));
    let route = trace_route(&tables, ServerId::new(0), far)?;
    let hops: Vec<String> = route.iter().map(|s| s.to_string()).collect();
    println!("longest route from S0: {}", hops.join(" -> "));

    let max_cells = (0..servers)
        .map(|s| {
            let sizes: Vec<usize> = topo
                .memberships(ServerId::new(s))
                .iter()
                .map(|&d| topo.domain(d).map_or(0, |dom| dom.size()))
                .collect();
            cost::server_state_cells(&sizes)
        })
        .max()
        .unwrap_or(0);
    println!(
        "control state: max {} matrix cells per server (flat MOM would need {})",
        max_cells,
        cost::flat_message_cost(topo.server_count())
    );
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    explore(
        "Figure 2 (paper's example)",
        &TopologySpec::from_domains(vec![
            vec![0, 1, 2],
            vec![3, 4],
            vec![6, 7],
            vec![2, 4, 5, 6],
        ])
        .validate()?,
    )?;

    explore("Bus 4 x 4", &TopologySpec::bus(4, 4).validate()?)?;
    explore("Daisy 4 x 4", &TopologySpec::daisy(4, 4).validate()?)?;
    explore(
        "Tree depth 2, fanout 2, s = 4",
        &TopologySpec::tree(2, 2, 4).validate()?,
    )?;

    // The theorem's precondition is enforced: cyclic decompositions are
    // rejected with a witness.
    let cyclic = TopologySpec::from_domains(vec![vec![0, 1], vec![1, 2], vec![2, 0]]);
    match cyclic.validate() {
        Err(e) => println!("\ncyclic decomposition rejected as expected: {e}"),
        Ok(_) => return Err("the cycle must be detected".into()),
    }

    println!("\n§6.2 analytic per-message cost (cell ops):");
    println!("  n=100 flat: {}", cost::flat_message_cost(100));
    println!("  n=100 bus : {}", cost::bus_message_cost(100));
    println!("  n=10000 flat: {}", cost::flat_message_cost(10_000));
    println!("  n=10000 bus : {}", cost::bus_message_cost(10_000));
    Ok(())
}
