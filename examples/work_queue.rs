//! A distributed work queue: competing consumers over causal delivery.
//!
//! A `QueueAgent` (JMS-queue semantics) on the dispatcher's server
//! round-robins jobs among worker agents spread over two domains. Each
//! worker reports completion back to a collector; the collector checks it
//! never hears about a result before the submission notice that caused it.
//!
//! Run with: `cargo run --example work_queue`

use std::sync::Arc;
use std::time::Duration;

use aaa_middleware::base::{AgentId, ServerId};
use aaa_middleware::mom::pubsub::{publication, subscription, QueueAgent};
use aaa_middleware::mom::{FnAgent, MomBuilder, Notification};
use aaa_middleware::topology::TopologySpec;
use parking_lot::Mutex;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Dispatcher domain {0,1}; worker domain {1,2,3} via router 1.
    let spec = TopologySpec::from_domains(vec![vec![0, 1], vec![1, 2, 3]]);
    let mom = MomBuilder::new(spec).build()?;

    let queue = mom.register_agent(ServerId::new(0), 1, Box::new(QueueAgent::new()))?;

    // Collector on the dispatcher's server: records submissions and
    // completions, asserting causal sanity.
    let log: Arc<Mutex<Vec<String>>> = Default::default();
    let sink = log.clone();
    let collector = mom.register_agent(
        ServerId::new(0),
        2,
        Box::new(FnAgent::new(move |_ctx, _from, note| {
            let mut log = sink.lock();
            if let Some(job) = note.body_str() {
                if note.kind() == "done" {
                    assert!(
                        log.iter().any(|e| e == &format!("submitted {job}")),
                        "completion of {job} before its submission!"
                    );
                }
                log.push(format!(
                    "{} {job}",
                    if note.kind() == "done" {
                        "completed"
                    } else {
                        "submitted"
                    }
                ));
            }
        })),
    )?;

    // Workers on servers 2 and 3: process a job, report to the collector.
    let mut workers = Vec::new();
    for s in [2u16, 3] {
        let worker = mom.register_agent(
            ServerId::new(s),
            1,
            Box::new(FnAgent::new(move |ctx, _from, note| {
                if note.kind() == "job" {
                    ctx.send(collector, Notification::new("done", note.body().clone()));
                }
            })),
        )?;
        mom.send(worker, queue, subscription())?;
        workers.push(worker);
    }
    assert!(mom.quiesce(Duration::from_secs(5)));

    // The dispatcher submits six jobs: notice to the collector first, then
    // the job to the queue (so the notice causally precedes the result).
    let dispatcher = AgentId::new(ServerId::new(0), 9);
    for i in 0..6 {
        let job = format!("job-{i}");
        mom.send(
            dispatcher,
            collector,
            Notification::new("submitted", job.clone()),
        )?;
        mom.send(dispatcher, queue, publication("job", job))?;
    }
    assert!(mom.quiesce(Duration::from_secs(10)));

    let log = log.lock();
    for entry in log.iter() {
        println!("{entry}");
    }
    assert_eq!(log.iter().filter(|e| e.starts_with("completed")).count(), 6);
    assert!(mom.trace()?.check_causality().is_ok());
    println!("\nsix jobs round-robined over two workers; every result followed its submission");
    mom.shutdown();
    Ok(())
}
