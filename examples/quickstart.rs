//! Quickstart: a three-server MOM with causal ping-pong.
//!
//! Run with: `cargo run --example quickstart`

use std::time::Duration;

use aaa_middleware::base::ServerId;
use aaa_middleware::mom::{EchoAgent, FnAgent, MomBuilder, Notification};
use aaa_middleware::topology::TopologySpec;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // One domain of causality with three agent servers.
    let mom = MomBuilder::new(TopologySpec::single_domain(3)).build()?;

    // An echo agent on server 2 (the paper's ping-pong protocol)...
    let echo = mom.register_agent(ServerId::new(2), 1, Box::new(EchoAgent))?;

    // ...and a client agent on server 0 that prints what it receives.
    let client = mom.register_agent(
        ServerId::new(0),
        1,
        Box::new(FnAgent::new(|_ctx, from, note| {
            println!("client <- {from}: {} ({:?})", note.kind(), note.body_str());
        })),
    )?;

    // Send three pings; causal (here: FIFO) order guarantees the pongs
    // come back in order.
    for i in 0..3 {
        mom.send(client, echo, Notification::new("ping", format!("#{i}")))?;
    }
    assert!(mom.quiesce(Duration::from_secs(5)), "bus should go quiet");

    // Every execution of the bus records a causality trace you can check.
    let trace = mom.trace()?;
    println!(
        "trace: {} end-to-end messages, causal order: {}",
        trace.message_count(),
        if trace.check_causality().is_ok() {
            "OK"
        } else {
            "VIOLATED"
        }
    );
    assert!(trace.check_causality().is_ok());

    mom.shutdown();
    Ok(())
}
