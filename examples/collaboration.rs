//! Collaborative work over causal delivery — the paper's matrix-clock
//! motivation ("what A knows about what B knows about C").
//!
//! Three editors on three servers co-edit a shared shopping list. Each
//! edit is broadcast to the other editors; an edit may *depend* on a
//! previously seen edit (you can only strike out an item you know about).
//! Causal delivery guarantees no editor ever sees a strike-out before the
//! item it strikes — without any application-level sequencing.
//!
//! Run with: `cargo run --example collaboration`

use std::sync::Arc;
use std::time::Duration;

use aaa_middleware::base::{AgentId, ServerId};
use aaa_middleware::mom::{Agent, MomBuilder, Notification, ReactionContext};
use aaa_middleware::topology::TopologySpec;
use parking_lot::Mutex;

/// A replica of the shared list: applies `add:<item>` and `strike:<item>`
/// edits, asserting the causal invariant.
struct Replica {
    name: &'static str,
    items: Vec<(String, bool)>,
    log: Arc<Mutex<Vec<String>>>,
}

impl Replica {
    fn apply(&mut self, edit: &str) {
        if let Some(item) = edit.strip_prefix("add:") {
            self.items.push((item.to_owned(), false));
        } else if let Some(item) = edit.strip_prefix("strike:") {
            let entry = self.items.iter_mut().find(|(name, _)| name == item);
            assert!(
                entry.is_some(),
                "{}: strike of '{item}' arrived before its add — causality broken!",
                self.name
            );
            if let Some(entry) = entry {
                entry.1 = true;
            }
        }
        self.log
            .lock()
            .push(format!("{} applied {edit}", self.name));
    }
}

impl Agent for Replica {
    fn react(&mut self, _ctx: &mut ReactionContext<'_>, _from: AgentId, note: &Notification) {
        // Every edit this example sends is UTF-8; skip anything that isn't.
        if let Some(edit) = note.body_str() {
            self.apply(edit);
        }
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Editors in two domains joined by a router: Alice and Bob share an
    // office (domain 0); Carol works remotely (domain 1, via router 1).
    let spec = TopologySpec::from_domains(vec![vec![0, 1], vec![1, 2]]);
    let mom = MomBuilder::new(spec).build()?;
    let log: Arc<Mutex<Vec<String>>> = Default::default();

    let replicas = [
        (ServerId::new(0), "alice"),
        (ServerId::new(1), "bob"),
        (ServerId::new(2), "carol"),
    ];
    let mut agents = Vec::new();
    for (server, name) in replicas {
        agents.push(mom.register_agent(
            server,
            1,
            Box::new(Replica {
                name,
                items: Vec::new(),
                log: log.clone(),
            }),
        )?);
    }
    let broadcast = |from: AgentId, edit: &str| -> Result<(), aaa_middleware::base::Error> {
        for &a in &agents {
            mom.send(from, a, Notification::new("edit", edit.to_owned()))?;
        }
        Ok(())
    };

    // Alice adds two items.
    let alice = AgentId::new(ServerId::new(0), 9);
    broadcast(alice, "add:milk")?;
    broadcast(alice, "add:eggs")?;
    assert!(mom.quiesce(Duration::from_secs(5)));

    // Carol, having seen "milk", strikes it out. The strike causally
    // follows the add (Carol's replica received it before she edited), so
    // Bob and Alice can never apply them in the wrong order.
    let carol = AgentId::new(ServerId::new(2), 9);
    broadcast(carol, "strike:milk")?;
    assert!(mom.quiesce(Duration::from_secs(5)));

    for entry in log.lock().iter() {
        println!("{entry}");
    }
    assert!(mom.trace()?.check_causality().is_ok());
    println!("\nall three replicas converged without seeing a strike before its add");
    mom.shutdown();
    Ok(())
}
