//! Publish/subscribe across domains: a newsroom with regional editions.
//!
//! A wire-service topic lives in the agency's domain; regional newsroom
//! subscribers live in their own domains. An editor publishes a story and
//! then a correction. Causal delivery through the topic guarantees no
//! newsroom can print the correction before the story — and when one
//! newsroom *republishes* a story as its local edition, the correction
//! from the agency still lands in the right order.
//!
//! Run with: `cargo run --example newsroom`

use std::sync::Arc;
use std::time::Duration;

use aaa_middleware::base::{AgentId, ServerId};
use aaa_middleware::mom::pubsub::{publication, subscription, TopicAgent};
use aaa_middleware::mom::{FnAgent, MomBuilder};
use aaa_middleware::topology::TopologySpec;
use parking_lot::Mutex;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Agency domain {0,1}; two regional domains joined by routers 1 and 3.
    let spec = TopologySpec::from_domains(vec![
        vec![0, 1],    // agency
        vec![1, 2, 3], // region A (1 is the agency's router)
        vec![3, 4, 5], // region B
    ]);
    let mom = MomBuilder::new(spec).build()?;

    // The wire-service topic, hosted on the agency server.
    let wire = mom.register_agent(ServerId::new(0), 1, Box::new(TopicAgent::new()))?;

    // Regional newsrooms subscribe and log what they receive.
    let logs: Arc<Mutex<Vec<(u16, String)>>> = Default::default();
    let mut rooms = Vec::new();
    for s in [2u16, 4, 5] {
        let logs = logs.clone();
        let room = mom.register_agent(
            ServerId::new(s),
            1,
            Box::new(FnAgent::new(move |_ctx, _from, note| {
                logs.lock().push((
                    s,
                    format!("{}: {}", note.kind(), note.body_str().unwrap_or("")),
                ));
            })),
        )?;
        mom.send(room, wire, subscription())?;
        rooms.push(room);
    }
    // Let the subscriptions reach the topic before publishing.
    assert!(mom.quiesce(Duration::from_secs(5)));

    // The editor publishes a story, then a correction.
    let editor = AgentId::new(ServerId::new(0), 50);
    mom.send(
        editor,
        wire,
        publication("story", "markets rally on chip news".as_bytes().to_vec()),
    )?;
    mom.send(
        editor,
        wire,
        publication("correction", "rally was 2%, not 20%".as_bytes().to_vec()),
    )?;
    assert!(mom.quiesce(Duration::from_secs(10)));

    let log = logs.lock().clone();
    for (room, entry) in &log {
        println!("newsroom S{room} <- {entry}");
    }
    // Every newsroom got both items, story first.
    for s in [2u16, 4, 5] {
        let mine: Vec<&str> = log
            .iter()
            .filter(|(r, _)| *r == s)
            .map(|(_, e)| e.as_str())
            .collect();
        assert_eq!(mine.len(), 2, "newsroom S{s} missed an item");
        assert!(
            mine.first().is_some_and(|e| e.starts_with("story:")),
            "S{s} printed out of order!"
        );
        assert!(mine.get(1).is_some_and(|e| e.starts_with("correction:")));
    }
    assert!(mom.trace()?.check_causality().is_ok());
    println!("every newsroom printed the story before its correction — across 3 domains");
    mom.shutdown();
    Ok(())
}
