//! Crash and recovery of an agent server under traffic.
//!
//! The AAA MOM is fault-tolerant: agents are persistent and reactions are
//! atomic (§3). This example crashes a server between two batches of
//! messages, recovers it from its stable store, and shows that (a) the
//! agent's state survived, (b) the messages sent while it was down are
//! redelivered by the link layer's retransmission, exactly once, and (c)
//! the causality trace of the whole run is consistent.
//!
//! Run with: `cargo run --example failure_recovery`

use std::sync::Arc;
use std::time::Duration;

use aaa_middleware::base::{AgentId, ServerId};
use aaa_middleware::mom::{Agent, MomBuilder, Notification, ReactionContext, RuntimeConfig};
use aaa_middleware::topology::TopologySpec;
use parking_lot::Mutex;

/// A persistent counter agent: its whole state is one integer.
struct Counter {
    observed: Arc<Mutex<Vec<u32>>>,
    count: u32,
}

impl Agent for Counter {
    fn react(&mut self, _ctx: &mut ReactionContext<'_>, _from: AgentId, _note: &Notification) {
        self.count += 1;
        self.observed.lock().push(self.count);
    }

    fn snapshot(&self) -> Vec<u8> {
        self.count.to_le_bytes().to_vec()
    }

    fn restore(&mut self, image: &[u8]) {
        // A malformed image restores to zero rather than aborting recovery.
        self.count = <[u8; 4]>::try_from(image)
            .map(u32::from_le_bytes)
            .unwrap_or(0);
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let observed: Arc<Mutex<Vec<u32>>> = Default::default();
    let mom = MomBuilder::new(TopologySpec::single_domain(2))
        // persistence on: enable the transactional image
        .runtime(RuntimeConfig::threaded().persist(true).record_trace(true))
        .build()?;

    let counter_server = ServerId::new(1);
    let counter = mom.register_agent(
        counter_server,
        1,
        Box::new(Counter {
            observed: observed.clone(),
            count: 0,
        }),
    )?;
    let client = AgentId::new(ServerId::new(0), 9);

    // Batch 1: delivered normally.
    for _ in 0..3 {
        mom.send(client, counter, Notification::signal("tick"))?;
    }
    assert!(mom.quiesce(Duration::from_secs(5)));
    println!("after batch 1: counter = {:?}", observed.lock().last());

    // Crash the counter's server. Its memory is gone; its store survives.
    mom.crash(counter_server)?;
    println!("server {counter_server} crashed");

    // Batch 2: sent into the void — server 0 keeps retransmitting.
    for _ in 0..3 {
        mom.send(client, counter, Notification::signal("tick"))?;
    }
    std::thread::sleep(Duration::from_millis(100));

    // Recover from the persistent image (fresh agent instance, restored
    // state).
    mom.recover(
        counter_server,
        vec![(
            1,
            Box::new(Counter {
                observed: observed.clone(),
                count: 0,
            }) as Box<dyn Agent>,
        )],
    )?;
    println!("server {counter_server} recovered from its journal");

    assert!(
        mom.quiesce(Duration::from_secs(10)),
        "retransmitted messages should drain after recovery"
    );

    let seen = observed.lock().clone();
    println!("counter history: {seen:?}");
    // Exactly-once despite the crash: 6 ticks total, no gap, no repeat.
    assert_eq!(seen.last(), Some(&6));
    assert!(
        seen.iter()
            .zip(seen.iter().skip(1))
            .all(|(a, b)| *b == *a + 1),
        "no gaps or duplicates"
    );
    assert!(mom.trace()?.check_causality().is_ok());
    println!("exactly-once delivery and causal order preserved across the crash");
    mom.shutdown();
    Ok(())
}
