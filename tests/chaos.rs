//! Chaos soak: seeded deterministic fault plans against the full stack.
//!
//! Four legs:
//!
//! 1. A randomized **simulator soak** — 24 derived fault plans covering
//!    loss, duplication, delay/reorder, partitions and router crashes,
//!    across all four stamp modes and both batching policies. Every run must
//!    deliver exactly once, in causal order, with nothing left postponed.
//!    A failing seed prints a one-line repro (`RANDOM_SEED=<seed> …`).
//! 2. A **sabotage leg** — the same harness with retransmission disabled
//!    must *fail*, proving the checks actually detect loss.
//! 3. A **threaded-runtime leg** — live `FaultTransport` partition between
//!    two servers, the failure detector marks the peer down
//!    (`aaa_net_peer_state`), the partition heals, the link self-heals and
//!    the detector records the recovery.
//! 4. An **evented-runtime matrix** — the same 24-seed derivation against
//!    the live sharded event-loop runtime (`RuntimeKind::Evented`), with
//!    `FaultTransport`-wrapped in-memory endpoints, walking all four stamp
//!    modes and 1–3 shards. Exactly-once, causal order, clean quiesce and
//!    a graceful drain on every seed.

use std::sync::Arc;
use std::time::Duration;

use aaa_middleware::base::{AgentId, ServerId, VDuration, VTime};
use aaa_middleware::chaos::{ChaosHandle, FaultPlan, FaultStats, FaultTransport, LinkFaults};
use aaa_middleware::mom::{
    Agent, BatchPolicy, ClockConfig, EchoAgent, FnAgent, MomBuilder, NetConfig, Notification,
    RuntimeConfig, ServerConfig, StampMode, Transport,
};
use aaa_middleware::net::MemoryNetwork;
use aaa_middleware::obs::Registry;
use aaa_middleware::sim::{CostModel, Simulation};
use aaa_middleware::topology::TopologySpec;
use aaa_middleware::trace::TraceRecorder;
use parking_lot::Mutex;

fn aid(s: u16, l: u32) -> AgentId {
    AgentId::new(ServerId::new(s), l)
}

/// Two leaf domains joined by router server 2.
const SERVERS: u16 = 5;
const ROUTER: u16 = 2;
const SENDS: usize = 30;

fn spec() -> TopologySpec {
    TopologySpec::from_domains(vec![vec![0, 1, 2], vec![2, 3, 4]])
}

// ---- tiny deterministic generator for deriving plan parameters --------

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn unit(state: &mut u64) -> f64 {
    (splitmix(state) >> 11) as f64 / (1u64 << 53) as f64
}

struct Case {
    plan: FaultPlan,
    stamp: StampMode,
    batching: bool,
}

/// Derives a full fault plan from one seed. `seed % 4` picks the dominant
/// fault shape (loss / duplication / delay / partition) so a small seed
/// range provably covers all four; every fifth seed also crashes the
/// router mid-run (schedule carried in the plan, driven by the harness).
fn derive_case(seed: u64) -> Case {
    let mut st = seed;
    let shape = seed % 4;
    let faults = LinkFaults {
        drop: if shape == 0 {
            0.15 + 0.10 * unit(&mut st)
        } else {
            0.08 * unit(&mut st)
        },
        duplicate: if shape == 1 {
            0.10 + 0.08 * unit(&mut st)
        } else {
            0.04 * unit(&mut st)
        },
        delay: if shape == 2 {
            0.10 + 0.08 * unit(&mut st)
        } else {
            0.04 * unit(&mut st)
        },
    };
    let mut plan = FaultPlan::new(seed).faults(faults);
    if shape == 3 {
        // Cut one leaf off from the router for a while; the window closes
        // well before quiesce, so retransmission must repair the gap.
        let from = 5 + splitmix(&mut st) % 20;
        plan = plan.partition((ServerId::new(0), ServerId::new(ROUTER)), from, from + 80);
    }
    if seed.is_multiple_of(5) {
        plan = plan.crash(ServerId::new(ROUTER), 5, Some(120));
    }
    Case {
        plan,
        // `seed / 2` walks the mode list half as fast as the fault shape,
        // so 24 seeds cover every (shape, mode) pairing at least once.
        stamp: StampMode::ALL[((seed / 2) % 4) as usize],
        batching: (seed / 4).is_multiple_of(2),
    }
}

/// Runs one seeded chaos case through the simulator and verifies it end
/// to end. Returns the injector's fault statistics and the number of
/// crash discards on success; the error string carries a one-line repro.
fn run_case(seed: u64, sabotage: bool) -> Result<(FaultStats, u64), String> {
    let repro = format!("repro: RANDOM_SEED={seed} cargo test --release --test chaos");
    let fail = |what: String| format!("seed {seed}: {what}; {repro}");
    let case = derive_case(seed);
    let config = ServerConfig {
        stamp_mode: case.stamp,
        // The sabotage leg disables retransmission outright: the harness
        // must notice the resulting loss.
        rto: if sabotage {
            VDuration::from_millis(u64::MAX / 2_000)
        } else {
            VDuration::from_millis(40)
        },
        persist: true,
        batch: if case.batching {
            BatchPolicy::default()
        } else {
            BatchPolicy::disabled()
        },
        ..ServerConfig::default()
    };
    let topo = spec().validate().map_err(|e| fail(e.to_string()))?;
    let mut sim = Simulation::with_fault_plan(
        topo,
        config,
        CostModel::paper_calibrated(),
        case.plan.clone(),
    )
    .map_err(|e| fail(e.to_string()))?;
    let recorder = TraceRecorder::new();
    sim.record_into(&recorder);
    let registry = Registry::new();
    sim.attach_registry(&registry);
    for s in 0..SERVERS {
        sim.register_agent(ServerId::new(s), 1, Box::new(EchoAgent));
    }

    // Workload: cross- and intra-domain singles; the batching legs front a
    // few multi-message transactions (stamped and flushed together).
    let mut sent = 0usize;
    if case.batching {
        for b in 0..3u16 {
            let batch: Vec<_> = (0..4u16)
                .map(|i| {
                    (
                        aid((b + i + 2) % SERVERS, 1),
                        Notification::new("m", format!("b{b}-{i}")),
                    )
                })
                .collect();
            sent += batch.len();
            sim.client_send_batch(aid(b % SERVERS, 9), batch);
        }
    }
    while sent < SENDS {
        let from = (sent as u16) % SERVERS;
        let to = (sent as u16 + 2) % SERVERS;
        sim.client_send(
            aid(from, 9),
            aid(to, 1),
            Notification::new("m", format!("s{sent}")),
        );
        sent += 1;
    }

    // Crash schedule: carried by the plan, driven by the harness (the
    // event loop cannot know which agents to reinstall).
    for crash in case.plan.crashes.clone() {
        sim.run_until(VTime::ZERO + VDuration::from_millis(crash.at_tick))
            .map_err(|e| fail(e.to_string()))?;
        sim.crash(crash.server);
        if let Some(recover_at) = crash.recover_at {
            sim.run_until(VTime::ZERO + VDuration::from_millis(recover_at))
                .map_err(|e| fail(e.to_string()))?;
            sim.recover(
                crash.server,
                vec![(1, Box::new(EchoAgent) as Box<dyn Agent>)],
            )
            .map_err(|e| fail(e.to_string()))?;
        }
    }
    if sabotage {
        // Without retransmission the run never becomes quiet on its own
        // merits; bound it and inspect what got through.
        sim.run_until(VTime::ZERO + VDuration::from_millis(60_000))
            .map_err(|e| fail(e.to_string()))?;
    } else {
        sim.run_until_quiet().map_err(|e| fail(e.to_string()))?;
    }

    // Every send is echoed: exactly-once means exactly 2x deliveries.
    let expected = sent * 2;
    let trace = recorder.snapshot().map_err(|e| fail(format!("{e:?}")))?;
    if trace.message_count() != expected {
        return Err(fail(format!(
            "delivered {} of {expected} messages",
            trace.message_count()
        )));
    }
    trace
        .check_causality()
        .map_err(|v| fail(format!("global causality violated: {v:?}")))?;
    for d in sim.topology().domains() {
        trace
            .check_causality_in(d.members())
            .map_err(|v| fail(format!("domain {} not locally causal: {v:?}", d.id())))?;
    }
    let postponed = registry.snapshot().sum_gauge("aaa_channel_postponed");
    if postponed != 0 {
        return Err(fail(format!("{postponed} messages left postponed")));
    }
    Ok((sim.fault_stats(), sim.dropped_by_crash()))
}

#[test]
fn chaos_soak_24_seeds_cover_all_fault_shapes() {
    let mut agg = FaultStats::default();
    let mut crash_discards = 0u64;
    for seed in 0..24 {
        match run_case(seed, false) {
            Ok((stats, crashed)) => {
                agg.decided += stats.decided;
                agg.dropped += stats.dropped;
                agg.duplicated += stats.duplicated;
                agg.delayed += stats.delayed;
                agg.blocked += stats.blocked;
                crash_discards += crashed;
            }
            Err(msg) => panic!("{msg}"),
        }
    }
    // The soak is only meaningful if every fault shape actually fired.
    assert!(agg.dropped > 0, "no datagram was ever dropped: {agg:?}");
    assert!(
        agg.duplicated > 0,
        "no datagram was ever duplicated: {agg:?}"
    );
    assert!(agg.delayed > 0, "no datagram was ever delayed: {agg:?}");
    assert!(
        agg.blocked > 0,
        "no partition ever blocked traffic: {agg:?}"
    );
    assert!(
        crash_discards > 0,
        "no datagram ever hit a crashed router: {agg:?}"
    );
}

/// One live chaos run on the sharded evented runtime. Faults are injected
/// by `FaultTransport` under the real shard pool (readiness notifiers,
/// work-stealing, timer wakeups); the derivation mirrors [`derive_case`]:
/// `seed % 4` picks the dominant fault shape — shape 3 is a live
/// mid-workload partition between a leaf and the router — while `seed / 2`
/// walks the stamp modes and `seed % 3` varies the shard count.
fn run_evented_case(seed: u64) -> Result<FaultStats, String> {
    let repro = format!("repro: seed {seed} in chaos_matrix_24_seeds_on_evented_runtime");
    let fail = |what: String| format!("seed {seed}: {what}; {repro}");
    let mut st = seed;
    let shape = seed % 4;
    let faults = LinkFaults {
        drop: if shape == 0 {
            0.15 + 0.10 * unit(&mut st)
        } else {
            0.08 * unit(&mut st)
        },
        duplicate: if shape == 1 {
            0.10 + 0.08 * unit(&mut st)
        } else {
            0.04 * unit(&mut st)
        },
        delay: if shape == 2 {
            0.10 + 0.08 * unit(&mut st)
        } else {
            0.04 * unit(&mut st)
        },
    };
    let handle =
        ChaosHandle::new(FaultPlan::new(seed).faults(faults)).map_err(|e| fail(e.to_string()))?;
    let n = SERVERS as usize;
    let transports: Vec<Box<dyn Transport>> = MemoryNetwork::create(n)
        .into_iter()
        .map(|ep| Box::new(FaultTransport::new(ep, &handle, n)) as Box<dyn Transport>)
        .collect();
    let shards = 1 + (seed % 3) as usize;
    let mom = MomBuilder::new(spec())
        .transports(transports)
        .clock(ClockConfig::mode(StampMode::ALL[((seed / 2) % 4) as usize]))
        .runtime(RuntimeConfig::evented(shards).metrics(true))
        .net(NetConfig::memory().rto(VDuration::from_millis(20)))
        .build()
        .map_err(|e| fail(e.to_string()))?;
    for s in 0..SERVERS {
        mom.register_agent(ServerId::new(s), 1, Box::new(EchoAgent))
            .map_err(|e| fail(e.to_string()))?;
    }

    if shape == 3 {
        // Live partition: cut a leaf off from the router for the first
        // half of the workload; retransmission repairs the gap after the
        // heal.
        handle.partition_now(ServerId::new(0), ServerId::new(ROUTER));
    }
    for i in 0..SENDS {
        let from = (i as u16) % SERVERS;
        let to = (i as u16 + 2) % SERVERS;
        mom.send(
            aid(from, 9),
            aid(to, 1),
            Notification::new("m", format!("s{i}")),
        )
        .map_err(|e| fail(e.to_string()))?;
    }
    if shape == 3 {
        std::thread::sleep(Duration::from_millis(30));
        handle.heal_all();
    }

    if !mom.quiesce(Duration::from_secs(30)) {
        return Err(fail("never quiesced".to_owned()));
    }
    let expected = SENDS * 2;
    let trace = mom.trace().map_err(|e| fail(e.to_string()))?;
    if trace.message_count() != expected {
        return Err(fail(format!(
            "delivered {} of {expected} messages",
            trace.message_count()
        )));
    }
    trace
        .check_causality()
        .map_err(|v| fail(format!("global causality violated: {v:?}")))?;
    let postponed = mom.metrics().sum_gauge("aaa_channel_postponed");
    if postponed != 0 {
        return Err(fail(format!("{postponed} messages left postponed")));
    }
    if mom.in_flight() != 0 {
        return Err(fail(format!(
            "{} messages still in flight",
            mom.in_flight()
        )));
    }
    if !mom.shutdown_within(Duration::from_secs(10)) {
        return Err(fail("graceful shutdown did not drain in time".to_owned()));
    }
    Ok(handle.stats())
}

#[test]
fn chaos_matrix_24_seeds_on_evented_runtime() {
    let mut agg = FaultStats::default();
    for seed in 0..24 {
        match run_evented_case(seed) {
            Ok(stats) => {
                agg.decided += stats.decided;
                agg.dropped += stats.dropped;
                agg.duplicated += stats.duplicated;
                agg.delayed += stats.delayed;
                agg.blocked += stats.blocked;
            }
            Err(msg) => panic!("{msg}"),
        }
    }
    // The matrix is only meaningful if every live fault shape fired.
    assert!(agg.dropped > 0, "no datagram was ever dropped: {agg:?}");
    assert!(
        agg.duplicated > 0,
        "no datagram was ever duplicated: {agg:?}"
    );
    assert!(agg.delayed > 0, "no datagram was ever delayed: {agg:?}");
    assert!(
        agg.blocked > 0,
        "no partition ever blocked traffic: {agg:?}"
    );
}

#[test]
fn chaos_random_seed_from_environment() {
    // CI's randomized leg: RANDOM_SEED=$GITHUB_RUN_ID explores a fresh
    // plan every run; locally this replays a failing seed one-liner.
    let seed = std::env::var("RANDOM_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(4242);
    if let Err(msg) = run_case(seed, false) {
        panic!("{msg}");
    }
}

#[test]
fn sabotaged_retransmission_is_caught_by_the_harness() {
    // Seed 0 is the loss-heavy shape plus a router crash; with the RTO
    // effectively infinite nothing repairs the damage, and the harness
    // MUST report it (with the repro line attached).
    let msg = run_case(0, true)
        .map(|_| ())
        .expect_err("disabled retransmission must make the chaos harness fail");
    assert!(
        msg.contains("RANDOM_SEED=0"),
        "failure must carry a one-line repro, got: {msg}"
    );
}

#[test]
fn fault_transport_partition_heals_on_threaded_runtime() {
    let n = 3usize;
    let handle = ChaosHandle::new(FaultPlan::new(7)).unwrap();
    let transports: Vec<Box<dyn Transport>> = MemoryNetwork::create(n)
        .into_iter()
        .map(|ep| Box::new(FaultTransport::new(ep, &handle, n)) as Box<dyn Transport>)
        .collect();
    let seen: Arc<Mutex<Vec<String>>> = Default::default();
    let seen2 = seen.clone();
    let mom = MomBuilder::new(TopologySpec::single_domain(n as u16))
        .transports(transports)
        .runtime(RuntimeConfig::threaded().metrics(true))
        .net(NetConfig::memory().rto(VDuration::from_millis(20)))
        .build()
        .unwrap();
    mom.register_agent(
        ServerId::new(1),
        1,
        Box::new(FnAgent::new(move |_ctx, _from, note| {
            seen2.lock().push(note.body_str().unwrap_or("").to_owned());
        })),
    )
    .unwrap();

    let all_up = (2 * n * n) as i64; // every (server, peer) gauge at Up=2

    // Phase 1: a healthy round trip.
    mom.send(aid(0, 9), aid(1, 1), Notification::new("m", "pre"))
        .unwrap();
    assert!(mom.quiesce(Duration::from_secs(5)));
    assert_eq!(mom.metrics().sum_gauge("aaa_net_peer_state"), all_up);

    // Phase 2: partition 0 <-> 1 and keep sending into the cut.
    handle.partition_now(ServerId::new(0), ServerId::new(1));
    for i in 0..5 {
        mom.send(
            aid(0, 9),
            aid(1, 1),
            Notification::new("m", format!("part-{i}")),
        )
        .unwrap();
    }
    // The failure detector must take the peer out of Up (Suspect after the
    // first failed attempt, Down after three).
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while mom.metrics().sum_gauge("aaa_net_peer_state") >= all_up {
        assert!(
            std::time::Instant::now() < deadline,
            "peer_state never left Up during the partition"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(handle.stats().blocked > 0, "partition never blocked a send");

    // Phase 3: heal; the link layer retransmits, the detector recovers.
    handle.heal_all();
    assert!(
        mom.quiesce(Duration::from_secs(10)),
        "healed partition must drain"
    );
    assert_eq!(mom.in_flight(), 0);
    mom.send(aid(0, 9), aid(1, 1), Notification::new("m", "post"))
        .unwrap();
    assert!(mom.quiesce(Duration::from_secs(5)));

    let got = seen.lock().clone();
    assert_eq!(
        got,
        vec!["pre", "part-0", "part-1", "part-2", "part-3", "part-4", "post"],
        "exactly-once, in-order delivery across the partition"
    );
    let snap = mom.metrics();
    assert_eq!(
        snap.sum_gauge("aaa_net_peer_state"),
        all_up,
        "every peer back to Up after the heal"
    );
    assert!(
        snap.sum_counter("aaa_net_peer_recoveries_total") > 0,
        "the down->up transition must be recorded"
    );
    assert!(mom.trace().unwrap().check_causality().is_ok());
    mom.shutdown();
}
