//! Crash-recovery stress: repeated crash/recover cycles of a router under
//! cross-domain traffic, with exactly-once delivery checked per message.

use std::sync::Arc;
use std::time::Duration;

use aaa_middleware::base::{AgentId, ServerId};
use aaa_middleware::mom::{
    Agent, FnAgent, MomBuilder, Notification, ReactionContext, RuntimeConfig,
};
use aaa_middleware::topology::TopologySpec;
use parking_lot::Mutex;

fn aid(s: u16, l: u32) -> AgentId {
    AgentId::new(ServerId::new(s), l)
}

/// A persistent set-collecting agent: remembers every body it has seen.
struct Collector {
    seen: Arc<Mutex<Vec<String>>>,
    mine: Vec<String>,
}

impl Collector {
    fn boxed(seen: Arc<Mutex<Vec<String>>>) -> Box<dyn Agent> {
        Box::new(Collector {
            seen,
            mine: Vec::new(),
        })
    }
}

impl Agent for Collector {
    fn react(&mut self, _ctx: &mut ReactionContext<'_>, _from: AgentId, note: &Notification) {
        let body = note.body_str().unwrap_or("").to_owned();
        self.mine.push(body);
        *self.seen.lock() = self.mine.clone();
    }

    fn snapshot(&self) -> Vec<u8> {
        self.mine.join("\n").into_bytes()
    }

    fn restore(&mut self, image: &[u8]) {
        let text = String::from_utf8_lossy(image);
        self.mine = if text.is_empty() {
            Vec::new()
        } else {
            text.split('\n').map(str::to_owned).collect()
        };
        *self.seen.lock() = self.mine.clone();
    }
}

#[test]
fn repeated_crashes_of_destination_server() {
    let seen: Arc<Mutex<Vec<String>>> = Default::default();
    let mom = MomBuilder::new(TopologySpec::single_domain(2))
        .runtime(RuntimeConfig::threaded().persist(true))
        .build()
        .unwrap();
    let dest = ServerId::new(1);
    mom.register_agent(dest, 1, Collector::boxed(seen.clone()))
        .unwrap();

    let mut expected = Vec::new();
    for cycle in 0..4 {
        // Send a message, crash, send another (lost until recovery),
        // recover, send a third.
        for phase in 0..3 {
            let body = format!("c{cycle}p{phase}");
            expected.push(body.clone());
            mom.send(aid(0, 9), aid(1, 1), Notification::new("m", body))
                .unwrap();
            if phase == 0 {
                assert!(mom.quiesce(Duration::from_secs(10)));
                mom.crash(dest).unwrap();
            }
            if phase == 1 {
                std::thread::sleep(Duration::from_millis(30));
                mom.recover(dest, vec![(1, Collector::boxed(seen.clone()))])
                    .unwrap();
            }
        }
        assert!(
            mom.quiesce(Duration::from_secs(20)),
            "cycle {cycle}: did not quiesce"
        );
    }

    let seen = seen.lock().clone();
    assert_eq!(
        seen, expected,
        "exactly-once, in-order delivery across crashes"
    );
    assert!(mom.trace().unwrap().check_causality().is_ok());
    mom.shutdown();
}

#[test]
fn router_crash_heals_cross_domain_route() {
    // Two leaf domains joined by router server 2 (bus of 2x3, backbone
    // last-server = ... use explicit domains: {0,1,2} and {2,3,4}).
    let seen: Arc<Mutex<Vec<String>>> = Default::default();
    let spec = TopologySpec::from_domains(vec![vec![0, 1, 2], vec![2, 3, 4]]);
    let mom = MomBuilder::new(spec)
        .runtime(RuntimeConfig::threaded().persist(true))
        .build()
        .unwrap();
    let router = ServerId::new(2);
    assert!(mom.topology().is_router(router));
    mom.register_agent(ServerId::new(4), 1, Collector::boxed(seen.clone()))
        .unwrap();

    // Phase 1: normal cross-domain delivery.
    mom.send(aid(0, 9), aid(4, 1), Notification::new("m", "before"))
        .unwrap();
    assert!(mom.quiesce(Duration::from_secs(10)));

    // Phase 2: crash the router; messages queue at the source.
    mom.crash(router).unwrap();
    for i in 0..3 {
        mom.send(
            aid(0, 9),
            aid(4, 1),
            Notification::new("m", format!("during-{i}")),
        )
        .unwrap();
    }
    std::thread::sleep(Duration::from_millis(50));
    assert_eq!(
        seen.lock().len(),
        1,
        "router down: nothing should get through"
    );

    // Phase 3: recover the router (it has no agents of its own).
    mom.recover(router, Vec::new()).unwrap();
    assert!(mom.quiesce(Duration::from_secs(20)), "route should heal");
    mom.send(aid(0, 9), aid(4, 1), Notification::new("m", "after"))
        .unwrap();
    assert!(mom.quiesce(Duration::from_secs(10)));

    let seen = seen.lock().clone();
    assert_eq!(
        seen,
        vec!["before", "during-0", "during-1", "during-2", "after"],
        "no loss, no duplication, order preserved through the router crash"
    );
    assert!(mom.trace().unwrap().check_causality().is_ok());
    mom.shutdown();
}

#[test]
fn router_crash_mid_batch_cross_domain() {
    // A cross-domain *batch* is in flight as one coalesced multi-frame wire
    // packet when the router crashes. The link layer retransmits the whole
    // packet after recovery; nothing is lost, duplicated or reordered, and
    // no frame of the batch is delivered twice even though the packet
    // boundary (not the message boundary) is the retransmission unit.
    let seen: Arc<Mutex<Vec<String>>> = Default::default();
    let spec = TopologySpec::from_domains(vec![vec![0, 1, 2], vec![2, 3, 4]]);
    let mom = MomBuilder::new(spec)
        .runtime(RuntimeConfig::threaded().persist(true))
        .build()
        .unwrap();
    let router = ServerId::new(2);
    assert!(mom.topology().is_router(router));
    mom.register_agent(ServerId::new(4), 1, Collector::boxed(seen.clone()))
        .unwrap();

    // Warm the route so link state exists on both hops.
    mom.send(aid(0, 9), aid(4, 1), Notification::new("m", "warm"))
        .unwrap();
    assert!(mom.quiesce(Duration::from_secs(10)));

    for round in 0..3 {
        // Crash the router, then hand the source a whole batch while the
        // route is down: the batch is stamped and flushed as one packet
        // that cannot get past the dead router.
        mom.crash(router).unwrap();
        let batch: Vec<_> = (0..8)
            .map(|i| (aid(4, 1), Notification::new("m", format!("r{round}b{i}"))))
            .collect();
        mom.send_batch(aid(0, 9), batch, aaa_middleware::mom::SendOptions::new())
            .unwrap();
        std::thread::sleep(Duration::from_millis(40));
        mom.recover(router, Vec::new()).unwrap();
        assert!(
            mom.quiesce(Duration::from_secs(20)),
            "round {round}: batch should heal through the recovered router"
        );
    }

    let got = seen.lock().clone();
    let mut expected = vec!["warm".to_owned()];
    for round in 0..3 {
        for i in 0..8 {
            expected.push(format!("r{round}b{i}"));
        }
    }
    assert_eq!(
        got, expected,
        "exactly-once, in-order delivery of batches through router crashes"
    );
    assert!(mom.trace().unwrap().check_causality().is_ok());
    mom.shutdown();
}

#[test]
fn source_crash_preserves_queued_outbound() {
    // Crash the *source* after it accepted (and persisted) sends whose
    // frames may not have been acked yet; on recovery the link layer
    // retransmits from the journal.
    let seen: Arc<Mutex<Vec<String>>> = Default::default();
    let mom = MomBuilder::new(TopologySpec::single_domain(2))
        .runtime(RuntimeConfig::threaded().persist(true))
        .build()
        .unwrap();
    let source = ServerId::new(0);
    mom.register_agent(ServerId::new(1), 1, Collector::boxed(seen.clone()))
        .unwrap();

    for i in 0..5 {
        mom.send(aid(0, 9), aid(1, 1), Notification::new("m", format!("{i}")))
            .unwrap();
    }
    // Crash immediately: some frames may be unacked.
    mom.crash(source).unwrap();
    std::thread::sleep(Duration::from_millis(30));
    mom.recover(source, Vec::new()).unwrap();
    assert!(mom.quiesce(Duration::from_secs(20)));

    let seen = seen.lock().clone();
    assert_eq!(
        seen,
        vec!["0", "1", "2", "3", "4"],
        "journaled sends survive"
    );
    mom.shutdown();
}

#[test]
fn dead_letters_are_counted_not_fatal() {
    let mom = MomBuilder::new(TopologySpec::single_domain(2))
        .build()
        .unwrap();
    // No agent registered at the destination.
    mom.send(aid(0, 9), aid(1, 42), Notification::signal("void"))
        .unwrap();
    assert!(mom.quiesce(Duration::from_secs(5)));
    // The message was delivered (then dropped by the engine); nothing hangs.
    let _ = mom.register_agent(ServerId::new(1), 1, Box::new(FnAgent::new(|_, _, _| {})));
    mom.shutdown();
}
