//! Tier-1 gate: exhaustive model check of the evented runtime's slot
//! wakeup protocol.
//!
//! `aaa_audit::interleave` enumerates **every** interleaving of notifier,
//! command, shutdown, timer and worker actions over the `Slot`
//! notify/step/requeue protocol (DESIGN.md §15 has the proof sketch) and
//! asserts, on each reachable state:
//!
//! - **no lost wakeup** — a quiescent state never strands deposited work;
//! - **no double step** — at most one worker ever holds a slot's step lock;
//! - **no step-after-dead** — a shut-down slot is never driven again.
//!
//! `AAA_MODEL_DEPTH` scales the workload: unset/0/1 is the PR-CI shape
//! (exhaustive in well under a second), 2 is the deep main-branch shape,
//! 3+ deeper still. The `sabotage_*` tests are the model's own acceptance
//! criteria: re-introducing either of the two races the protocol guards
//! against (dropping the `scheduled` reset; skipping the dead re-check
//! under the lock) must make the check fail with a concrete trace.

use aaa_audit::interleave::{explore, Options, SlotConfig, SlotModel};

fn depth_level() -> u8 {
    std::env::var("AAA_MODEL_DEPTH")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0)
}

#[test]
fn slot_protocol_has_no_lost_wakeups_at_configured_depth() {
    let level = depth_level();
    let m = SlotModel {
        cfg: SlotConfig::at_depth(level),
    };
    match explore(&m, Options::default()) {
        Ok(e) => {
            assert!(
                !e.truncated,
                "exploration truncated at depth level {level} — raise max_depth; \
                 an exhaustiveness claim needs the full reachable set"
            );
            assert!(
                e.states > 1_000,
                "implausibly small state space ({}) — did the model lose actions?",
                e.states
            );
        }
        Err(v) => panic!("slot protocol violation at depth level {level}:\n{v}"),
    }
}

#[test]
fn sabotage_dropping_scheduled_reset_fails_the_check() {
    // `run_ready_server` clears `scheduled` *before* draining so a
    // notify racing the drain re-queues the slot. Drop that reset and a
    // datagram deposited mid-step is stranded forever.
    let mut cfg = SlotConfig::ci();
    cfg.clear_scheduled_on_step = false;
    cfg.shutdown = false; // shutdown would mask the strand by killing the slot
    cfg.commands = 0;
    let v = explore(&SlotModel { cfg }, Options::default())
        .expect_err("model check must catch the dropped scheduled reset");
    assert!(
        v.message.contains("lost wakeup"),
        "expected a lost-wakeup verdict, got: {v}"
    );
    assert!(!v.trace.is_empty(), "violation must carry a witness trace");
}

#[test]
fn sabotage_skipping_dead_recheck_fails_the_check() {
    // The race fixed in `run_ready_server`: a worker passes the pre-lock
    // dead check, loses the lock to a shutdown, then wins `try_lock` and
    // drives the dead slot. The re-check under the guard closes it.
    let mut cfg = SlotConfig::ci();
    cfg.recheck_dead_under_lock = false;
    let v = explore(&SlotModel { cfg }, Options::default())
        .expect_err("model check must catch the missing dead re-check");
    assert!(
        v.message.contains("dead"),
        "expected a step-after-dead verdict, got: {v}"
    );
    assert!(!v.trace.is_empty(), "violation must carry a witness trace");
}
