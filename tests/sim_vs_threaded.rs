//! Cross-runtime consistency: the discrete-event simulator, the threaded
//! runtime and the sharded evented runtime all drive the *same* sans-IO
//! cores; the same workload must produce the same end-to-end message set
//! and causally consistent traces in all three — across both stamp-mode
//! families (the full-matrix family and the bounded-space reduced
//! family).

mod common;

use std::time::Duration;

use aaa_middleware::base::{AgentId, ServerId};
use aaa_middleware::mom::{
    ClockConfig, EchoAgent, MomBuilder, Notification, RuntimeConfig, ServerConfig, StampMode,
};
use aaa_middleware::sim::{CostModel, Simulation};
use aaa_middleware::trace::TraceRecorder;

fn aid(s: u16, l: u32) -> AgentId {
    AgentId::new(ServerId::new(s), l)
}

fn run_sim(seed: u64, mode: StampMode) -> (usize, bool) {
    let spec = common::random_acyclic_spec(seed, 3, 2, 4);
    let n = spec.server_count() as u16;
    let topo = spec.validate().unwrap();
    let mut sim = Simulation::new(
        topo,
        ServerConfig {
            stamp_mode: mode,
            ..ServerConfig::default()
        },
        CostModel::paper_calibrated(),
    )
    .unwrap();
    let recorder = TraceRecorder::new();
    sim.record_into(&recorder);
    for s in 0..n {
        sim.register_agent(ServerId::new(s), 1, Box::new(EchoAgent));
    }
    for (from, to) in common::random_pairs(seed + 5, n, 40) {
        sim.client_send(aid(from, 77), aid(to, 1), Notification::signal("m"));
    }
    sim.run_until_quiet().unwrap();
    let trace = recorder.snapshot().unwrap();
    (trace.message_count(), trace.check_causality().is_ok())
}

fn run_mom(seed: u64, mode: StampMode, runtime: RuntimeConfig) -> (usize, bool) {
    let spec = common::random_acyclic_spec(seed, 3, 2, 4);
    let n = spec.server_count() as u16;
    let mom = MomBuilder::new(spec)
        .clock(ClockConfig::mode(mode))
        .runtime(runtime)
        .build()
        .unwrap();
    for s in 0..n {
        mom.register_agent(ServerId::new(s), 1, Box::new(EchoAgent))
            .unwrap();
    }
    for (from, to) in common::random_pairs(seed + 5, n, 40) {
        mom.send(aid(from, 77), aid(to, 1), Notification::signal("m"))
            .unwrap();
    }
    assert!(mom.quiesce(Duration::from_secs(30)));
    let trace = mom.trace().unwrap();
    let out = (trace.message_count(), trace.check_causality().is_ok());
    mom.shutdown();
    out
}

/// Both stamp-mode families, three execution substrates, same workload:
/// identical message sets, causal traces everywhere.
#[test]
fn same_workload_same_outcome_across_all_runtimes() {
    for mode in [StampMode::Updates, StampMode::Reduced] {
        for seed in 0..3u64 {
            let (sim_msgs, sim_ok) = run_sim(seed, mode);
            let (thr_msgs, thr_ok) = run_mom(seed, mode, RuntimeConfig::threaded());
            let (evt_msgs, evt_ok) = run_mom(seed, mode, RuntimeConfig::evented(2));
            assert_eq!(
                sim_msgs, thr_msgs,
                "seed {seed} {mode:?}: sim vs threaded message counts differ"
            );
            assert_eq!(
                sim_msgs, evt_msgs,
                "seed {seed} {mode:?}: sim vs evented message counts differ"
            );
            assert!(sim_ok, "seed {seed} {mode:?}: simulator trace not causal");
            assert!(thr_ok, "seed {seed} {mode:?}: threaded trace not causal");
            assert!(evt_ok, "seed {seed} {mode:?}: evented trace not causal");
            assert_eq!(sim_msgs, 80, "40 sends + 40 echoes");
        }
    }
}

#[test]
fn simulator_is_fully_deterministic() {
    let run = || {
        let spec = common::random_acyclic_spec(9, 4, 2, 3);
        let n = spec.server_count() as u16;
        let topo = spec.validate().unwrap();
        let mut sim =
            Simulation::new(topo, ServerConfig::default(), CostModel::paper_calibrated()).unwrap();
        for s in 0..n {
            sim.register_agent(ServerId::new(s), 1, Box::new(EchoAgent));
        }
        for (from, to) in common::random_pairs(3, n, 30) {
            sim.client_send(aid(from, 77), aid(to, 1), Notification::signal("m"));
        }
        sim.run_until_quiet().unwrap();
        (sim.now(), sim.total_stats())
    };
    let (t1, s1) = run();
    let (t2, s2) = run();
    assert_eq!(t1, t2, "virtual end times must be identical");
    assert_eq!(s1, s2, "statistics must be identical");
}
