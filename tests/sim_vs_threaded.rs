//! Cross-runtime consistency: the discrete-event simulator and the
//! threaded runtime drive the *same* sans-IO cores; the same workload must
//! produce the same end-to-end message set and causally consistent traces
//! in both.

mod common;

use std::time::Duration;

use aaa_middleware::base::{AgentId, ServerId};
use aaa_middleware::mom::{EchoAgent, MomBuilder, Notification, ServerConfig, StampMode};
use aaa_middleware::sim::{CostModel, Simulation};
use aaa_middleware::trace::TraceRecorder;

fn aid(s: u16, l: u32) -> AgentId {
    AgentId::new(ServerId::new(s), l)
}

fn run_sim(seed: u64) -> (usize, bool) {
    let spec = common::random_acyclic_spec(seed, 3, 2, 4);
    let n = spec.server_count() as u16;
    let topo = spec.validate().unwrap();
    let mut sim = Simulation::new(
        topo,
        ServerConfig {
            stamp_mode: StampMode::Updates,
            ..ServerConfig::default()
        },
        CostModel::paper_calibrated(),
    )
    .unwrap();
    let recorder = TraceRecorder::new();
    sim.record_into(&recorder);
    for s in 0..n {
        sim.register_agent(ServerId::new(s), 1, Box::new(EchoAgent));
    }
    for (from, to) in common::random_pairs(seed + 5, n, 40) {
        sim.client_send(aid(from, 77), aid(to, 1), Notification::signal("m"));
    }
    sim.run_until_quiet().unwrap();
    let trace = recorder.snapshot().unwrap();
    (trace.message_count(), trace.check_causality().is_ok())
}

fn run_threaded(seed: u64) -> (usize, bool) {
    let spec = common::random_acyclic_spec(seed, 3, 2, 4);
    let n = spec.server_count() as u16;
    let mom = MomBuilder::new(spec).build().unwrap();
    for s in 0..n {
        mom.register_agent(ServerId::new(s), 1, Box::new(EchoAgent))
            .unwrap();
    }
    for (from, to) in common::random_pairs(seed + 5, n, 40) {
        mom.send(aid(from, 77), aid(to, 1), Notification::signal("m"))
            .unwrap();
    }
    assert!(mom.quiesce(Duration::from_secs(30)));
    let trace = mom.trace().unwrap();
    let out = (trace.message_count(), trace.check_causality().is_ok());
    mom.shutdown();
    out
}

#[test]
fn same_workload_same_outcome_in_both_runtimes() {
    for seed in 0..5u64 {
        let (sim_msgs, sim_ok) = run_sim(seed);
        let (thr_msgs, thr_ok) = run_threaded(seed);
        assert_eq!(sim_msgs, thr_msgs, "seed {seed}: message counts differ");
        assert!(sim_ok, "seed {seed}: simulator trace not causal");
        assert!(thr_ok, "seed {seed}: threaded trace not causal");
        assert_eq!(sim_msgs, 80, "40 sends + 40 echoes");
    }
}

#[test]
fn simulator_is_fully_deterministic() {
    let run = || {
        let spec = common::random_acyclic_spec(9, 4, 2, 3);
        let n = spec.server_count() as u16;
        let topo = spec.validate().unwrap();
        let mut sim =
            Simulation::new(topo, ServerConfig::default(), CostModel::paper_calibrated()).unwrap();
        for s in 0..n {
            sim.register_agent(ServerId::new(s), 1, Box::new(EchoAgent));
        }
        for (from, to) in common::random_pairs(3, n, 30) {
            sim.client_send(aid(from, 77), aid(to, 1), Notification::signal("m"));
        }
        sim.run_until_quiet().unwrap();
        (sim.now(), sim.total_stats())
    };
    let (t1, s1) = run();
    let (t2, s2) = run();
    assert_eq!(t1, t2, "virtual end times must be identical");
    assert_eq!(s1, s2, "statistics must be identical");
}
