//! Tier-1 gate: the workspace static-analysis pass must be clean.
//!
//! `workspace_is_clean` runs the full `aaa-audit` pass over this very
//! tree — any new `unwrap()` on a delivery path, wire-enum drift, metric
//! vocabulary fork, wall-clock read in the simulator or lock held across
//! a send fails `cargo test` with a `file:line` diagnostic, unless it is
//! intentionally excepted (`crates/audit/allow/` or `// audit:allow`).
//!
//! The `sabotage_*` tests are the auditor's own acceptance criteria: each
//! injects a representative violation into an *in-memory* copy of the
//! tree (nothing on disk is touched, nothing needs to compile) and
//! asserts the pass catches it where a reviewer would expect.

use std::path::Path;

use aaa_audit::allowlist::Allowlist;
use aaa_audit::source::SourceFile;
use aaa_audit::{
    apply_suppressions, audit_workspace, run_rules, run_rules_opts, AuditOptions, Config, Finding,
    Workspace,
};
use aaa_middleware::obs::{Meter, Registry};

fn root() -> &'static Path {
    Path::new(env!("CARGO_MANIFEST_DIR"))
}

#[test]
fn workspace_is_clean() {
    let config = Config::for_aaa_workspace();
    let report = audit_workspace(root(), &config).expect("audit pass runs");
    assert!(
        report.files_scanned > 50,
        "implausibly few files scanned ({}) — did the tree move?",
        report.files_scanned
    );
    let rendered: Vec<String> = report.findings.iter().map(|f| f.to_string()).collect();
    assert!(
        report.findings.is_empty(),
        "audit findings (fix them or run `cargo run -p aaa-audit -- --fix-allowlist` \
         for intentional exceptions):\n{}",
        rendered.join("\n")
    );
    assert!(
        report.stale_allowlist.is_empty(),
        "stale allowlist entries (the excepted line no longer trips the rule — \
         refresh with `cargo run -p aaa-audit -- --fix-allowlist`):\n{}",
        report
            .stale_allowlist
            .iter()
            .map(|e| e.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );

    // The pass exports its verdict through the observability layer: a
    // clean tree is an explicit zero per rule, not a missing series.
    let registry = Registry::new();
    report.record_metrics(&Meter::new(&registry));
    let snap = registry.snapshot();
    assert_eq!(snap.sum_counter("aaa_audit_findings_total"), 0);
    let exposition = snap.render_prometheus();
    assert!(exposition.contains("aaa_audit_findings_total"));
}

/// One sabotage patch: workspace-relative path plus a text rewrite.
type Edit<'a> = (&'a str, &'a dyn Fn(&str) -> String);

/// Re-runs the audit after rewriting one file of an in-memory tree.
fn findings_after(edits: &[Edit<'_>]) -> Vec<Finding> {
    let config = Config::for_aaa_workspace();
    let mut ws = Workspace::load(root()).expect("workspace loads");
    for (rel, mutate) in edits {
        let idx = ws
            .files
            .iter()
            .position(|f| f.rel == *rel)
            .unwrap_or_else(|| panic!("{rel} not in workspace"));
        let text = mutate(&ws.files[idx].text);
        assert_ne!(text, ws.files[idx].text, "sabotage patch missed: {rel}");
        ws.files[idx] = SourceFile::parse((*rel).to_owned(), text);
    }
    let raw = run_rules(&ws, &config);
    let allow = Allowlist::load(&root().join(config.allow_dir)).expect("allowlist loads");
    apply_suppressions(&ws, raw, &allow).findings
}

#[test]
fn sabotage_unwrap_in_link_is_caught() {
    let f = findings_after(&[("crates/net/src/link.rs", &|t| {
        format!("{t}\nfn sneaky(x: Option<u8>) -> u8 {{ x.unwrap() }}\n")
    })]);
    let hit = f.iter().find(|f| {
        f.rule == "panic-freedom"
            && f.file == "crates/net/src/link.rs"
            && f.message.contains("unwrap")
    });
    let hit = hit.unwrap_or_else(|| panic!("unwrap not flagged; findings: {f:#?}"));
    assert!(hit.line > 0, "diagnostic must carry a line number");
}

#[test]
fn sabotage_stamp_variant_in_encode_only_is_caught() {
    // A new `Stamp::Probe` wire variant, handled by the serializer but
    // forgotten in the deserializer — the classic cross-version breaker.
    let f = findings_after(&[
        ("crates/clocks/src/stamp.rs", &|t| {
            t.replacen("Full(MatrixClock),", "Probe,\n    Full(MatrixClock),", 1)
        }),
        ("crates/net/src/wire.rs", &|t| {
            t.replacen(
                    "Stamp::Full(m) => {",
                    "Stamp::Probe => {\n                self.u8(9);\n            }\n            Stamp::Full(m) => {",
                    1,
                )
        }),
    ]);
    let hit = f
        .iter()
        .find(|f| f.rule == "match-drift" && f.message.contains("Probe"))
        .unwrap_or_else(|| panic!("encode-only variant not flagged; findings: {f:#?}"));
    // The diagnostic points at the variant's definition and names the
    // deserializer that forgot it.
    assert_eq!(hit.file, "crates/clocks/src/stamp.rs");
    assert!(hit.line > 0, "diagnostic must carry a line number");
    assert!(
        hit.message.contains("stamp_tagged"),
        "should name the deserializer missing the variant: {}",
        hit.message
    );
    // And only the decode side drifted — the encode side covers `Probe`.
    assert!(
        !f.iter().any(|f| f.rule == "match-drift"
            && f.message.contains("Probe")
            && f.message.contains("encode side")),
        "encode side handles the variant; findings: {f:#?}"
    );
}

#[test]
fn sabotage_unstamped_send_is_caught() {
    // A helper inside aaa-mom that pushes bytes straight onto the
    // transport without going through `stamp_send*` — exactly the §4.2
    // bypass the stamp-flow rule exists to catch.
    let f = findings_after(&[("crates/mom/src/server.rs", &|t| {
        format!(
            "{t}\nfn sneaky_bypass(ep: &dyn Transport, to: ServerId, bytes: Bytes) \
             -> Result<()> {{ ep.send(to, bytes) }}\n"
        )
    })]);
    let hit = f
        .iter()
        .find(|f| f.rule == "stamp-flow" && f.file == "crates/mom/src/server.rs")
        .unwrap_or_else(|| panic!("unstamped send not flagged; findings: {f:#?}"));
    assert!(hit.line > 0, "diagnostic must carry a line number");
    assert!(
        hit.message.contains("stamp"),
        "diagnostic should explain the missing stamp domination: {}",
        hit.message
    );
}

#[test]
fn sabotage_unguarded_len_cast_is_caught() {
    // A raw `len() as u32` on a codec path: wraps silently past 4 GiB
    // instead of producing a prefix the decoder can reject.
    let f = findings_after(&[("crates/net/src/wire.rs", &|t| {
        format!("{t}\nfn sneaky_len(v: &[u8]) -> u32 {{ v.len() as u32 }}\n")
    })]);
    let hit = f
        .iter()
        .find(|f| f.rule == "wire-cast-truncation" && f.file == "crates/net/src/wire.rs")
        .unwrap_or_else(|| panic!("unguarded narrowing cast not flagged; findings: {f:#?}"));
    assert!(hit.line > 0, "diagnostic must carry a line number");
}

#[test]
fn sabotage_raw_clock_increment_is_caught() {
    // Revert the matrix clock's own-event increment to wrapping `+= 1`:
    // a wrapped cell compares as *past* and reorders delivery.
    let f = findings_after(&[("crates/clocks/src/matrix.rs", &|t| {
        t.replacen(
            "self.cells[i] = self.cells[i].saturating_add(1);",
            "self.cells[i] += 1;",
            1,
        )
    })]);
    let hit = f
        .iter()
        .find(|f| f.rule == "clock-overflow" && f.file == "crates/clocks/src/matrix.rs")
        .unwrap_or_else(|| panic!("raw clock increment not flagged; findings: {f:#?}"));
    assert!(hit.line > 0, "diagnostic must carry a line number");
    assert!(
        hit.message.contains("saturating"),
        "diagnostic should prescribe the saturating fix: {}",
        hit.message
    );
}

#[test]
fn sabotage_swallowed_error_in_mom_is_caught() {
    // A statement-position `.ok();` in the persistence layer: the commit
    // failed, nobody heard about it, and §4.3's "accepted implies
    // processed" assumption silently broke.
    let f = findings_after(&[("crates/mom/src/persist.rs", &|t| {
        format!("{t}\nfn sneaky(r: Result<(), u8>) {{ r.ok(); }}\n")
    })]);
    let hit = f
        .iter()
        .find(|f| f.rule == "error-swallow" && f.file == "crates/mom/src/persist.rs")
        .unwrap_or_else(|| panic!("swallowed error not flagged; findings: {f:#?}"));
    assert!(hit.line > 0, "diagnostic must carry a line number");
}

#[test]
fn sabotage_blocking_call_in_step_is_caught() {
    // A blocking sleep inside a function the batched step loop reaches:
    // one stalled step delays every queued delivery behind it.
    let f = findings_after(&[("crates/mom/src/server.rs", &|t| {
        t.replacen(
            "pub fn on_tick(&mut self, now: VTime) -> Vec<Transmission> {",
            "pub fn on_tick(&mut self, now: VTime) -> Vec<Transmission> {\n        \
             std::thread::sleep(std::time::Duration::from_millis(1));",
            1,
        )
    })]);
    let hit = f
        .iter()
        .find(|f| f.rule == "block-in-step" && f.file == "crates/mom/src/server.rs")
        .unwrap_or_else(|| panic!("blocking call in step not flagged; findings: {f:#?}"));
    assert!(hit.line > 0, "diagnostic must carry a line number");
    assert!(
        hit.message.contains("on_tick"),
        "diagnostic should name the step entry that reaches the call: {}",
        hit.message
    );
}

#[test]
fn sabotage_blocking_call_in_shard_loop_is_caught() {
    // A sleep injected into the evented shard step: unlike the threaded
    // runtime (one thread per server), a stalled shard worker delays
    // *every* server multiplexed onto it — the rule must reach the
    // `run_ready_server` entry's whole call tree.
    let f = findings_after(&[("crates/mom/src/runtime/evented.rs", &|t| {
        t.replacen(
            "slot.scheduled.store(false, Ordering::Release);",
            "slot.scheduled.store(false, Ordering::Release);\n        \
             std::thread::sleep(TIMER_RESOLUTION);",
            1,
        )
    })]);
    let hit = f
        .iter()
        .find(|f| f.rule == "block-in-step" && f.file == "crates/mom/src/runtime/evented.rs")
        .unwrap_or_else(|| panic!("blocking call in shard loop not flagged; findings: {f:#?}"));
    assert!(hit.line > 0, "diagnostic must carry a line number");
    assert!(
        hit.message.contains("run_ready_server"),
        "diagnostic should name the shard-loop entry: {}",
        hit.message
    );
}

#[test]
fn sabotage_new_pub_item_without_baseline_is_caught() {
    // A new `pub fn` added to aaa-mom without touching PUBLIC_API.txt:
    // the surface grew without the prelude/docs decision the baseline
    // diff is meant to force into review.
    let f = findings_after(&[("crates/mom/src/lib.rs", &|t| {
        format!("{t}\npub fn sneaky_new_api() {{}}\n")
    })]);
    let hit = f
        .iter()
        .find(|f| f.rule == "pub-api-drift" && f.message.contains("sneaky_new_api"))
        .unwrap_or_else(|| panic!("unrecorded pub item not flagged; findings: {f:#?}"));
    assert_eq!(hit.file, "crates/mom/src/lib.rs");
    assert!(hit.line > 0, "diagnostic must carry a line number");
    assert!(
        hit.message.contains("fix-pub-api"),
        "diagnostic should prescribe the baseline refresh: {}",
        hit.message
    );
}

#[test]
fn sabotage_unmodeled_atomic_in_shard_loop_is_caught() {
    // A new `paused` flag wired into the evented runtime's hot path
    // without teaching the interleaving model about it: the PR 8 proof
    // would keep passing while no longer describing the real protocol.
    let f = findings_after(&[("crates/mom/src/runtime/evented.rs", &|t| {
        t.replacen(
            "scheduled: AtomicBool,",
            "scheduled: AtomicBool,\n    paused: AtomicBool,",
            1,
        )
        .replacen(
            "slot.scheduled.store(false, Ordering::Release);",
            "slot.scheduled.store(false, Ordering::Release);\n        \
             slot.paused.store(false, Ordering::Release);",
            1,
        )
    })]);
    let hit = f
        .iter()
        .find(|f| f.rule == "model-drift" && f.message.contains("paused.store"))
        .unwrap_or_else(|| panic!("unmodeled atomic not flagged; findings: {f:#?}"));
    assert_eq!(hit.file, "crates/mom/src/runtime/evented.rs");
    assert!(hit.line > 0, "diagnostic must carry a line number");
    assert!(
        hit.message.contains("COVERED_ACCESSES"),
        "diagnostic should prescribe extending the model: {}",
        hit.message
    );
}

#[test]
fn sabotage_undominated_deliver_is_caught() {
    // A delivery effect with no persistence anywhere in its call cone:
    // exactly-once survives until the first crash, then forks history.
    let f = findings_after(&[("crates/mom/src/channel.rs", &|t| {
        format!(
            "{t}\nfn sneaky_volatile(c: &mut CausalState, from: DomainServerId, \
             p: &PendingStamp) {{ c.deliver(from, p); }}\n"
        )
    })]);
    let hit = f
        .iter()
        .find(|f| f.rule == "persist-before-deliver" && f.message.contains("sneaky_volatile"))
        .unwrap_or_else(|| panic!("undominated deliver not flagged; findings: {f:#?}"));
    assert_eq!(hit.file, "crates/mom/src/channel.rs");
    assert!(hit.line > 0, "diagnostic must carry a line number");
}

#[test]
fn parallel_and_sequential_audit_are_byte_identical() {
    // The thread-pool per-file pass is a pure throughput device: findings
    // are gathered in file order and go through the same full-key sort,
    // so every rendered artifact must match a sequential run exactly.
    let config = Config::for_aaa_workspace();
    let ws = Workspace::load(root()).expect("workspace loads");
    let base = AuditOptions {
        use_cache: false,
        parallel: false,
        diff_files: None,
    };
    let seq = run_rules_opts(&ws, &config, &base);
    let par = run_rules_opts(
        &ws,
        &config,
        &AuditOptions {
            parallel: true,
            ..base
        },
    );
    assert_eq!(seq, par, "parallel findings must match sequential");
    assert_eq!(
        aaa_audit::sarif::render(&seq),
        aaa_audit::sarif::render(&par),
        "SARIF bytes must be identical across execution modes"
    );
}

#[test]
fn diff_scope_limits_per_file_rules_but_not_global_ones() {
    // `--diff` semantics: a violation in a file outside the diff scope is
    // not scanned (that is the point — it was already clean at the base
    // ref), while cross-file rules still see the whole tree.
    let config = Config::for_aaa_workspace();
    let mut ws = Workspace::load(root()).expect("workspace loads");
    let idx = ws
        .files
        .iter()
        .position(|f| f.rel == "crates/net/src/link.rs")
        .expect("link.rs in workspace");
    let text = format!(
        "{}\nfn sneaky(x: Option<u8>) -> u8 {{ x.unwrap() }}\n",
        ws.files[idx].text
    );
    ws.files[idx] = SourceFile::parse("crates/net/src/link.rs".to_owned(), text);

    let full = run_rules(&ws, &config);
    assert!(
        full.iter()
            .any(|f| f.rule == "panic-freedom" && f.file == "crates/net/src/link.rs"),
        "full run must catch the planted unwrap"
    );

    let scoped = run_rules_opts(
        &ws,
        &config,
        &AuditOptions {
            use_cache: false,
            parallel: true,
            diff_files: Some(
                ["crates/mom/src/server.rs".to_owned()]
                    .into_iter()
                    .collect(),
            ),
        },
    );
    assert!(
        !scoped
            .iter()
            .any(|f| f.rule == "panic-freedom" && f.file == "crates/net/src/link.rs"),
        "diff scope must skip per-file rules on unchanged files"
    );
    // Global rules still ran: the planted unwrap does not disturb them,
    // and the scoped run reports the same global findings as the full
    // run minus per-file ones (zero of either on this tree).
    assert!(
        scoped.iter().all(|f| full.contains(f)),
        "diff-scoped findings must be a subset of the full run"
    );
}

#[test]
fn audit_output_is_byte_identical_across_runs() {
    // Determinism is part of the contract: identical trees produce
    // identical findings, identical rendered SARIF and identical metric
    // expositions — no HashMap iteration order, no filesystem order.
    let config = Config::for_aaa_workspace();
    let ws = Workspace::load(root()).expect("workspace loads");
    let a = run_rules(&ws, &config);
    let b = run_rules(&ws, &config);
    assert_eq!(a, b, "raw findings must be run-stable");
    assert_eq!(
        aaa_audit::sarif::render(&a),
        aaa_audit::sarif::render(&b),
        "SARIF bytes must be run-stable"
    );

    let render_metrics = |raw: Vec<Finding>| {
        let allow = Allowlist::load(&root().join(config.allow_dir)).expect("allowlist loads");
        let report = apply_suppressions(&ws, raw, &allow);
        let registry = Registry::new();
        report.record_metrics(&Meter::new(&registry));
        registry.snapshot().render_prometheus()
    };
    assert_eq!(
        render_metrics(a),
        render_metrics(b),
        "Prometheus exposition must be run-stable"
    );
}

#[test]
fn sabotage_unregistered_metric_is_caught() {
    let f = findings_after(&[("crates/net/src/metrics.rs", &|t| {
        format!(
                "{t}\nfn sneaky(meter: &Meter) {{ meter.gauge(\"aaa_sneaky_gauge\", \"undocumented\"); }}\n"
            )
    })]);
    let hit = f
        .iter()
        .find(|f| f.rule == "metric-drift" && f.message.contains("aaa_sneaky_gauge"))
        .unwrap_or_else(|| panic!("unregistered metric not flagged; findings: {f:#?}"));
    assert_eq!(hit.file, "crates/net/src/metrics.rs");
    assert!(hit.line > 0, "diagnostic must carry a line number");
}

#[test]
fn sabotage_lock_inversion_is_caught() {
    // Two helpers taking the same pair of locks in opposite orders — the
    // textbook deadlock the interprocedural lock-order graph exists for.
    let f = findings_after(&[("crates/net/src/health.rs", &|t| {
        format!(
            "{t}\nfn sneaky_fwd(alpha: &Mutex<u8>, zeta: &Mutex<u8>) -> u8 {{\n    \
             let ga = alpha.lock();\n    let gz = zeta.lock();\n    *ga + *gz\n}}\n\
             fn sneaky_rev(alpha: &Mutex<u8>, zeta: &Mutex<u8>) -> u8 {{\n    \
             let gz = zeta.lock();\n    let ga = alpha.lock();\n    *ga + *gz\n}}\n"
        )
    })]);
    let hit = f
        .iter()
        .find(|f| f.rule == "lock-order" && f.file == "crates/net/src/health.rs")
        .unwrap_or_else(|| panic!("lock inversion not flagged; findings: {f:#?}"));
    assert!(hit.line > 0, "diagnostic must carry a line number");
    // The diagnostic names the full cycle, not just one edge.
    assert!(
        hit.message.contains("alpha") && hit.message.contains("zeta"),
        "cycle message should name both resources: {}",
        hit.message
    );
}

#[test]
fn sabotage_relaxed_schedule_gate_is_caught() {
    // Downgrade the evented runtime's `scheduled` wakeup gate to Relaxed:
    // the swap would no longer order the queue deposit before the wakeup,
    // exactly the lost-update family `atomic-protocol` polices.
    let f = findings_after(&[("crates/mom/src/runtime/evented.rs", &|t| {
        t.replacen(
            "scheduled.swap(true, Ordering::AcqRel)",
            "scheduled.swap(true, Ordering::Relaxed)",
            1,
        )
    })]);
    let hit = f
        .iter()
        .find(|f| f.rule == "atomic-protocol" && f.file == "crates/mom/src/runtime/evented.rs")
        .unwrap_or_else(|| panic!("Relaxed gate swap not flagged; findings: {f:#?}"));
    assert!(hit.line > 0, "diagnostic must carry a line number");
    assert!(
        hit.message.contains("swap"),
        "diagnostic should name the gate-shaped operation: {}",
        hit.message
    );
}

#[test]
fn sabotage_guard_across_send_batch_is_caught() {
    // A mutex guard held across a batched transport send: the blocking
    // I/O stalls every other thread contending on that lock.
    let f = findings_after(&[("crates/net/src/health.rs", &|t| {
        format!(
            "{t}\nfn sneaky_hold(m: &Mutex<Vec<u8>>) {{\n    \
             let sneaky_guard = m.lock();\n    send_batch(&sneaky_guard);\n}}\n"
        )
    })]);
    let hit = f
        .iter()
        .find(|f| f.rule == "guard-across-blocking" && f.file == "crates/net/src/health.rs")
        .unwrap_or_else(|| panic!("guard across send_batch not flagged; findings: {f:#?}"));
    assert!(hit.line > 0, "diagnostic must carry a line number");
    assert!(
        hit.message.contains("send_batch") && hit.message.contains("sneaky_guard"),
        "diagnostic should name the blocking call and the guard: {}",
        hit.message
    );
}
