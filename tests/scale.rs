//! Scale tests: bigger deployments than the unit tests use, closer to the
//! paper's 150-server experiments.

use std::time::Duration;

use aaa_middleware::base::{AgentId, ServerId};
use aaa_middleware::mom::{EchoAgent, MomBuilder, Notification, ServerConfig, StampMode};
use aaa_middleware::sim::{CostModel, Simulation};
use aaa_middleware::topology::TopologySpec;
use aaa_middleware::trace::TraceRecorder;

fn aid(s: u16, l: u32) -> AgentId {
    AgentId::new(ServerId::new(s), l)
}

#[test]
fn threaded_bus_with_30_servers_and_600_messages() {
    // 6 leaf domains x 5 servers: 30 threads, heavy random cross-domain
    // traffic, full causality check at the end.
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    let mom = MomBuilder::new(TopologySpec::bus(6, 5)).build().unwrap();
    let n = mom.topology().server_count() as u16;
    assert_eq!(n, 30);
    for s in 0..n {
        mom.register_agent(ServerId::new(s), 1, Box::new(EchoAgent))
            .unwrap();
    }
    let mut rng = StdRng::seed_from_u64(2026);
    for _ in 0..300 {
        let from = rng.gen_range(0..n);
        let mut to = rng.gen_range(0..n);
        if to == from {
            to = (to + 1) % n;
        }
        mom.send(aid(from, 9), aid(to, 1), Notification::signal("s"))
            .unwrap();
    }
    assert!(
        mom.quiesce(Duration::from_secs(60)),
        "30-server bus must drain"
    );
    let trace = mom.trace().unwrap();
    assert_eq!(trace.message_count(), 600);
    assert!(trace.check_causality().is_ok());
    mom.shutdown();
}

#[test]
fn simulated_150_servers_cross_domain() {
    // The paper's largest configuration: 150 servers in a bus of domains.
    // Run entirely in virtual time; verify causality on a sampled workload.
    let spec = TopologySpec::bus(12, 13); // 156 servers
    let topo = spec.validate().unwrap();
    let mut sim = Simulation::new(
        topo,
        ServerConfig {
            stamp_mode: StampMode::Updates,
            ..ServerConfig::default()
        },
        CostModel::paper_calibrated(),
    )
    .unwrap();
    let recorder = TraceRecorder::new();
    sim.record_into(&recorder);
    let n = sim.topology().server_count() as u16;
    for s in 0..n {
        sim.register_agent(ServerId::new(s), 1, Box::new(EchoAgent));
    }
    // A wave of cross-domain messages: every 13th server fires at the
    // opposite side of the bus.
    let mut sent = 0;
    for s in (0..n).step_by(13) {
        let to = (s + n / 2) % n;
        if to != s {
            sim.client_send(aid(s, 9), aid(to, 1), Notification::signal("w"));
            sent += 1;
        }
    }
    sim.run_until_quiet().unwrap();
    let trace = recorder.snapshot().unwrap();
    assert_eq!(trace.message_count(), sent * 2);
    assert!(trace.check_causality().is_ok());
    // The whole wave completes in bounded virtual time (every round trip
    // is a few hundred virtual ms; they overlap across servers).
    assert!(sim.now().as_millis_f64() < 10_000.0);
}

#[test]
fn simulated_flat_90_servers_matches_paper_order_of_magnitude() {
    // One broadcast round at the paper's largest flat configuration.
    let m = aaa_middleware::sim::experiments::broadcast(
        TopologySpec::single_domain(90),
        StampMode::Updates,
        CostModel::paper_calibrated(),
        1,
    )
    .unwrap();
    let ms = m.avg.as_millis_f64();
    // Paper: 25 323 ms. Same order of magnitude is the claim.
    assert!(ms > 8_000.0 && ms < 80_000.0, "broadcast(90) = {ms} ms");
}
