//! Store-and-forward relay under churn chaos and crashes (DESIGN.md §17).
//!
//! The relay's contract: every subscriber sees every publication of its
//! topic **exactly once, in publication order**, no matter how often it
//! disconnects and reconnects, whether it lives on the publishing server
//! or across a domain boundary, and across a crash of its home relay —
//! with the backlog bounded and the causal bus's guarantees intact.
//! These tests drive the whole stack (topic agent → relay → durable
//! queue → handoff → ACK commit) through the public `Mom` surface and
//! judge it with the `aaa-trace` per-subscriber oracle.

use std::sync::Arc;
use std::time::Duration;

use aaa_middleware::base::{AgentId, ServerId, VDuration};
use aaa_middleware::chaos::{ChurnEvent, FaultPlan};
use aaa_middleware::mom::pubsub::{publication, subscription, TopicAgent};
use aaa_middleware::mom::{relay_agent, FnAgent, MomBuilder, RelayConfig, RuntimeConfig};
use aaa_middleware::topology::TopologySpec;
use aaa_middleware::trace::SubscriberCheck;
use parking_lot::Mutex;

fn aid(s: u16, l: u32) -> AgentId {
    AgentId::new(ServerId::new(s), l)
}

/// Registers `count` subscriber agents on `server` that parse the
/// publication body as a sequence number and record it with the oracle.
fn register_subscribers(
    mom: &aaa_middleware::mom::Mom,
    server: ServerId,
    count: u32,
    origin: ServerId,
    check: &SubscriberCheck,
) -> Vec<AgentId> {
    (1..=count)
        .map(|i| {
            let check = check.clone();
            let sub = mom
                .register_agent(
                    server,
                    i,
                    Box::new(FnAgent::new(move |ctx, _from, note| {
                        let seq: u64 = note.body_str().unwrap_or("0").parse().unwrap_or(0);
                        check.record(ctx.me(), origin, seq);
                    })),
                )
                .unwrap();
            sub
        })
        .collect()
}

/// 10 000 subscribers on the publishing server under seeded zipfian
/// connect/disconnect churn: every subscriber still sees every
/// publication exactly once and in order, and nothing stays postponed
/// after quiescence.
#[test]
fn ten_thousand_subscribers_survive_zipfian_churn() {
    const SUBS: u32 = 10_000;
    const PUBS: u64 = 12;
    const CHURN_EVENTS: usize = 400;
    const HORIZON: u64 = PUBS; // one churn "tick" per publication slot

    let topic_server = ServerId::new(0);
    let mom = MomBuilder::new(TopologySpec::single_domain(2))
        .relay(RelayConfig::default().retry_rto(VDuration::from_millis(50)))
        .build()
        .unwrap();
    let topic = mom
        .register_agent(
            topic_server,
            500_000,
            Box::new(TopicAgent::with_relay(relay_agent(topic_server))),
        )
        .unwrap();

    let check = SubscriberCheck::new();
    let subs = register_subscribers(&mom, topic_server, SUBS, topic_server, &check);
    for sub in &subs {
        mom.send(*sub, topic, subscription()).unwrap();
    }
    assert!(
        mom.quiesce(Duration::from_secs(60)),
        "subscriptions must settle before publishing"
    );

    // The seeded churn schedule: zipfian over subscriber rank, so a hot
    // head flaps constantly while the tail mostly stays connected.
    let plan = FaultPlan::new(0xC0FFEE).zipf_churn(&subs, CHURN_EVENTS, HORIZON);
    plan.validate().unwrap();
    let mut reconnects: Vec<ChurnEvent> = Vec::new();
    let mut next_event = plan.churn.iter().peekable();
    for tick in 0..HORIZON {
        // Fire the tick's disconnects, then any reconnect now due.
        while let Some(e) = next_event.peek() {
            if e.at_tick > tick {
                break;
            }
            mom.relay_disconnect(e.subscriber).unwrap();
            reconnects.push(**e);
            next_event.next();
        }
        reconnects.retain(|e| {
            if e.reconnect_at.is_some_and(|r| r <= tick) {
                mom.relay_connect(e.subscriber).unwrap();
                false
            } else {
                true
            }
        });
        let seq = tick + 1;
        mom.send(
            aid(1, 42),
            topic,
            publication("price", seq.to_string().into_bytes()),
        )
        .unwrap();
    }
    // Drain the schedule: everyone reconnects, backlogs flush.
    for e in plan.churn.iter().chain(reconnects.iter()) {
        mom.relay_connect(e.subscriber).unwrap();
    }
    assert!(
        mom.quiesce(Duration::from_secs(120)),
        "churned fan-out must drain"
    );

    let report = check.report();
    assert!(report.is_clean(), "relay contract violated: {report:?}");
    assert_eq!(report.streams, u64::from(SUBS), "every subscriber heard");
    assert_eq!(
        report.delivered,
        u64::from(SUBS) * PUBS,
        "exactly-once fan-out: {report:?}"
    );
    assert_eq!(
        mom.metrics().sum_gauge("aaa_channel_postponed"),
        0,
        "nothing may stay causally postponed after quiescence"
    );
    mom.shutdown();
}

/// Cross-domain handoff under churn: subscribers live two domains away
/// from the topic, so every publication crosses the causal router as a
/// relay-to-relay handoff. The oracle must stay clean and the recorded
/// trace causally consistent.
#[test]
fn cross_domain_handoff_survives_churn() {
    const SUBS: u32 = 64;
    const PUBS: u64 = 30;

    let spec = TopologySpec::from_domains(vec![vec![0, 1, 2], vec![2, 3, 4]]);
    let mom = MomBuilder::new(spec)
        .relay(RelayConfig::default().retry_rto(VDuration::from_millis(50)))
        .build()
        .unwrap();
    let topic_server = ServerId::new(0);
    let sub_server = ServerId::new(4);
    let topic = mom
        .register_agent(
            topic_server,
            500_000,
            Box::new(TopicAgent::with_relay(relay_agent(topic_server))),
        )
        .unwrap();

    let check = SubscriberCheck::new();
    let subs = register_subscribers(&mom, sub_server, SUBS, topic_server, &check);
    for sub in &subs {
        mom.send(*sub, topic, subscription()).unwrap();
    }
    assert!(mom.quiesce(Duration::from_secs(30)));

    let plan = FaultPlan::new(7).zipf_churn(&subs, 40, PUBS);
    let mut pending: Vec<ChurnEvent> = plan.churn.clone();
    for tick in 0..PUBS {
        pending.retain(|e| {
            if e.at_tick <= tick {
                mom.relay_disconnect(e.subscriber).unwrap();
                false
            } else {
                true
            }
        });
        mom.send(
            aid(1, 42),
            topic,
            publication("price", (tick + 1).to_string().into_bytes()),
        )
        .unwrap();
    }
    for e in &plan.churn {
        mom.relay_connect(e.subscriber).unwrap();
    }
    assert!(mom.quiesce(Duration::from_secs(60)), "handoff must drain");

    let report = check.report();
    assert!(report.is_clean(), "handoff contract violated: {report:?}");
    assert_eq!(report.delivered, u64::from(SUBS) * PUBS);
    assert!(
        mom.trace().unwrap().check_causality().is_ok(),
        "relay traffic must not break bus causality"
    );
    mom.shutdown();
}

/// Crash-safe redelivery with a mid-compaction crash artefact: a
/// subscriber disconnects, its home relay accumulates a durable backlog
/// (rolling segments and compacting along the way), the home server
/// crashes mid-compaction (stray `.tmp` left behind), recovers, and the
/// reconnecting subscriber receives the whole backlog exactly once, in
/// causal order.
#[test]
fn reconnect_after_relay_crash_replays_backlog_in_order() {
    const BEFORE: u64 = 10;
    const AFTER: u64 = 20;

    let dir = std::env::temp_dir().join(format!("aaa-relay-e2e-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let seen: Arc<Mutex<Vec<u64>>> = Arc::default();
    let mom = MomBuilder::new(TopologySpec::single_domain(2))
        .runtime(RuntimeConfig::threaded().persist(true))
        .relay(
            RelayConfig::default()
                .dir(&dir)
                .segment_max_records(8)
                .retry_rto(VDuration::from_millis(50)),
        )
        .build()
        .unwrap();
    let topic_server = ServerId::new(0);
    let sub_server = ServerId::new(1);
    let topic = mom
        .register_agent(
            topic_server,
            500_000,
            Box::new(TopicAgent::with_relay(relay_agent(topic_server))),
        )
        .unwrap();
    let subscriber_agent = {
        let seen = seen.clone();
        move || -> Box<dyn aaa_middleware::mom::Agent> {
            let seen = seen.clone();
            Box::new(FnAgent::new(move |_ctx, _from, note| {
                let seq: u64 = note.body_str().unwrap_or("0").parse().unwrap_or(0);
                seen.lock().push(seq);
            }))
        }
    };
    let sub = mom
        .register_agent(sub_server, 7, subscriber_agent())
        .unwrap();
    mom.send(sub, topic, subscription()).unwrap();
    assert!(mom.quiesce(Duration::from_secs(20)));

    // Warm phase: the subscriber is live and sees 1..=BEFORE.
    for seq in 1..=BEFORE {
        mom.send(
            aid(0, 42),
            topic,
            publication("price", seq.to_string().into_bytes()),
        )
        .unwrap();
    }
    assert!(mom.quiesce(Duration::from_secs(20)));
    assert_eq!(*seen.lock(), (1..=BEFORE).collect::<Vec<_>>());

    // Cold phase: disconnect, publish a backlog that rolls several
    // durable segments at the subscriber's home relay.
    mom.relay_disconnect(sub).unwrap();
    for seq in BEFORE + 1..=BEFORE + AFTER {
        mom.send(
            aid(0, 42),
            topic,
            publication("price", seq.to_string().into_bytes()),
        )
        .unwrap();
    }
    assert!(
        mom.quiesce(Duration::from_secs(20)),
        "handoffs must journal at the home relay while the subscriber is cold"
    );

    // Crash the home server mid-compaction: a compaction that died
    // before its rename leaves a stray `.tmp` in the queue directory.
    mom.crash(sub_server).unwrap();
    let queue_dir = dir.join("relay-1").join("sub-1-7");
    assert!(queue_dir.is_dir(), "durable queue must exist on disk");
    std::fs::write(queue_dir.join(".compact-000099.tmp"), b"torn compaction").unwrap();

    mom.recover(sub_server, vec![(7, subscriber_agent())])
        .unwrap();
    mom.relay_connect(sub).unwrap();
    assert!(
        mom.quiesce(Duration::from_secs(30)),
        "recovered relay must replay the backlog"
    );

    assert_eq!(
        *seen.lock(),
        (1..=BEFORE + AFTER).collect::<Vec<_>>(),
        "backlog replayed exactly once, in causal order, across the crash"
    );
    assert!(
        !queue_dir.join(".compact-000099.tmp").exists(),
        "the torn compaction artefact is cleaned up on reopen"
    );
    assert!(mom.trace().unwrap().check_causality().is_ok());
    mom.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
