//! Tier-1 gate: exhaustive model check of the **real clock engines**.
//!
//! Where `model_evented.rs` checks an abstract model of the runtime's
//! wakeup protocol, this gate drives the four production `ClockEngine`s
//! (`Full`, `Updates`, `Reduced`, `Hybrid`) — the actual code behind
//! `CausalState` — through every interleaving of send / transmit /
//! deliver at a small network shape, including FIFO-link reorder across
//! senders, duplicate delivery attempts, mid-group `GroupNext`
//! continuations, and crash/recovery through the engines' real
//! `write_bytes`/`read_bytes` persistence images. On every reachable
//! state it asserts (DESIGN.md §16):
//!
//! - **causal order** — no delivery before the ground-truth causal
//!   dependencies of the message are delivered;
//! - **exactly-once** — a delivered message is never admitted again;
//! - **quiescence** — when links and pending sets drain, everything sent
//!   was delivered;
//! - **mode equivalence** — each bounded mode agrees with a lock-step
//!   `Full` reference on every delivery verdict, reconstructed predicate
//!   column and sent/delivered transcript.
//!
//! `AAA_MODEL_DEPTH` scales the shape: unset/0/1 is the PR-CI shape
//! (3 servers x 2 msgs/sender, ~6.4k states/mode), 2 deepens the
//! workload (3 msgs/sender), 3+ widens the ring (4 servers; main-branch
//! CI runs this, ~124k states/mode). The `sabotage_*` leg is the
//! check's own acceptance criterion: weakening the §4.2 delivery
//! predicate by one (`>` -> `>=` on the sender column) must produce a
//! concrete causal-order-violation trace in every mode.

use aaa_audit::interleave::{explore, EngineConfig, EngineModel, Options};
use aaa_clocks::StampMode;

const MODES: [(&str, StampMode); 4] = [
    ("full", StampMode::Full),
    ("updates", StampMode::Updates),
    ("reduced", StampMode::Reduced),
    ("hybrid", StampMode::Hybrid),
];

fn depth_level() -> u8 {
    std::env::var("AAA_MODEL_DEPTH")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0)
}

#[test]
fn every_clock_engine_is_causally_sound_at_configured_depth() {
    let level = depth_level();
    for (name, mode) in MODES {
        let m = EngineModel {
            cfg: EngineConfig::at_depth(mode, level),
        };
        match explore(&m, Options::default()) {
            Ok(e) => {
                assert!(
                    !e.truncated,
                    "{name}: exploration truncated at depth level {level} — raise \
                     max_depth; an exhaustiveness claim needs the full reachable set"
                );
                assert!(
                    e.states > 1_000,
                    "{name}: implausibly small state space ({}) — did the network \
                     model lose actions?",
                    e.states
                );
                // One greppable line per engine; the deep CI leg runs with
                // --nocapture and uploads these as the state-count artifact.
                println!(
                    "model-states model=engine-{name} level={level} states={} transitions={}",
                    e.states, e.transitions
                );
            }
            Err(v) => panic!("{name}: causal-protocol violation at depth level {level}:\n{v}"),
        }
    }
}

#[test]
fn sabotage_weakened_delivery_predicate_fails_every_mode() {
    // §4.2's sender-column condition is `ST[i][j] == DELIV[i] + 1`:
    // exactly the next message from that sender, in FIFO order. The
    // weakened variant accepts `>=` — the classic off-by-one that admits
    // message k+2 while k+1 is still in flight. Every mode's check must
    // refute it with a concrete interleaving, caught by the ground-truth
    // dependency oracle (not by the engines' own predicate, which is the
    // thing under suspicion).
    for (name, mode) in MODES {
        let mut cfg = EngineConfig::ci(mode);
        cfg.weaken_can_deliver = true;
        let v = explore(&EngineModel { cfg }, Options::default())
            .expect_err("model check must catch the weakened delivery predicate");
        assert!(
            v.message.contains("causal-order violation"),
            "{name}: expected a causal-order verdict, got: {v}"
        );
        assert!(
            !v.trace.is_empty(),
            "{name}: violation must carry a witness trace"
        );
    }
}
