//! Shared helpers for the workspace-level integration tests.

use aaa_middleware::topology::TopologySpec;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generates a random *acyclic* domain decomposition: a random tree of
/// `domains` domains, each with `min_size..=max_size` fresh servers, where
/// each non-root domain shares exactly one router-server with a previously
/// created domain.
///
/// By construction the bipartite incidence graph is a tree, so validation
/// always succeeds and the theorem's precondition holds.
pub fn random_acyclic_spec(
    seed: u64,
    domains: usize,
    min_size: usize,
    max_size: usize,
) -> TopologySpec {
    assert!(domains >= 1 && min_size >= 2);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut all: Vec<Vec<u16>> = Vec::with_capacity(domains);
    let mut next_server = 0u16;

    // Root domain: all fresh servers.
    let size = rng.gen_range(min_size..=max_size);
    all.push((0..size as u16).map(|i| next_server + i).collect());
    next_server += size as u16;

    for _ in 1..domains {
        // Attach to a random existing domain through one of its servers.
        let parent = rng.gen_range(0..all.len());
        let router = all[parent][rng.gen_range(0..all[parent].len())];
        let size = rng.gen_range(min_size..=max_size);
        let mut members = vec![router];
        for _ in 1..size {
            members.push(next_server);
            next_server += 1;
        }
        all.push(members);
    }
    TopologySpec::from_domains(all)
}

/// A deterministic pseudo-random workload: `count` (from, to) server
/// pairs over `n` servers, never self-addressed.
pub fn random_pairs(seed: u64, n: u16, count: usize) -> Vec<(u16, u16)> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| {
            let from = rng.gen_range(0..n);
            let mut to = rng.gen_range(0..n);
            if to == from {
                to = (to + 1) % n;
            }
            (from, to)
        })
        .collect()
}
