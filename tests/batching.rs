//! Group-commit batching under adversity: randomized batch sizes, packet
//! loss and mid-batch crashes must never cost causal order, exactly-once
//! delivery, or quiescence — the batching pipeline is an optimization,
//! not a semantics change.

#[allow(dead_code)]
mod common;

use std::sync::Arc;
use std::time::Duration;

use aaa_middleware::prelude::*;
use aaa_middleware::trace::TraceRecorder;
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn aid(s: u16, l: u32) -> AgentId {
    AgentId::new(ServerId::new(s), l)
}

/// Sink agent that appends every body it sees to a shared log.
fn collector(seen: Arc<Mutex<Vec<String>>>) -> Box<dyn Agent> {
    Box::new(FnAgent::new(move |_ctx, _from, note: &Notification| {
        seen.lock().push(note.body_str().unwrap_or("").to_owned());
    }))
}

/// Simulator: random-size batched bursts through a bus of domains, under
/// 20 % packet loss. Retransmission re-sends whole batches; delivery must
/// stay causal and exactly-once, and nothing may remain postponed.
#[test]
fn random_batches_under_loss_stay_causal_and_exactly_once() {
    for seed in 0..3u64 {
        let mut rng = StdRng::seed_from_u64(0xBA7C & seed.wrapping_mul(977));
        let topo = TopologySpec::bus(3, 3).validate().unwrap();
        let n = 9u16;
        let config = ServerConfig {
            rto: VDuration::from_millis(40),
            ..ServerConfig::default()
        };
        assert!(
            !config.batch.is_disabled(),
            "batching must be on by default"
        );
        let mut sim = Simulation::with_fault_plan(
            topo,
            config,
            CostModel::paper_calibrated(),
            FaultPlan::drop_only(0.2, seed + 3),
        )
        .unwrap();
        let registry = Registry::default();
        sim.attach_registry(&registry);
        let recorder = TraceRecorder::new();
        sim.record_into(&recorder);
        for s in 0..n {
            sim.register_agent(ServerId::new(s), 1, collector(Default::default()));
        }

        let mut total = 0usize;
        for _ in 0..12 {
            let from = rng.gen_range(0..n);
            let burst = rng.gen_range(1..=48usize);
            let batch: Vec<_> = (0..burst)
                .map(|_| {
                    let to = rng.gen_range(0..n);
                    (aid(to, 1), Notification::signal("b"))
                })
                .collect();
            total += batch.len();
            sim.client_send_batch(aid(from, 9), batch);
        }
        sim.run_until_quiet().unwrap();

        assert!(sim.dropped_datagrams() > 0, "seed {seed}: loss never fired");
        let trace = recorder.snapshot().unwrap();
        assert_eq!(trace.message_count(), total, "seed {seed}: lost messages");
        assert!(
            trace.check_causality().is_ok(),
            "seed {seed}: batched trace violates causality"
        );
        let snap = sim.metrics();
        assert_eq!(
            snap.sum_counter("aaa_channel_delivered_total"),
            total as u64,
            "seed {seed}: duplicate or missing deliveries"
        );
        assert_eq!(
            snap.sum_gauge("aaa_channel_postponed"),
            0,
            "seed {seed}: messages left postponed after quiescence"
        );
        // Coalescing actually happened: fewer flushes than frames.
        let flushes = snap.sum_counter("aaa_link_flushes_total");
        let frames = snap.sum_counter("aaa_channel_transmitted_total");
        assert!(
            flushes > 0 && flushes < frames,
            "seed {seed}: no coalescing"
        );
    }
}

/// Threaded runtime: randomized batch policies (including disabled and a
/// timer-flushed one) with random-size `send_batch` bursts all converge to
/// the same causal, exactly-once outcome.
#[test]
fn randomized_batch_policies_converge_threaded() {
    let policies = [
        BatchPolicy::default(),
        BatchPolicy::disabled(),
        BatchPolicy {
            max_frames: 5,
            max_bytes: 400,
            max_delay: VDuration::ZERO,
        },
        BatchPolicy {
            max_frames: 64,
            max_bytes: 256 * 1024,
            // Timer-flushed: partial batches ride across steps until the
            // tick path (or an urgent send) pushes them out.
            max_delay: VDuration::from_millis(5),
        },
    ];
    for (i, policy) in policies.into_iter().enumerate() {
        let mut rng = StdRng::seed_from_u64(31 + i as u64);
        let spec = common::random_acyclic_spec(i as u64 + 7, 3, 2, 3);
        let n = spec.server_count() as u16;
        let mom = MomBuilder::new(spec)
            .net(NetConfig::memory().batch(policy))
            .build()
            .unwrap();
        for s in 0..n {
            mom.register_agent(ServerId::new(s), 1, Box::new(EchoAgent))
                .unwrap();
        }
        let mut total = 0u64;
        for round in 0..8 {
            let from = rng.gen_range(0..n);
            let burst = rng.gen_range(1..=20usize);
            let batch: Vec<_> = (0..burst)
                .map(|_| {
                    let to = rng.gen_range(0..n);
                    (aid(to, 1), Notification::signal("m"))
                })
                .collect();
            total += batch.len() as u64;
            // Alternate lazy and urgent submission.
            let opts = if round % 2 == 0 {
                SendOptions::new()
            } else {
                SendOptions::urgent()
            };
            mom.send_batch(aid(from, 9), batch, opts).unwrap();
        }
        mom.flush().unwrap();
        assert!(
            mom.quiesce(Duration::from_secs(30)),
            "policy {i}: failed to quiesce"
        );
        let trace = mom.trace().unwrap();
        assert!(
            trace.check_causality().is_ok(),
            "policy {i}: causality violated"
        );
        // Every request delivered once, plus one echo each.
        assert_eq!(
            trace.message_count() as u64,
            total * 2,
            "policy {i}: wrong delivery count"
        );
        assert_eq!(mom.metrics().sum_gauge("aaa_channel_postponed"), 0);
        mom.shutdown();
    }
}

/// A source server crashes while a batch is still buffered on its links
/// (large `max_delay`, never flushed before the crash). Because frames
/// enter the retransmission window at *buffer* time, the persisted image
/// covers the whole batch: recovery re-flushes it and delivery is
/// exactly-once, in order.
#[test]
fn mid_batch_crash_recovers_buffered_frames() {
    let seen: Arc<Mutex<Vec<String>>> = Default::default();
    let mom = MomBuilder::new(TopologySpec::single_domain(2))
        .runtime(RuntimeConfig::threaded().persist(true))
        .net(NetConfig::memory().batch(BatchPolicy {
            max_frames: 64,
            max_bytes: 256 * 1024,
            max_delay: VDuration::from_millis(600_000), // effectively: never
        }))
        .build()
        .unwrap();
    let source = ServerId::new(0);
    mom.register_agent(ServerId::new(1), 1, collector(seen.clone()))
        .unwrap();

    let batch: Vec<_> = (0..5)
        .map(|i| (aid(1, 1), Notification::new("m", format!("{i}"))))
        .collect();
    // Accepted, journaled, buffered — but the batch never hits the wire
    // before the crash wipes the in-memory server.
    mom.send_batch(aid(0, 9), batch, SendOptions::new())
        .unwrap();
    mom.crash(source).unwrap();
    std::thread::sleep(Duration::from_millis(30));
    assert!(seen.lock().is_empty(), "nothing should have been flushed");

    mom.recover(source, Vec::new()).unwrap();
    assert!(
        mom.quiesce(Duration::from_secs(30)),
        "recovered batch never delivered"
    );
    assert_eq!(
        seen.lock().clone(),
        vec!["0", "1", "2", "3", "4"],
        "mid-batch crash must not lose, duplicate or reorder"
    );
    assert!(mom.trace().unwrap().check_causality().is_ok());
    assert_eq!(mom.metrics().sum_gauge("aaa_channel_postponed"), 0);
    mom.shutdown();
}

/// Crashing a *destination* between two halves of a burst stream: the
/// default zero-delay policy flushes per step, so the first half is on
/// the wire when the receiver dies; retransmission re-sends those frames
/// as batches after recovery and dedup keeps delivery exactly-once.
#[test]
fn destination_crash_between_bursts_is_exactly_once() {
    let seen: Arc<Mutex<Vec<String>>> = Default::default();
    let mom = MomBuilder::new(TopologySpec::single_domain(2))
        .runtime(RuntimeConfig::threaded().persist(true))
        .build()
        .unwrap();
    let dest = ServerId::new(1);
    mom.register_agent(dest, 1, collector(seen.clone()))
        .unwrap();

    let mut expected = Vec::new();
    let burst = |lo: usize, hi: usize| -> Vec<(AgentId, Notification)> {
        (lo..hi)
            .map(|i| (aid(1, 1), Notification::new("m", format!("{i}"))))
            .collect()
    };
    expected.extend((0..6).map(|i| i.to_string()));
    mom.send_batch(aid(0, 9), burst(0, 6), SendOptions::new())
        .unwrap();
    mom.crash(dest).unwrap();
    // Second burst while the destination is down: frames queue unacked.
    expected.extend((6..12).map(|i| i.to_string()));
    mom.send_batch(aid(0, 9), burst(6, 12), SendOptions::urgent())
        .unwrap();
    std::thread::sleep(Duration::from_millis(30));
    mom.recover(dest, vec![(1, collector(seen.clone()))])
        .unwrap();
    assert!(mom.quiesce(Duration::from_secs(30)));

    assert_eq!(
        seen.lock().clone(),
        expected,
        "burst split by a crash must still deliver exactly once, in order"
    );
    assert_eq!(mom.metrics().sum_gauge("aaa_channel_postponed"), 0);
    mom.shutdown();
}
