//! Cross-crate observability: the metrics registry must agree with the
//! formal trace model, with the legacy `StepStats` view, and with the
//! paper's headline scalability claims (Figures 7/8 vs the domain
//! decomposition) — all read through the public `Mom::metrics()` /
//! `Simulation::metrics()` surface.

mod common;

use std::time::Duration;

use aaa_middleware::prelude::*;

fn aid(s: u16, l: u32) -> AgentId {
    AgentId::new(ServerId::new(s), l)
}

/// The sum over servers of delivered messages in the registry equals the
/// trace length, and the `StepStats` view agrees with the registry it is
/// derived from.
#[test]
fn delivered_counters_sum_to_trace_length() {
    let spec = common::random_acyclic_spec(3, 3, 2, 4);
    let n = spec.server_count() as u16;
    let mom = MomBuilder::new(spec).build().unwrap();
    for s in 0..n {
        mom.register_agent(ServerId::new(s), 1, Box::new(EchoAgent))
            .unwrap();
    }
    for (from, to) in common::random_pairs(11, n, 30) {
        mom.send(aid(from, 77), aid(to, 1), Notification::signal("m"))
            .unwrap();
    }
    assert!(mom.quiesce(Duration::from_secs(30)));

    let trace = mom.trace().unwrap();
    let snap = mom.metrics();
    assert_eq!(
        snap.sum_counter("aaa_channel_delivered_total"),
        trace.message_count() as u64,
        "registry and trace disagree on end-to-end deliveries"
    );
    // The legacy per-server stats are a view over the same registry.
    let mut total = StepStats::default();
    for s in 0..n {
        total.absorb(mom.stats(ServerId::new(s)).unwrap());
    }
    assert_eq!(total.delivered, trace.message_count() as u64);
    assert_eq!(
        total.stamp_bytes,
        snap.sum_counter("aaa_channel_stamp_bytes_total")
    );
    mom.shutdown();
}

/// After quiescence nothing may remain postponed: the gauge that tracked
/// causally-blocked messages must be back at zero on every server, in both
/// runtimes — including under message loss, where postponement actually
/// fires.
#[test]
fn postponed_gauge_returns_to_zero_after_quiesce() {
    // Threaded runtime.
    let mom = MomBuilder::new(TopologySpec::single_domain(4))
        .build()
        .unwrap();
    for s in 0..4 {
        mom.register_agent(ServerId::new(s), 1, Box::new(EchoAgent))
            .unwrap();
    }
    for (from, to) in common::random_pairs(7, 4, 20) {
        mom.send(aid(from, 9), aid(to, 1), Notification::signal("x"))
            .unwrap();
    }
    assert!(mom.quiesce(Duration::from_secs(30)));
    assert_eq!(mom.metrics().sum_gauge("aaa_channel_postponed"), 0);
    mom.shutdown();

    // Simulator under 25 % loss: retransmissions reorder traffic enough to
    // exercise the postponement path deterministically.
    let topo = TopologySpec::single_domain(4).validate().unwrap();
    let config = ServerConfig {
        rto: VDuration::from_millis(50),
        ..ServerConfig::default()
    };
    let mut sim = aaa_middleware::sim::Simulation::with_fault_plan(
        topo,
        config,
        CostModel::paper_calibrated(),
        FaultPlan::drop_only(0.25, 11),
    )
    .unwrap();
    let registry = Registry::default();
    sim.attach_registry(&registry);
    for s in 0..4u16 {
        sim.register_agent(ServerId::new(s), 1, Box::new(EchoAgent));
    }
    for (from, to) in common::random_pairs(13, 4, 20) {
        sim.client_send(aid(from, 9), aid(to, 1), Notification::signal("x"));
    }
    sim.run_until_quiet().unwrap();
    assert!(sim.dropped_datagrams() > 0, "faults should actually fire");
    let snap = sim.metrics();
    assert_eq!(snap.sum_gauge("aaa_channel_postponed"), 0);
    // Every loss shows up as a link retransmission somewhere.
    assert!(snap.sum_counter("aaa_server_retransmissions_total") > 0);
}

/// Golden-file check of the Prometheus text exposition: a hand-built
/// registry with one family of each kind must render byte-for-byte as
/// `tests/golden/metrics.prom`. Regenerate with
/// `UPDATE_GOLDEN=1 cargo test --test observability`.
#[test]
fn prometheus_rendering_matches_golden_file() {
    let registry = Registry::default();
    let m0 = Meter::new(&registry).with_label("server", "0");
    let m1 = Meter::new(&registry).with_label("server", "1");

    let c0 = m0.counter(
        "aaa_channel_delivered_total",
        "Messages delivered to local agents",
    );
    let c1 = m1.counter(
        "aaa_channel_delivered_total",
        "Messages delivered to local agents",
    );
    c0.add(3);
    c1.add(4);
    m0.counter_with(
        "aaa_net_tx_frames_total",
        "Frames sent, by destination peer",
        &[("peer", "1".to_string())],
    )
    .add(7);
    let g = m0.gauge("aaa_channel_postponed", "Messages currently postponed");
    g.add(2);
    g.add(-2);
    let h = m0.histogram(
        "aaa_server_delivery_latency_us",
        "Send-to-delivery latency, microseconds",
        &[100, 1_000, 10_000],
    );
    h.observe(40);
    h.observe(900);
    h.observe(2_000_000);
    // Group-commit batching instruments.
    let bf = m0.histogram(
        "aaa_link_batch_frames",
        "Frames coalesced into one flushed link batch",
        &[1, 2, 4, 8, 16, 32, 64],
    );
    bf.observe(1);
    bf.observe(32);
    m0.counter(
        "aaa_link_flushes_total",
        "Link batch flushes (one wire packet per flush)",
    )
    .add(2);
    m0.counter(
        "aaa_persist_group_commit_total",
        "Transactional group commits (one put per batch of deliveries)",
    )
    .add(2);
    m0.histogram(
        "aaa_persist_group_commit_us",
        "Wall-clock duration of one group commit, in microseconds",
        &[100, 1_000, 10_000],
    )
    .observe(250);
    // Audit-pass instruments (unlabeled meter: these are per-workspace,
    // not per-server). Fixed values keep the golden deterministic.
    let ma = Meter::new(&registry);
    ma.gauge_with(
        "aaa_audit_model_states_explored",
        "Distinct states explored by the bounded model checks at CI shape",
        &[("model", "engine-full".to_string())],
    )
    .set(6_370);
    ma.gauge_with(
        "aaa_audit_model_states_explored",
        "Distinct states explored by the bounded model checks at CI shape",
        &[("model", "slot".to_string())],
    )
    .set(33_151);
    ma.gauge_with(
        "aaa_audit_elapsed_ms",
        "Audit pass wall time by phase (milliseconds)",
        &[("phase", "per-file".to_string())],
    )
    .set(41);

    let rendered = registry.snapshot().render_prometheus();
    let golden_path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/metrics.prom");
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(golden_path, &rendered).unwrap();
    }
    let golden = std::fs::read_to_string(golden_path)
        .expect("golden file missing; run UPDATE_GOLDEN=1 cargo test --test observability");
    assert_eq!(
        rendered, golden,
        "Prometheus exposition drifted from tests/golden/metrics.prom \
         (set UPDATE_GOLDEN=1 to regenerate intentionally)"
    );
}

/// Stamp bytes for one round trip, read off the registry of a fresh bus.
fn round_trip_stamp_bytes(spec: TopologySpec, from: u16, to: u16) -> u64 {
    let n = spec.server_count() as u16;
    let mom = MomBuilder::new(spec)
        .clock(ClockConfig::mode(StampMode::Full))
        .runtime(RuntimeConfig::threaded().record_trace(false))
        .build()
        .unwrap();
    for s in 0..n {
        mom.register_agent(ServerId::new(s), 1, Box::new(EchoAgent))
            .unwrap();
    }
    mom.send(aid(from, 9), aid(to, 1), Notification::signal("ping"))
        .unwrap();
    assert!(mom.quiesce(Duration::from_secs(30)));
    let bytes = mom.metrics().sum_counter("aaa_channel_stamp_bytes_total");
    mom.shutdown();
    bytes
}

/// The paper's Figures 7/8 claim, read from the metrics API: without
/// domains the wire cost of causal ordering grows quadratically with the
/// number of servers, while with small fixed-size domains (the bus of
/// Figure 9/10) doubling the system leaves the per-message stamp cost
/// nearly flat.
#[test]
fn stamp_cost_quadratic_without_domains_flat_with() {
    // Single domain, 6 → 12 servers: matrix stamps are n × n, so one round
    // trip carries ~4× the stamp bytes.
    let single_small = round_trip_stamp_bytes(TopologySpec::single_domain(6), 0, 5);
    let single_big = round_trip_stamp_bytes(TopologySpec::single_domain(12), 0, 11);
    let single_ratio = single_big as f64 / single_small as f64;
    assert!(
        single_ratio > 3.0,
        "single-domain stamp bytes should grow ~quadratically: \
         {single_small} → {single_big} ({single_ratio:.2}×)"
    );

    // Bus of 3-server domains, 2 → 4 leaves (6 → 12 servers), cross-domain
    // round trip between the first and the last leaf: stamps are sized by
    // the domains crossed, not by the whole system.
    let bus_small = round_trip_stamp_bytes(TopologySpec::bus(2, 3), 1, 5);
    let bus_big = round_trip_stamp_bytes(TopologySpec::bus(4, 3), 1, 11);
    let bus_ratio = bus_big as f64 / bus_small as f64;
    assert!(
        bus_ratio < 2.5,
        "small-domain stamp bytes should stay nearly flat: \
         {bus_small} → {bus_big} ({bus_ratio:.2}×)"
    );
    assert!(
        single_ratio > bus_ratio,
        "domains must beat the flat organization: {single_ratio:.2}× vs {bus_ratio:.2}×"
    );
}

/// The JSON exposition carries the same totals as the typed snapshot.
#[test]
fn json_exposition_matches_snapshot() {
    let mom = MomBuilder::new(TopologySpec::single_domain(2))
        .build()
        .unwrap();
    mom.register_agent(ServerId::new(1), 1, Box::new(EchoAgent))
        .unwrap();
    mom.send(aid(0, 9), aid(1, 1), Notification::signal("hi"))
        .unwrap();
    assert!(mom.quiesce(Duration::from_secs(30)));
    let snap = mom.metrics();
    let json = snap.render_json();
    assert!(json.contains("\"aaa_channel_delivered_total\""));
    assert!(snap.sum_counter("aaa_channel_delivered_total") >= 2);
    mom.shutdown();
}
