//! The main theorem, stress-tested end to end.
//!
//! P2 ⇒ P1: on any *acyclic* domain decomposition, the MOM's purely local
//! (per-domain) causal ordering yields globally causal delivery. We run
//! randomized topologies and workloads through the real threaded runtime
//! and check every recorded trace with the independent `aaa-trace`
//! checkers.

mod common;

use std::time::Duration;

use aaa_middleware::base::{AgentId, ServerId};
use aaa_middleware::mom::{ClockConfig, EchoAgent, MomBuilder, Notification, StampMode};

fn aid(s: u16, l: u32) -> AgentId {
    AgentId::new(ServerId::new(s), l)
}

fn run_random_topology(seed: u64, mode: StampMode) {
    let spec = common::random_acyclic_spec(seed, 4, 2, 4);
    let n = spec.server_count() as u16;
    let mom = MomBuilder::new(spec)
        .clock(ClockConfig::mode(mode))
        .build()
        .expect("valid topology");
    for s in 0..n {
        mom.register_agent(ServerId::new(s), 1, Box::new(EchoAgent))
            .expect("registration succeeds");
    }
    let pairs = common::random_pairs(seed.wrapping_mul(31), n, 60);
    for (from, to) in pairs {
        mom.send(aid(from, 77), aid(to, 1), Notification::signal("m"))
            .expect("send accepted");
    }
    assert!(
        mom.quiesce(Duration::from_secs(30)),
        "seed {seed}: no quiescence"
    );
    let trace = mom.trace().expect("trace well-formed");
    assert_eq!(trace.message_count(), 120, "seed {seed}: sends + echoes");
    assert!(
        trace.check_causality().is_ok(),
        "seed {seed}: GLOBAL CAUSALITY VIOLATED on an acyclic topology"
    );
    // And the per-domain restrictions hold too (the theorem's hypothesis,
    // enforced by the implementation).
    for d in mom.topology().domains() {
        assert!(
            trace.check_causality_in(d.members()).is_ok(),
            "seed {seed}: domain {} not locally causal",
            d.id()
        );
    }
    mom.shutdown();
}

#[test]
fn theorem_holds_on_random_acyclic_topologies_updates_mode() {
    for seed in 0..8 {
        run_random_topology(seed, StampMode::Updates);
    }
}

#[test]
fn theorem_holds_on_random_acyclic_topologies_full_mode() {
    for seed in 100..104 {
        run_random_topology(seed, StampMode::Full);
    }
}

#[test]
fn theorem_holds_on_deep_daisy() {
    use aaa_middleware::topology::TopologySpec;
    // A 6-domain daisy: messages between the ends cross 5 routers.
    let mom = MomBuilder::new(TopologySpec::daisy(6, 3)).build().unwrap();
    let n = mom.topology().server_count() as u16;
    for s in 0..n {
        mom.register_agent(ServerId::new(s), 1, Box::new(EchoAgent))
            .unwrap();
    }
    let last = n - 1;
    for i in 0..20 {
        // Alternate ends and middle to exercise long and short routes.
        let to = if i % 2 == 0 { last } else { n / 2 };
        mom.send(aid(0, 9), aid(to, 1), Notification::signal("m"))
            .unwrap();
    }
    assert!(mom.quiesce(Duration::from_secs(30)));
    let trace = mom.trace().unwrap();
    assert!(trace.check_causality().is_ok());
    assert_eq!(trace.message_count(), 40);
    mom.shutdown();
}

#[test]
fn theorem_holds_on_figure2_with_bursty_traffic() {
    use aaa_middleware::topology::TopologySpec;
    let spec = TopologySpec::from_domains(vec![
        vec![0, 1, 2],
        vec![3, 4],
        vec![6, 7],
        vec![2, 4, 5, 6],
    ]);
    let mom = MomBuilder::new(spec).build().unwrap();
    for s in 0..8 {
        mom.register_agent(ServerId::new(s), 1, Box::new(EchoAgent))
            .unwrap();
    }
    // Bursts: every server fires at every other server back-to-back.
    for from in 0..8u16 {
        for to in 0..8u16 {
            if from != to {
                mom.send(aid(from, 9), aid(to, 1), Notification::signal("b"))
                    .unwrap();
            }
        }
    }
    assert!(mom.quiesce(Duration::from_secs(30)));
    let trace = mom.trace().unwrap();
    assert_eq!(trace.message_count(), 2 * 8 * 7);
    assert!(trace.check_causality().is_ok());
    mom.shutdown();
}
