//! Seeded fault plans and the deterministic decision engine.
//!
//! A [`FaultPlan`] is a *pure description* of network misbehaviour: per-link
//! drop/duplicate/delay probabilities, timed partition windows and a crash
//! schedule, all rooted in one seed. A [`FaultInjector`] turns the plan into
//! decisions — exactly **one** RNG draw per datagram regardless of outcome,
//! so a run is reproducible from `(plan, workload)` alone and two plans that
//! differ only in probabilities still walk the same decision stream.

use aaa_base::{AgentId, Error, Result, ServerId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Seed perturbation for the churn schedule generator, so drawing a churn
/// schedule never disturbs the injector's per-datagram decision stream
/// (which is seeded with the unmodified plan seed).
const CHURN_SEED_SALT: u64 = 0x9e37_79b9_7f4a_7c15;

/// Extra latency (in plan ticks — virtual milliseconds in the simulator)
/// added to a datagram selected for delay/reorder, when the plan does not
/// override it.
pub const DEFAULT_DELAY_TICKS: u64 = 5;

/// Per-link fault probabilities. Probabilities are disjoint outcomes of a
/// single lottery, so their sum must stay below `1.0`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkFaults {
    /// Probability that a datagram is lost in transit.
    pub drop: f64,
    /// Probability that a datagram is delivered twice.
    pub duplicate: f64,
    /// Probability that a datagram is held back and re-offered later
    /// (reordering it behind newer traffic).
    pub delay: f64,
}

impl LinkFaults {
    /// No faults at all: every datagram is delivered exactly once, in order.
    pub const NONE: LinkFaults = LinkFaults {
        drop: 0.0,
        duplicate: 0.0,
        delay: 0.0,
    };

    /// Drop-only faults, the shape of the legacy `FaultConfig`.
    pub fn drop_only(p: f64) -> LinkFaults {
        LinkFaults {
            drop: p,
            ..LinkFaults::NONE
        }
    }

    /// Checks every probability is in `[0, 1)` and the outcomes are
    /// mutually exclusive (sum < 1).
    ///
    /// # Errors
    ///
    /// Returns [`Error::Config`] describing the defect.
    pub fn validate(&self) -> Result<()> {
        for (name, p) in [
            ("drop", self.drop),
            ("duplicate", self.duplicate),
            ("delay", self.delay),
        ] {
            if !(0.0..1.0).contains(&p) {
                return Err(Error::Config(format!(
                    "{name} probability {p} outside [0, 1)"
                )));
            }
        }
        let sum = self.drop + self.duplicate + self.delay;
        if sum >= 1.0 {
            return Err(Error::Config(format!(
                "fault probabilities sum to {sum}, leaving no probability of delivery"
            )));
        }
        Ok(())
    }
}

/// A timed, symmetric partition window: while `from_tick <= tick <
/// until_tick`, no datagram crosses between the two servers (either
/// direction).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Partition {
    /// The two servers cut off from each other.
    pub between: (ServerId, ServerId),
    /// First tick (inclusive) of the window.
    pub from_tick: u64,
    /// First tick after the window (exclusive); `u64::MAX` never heals.
    pub until_tick: u64,
}

impl Partition {
    /// `true` if this window blocks traffic between `a` and `b` at `tick`.
    pub fn blocks(&self, a: ServerId, b: ServerId, tick: u64) -> bool {
        let (x, y) = self.between;
        let on_link = (a == x && b == y) || (a == y && b == x);
        on_link && tick >= self.from_tick && tick < self.until_tick
    }
}

/// One entry of a crash schedule. The injector itself never crashes a
/// server — it has no access to runtime state — so the schedule is
/// *consumed by the harness* driving the run (`Simulation::crash`/
/// `recover`, `Mom::crash`/`recover`), keeping the plan the single seeded
/// source of truth for when crashes happen.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashEvent {
    /// The server to crash.
    pub server: ServerId,
    /// Tick at which the crash occurs.
    pub at_tick: u64,
    /// Tick at which the server recovers, if it does.
    pub recover_at: Option<u64>,
}

/// One entry of a subscriber-churn schedule: the subscriber drops off the
/// relay at `at_tick` and, if `reconnect_at` is set, comes back later.
/// Like [`CrashEvent`], churn is *consumed by the harness* driving the run
/// (`Mom::relay_disconnect` / `relay_connect`): the plan stays the single
/// seeded source of truth for when subscribers flap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChurnEvent {
    /// The subscriber that disconnects.
    pub subscriber: AgentId,
    /// Tick at which the subscriber disconnects.
    pub at_tick: u64,
    /// Tick at which it reconnects, if it does.
    pub reconnect_at: Option<u64>,
}

/// A seeded, fully deterministic description of network misbehaviour.
///
/// # Examples
///
/// ```
/// use aaa_base::ServerId;
/// use aaa_chaos::{FaultPlan, LinkFaults};
///
/// let plan = FaultPlan::new(42)
///     .faults(LinkFaults { drop: 0.2, duplicate: 0.05, delay: 0.05 })
///     .partition((ServerId::new(0), ServerId::new(1)), 100, 400)
///     .crash(ServerId::new(2), 250, Some(600));
/// assert!(plan.validate().is_ok());
/// ```
#[derive(Debug, Clone)]
pub struct FaultPlan {
    /// Seed of the decision stream.
    pub seed: u64,
    /// Fault probabilities applied to links without an override.
    pub default_faults: LinkFaults,
    /// Per-link (directed) overrides.
    pub overrides: Vec<((ServerId, ServerId), LinkFaults)>,
    /// Timed partition windows.
    pub partitions: Vec<Partition>,
    /// Crash schedule, consumed by the harness driving the run.
    pub crashes: Vec<CrashEvent>,
    /// Subscriber-churn schedule, consumed by the harness driving the run.
    pub churn: Vec<ChurnEvent>,
    /// Extra latency, in ticks, for a delayed datagram.
    pub delay_ticks: u64,
}

impl FaultPlan {
    /// A plan with the given seed and no faults.
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            default_faults: LinkFaults::NONE,
            overrides: Vec::new(),
            partitions: Vec::new(),
            crashes: Vec::new(),
            churn: Vec::new(),
            delay_ticks: DEFAULT_DELAY_TICKS,
        }
    }

    /// The legacy shape: i.i.d. datagram loss with probability `p` on
    /// every link. Draw-for-draw compatible with the historical
    /// `FaultConfig` path (same seed, same losses).
    pub fn drop_only(p: f64, seed: u64) -> FaultPlan {
        FaultPlan::new(seed).faults(LinkFaults::drop_only(p))
    }

    /// Sets the default per-link fault probabilities.
    #[must_use]
    pub fn faults(mut self, faults: LinkFaults) -> FaultPlan {
        self.default_faults = faults;
        self
    }

    /// Overrides the fault probabilities of the directed link `from → to`.
    #[must_use]
    pub fn link(mut self, from: ServerId, to: ServerId, faults: LinkFaults) -> FaultPlan {
        self.overrides.push(((from, to), faults));
        self
    }

    /// Adds a symmetric partition window.
    #[must_use]
    pub fn partition(
        mut self,
        between: (ServerId, ServerId),
        from_tick: u64,
        until_tick: u64,
    ) -> FaultPlan {
        self.partitions.push(Partition {
            between,
            from_tick,
            until_tick,
        });
        self
    }

    /// Adds a crash event to the schedule.
    #[must_use]
    pub fn crash(mut self, server: ServerId, at_tick: u64, recover_at: Option<u64>) -> FaultPlan {
        self.crashes.push(CrashEvent {
            server,
            at_tick,
            recover_at,
        });
        self
    }

    /// Adds a subscriber-churn event to the schedule.
    #[must_use]
    pub fn churn(
        mut self,
        subscriber: AgentId,
        at_tick: u64,
        reconnect_at: Option<u64>,
    ) -> FaultPlan {
        self.churn.push(ChurnEvent {
            subscriber,
            at_tick,
            reconnect_at,
        });
        self
    }

    /// Generates `events` disconnect/reconnect pairs over `subscribers`
    /// with a zipfian rank distribution (exponent `s`): the first
    /// subscriber in the slice flaps the most, the tail barely at all —
    /// the skew real pub/sub churn exhibits. Disconnect ticks are drawn
    /// uniformly over `[0, horizon)`; each outage lasts between one tick
    /// and a tenth of the horizon. The schedule derives from the plan
    /// seed through a salt, so it never perturbs the injector's
    /// per-datagram decision stream, and is sorted by disconnect tick.
    #[must_use]
    pub fn zipf_churn(mut self, subscribers: &[AgentId], events: usize, horizon: u64) -> FaultPlan {
        const S: f64 = 1.1; // classic zipf exponent, mildly super-harmonic
        if subscribers.is_empty() || events == 0 || horizon == 0 {
            return self;
        }
        let weights: Vec<f64> = (0..subscribers.len())
            .map(|rank| 1.0 / ((rank + 1) as f64).powf(S))
            .collect();
        let total: f64 = weights.iter().sum();
        let mut rng = StdRng::seed_from_u64(self.seed ^ CHURN_SEED_SALT);
        let max_outage = (horizon / 10).max(1);
        let mut drawn = Vec::with_capacity(events);
        for _ in 0..events {
            let mut x: f64 = rng.gen::<f64>() * total;
            let mut pick = subscribers.len() - 1;
            for (i, w) in weights.iter().enumerate() {
                if x < *w {
                    pick = i;
                    break;
                }
                x -= w;
            }
            let at_tick = rng.gen_range(0..horizon);
            let outage = rng.gen_range(1..=max_outage);
            drawn.push(ChurnEvent {
                subscriber: subscribers[pick],
                at_tick,
                reconnect_at: Some(at_tick.saturating_add(outage)),
            });
        }
        drawn.sort_by_key(|e| e.at_tick);
        self.churn.extend(drawn);
        self
    }

    /// Sets the extra latency, in ticks, of a delayed datagram.
    #[must_use]
    pub fn delay_ticks(mut self, ticks: u64) -> FaultPlan {
        self.delay_ticks = ticks.max(1);
        self
    }

    /// The fault probabilities in effect on the directed link `from → to`.
    pub fn faults_for(&self, from: ServerId, to: ServerId) -> LinkFaults {
        self.overrides
            .iter()
            .rev()
            .find(|((f, t), _)| *f == from && *t == to)
            .map(|(_, faults)| *faults)
            .unwrap_or(self.default_faults)
    }

    /// Validates every probability set in the plan.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Config`] describing the first defect.
    pub fn validate(&self) -> Result<()> {
        self.default_faults.validate()?;
        for (_, faults) in &self.overrides {
            faults.validate()?;
        }
        for p in &self.partitions {
            if p.from_tick >= p.until_tick {
                return Err(Error::Config(format!(
                    "partition window [{}, {}) is empty",
                    p.from_tick, p.until_tick
                )));
            }
        }
        for c in &self.churn {
            if c.reconnect_at.is_some_and(|r| r <= c.at_tick) {
                return Err(Error::Config(format!(
                    "churn event for {:?} reconnects at {:?}, not after tick {}",
                    c.subscriber, c.reconnect_at, c.at_tick
                )));
            }
        }
        Ok(())
    }
}

/// The decision taken for one datagram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Deliver normally.
    Deliver,
    /// Lose the datagram (link-layer retransmission repairs it).
    Drop,
    /// Deliver the datagram twice (duplicate suppression absorbs it).
    Duplicate,
    /// Hold the datagram back and re-offer it later (reordering).
    Delay,
    /// Blocked by an active partition window (no RNG consumed).
    Block,
}

/// Cumulative counts of the injector's decisions.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct FaultStats {
    /// Datagrams decided on.
    pub decided: u64,
    /// Datagrams dropped by the loss lottery.
    pub dropped: u64,
    /// Datagrams duplicated.
    pub duplicated: u64,
    /// Datagrams delayed/reordered.
    pub delayed: u64,
    /// Datagrams blocked by a partition window.
    pub blocked: u64,
}

/// The seeded decision engine over a [`FaultPlan`].
///
/// Decisions consume exactly one RNG draw per datagram (partition blocks
/// consume none), so the loss pattern depends only on the plan's seed and
/// the order datagrams are offered — the property every deterministic
/// replay in the test suite rests on.
#[derive(Debug)]
pub struct FaultInjector {
    plan: FaultPlan,
    rng: StdRng,
    stats: FaultStats,
}

impl FaultInjector {
    /// Builds an injector over a validated plan.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Config`] if the plan is invalid.
    pub fn new(plan: FaultPlan) -> Result<FaultInjector> {
        plan.validate()?;
        let rng = StdRng::seed_from_u64(plan.seed);
        Ok(FaultInjector {
            plan,
            rng,
            stats: FaultStats::default(),
        })
    }

    /// The plan this injector executes.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Cumulative decision counts.
    pub fn stats(&self) -> FaultStats {
        self.stats
    }

    /// Decides the fate of one datagram on the link `from → to` at `tick`.
    pub fn decide(&mut self, from: ServerId, to: ServerId, tick: u64) -> FaultAction {
        self.stats.decided = self.stats.decided.saturating_add(1);
        if self
            .plan
            .partitions
            .iter()
            .any(|p| p.blocks(from, to, tick))
        {
            self.stats.blocked = self.stats.blocked.saturating_add(1);
            return FaultAction::Block;
        }
        let f = self.plan.faults_for(from, to);
        // One uniform draw splits into the disjoint outcomes; drop occupies
        // the prefix [0, drop) so `drop_only` plans are draw-for-draw
        // compatible with the legacy `gen_bool(p)` decision stream.
        let x: f64 = self.rng.gen();
        if x < f.drop {
            self.stats.dropped = self.stats.dropped.saturating_add(1);
            FaultAction::Drop
        } else if x < f.drop + f.duplicate {
            self.stats.duplicated = self.stats.duplicated.saturating_add(1);
            FaultAction::Duplicate
        } else if x < f.drop + f.duplicate + f.delay {
            self.stats.delayed = self.stats.delayed.saturating_add(1);
            FaultAction::Delay
        } else {
            FaultAction::Deliver
        }
    }

    /// Adds a partition window while the injector is running (used by
    /// [`ChaosHandle`](crate::ChaosHandle) to cut links mid-test).
    pub fn add_partition(&mut self, partition: Partition) {
        self.plan.partitions.push(partition);
    }

    /// Replaces the default per-link fault probabilities while the
    /// injector is running. Invalid probabilities are ignored (the
    /// previous faults stay in effect).
    pub fn set_default_faults(&mut self, faults: LinkFaults) {
        if faults.validate().is_ok() {
            self.plan.default_faults = faults;
        }
    }

    /// Heals the network: clears every partition window and zeroes every
    /// fault probability. Cumulative statistics are preserved.
    pub fn heal_all(&mut self) {
        self.plan.partitions.clear();
        self.plan.default_faults = LinkFaults::NONE;
        for (_, faults) in &mut self.plan.overrides {
            *faults = LinkFaults::NONE;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(i: u16) -> ServerId {
        ServerId::new(i)
    }

    #[test]
    fn same_seed_same_decisions() {
        let plan = FaultPlan::new(7).faults(LinkFaults {
            drop: 0.3,
            duplicate: 0.1,
            delay: 0.1,
        });
        let run = || {
            let mut inj = FaultInjector::new(plan.clone()).unwrap();
            (0..200)
                .map(|t| inj.decide(s(0), s(1), t))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn drop_only_matches_legacy_gen_bool_stream() {
        // The single-lottery decision must reproduce the exact drop pattern
        // of the historical `rng.gen_bool(p)` per-datagram decision.
        let p = 0.25;
        let seed = 11;
        let mut inj = FaultInjector::new(FaultPlan::drop_only(p, seed)).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        for t in 0..500 {
            let legacy = rng.gen_bool(p);
            let action = inj.decide(s(0), s(1), t);
            assert_eq!(legacy, action == FaultAction::Drop, "tick {t}");
        }
    }

    #[test]
    fn partition_blocks_symmetrically_and_heals() {
        let plan = FaultPlan::new(0).partition((s(0), s(1)), 10, 20);
        let mut inj = FaultInjector::new(plan).unwrap();
        assert_eq!(inj.decide(s(0), s(1), 9), FaultAction::Deliver);
        assert_eq!(inj.decide(s(0), s(1), 10), FaultAction::Block);
        assert_eq!(inj.decide(s(1), s(0), 19), FaultAction::Block);
        assert_eq!(inj.decide(s(2), s(1), 15), FaultAction::Deliver);
        assert_eq!(inj.decide(s(0), s(1), 20), FaultAction::Deliver);
        assert_eq!(inj.stats().blocked, 2);
    }

    #[test]
    fn heal_all_stops_every_fault() {
        let plan = FaultPlan::new(3)
            .faults(LinkFaults::drop_only(0.9))
            .partition((s(0), s(1)), 0, u64::MAX);
        let mut inj = FaultInjector::new(plan).unwrap();
        assert_eq!(inj.decide(s(0), s(1), 0), FaultAction::Block);
        inj.heal_all();
        for t in 0..100 {
            assert_eq!(inj.decide(s(0), s(1), t), FaultAction::Deliver);
        }
    }

    #[test]
    fn per_link_overrides_take_precedence() {
        let plan = FaultPlan::new(1).faults(LinkFaults::NONE).link(
            s(0),
            s(1),
            LinkFaults::drop_only(0.999),
        );
        let mut inj = FaultInjector::new(plan).unwrap();
        let dropped = (0..100)
            .filter(|&t| inj.decide(s(0), s(1), t) == FaultAction::Drop)
            .count();
        assert!(dropped > 90, "override must apply: {dropped}");
        // The reverse direction uses the (fault-free) default.
        assert_eq!(inj.decide(s(1), s(0), 0), FaultAction::Deliver);
    }

    #[test]
    fn invalid_plans_are_rejected() {
        assert!(FaultPlan::drop_only(1.5, 0).validate().is_err());
        assert!(FaultPlan::new(0)
            .faults(LinkFaults {
                drop: 0.5,
                duplicate: 0.4,
                delay: 0.2,
            })
            .validate()
            .is_err());
        assert!(FaultPlan::new(0)
            .partition((s(0), s(1)), 5, 5)
            .validate()
            .is_err());
        assert!(FaultInjector::new(FaultPlan::drop_only(-0.1, 0)).is_err());
    }

    fn a(srv: u16, local: u32) -> AgentId {
        AgentId::new(s(srv), local)
    }

    #[test]
    fn zipf_churn_is_deterministic_and_skewed() {
        let subs: Vec<AgentId> = (0..100).map(|i| a(0, i)).collect();
        let gen = || FaultPlan::new(42).zipf_churn(&subs, 500, 10_000).churn;
        let once = gen();
        assert_eq!(once, gen(), "same seed must yield the same schedule");
        assert_eq!(once.len(), 500);
        assert!(once.windows(2).all(|w| w[0].at_tick <= w[1].at_tick));
        // Zipf skew: the head rank flaps far more often than a tail rank.
        let hits = |sub: AgentId| once.iter().filter(|e| e.subscriber == sub).count();
        assert!(
            hits(subs[0]) > 10 * hits(subs[99]).max(1) / 2,
            "head {} vs tail {}",
            hits(subs[0]),
            hits(subs[99])
        );
        for e in &once {
            let r = e.reconnect_at.expect("generated outages always heal");
            assert!(r > e.at_tick && r <= e.at_tick + 1_000);
        }
    }

    #[test]
    fn churn_schedule_does_not_perturb_the_decision_stream() {
        let subs: Vec<AgentId> = (0..10).map(|i| a(0, i)).collect();
        let bare = FaultPlan::new(7).faults(LinkFaults::drop_only(0.3));
        let churned = bare.clone().zipf_churn(&subs, 100, 1_000);
        let stream = |plan: FaultPlan| {
            let mut inj = FaultInjector::new(plan).unwrap();
            (0..200)
                .map(|t| inj.decide(s(0), s(1), t))
                .collect::<Vec<_>>()
        };
        assert_eq!(stream(bare), stream(churned));
    }

    #[test]
    fn churn_validation_rejects_instant_reconnect() {
        let plan = FaultPlan::new(0).churn(a(0, 1), 50, Some(50));
        assert!(plan.validate().is_err());
        let ok = FaultPlan::new(0)
            .churn(a(0, 1), 50, Some(51))
            .churn(a(0, 2), 10, None);
        assert!(ok.validate().is_ok());
    }

    #[test]
    fn crash_schedule_is_carried_verbatim() {
        let plan = FaultPlan::new(9).crash(s(2), 100, Some(300));
        assert_eq!(
            plan.crashes,
            vec![CrashEvent {
                server: s(2),
                at_tick: 100,
                recover_at: Some(300),
            }]
        );
    }
}
