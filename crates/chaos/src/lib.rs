#![warn(missing_docs)]
#![forbid(unsafe_code)]

//! Deterministic fault injection for the AAA MOM.
//!
//! The paper's causality argument (§4.3) assumes reliable FIFO channels
//! and live causal routers; the original middleware earned that
//! assumption with persistence and retransmission. This crate is the
//! adversary that keeps the reproduction honest: a seeded, fully
//! deterministic description of network misbehaviour — loss,
//! duplication, delay/reorder, partition windows, crash schedules —
//! applied identically in the discrete-event simulator and in the
//! threaded runtime.
//!
//! - [`FaultPlan`] — the seeded description: per-link
//!   [`LinkFaults`] probabilities, timed [`Partition`] windows and a
//!   [`CrashEvent`] schedule;
//! - [`FaultInjector`] — the decision engine: one RNG draw per datagram,
//!   so a seed fully determines the fault pattern;
//! - [`FaultTransport`] — a [`Transport`](aaa_net::Transport) wrapper
//!   that chaos-tests the threaded runtime over any inner transport,
//!   steered at runtime through a [`ChaosHandle`];
//! - the simulator consumes the same plan via
//!   `Simulation::with_fault_plan` (the historical drop-only
//!   `FaultConfig` remains as a thin alias).
//!
//! Determinism contract: with a fixed plan (seed included) and a fixed
//! offer order, every decision, statistic and partition verdict is
//! bit-identical across runs — which is what lets `tests/chaos.rs`
//! print a failing seed and reproduce it in one line.

pub mod plan;
pub mod transport;

pub use plan::{
    ChurnEvent, CrashEvent, FaultAction, FaultInjector, FaultPlan, FaultStats, LinkFaults,
    Partition, DEFAULT_DELAY_TICKS,
};
pub use transport::{ChaosHandle, FaultTransport};
