//! A chaos [`Transport`] wrapper for the threaded runtime.
//!
//! [`FaultTransport`] composes over any inner transport (the in-memory
//! mesh, localhost TCP) and runs every outgoing packet through a shared
//! [`FaultInjector`]: packets are dropped, duplicated, held back and
//! re-offered out of order, or blocked by partition windows — exactly the
//! misbehaviour a causal middleware must survive. The wrapped transport's
//! own reliability machinery (link-layer retransmission, duplicate
//! suppression, reorder buffering) is what repairs the damage; the chaos
//! layer only creates it.
//!
//! A [`ChaosHandle`] stays with the test harness and steers the shared
//! injector at runtime: cut a link *now*, heal everything, read the
//! decision statistics. "Ticks" in this module are decision counts (one
//! per offered packet or batch), which makes partition windows meaningful
//! without any wall clock.
//!
//! Every wrapper also owns a [`PeerHealth`] failure detector fed by the
//! injector's verdicts — a blocked or failed send counts against the
//! peer, a delivered one heals it — so chaos tests observe the same
//! `aaa_net_peer_state` transitions a production outage would produce.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use aaa_base::{Result, ServerId};
use aaa_net::health::{PeerHealth, PeerState};
use aaa_net::memory::Incoming;
use aaa_net::{ReadyNotifier, Transport};
use aaa_obs::Meter;
use bytes::Bytes;
use parking_lot::Mutex;

use crate::plan::{FaultAction, FaultInjector, FaultPlan, FaultStats, LinkFaults, Partition};

/// Shared injector state behind a [`ChaosHandle`].
#[derive(Debug)]
struct ChaosState {
    injector: Mutex<FaultInjector>,
    /// Monotone decision counter; doubles as the partition-window clock.
    tick: AtomicU64,
}

/// A cloneable control handle over the chaos layer.
///
/// Create one per test, wrap every endpoint with
/// [`FaultTransport::new`] against it, and keep the handle to steer
/// faults while the runtime is live.
#[derive(Debug, Clone)]
pub struct ChaosHandle {
    state: Arc<ChaosState>,
}

impl ChaosHandle {
    /// Builds a handle over a validated plan.
    ///
    /// # Errors
    ///
    /// Returns [`aaa_base::Error::Config`] if the plan is invalid.
    pub fn new(plan: FaultPlan) -> Result<ChaosHandle> {
        let injector = FaultInjector::new(plan)?;
        Ok(ChaosHandle {
            state: Arc::new(ChaosState {
                injector: Mutex::new(injector),
                tick: AtomicU64::new(0),
            }),
        })
    }

    /// Cumulative decision statistics across every wrapped endpoint.
    #[must_use]
    pub fn stats(&self) -> FaultStats {
        self.state.injector.lock().stats()
    }

    /// The current decision tick (one per packet or batch offered).
    #[must_use]
    pub fn tick(&self) -> u64 {
        self.state.tick.load(Ordering::Relaxed)
    }

    /// Adds a partition window `[from_tick, until_tick)` between `a`
    /// and `b` (symmetric, in decision ticks).
    pub fn add_partition(&self, between: (ServerId, ServerId), from_tick: u64, until_tick: u64) {
        self.state.injector.lock().add_partition(Partition {
            between,
            from_tick,
            until_tick,
        });
    }

    /// Cuts the link between `a` and `b` starting *now*, until healed.
    pub fn partition_now(&self, a: ServerId, b: ServerId) {
        let now = self.tick();
        self.add_partition((a, b), now, u64::MAX);
    }

    /// Replaces the default per-link fault probabilities at runtime.
    pub fn set_default_faults(&self, faults: LinkFaults) {
        self.state.injector.lock().set_default_faults(faults);
    }

    /// Heals the network: clears every partition window and zeroes every
    /// fault probability. Statistics are preserved.
    pub fn heal_all(&self) {
        self.state.injector.lock().heal_all();
    }
}

/// A [`Transport`] that injects faults from a shared [`ChaosHandle`]
/// before (maybe) forwarding to the wrapped inner transport.
#[derive(Debug)]
pub struct FaultTransport<T: Transport> {
    inner: T,
    state: Arc<ChaosState>,
    /// Packets held back by [`FaultAction::Delay`], re-offered *after*
    /// the next packet that gets through to the same peer (reordering).
    held: Mutex<HashMap<ServerId, Vec<Bytes>>>,
    health: PeerHealth,
}

impl<T: Transport> FaultTransport<T> {
    /// Wraps `inner`, drawing fault decisions from `handle`'s injector.
    ///
    /// `peers` sizes the failure detector (the number of servers in the
    /// mesh).
    #[must_use]
    pub fn new(inner: T, handle: &ChaosHandle, peers: usize) -> FaultTransport<T> {
        FaultTransport {
            inner,
            state: Arc::clone(&handle.state),
            held: Mutex::new(HashMap::new()),
            health: PeerHealth::new(peers),
        }
    }

    /// The wrapped transport.
    pub fn inner(&self) -> &T {
        &self.inner
    }

    /// This endpoint's failure detector.
    pub fn health(&self) -> &PeerHealth {
        &self.health
    }

    /// One injector decision for a packet (or whole batch) toward `to`.
    fn decide(&self, to: ServerId) -> FaultAction {
        let tick = self.state.tick.fetch_add(1, Ordering::Relaxed);
        let mut injector = self.state.injector.lock();
        injector.decide(self.inner.me(), to, tick)
    }

    /// Takes any packets held back for `to` (drops the lock before the
    /// caller forwards them, so no guard spans a send).
    fn take_held(&self, to: ServerId) -> Vec<Bytes> {
        self.held.lock().remove(&to).unwrap_or_default()
    }

    fn hold(&self, to: ServerId, packets: impl IntoIterator<Item = Bytes>) {
        self.held.lock().entry(to).or_default().extend(packets);
    }

    /// Forwards `batch` to the inner transport and feeds the outcome to
    /// the failure detector.
    fn forward(&self, to: ServerId, batch: &[Bytes]) -> Result<()> {
        match self.inner.send_batch(to, batch) {
            Ok(()) => {
                self.health.on_success(to);
                Ok(())
            }
            Err(e) => {
                self.health.on_failure(to);
                Err(e)
            }
        }
    }

    /// Applies `action` to `batch`: the common path of both `send` and
    /// `send_batch` (one decision covers the whole slice).
    fn apply(&self, to: ServerId, action: FaultAction, batch: &[Bytes]) -> Result<()> {
        match action {
            FaultAction::Block => {
                // The partition eats the packets silently; the link layer
                // retransmits once the window closes. Count it against
                // the peer so `aaa_net_peer_state` reflects the outage.
                self.health.on_failure(to);
                Ok(())
            }
            FaultAction::Drop => Ok(()),
            FaultAction::Delay => {
                self.hold(to, batch.iter().cloned());
                Ok(())
            }
            FaultAction::Duplicate => {
                self.forward(to, batch)?;
                self.forward(to, batch)?;
                self.release_held(to)
            }
            FaultAction::Deliver => {
                self.forward(to, batch)?;
                self.release_held(to)
            }
        }
    }

    /// Re-offers held packets after a packet got through — they arrive
    /// *after* newer traffic, which is the reorder.
    fn release_held(&self, to: ServerId) -> Result<()> {
        let held = self.take_held(to);
        if held.is_empty() {
            return Ok(());
        }
        self.forward(to, &held)
    }
}

impl<T: Transport> Transport for FaultTransport<T> {
    fn me(&self) -> ServerId {
        self.inner.me()
    }

    fn send(&self, to: ServerId, bytes: Bytes) -> Result<()> {
        let action = self.decide(to);
        self.apply(to, action, std::slice::from_ref(&bytes))
    }

    fn send_batch(&self, to: ServerId, batch: &[Bytes]) -> Result<()> {
        if batch.is_empty() {
            return Ok(());
        }
        let action = self.decide(to);
        self.apply(to, action, batch)
    }

    fn poll_recv(&self) -> Result<Option<Incoming>> {
        // Faults are injected on the send side only; the receive path
        // forwards unmodified so retransmitted repairs always get through.
        self.inner.poll_recv()
    }

    fn set_ready_notifier(&mut self, notifier: ReadyNotifier) {
        self.inner.set_ready_notifier(notifier);
    }

    fn attach_meter(&mut self, meter: &Meter) {
        self.inner.attach_meter(meter);
        self.health.attach_meter(meter);
    }

    fn peer_state(&self, to: ServerId) -> PeerState {
        self.health.state(to)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aaa_net::memory::MemoryNetwork;
    use std::time::Duration;

    fn s(i: u16) -> ServerId {
        ServerId::new(i)
    }

    fn wrap_pair(handle: &ChaosHandle) -> Vec<FaultTransport<aaa_net::MemoryEndpoint>> {
        MemoryNetwork::create(2)
            .into_iter()
            .map(|ep| FaultTransport::new(ep, handle, 2))
            .collect()
    }

    fn recv(ep: &FaultTransport<aaa_net::MemoryEndpoint>) -> Option<Incoming> {
        ep.inner()
            .recv_timeout(Duration::from_millis(200))
            .ok()
            .flatten()
    }

    #[test]
    fn partition_blocks_then_heal_restores() {
        let handle = ChaosHandle::new(FaultPlan::new(1)).unwrap();
        let eps = wrap_pair(&handle);
        handle.partition_now(s(0), s(1));
        eps[0].send(s(1), Bytes::from_static(b"lost")).unwrap();
        assert!(recv(&eps[1]).is_none());
        assert_eq!(handle.stats().blocked, 1);
        // Repeated blocks degrade the failure detector to Down.
        eps[0].send(s(1), Bytes::from_static(b"lost")).unwrap();
        eps[0].send(s(1), Bytes::from_static(b"lost")).unwrap();
        assert_eq!(eps[0].peer_state(s(1)), PeerState::Down);

        handle.heal_all();
        eps[0].send(s(1), Bytes::from_static(b"ok")).unwrap();
        let got = recv(&eps[1]).expect("healed link delivers");
        assert_eq!(&got.bytes[..], b"ok");
        assert_eq!(eps[0].peer_state(s(1)), PeerState::Up);
    }

    #[test]
    fn duplicate_faults_deliver_twice() {
        // Find a seed whose first draw lands in the duplicate band.
        let faults = LinkFaults {
            drop: 0.0,
            duplicate: 0.9,
            delay: 0.0,
        };
        let seed = (0..64)
            .find(|&seed| {
                let mut inj = FaultInjector::new(FaultPlan::new(seed).faults(faults)).unwrap();
                inj.decide(s(0), s(1), 0) == FaultAction::Duplicate
            })
            .expect("a duplicating seed exists");
        let handle = ChaosHandle::new(FaultPlan::new(seed).faults(faults)).unwrap();
        let eps = wrap_pair(&handle);
        eps[0].send(s(1), Bytes::from_static(b"twin")).unwrap();
        assert_eq!(&recv(&eps[1]).expect("first copy").bytes[..], b"twin");
        assert_eq!(&recv(&eps[1]).expect("second copy").bytes[..], b"twin");
        assert_eq!(handle.stats().duplicated, 1);
    }

    #[test]
    fn delay_reorders_behind_newer_traffic() {
        // Find a seed where draw 1 delays and draw 2 delivers.
        let faults = LinkFaults {
            drop: 0.0,
            duplicate: 0.0,
            delay: 0.5,
        };
        let seed = (0..256)
            .find(|&seed| {
                let mut inj = FaultInjector::new(FaultPlan::new(seed).faults(faults)).unwrap();
                inj.decide(s(0), s(1), 0) == FaultAction::Delay
                    && inj.decide(s(0), s(1), 1) == FaultAction::Deliver
            })
            .expect("a delay-then-deliver seed exists");
        let handle = ChaosHandle::new(FaultPlan::new(seed).faults(faults)).unwrap();
        let eps = wrap_pair(&handle);
        eps[0].send(s(1), Bytes::from_static(b"older")).unwrap();
        eps[0].send(s(1), Bytes::from_static(b"newer")).unwrap();
        // The held packet is re-offered after the newer one: reorder.
        assert_eq!(&recv(&eps[1]).expect("newer first").bytes[..], b"newer");
        assert_eq!(&recv(&eps[1]).expect("older second").bytes[..], b"older");
        assert_eq!(handle.stats().delayed, 1);
    }

    #[test]
    fn batch_costs_one_decision() {
        let handle = ChaosHandle::new(FaultPlan::new(3)).unwrap();
        let eps = wrap_pair(&handle);
        let batch: Vec<Bytes> = (0..5).map(|i| Bytes::from(vec![i as u8])).collect();
        eps[0].send_batch(s(1), &batch).unwrap();
        assert_eq!(handle.stats().decided, 1);
        for i in 0..5u8 {
            assert_eq!(&recv(&eps[1]).expect("batch packet").bytes[..], &[i]);
        }
        // Empty batches consume no decision.
        eps[0].send_batch(s(1), &[]).unwrap();
        assert_eq!(handle.stats().decided, 1);
    }
}
