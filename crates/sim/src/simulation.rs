//! The discrete-event loop.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Arc;

use aaa_base::{Absorb, AgentId, Result, ServerId, VDuration, VTime};
use aaa_chaos::{FaultAction, FaultInjector, FaultPlan, FaultStats};
use aaa_mom::{
    Agent, DeliveryPolicy, Notification, SendOptions, ServerConfig, ServerCore, StepStats,
};
use aaa_obs::{Gauge, LatencyTracker, Meter, MetricsSnapshot, Registry};
use aaa_storage::MemoryStore;
use aaa_topology::Topology;
use aaa_trace::TraceRecorder;
use bytes::Bytes;

use crate::cost::CostModel;

#[derive(Debug)]
enum Event {
    Datagram {
        from: ServerId,
        to: ServerId,
        bytes: Bytes,
    },
    Client {
        from: AgentId,
        to: AgentId,
        note: Notification,
        policy: DeliveryPolicy,
    },
    /// A burst submitted as one transaction: batched stamping, coalesced
    /// wire packets, one group commit.
    ClientBatch {
        from: AgentId,
        batch: Vec<(AgentId, Notification)>,
    },
    /// Retransmission-timer poll for one server (fault injection and
    /// crash recovery only).
    Timer { server: usize },
}

/// A deterministic simulation of a complete MOM.
///
/// Servers are single-threaded resources: each event occupies its target
/// server for the duration given by the [`CostModel`], and transmissions
/// depart when the processing that produced them completes, arriving one
/// link latency later. Events tie-break on insertion order, so runs are
/// exactly reproducible.
pub struct Simulation {
    topology: Arc<Topology>,
    cores: Vec<ServerCore>,
    config: ServerConfig,
    stores: Vec<Arc<MemoryStore>>,
    model: CostModel,
    heap: BinaryHeap<Reverse<(VTime, u64, usize)>>,
    events: Vec<Option<Event>>,
    busy: Vec<VTime>,
    now: VTime,
    last_delivery: VTime,
    seq: u64,
    cumulative: Vec<StepStats>,
    fault: Option<FaultInjector>,
    dropped_by_crash: u64,
    timer_armed: Vec<Option<VTime>>,
    crashed: Vec<bool>,
    recorder: Option<TraceRecorder>,
    registry: Option<Registry>,
    latency: Option<LatencyTracker>,
    vtime_gauge: Option<Gauge>,
}

impl std::fmt::Debug for Simulation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulation")
            .field("servers", &self.cores.len())
            .field("now", &self.now)
            .field("queued_events", &self.heap.len())
            .finish_non_exhaustive()
    }
}

impl Simulation {
    /// Builds a simulation of `topology` with the given stamp mode and
    /// cost model.
    ///
    /// # Errors
    ///
    /// Propagates server construction errors (none for a validated
    /// topology).
    pub fn new(topology: Topology, config: ServerConfig, model: CostModel) -> Result<Simulation> {
        // Without fault injection the simulated network is reliable, so
        // retransmission timers must never fire: give links an enormous
        // RTO and never schedule timer events.
        let config = ServerConfig {
            rto: VDuration::from_millis(u64::MAX / 2_000),
            ..config
        };
        Self::build(topology, config, model, None)
    }

    /// Builds a simulation executing a full [`FaultPlan`]: per-link
    /// drop/duplicate/delay probabilities and timed partition windows.
    /// The plan's *tick* unit is **virtual-time milliseconds** (a
    /// partition `[100, 400)` is active from 100 ms to 400 ms of
    /// simulated time); a delayed datagram is re-offered
    /// [`FaultPlan::delay_ticks`] milliseconds later, overtaking anything
    /// sent in between. Crash schedules ([`FaultPlan::crashes`]) are not
    /// executed by the event loop — drive them from the harness via
    /// [`Simulation::crash`]/[`Simulation::recover`], which need the
    /// recovery agents.
    ///
    /// # Errors
    ///
    /// Propagates server construction errors, or
    /// [`aaa_base::Error::Config`] if the plan is invalid.
    pub fn with_fault_plan(
        topology: Topology,
        config: ServerConfig,
        model: CostModel,
        plan: FaultPlan,
    ) -> Result<Simulation> {
        Self::build(topology, config, model, Some(FaultInjector::new(plan)?))
    }

    fn build(
        topology: Topology,
        config: ServerConfig,
        model: CostModel,
        fault: Option<FaultInjector>,
    ) -> Result<Simulation> {
        let topology = Arc::new(topology);
        let stores: Vec<Arc<MemoryStore>> = topology
            .servers()
            .map(|_| Arc::new(MemoryStore::new()))
            .collect();
        let cores = topology
            .servers()
            .map(|s| {
                ServerCore::new(
                    &topology,
                    s,
                    config,
                    stores[s.as_usize()].clone() as Arc<dyn aaa_storage::StableStore>,
                )
            })
            .collect::<Result<Vec<_>>>()?;
        let n = cores.len();
        Ok(Simulation {
            topology,
            cores,
            config,
            stores,
            model,
            heap: BinaryHeap::new(),
            events: Vec::new(),
            busy: vec![VTime::ZERO; n],
            now: VTime::ZERO,
            last_delivery: VTime::ZERO,
            seq: 0,
            cumulative: vec![StepStats::default(); n],
            fault,
            dropped_by_crash: 0,
            timer_armed: vec![None; n],
            crashed: vec![false; n],
            recorder: None,
            registry: None,
            latency: None,
            vtime_gauge: None,
        })
    }

    /// Attaches a metrics registry: every server core gets a meter
    /// labelled `server="<id>"` — publishing the **same metric vocabulary
    /// as the threaded runtime**, only on virtual time — plus one
    /// `aaa_sim_vtime_us` gauge tracking the simulation clock. Delivery
    /// latencies observed through `aaa_server_delivery_latency_us` are
    /// virtual-time microseconds.
    pub fn attach_registry(&mut self, registry: &Registry) {
        let tracker = LatencyTracker::new();
        for (i, core) in self.cores.iter_mut().enumerate() {
            let meter = Meter::new(registry).with_label("server", i.to_string());
            core.attach_meter(&meter);
            core.set_latency_tracker(tracker.clone());
        }
        self.vtime_gauge = Some(Meter::new(registry).gauge(
            "aaa_sim_vtime_us",
            "Current virtual time of the simulation, in microseconds",
        ));
        self.registry = Some(registry.clone());
        self.latency = Some(tracker);
    }

    /// Snapshot of every metric, if a registry is attached; empty
    /// otherwise.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.registry
            .as_ref()
            .map(|r| r.snapshot())
            .unwrap_or_default()
    }

    /// Crashes `server` at the current virtual time: its in-memory state
    /// is discarded and datagrams addressed to it are dropped until
    /// [`Simulation::recover`]. Its stable store survives, so with
    /// [`ServerConfig::persist`] enabled the server resumes transparently.
    ///
    /// Crash recovery relies on link retransmission timers, so build the
    /// simulation with [`Simulation::with_fault_plan`] (an empty plan is
    /// fine) — the plain constructor disables timers by using an
    /// effectively infinite RTO.
    ///
    /// # Panics
    ///
    /// Panics if `server` is out of range.
    pub fn crash(&mut self, server: ServerId) {
        self.crashed[server.as_usize()] = true;
    }

    /// Recovers `server` from its stable store with fresh agent instances.
    ///
    /// # Errors
    ///
    /// Propagates [`ServerCore::recover`] errors (corrupt image).
    pub fn recover(&mut self, server: ServerId, agents: Vec<(u32, Box<dyn Agent>)>) -> Result<()> {
        let s = server.as_usize();
        let start = self.busy[s].max(self.now);
        let mut core = ServerCore::recover(
            &self.topology,
            server,
            self.config,
            self.stores[s].clone() as Arc<dyn aaa_storage::StableStore>,
            agents,
            start,
        )?;
        if let Some(rec) = &self.recorder {
            core.set_recorder(rec.clone());
        }
        if let (Some(registry), Some(tracker)) = (&self.registry, &self.latency) {
            let meter = Meter::new(registry).with_label("server", s.to_string());
            core.attach_meter(&meter);
            core.set_latency_tracker(tracker.clone());
        }
        self.cores[s] = core;
        self.crashed[s] = false;
        // Retransmissions both from and to the recovered server need the
        // timers re-armed.
        for i in 0..self.cores.len() {
            self.arm_timer(i);
        }
        Ok(())
    }

    /// Number of datagrams dropped by the fault-injection loss lottery so
    /// far. Does **not** include datagrams discarded because their
    /// destination was crashed — those are counted by
    /// [`Simulation::dropped_by_crash`] (they are a consequence of the
    /// crash schedule, not of link loss, and historically went entirely
    /// uncounted).
    pub fn dropped_datagrams(&self) -> u64 {
        self.fault.as_ref().map_or(0, |f| f.stats().dropped)
    }

    /// Number of datagrams discarded because their destination server was
    /// crashed at arrival time. Kept separate from
    /// [`Simulation::dropped_datagrams`]: a crashed destination is a
    /// *host* fault repaired by recovery + retransmission, while the drop
    /// counter measures *link* loss injected by the plan.
    pub fn dropped_by_crash(&self) -> u64 {
        self.dropped_by_crash
    }

    /// Cumulative fault-injection decision statistics (zero without a
    /// plan).
    pub fn fault_stats(&self) -> FaultStats {
        self.fault
            .as_ref()
            .map_or_else(FaultStats::default, |f| f.stats())
    }

    /// Heals every injected fault from now on: partition windows are
    /// cleared and all drop/duplicate/delay probabilities drop to zero.
    /// Already-scheduled duplicates/delays still play out; statistics are
    /// preserved. Lets a harness end a chaos phase and assert the system
    /// quiesces cleanly.
    pub fn heal_faults(&mut self) {
        if let Some(f) = self.fault.as_mut() {
            f.heal_all();
        }
    }

    /// The simulated topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Current virtual time (the completion time of the latest processed
    /// work).
    pub fn now(&self) -> VTime {
        self.now
    }

    /// Virtual time of the most recent delivery to an engine.
    pub fn last_delivery(&self) -> VTime {
        self.last_delivery
    }

    /// Cumulative statistics of one server.
    ///
    /// # Panics
    ///
    /// Panics if `server` is out of range.
    pub fn stats(&self, server: ServerId) -> StepStats {
        self.cumulative[server.as_usize()]
    }

    /// Sum of the statistics over all servers.
    pub fn total_stats(&self) -> StepStats {
        let mut total = StepStats::default();
        for s in &self.cumulative {
            total.absorb(*s);
        }
        total
    }

    /// Registers an agent on a server.
    ///
    /// # Panics
    ///
    /// Panics if `server` is out of range.
    pub fn register_agent(
        &mut self,
        server: ServerId,
        local: u32,
        agent: Box<dyn Agent>,
    ) -> AgentId {
        self.cores[server.as_usize()].register_agent(local, agent)
    }

    /// Attaches a shared trace recorder to every server.
    pub fn record_into(&mut self, recorder: &TraceRecorder) {
        self.recorder = Some(recorder.clone());
        for core in &mut self.cores {
            core.set_recorder(recorder.clone());
        }
    }

    fn push(&mut self, at: VTime, ev: Event) {
        let idx = self.events.len();
        self.events.push(Some(ev));
        self.heap.push(Reverse((at, self.seq, idx)));
        self.seq += 1;
    }

    /// Schedules a causally ordered client send at the current virtual
    /// time.
    pub fn client_send(&mut self, from: AgentId, to: AgentId, note: Notification) {
        let at = self.now;
        self.push(
            at,
            Event::Client {
                from,
                to,
                note,
                policy: DeliveryPolicy::Causal,
            },
        );
    }

    /// Schedules an unordered-QoS client send at the current virtual time.
    pub fn client_send_unordered(&mut self, from: AgentId, to: AgentId, note: Notification) {
        let at = self.now;
        self.push(
            at,
            Event::Client {
                from,
                to,
                note,
                policy: DeliveryPolicy::Unordered,
            },
        );
    }

    /// Schedules a burst of causally ordered client sends processed as
    /// **one transaction** at the current virtual time: the batch is
    /// stamped together (consecutive same-hop stamps collapse into
    /// one-byte `GroupNext` continuations), coalesced into multi-frame
    /// wire packets and covered by one group commit — so the cost model
    /// charges the batch's amortized stamp bytes, not per-message
    /// matrices.
    pub fn client_send_batch(&mut self, from: AgentId, batch: Vec<(AgentId, Notification)>) {
        let at = self.now;
        self.push(at, Event::ClientBatch { from, batch });
    }

    /// Schedules a causally ordered client send at an explicit virtual
    /// time.
    pub fn client_send_at(&mut self, at: VTime, from: AgentId, to: AgentId, note: Notification) {
        self.push(
            at,
            Event::Client {
                from,
                to,
                note,
                policy: DeliveryPolicy::Causal,
            },
        );
    }

    /// Runs the event loop until no event remains, returning the final
    /// virtual time.
    ///
    /// # Errors
    ///
    /// Propagates protocol errors (misrouted frames, unknown servers) —
    /// none occur for validated topologies and well-formed workloads.
    pub fn run_until_quiet(&mut self) -> Result<VTime> {
        self.run(None)
    }

    /// Runs the event loop until no event remains at or before `deadline`,
    /// leaving later events queued. Needed for crash scenarios, where
    /// retransmissions toward a crashed server would otherwise keep the
    /// loop alive forever.
    ///
    /// # Errors
    ///
    /// Propagates protocol errors, as in [`Simulation::run_until_quiet`].
    pub fn run_until(&mut self, deadline: VTime) -> Result<VTime> {
        self.run(Some(deadline))
    }

    fn run(&mut self, deadline: Option<VTime>) -> Result<VTime> {
        while let Some(&Reverse((at, _, _))) = self.heap.peek() {
            if deadline.is_some_and(|d| at > d) {
                break;
            }
            let Some(Reverse((at, _, idx))) = self.heap.pop() else {
                break;
            };
            let ev = self.events[idx].take().expect("event consumed once");
            let (server, out) = match ev {
                Event::Datagram { from, to, bytes } => {
                    // A crashed server drops everything addressed to it;
                    // the sender's retransmission redelivers after
                    // recovery (mirrors the threaded runtime). Counted
                    // separately from link loss — see `dropped_by_crash`.
                    if self.crashed[to.as_usize()] {
                        self.dropped_by_crash += 1;
                        self.arm_timer(from.as_usize());
                        continue;
                    }
                    // Fault injection: one seeded decision per datagram.
                    // Loss and partition blocks are repaired by the
                    // sender's retransmission timer; duplicates are
                    // absorbed by the link layer's duplicate suppression;
                    // delays re-offer the datagram later (reordering),
                    // repaired by the receiver's reorder buffer. Partition
                    // ticks are virtual-time milliseconds.
                    let (action, delay_ms) = match self.fault.as_mut() {
                        Some(f) => (
                            f.decide(from, to, at.as_micros() / 1_000),
                            f.plan().delay_ticks,
                        ),
                        None => (FaultAction::Deliver, 0),
                    };
                    match action {
                        FaultAction::Drop | FaultAction::Block => {
                            self.arm_timer(from.as_usize());
                            continue;
                        }
                        FaultAction::Delay => {
                            self.push(
                                at + VDuration::from_millis(delay_ms),
                                Event::Datagram { from, to, bytes },
                            );
                            continue;
                        }
                        FaultAction::Duplicate => {
                            // Deliver now *and* re-offer an identical copy
                            // one link latency later.
                            self.push(
                                at + self.model.link_latency,
                                Event::Datagram {
                                    from,
                                    to,
                                    bytes: bytes.clone(),
                                },
                            );
                        }
                        FaultAction::Deliver => {}
                    }
                    let s = to.as_usize();
                    let start = self.busy[s].max(at);
                    let out = self.cores[s].on_datagram(from, bytes, start)?;
                    (s, out)
                }
                Event::Client {
                    from,
                    to,
                    note,
                    policy,
                } => {
                    let s = from.server().as_usize();
                    let start = self.busy[s].max(at);
                    let (_, out) = self.cores[s].client_send_with(from, to, note, policy, start)?;
                    (s, out)
                }
                Event::ClientBatch { from, batch } => {
                    let s = from.server().as_usize();
                    let start = self.busy[s].max(at);
                    let (_, out) =
                        self.cores[s].client_send_batch(from, batch, SendOptions::new(), start)?;
                    (s, out)
                }
                Event::Timer { server } => {
                    self.timer_armed[server] = None;
                    let start = self.busy[server].max(at);
                    let out = self.cores[server].on_tick(start);
                    (server, out)
                }
            };
            let stats = self.cores[server].take_step_stats();
            let start = self.busy[server].max(at);
            let done = start + self.model.step_cost(&stats);
            self.busy[server] = done;
            self.now = self.now.max(done);
            if let Some(g) = &self.vtime_gauge {
                g.set(self.now.as_micros() as i64);
            }
            if stats.delivered > 0 {
                self.last_delivery = done;
            }
            self.cumulative[server].absorb(stats);
            let me = ServerId::new(server as u16);
            for t in out {
                self.push(
                    done + self.model.link_latency,
                    Event::Datagram {
                        from: me,
                        to: t.to,
                        bytes: t.bytes,
                    },
                );
            }
            if self.fault.is_some() || self.crashed.iter().any(|&c| c) {
                self.arm_timer(server);
            }
        }
        Ok(self.now)
    }

    /// Ensures a timer event is queued for `server`'s earliest link
    /// retransmission deadline (fault-injection mode only).
    fn arm_timer(&mut self, server: usize) {
        let Some(deadline) = self.cores[server].next_deadline() else {
            return;
        };
        match self.timer_armed[server] {
            Some(t) if t <= deadline => {}
            _ => {
                self.timer_armed[server] = Some(deadline);
                self.push(deadline, Event::Timer { server });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aaa_clocks::StampMode;
    use aaa_mom::EchoAgent;
    use aaa_topology::TopologySpec;

    fn aid(s: u16, l: u32) -> AgentId {
        AgentId::new(ServerId::new(s), l)
    }

    fn sim(n: u16, model: CostModel) -> Simulation {
        let topo = TopologySpec::single_domain(n).validate().unwrap();
        let mut sim = Simulation::new(topo, ServerConfig::default(), model).unwrap();
        for s in 0..n {
            sim.register_agent(ServerId::new(s), 1, Box::new(EchoAgent));
        }
        sim
    }

    #[test]
    fn ping_pong_advances_time_deterministically() {
        let run = || {
            let mut sim = sim(2, CostModel::paper_calibrated());
            sim.client_send(aid(0, 9), aid(1, 1), Notification::signal("ping"));
            sim.run_until_quiet().unwrap();
            sim.last_delivery()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "simulation must be deterministic");
        // One round trip ≈ 55 ms + small matrix term.
        let ms = a.as_millis_f64();
        assert!(ms > 50.0 && ms < 70.0, "round trip {ms} ms");
    }

    #[test]
    fn bigger_domains_cost_more() {
        let mut t = Vec::new();
        for n in [10u16, 30, 50] {
            let mut sim = sim(n, CostModel::paper_calibrated());
            sim.client_send(aid(0, 9), aid(1, 1), Notification::signal("ping"));
            sim.run_until_quiet().unwrap();
            t.push(sim.last_delivery().as_millis_f64());
        }
        assert!(
            t[0] < t[1] && t[1] < t[2],
            "quadratic growth expected: {t:?}"
        );
        // Superlinear: tripling n should much-more-than-triple the delta.
        let d1 = t[1] - t[0];
        let d2 = t[2] - t[1];
        assert!(d2 > d1, "{t:?}");
    }

    #[test]
    fn batched_bursts_amortize_stamp_bytes() {
        use aaa_mom::BatchPolicy;
        // Same 16-message burst, batched vs unbatched: the batched run
        // must ship far fewer stamp bytes (GroupNext continuations are one
        // tag byte, encoded as zero stamp-payload bytes) while delivering
        // identically and keeping the Fig-7/8 cost series meaningful.
        let topo = || TopologySpec::single_domain(8).validate().unwrap();
        let burst: Vec<_> = (0..16)
            .map(|i| (aid(1, 1), Notification::new("b", vec![i as u8])))
            .collect();

        let mut batched =
            Simulation::new(topo(), ServerConfig::default(), CostModel::zero()).unwrap();
        for s in 0..8 {
            batched.register_agent(ServerId::new(s), 1, Box::new(EchoAgent));
        }
        batched.client_send_batch(aid(0, 9), burst.clone());
        batched.run_until_quiet().unwrap();

        let unbatched_config = ServerConfig {
            batch: BatchPolicy::disabled(),
            ..ServerConfig::default()
        };
        let mut unbatched = Simulation::new(topo(), unbatched_config, CostModel::zero()).unwrap();
        for s in 0..8 {
            unbatched.register_agent(ServerId::new(s), 1, Box::new(EchoAgent));
        }
        for (to, note) in burst {
            unbatched.client_send(aid(0, 9), to, note);
        }
        unbatched.run_until_quiet().unwrap();

        let b = batched.total_stats();
        let u = unbatched.total_stats();
        assert_eq!(b.delivered, u.delivered, "same end-to-end deliveries");
        assert!(
            b.stamp_bytes * 2 < u.stamp_bytes,
            "batched stamping must amortize: {} vs {} bytes",
            b.stamp_bytes,
            u.stamp_bytes
        );
        assert!(b.cell_ops < u.cell_ops, "continuations are O(1) cell work");
    }

    #[test]
    fn zero_model_still_delivers() {
        let mut sim = sim(3, CostModel::zero());
        sim.client_send(aid(0, 9), aid(2, 1), Notification::signal("x"));
        let end = sim.run_until_quiet().unwrap();
        assert!(end > VTime::ZERO, "link latency alone advances time");
        let total = sim.total_stats();
        assert_eq!(total.delivered, 2); // message + echo
    }

    #[test]
    fn trace_recording_in_sim() {
        let topo = TopologySpec::bus(2, 3).validate().unwrap();
        let mut sim = Simulation::new(topo, ServerConfig::default(), CostModel::zero()).unwrap();
        let recorder = TraceRecorder::new();
        sim.record_into(&recorder);
        for s in 0..6u16 {
            sim.register_agent(ServerId::new(s), 1, Box::new(EchoAgent));
        }
        // Cross-domain ping-pong through the backbone.
        sim.client_send(aid(1, 9), aid(5, 1), Notification::signal("ping"));
        sim.run_until_quiet().unwrap();
        let trace = recorder.snapshot().unwrap();
        assert_eq!(trace.message_count(), 2);
        assert!(trace.check_causality().is_ok());
        // Routers did forwarding work.
        let forwarded: u64 = (0..6).map(|i| sim.stats(ServerId::new(i)).forwarded).sum();
        assert!(forwarded >= 2);
    }

    #[test]
    fn lossy_network_still_delivers_everything_causally() {
        let topo = TopologySpec::single_domain(4).validate().unwrap();
        let config = ServerConfig {
            rto: aaa_base::VDuration::from_millis(50),
            ..ServerConfig::default()
        };
        let mut sim = Simulation::with_fault_plan(
            topo,
            config,
            CostModel::paper_calibrated(),
            FaultPlan::drop_only(0.25, 11),
        )
        .unwrap();
        let recorder = TraceRecorder::new();
        sim.record_into(&recorder);
        for s in 0..4u16 {
            sim.register_agent(ServerId::new(s), 1, Box::new(EchoAgent));
        }
        for i in 0..20u16 {
            let from = i % 4;
            let to = (i + 1) % 4;
            sim.client_send(aid(from, 9), aid(to, 1), Notification::signal("x"));
        }
        sim.run_until_quiet().unwrap();
        assert!(sim.dropped_datagrams() > 0, "faults should actually fire");
        let trace = recorder.snapshot().unwrap();
        assert_eq!(trace.message_count(), 40, "nothing may be lost end-to-end");
        assert!(trace.check_causality().is_ok());
    }

    #[test]
    fn lossy_runs_are_deterministic() {
        let run = || {
            let topo = TopologySpec::single_domain(3).validate().unwrap();
            let config = ServerConfig {
                rto: aaa_base::VDuration::from_millis(30),
                ..ServerConfig::default()
            };
            let mut sim = Simulation::with_fault_plan(
                topo,
                config,
                CostModel::paper_calibrated(),
                FaultPlan::drop_only(0.3, 5),
            )
            .unwrap();
            for s in 0..3u16 {
                sim.register_agent(ServerId::new(s), 1, Box::new(EchoAgent));
            }
            for _ in 0..10 {
                sim.client_send(aid(0, 9), aid(2, 1), Notification::signal("x"));
                sim.run_until_quiet().unwrap();
            }
            (sim.now(), sim.dropped_datagrams())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn crash_and_recover_in_virtual_time() {
        use aaa_mom::Agent;

        struct Counter(u32);
        impl Agent for Counter {
            fn react(
                &mut self,
                _: &mut aaa_mom::ReactionContext<'_>,
                _: AgentId,
                _: &Notification,
            ) {
                self.0 += 1;
            }
            fn snapshot(&self) -> Vec<u8> {
                self.0.to_le_bytes().to_vec()
            }
            fn restore(&mut self, image: &[u8]) {
                self.0 = u32::from_le_bytes(image.try_into().expect("4 bytes"));
            }
        }

        let topo = TopologySpec::single_domain(2).validate().unwrap();
        let config = ServerConfig {
            persist: true,
            rto: aaa_base::VDuration::from_millis(50),
            ..ServerConfig::default()
        };
        let mut sim = Simulation::with_fault_plan(
            topo,
            config,
            CostModel::paper_calibrated(),
            FaultPlan::drop_only(0.0, 0),
        )
        .unwrap();
        let recorder = TraceRecorder::new();
        sim.record_into(&recorder);
        let dest = ServerId::new(1);
        sim.register_agent(dest, 1, Box::new(Counter(0)));

        // Two deliveries, then a crash, two more (lost), recovery.
        for _ in 0..2 {
            sim.client_send(aid(0, 9), aid(1, 1), Notification::signal("x"));
        }
        sim.run_until_quiet().unwrap();
        sim.crash(dest);
        for _ in 0..2 {
            sim.client_send(aid(0, 9), aid(1, 1), Notification::signal("x"));
        }
        // While the server is down, retransmissions toward it cycle
        // forever; run for a bounded slice of virtual time only.
        let pause = sim.now() + aaa_base::VDuration::from_millis(500);
        sim.run_until(pause).unwrap();
        sim.recover(dest, vec![(1, Box::new(Counter(0)) as Box<dyn Agent>)])
            .unwrap();
        sim.run_until_quiet().unwrap();

        // All four ticks arrived exactly once, across the crash.
        let trace = recorder.snapshot().unwrap();
        assert_eq!(trace.message_count(), 4);
        assert_eq!(trace.deliveries_at(dest).len(), 4);
        assert!(trace.check_causality().is_ok());
    }

    #[test]
    fn rich_fault_plan_still_delivers_causally() {
        use aaa_chaos::{FaultPlan, LinkFaults};
        let topo = TopologySpec::single_domain(4).validate().unwrap();
        let config = ServerConfig {
            rto: aaa_base::VDuration::from_millis(50),
            ..ServerConfig::default()
        };
        let plan = FaultPlan::new(17)
            .faults(LinkFaults {
                drop: 0.15,
                duplicate: 0.1,
                delay: 0.1,
            })
            .partition((ServerId::new(0), ServerId::new(2)), 50, 250);
        let mut sim =
            Simulation::with_fault_plan(topo, config, CostModel::paper_calibrated(), plan).unwrap();
        let recorder = TraceRecorder::new();
        sim.record_into(&recorder);
        for s in 0..4u16 {
            sim.register_agent(ServerId::new(s), 1, Box::new(EchoAgent));
        }
        for i in 0..20u16 {
            let from = i % 4;
            let to = (i + 1) % 4;
            sim.client_send(aid(from, 9), aid(to, 1), Notification::signal("x"));
        }
        sim.run_until_quiet().unwrap();
        let stats = sim.fault_stats();
        assert!(
            stats.dropped + stats.duplicated + stats.delayed + stats.blocked > 0,
            "faults should actually fire: {stats:?}"
        );
        let trace = recorder.snapshot().unwrap();
        assert_eq!(trace.message_count(), 40, "exactly-once end-to-end");
        assert!(trace.check_causality().is_ok());
        assert_eq!(sim.dropped_by_crash(), 0);
    }

    #[test]
    fn rich_fault_plans_are_deterministic() {
        use aaa_chaos::{FaultPlan, LinkFaults};
        let run = || {
            let topo = TopologySpec::single_domain(3).validate().unwrap();
            let config = ServerConfig {
                rto: aaa_base::VDuration::from_millis(30),
                ..ServerConfig::default()
            };
            let plan = FaultPlan::new(23).faults(LinkFaults {
                drop: 0.2,
                duplicate: 0.1,
                delay: 0.1,
            });
            let mut sim =
                Simulation::with_fault_plan(topo, config, CostModel::paper_calibrated(), plan)
                    .unwrap();
            for s in 0..3u16 {
                sim.register_agent(ServerId::new(s), 1, Box::new(EchoAgent));
            }
            for _ in 0..10 {
                sim.client_send(aid(0, 9), aid(2, 1), Notification::signal("x"));
                sim.run_until_quiet().unwrap();
            }
            (sim.now(), sim.fault_stats())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn crash_discards_are_counted_separately() {
        let topo = TopologySpec::single_domain(2).validate().unwrap();
        let config = ServerConfig {
            rto: aaa_base::VDuration::from_millis(50),
            ..ServerConfig::default()
        };
        let mut sim = Simulation::with_fault_plan(
            topo,
            config,
            CostModel::paper_calibrated(),
            FaultPlan::drop_only(0.0, 0),
        )
        .unwrap();
        let dest = ServerId::new(1);
        sim.register_agent(dest, 1, Box::new(EchoAgent));
        sim.crash(dest);
        sim.client_send(aid(0, 9), aid(1, 1), Notification::signal("x"));
        let pause = sim.now() + aaa_base::VDuration::from_millis(300);
        sim.run_until(pause).unwrap();
        // The loss lottery never fired, but the crashed destination
        // discarded at least the first transmission.
        assert_eq!(sim.dropped_datagrams(), 0);
        assert!(sim.dropped_by_crash() > 0, "crash discards must be counted");
    }

    #[test]
    fn heal_faults_lets_the_run_quiesce() {
        use aaa_chaos::{FaultPlan, LinkFaults};
        let topo = TopologySpec::single_domain(3).validate().unwrap();
        let config = ServerConfig {
            rto: aaa_base::VDuration::from_millis(40),
            ..ServerConfig::default()
        };
        let plan = FaultPlan::new(9)
            .faults(LinkFaults::drop_only(0.4))
            .partition((ServerId::new(0), ServerId::new(1)), 0, u64::MAX);
        let mut sim =
            Simulation::with_fault_plan(topo, config, CostModel::paper_calibrated(), plan).unwrap();
        let recorder = TraceRecorder::new();
        sim.record_into(&recorder);
        for s in 0..3u16 {
            sim.register_agent(ServerId::new(s), 1, Box::new(EchoAgent));
        }
        for _ in 0..5 {
            sim.client_send(aid(0, 9), aid(1, 1), Notification::signal("x"));
        }
        // Bounded chaos phase, then heal and quiesce.
        let pause = sim.now() + aaa_base::VDuration::from_millis(400);
        sim.run_until(pause).unwrap();
        sim.heal_faults();
        sim.run_until_quiet().unwrap();
        let trace = recorder.snapshot().unwrap();
        assert_eq!(trace.message_count(), 10, "heal lets everything through");
        assert!(trace.check_causality().is_ok());
    }

    #[test]
    fn invalid_drop_probability_rejected() {
        let topo = TopologySpec::single_domain(2).validate().unwrap();
        assert!(Simulation::with_fault_plan(
            topo,
            ServerConfig::default(),
            CostModel::zero(),
            FaultPlan::drop_only(1.5, 0),
        )
        .is_err());
    }

    #[test]
    fn updates_mode_cheaper_on_wan() {
        let run = |mode: StampMode| {
            let topo = TopologySpec::single_domain(10).validate().unwrap();
            let config = ServerConfig {
                stamp_mode: mode,
                ..ServerConfig::default()
            };
            let mut sim = Simulation::new(topo, config, CostModel::wan(100.0)).unwrap();
            for s in 0..10u16 {
                sim.register_agent(ServerId::new(s), 1, Box::new(EchoAgent));
            }
            // Repeated pair traffic: the Updates sweet spot.
            for _ in 0..20 {
                sim.client_send(aid(0, 9), aid(1, 1), Notification::signal("x"));
                sim.run_until_quiet().unwrap();
            }
            sim.now().as_millis_f64()
        };
        let full = run(StampMode::Full);
        let updates = run(StampMode::Updates);
        assert!(
            updates < full * 0.75,
            "updates {updates} ms should beat full {full} ms on a WAN"
        );
    }

    #[test]
    fn registry_mirrors_stats_and_tracks_vtime() {
        let mut sim = sim(3, CostModel::paper_calibrated());
        let registry = Registry::default();
        sim.attach_registry(&registry);
        sim.client_send(aid(0, 9), aid(2, 1), Notification::signal("ping"));
        sim.run_until_quiet().unwrap();

        let snap = sim.metrics();
        let total = sim.total_stats();
        assert_eq!(
            snap.sum_counter("aaa_channel_delivered_total"),
            total.delivered
        );
        assert_eq!(
            snap.sum_counter("aaa_channel_transmitted_total"),
            total.transmitted
        );
        assert_eq!(
            snap.sum_counter("aaa_channel_cell_ops_total"),
            total.cell_ops
        );
        assert_eq!(
            snap.sum_counter("aaa_channel_stamp_bytes_total"),
            total.stamp_bytes
        );
        // The vtime gauge follows the simulation clock.
        assert_eq!(
            snap.gauge("aaa_sim_vtime_us", &[]),
            Some(sim.now().as_micros() as i64)
        );
        // Nothing in flight after quiescence.
        assert_eq!(snap.sum_gauge("aaa_channel_postponed"), 0);
        // Delivery latency was measured for the remote hops in virtual time.
        let hist = snap
            .histogram("aaa_server_delivery_latency_us", &[("server", "2")])
            .expect("destination server observed a delivery latency");
        assert!(hist.count >= 1, "at least the ping was timed");
        assert!(
            hist.sum > 0,
            "virtual latency is non-zero under the paper model"
        );
    }

    #[test]
    fn metrics_without_registry_are_empty() {
        let mut sim = sim(2, CostModel::zero());
        sim.client_send(aid(0, 9), aid(1, 1), Notification::signal("x"));
        sim.run_until_quiet().unwrap();
        let snap = sim.metrics();
        assert_eq!(snap.sum_counter("aaa_channel_delivered_total"), 0);
    }
}
