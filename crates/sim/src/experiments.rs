//! The paper's measurement protocol (§6.1), packaged as experiment
//! drivers.
//!
//! "We have created an agent on each agent server, which sends back
//! received messages (ping-pong). Messages are sent by a main agent on
//! server 0, which computes the round-trip average time for 100 sends."
//!
//! Three tests: unicast on the local server, unicast on a remote server,
//! broadcast on all servers. Each driver below reproduces one of them on
//! the simulator and returns the measured virtual time.

use aaa_base::{AgentId, Result, ServerId, VDuration};
use aaa_clocks::StampMode;
use aaa_mom::{EchoAgent, Notification, ServerConfig, StepStats};
use aaa_topology::{RoutingTable, Topology, TopologySpec};

use crate::cost::CostModel;
use crate::simulation::Simulation;

/// The local id used for echo agents on every server.
pub const ECHO_AGENT: u32 = 1;
/// The local id of the main (measuring) agent on server 0.
pub const MAIN_AGENT: u32 = 100;

fn build_sim(spec: TopologySpec, mode: StampMode, model: CostModel) -> Result<Simulation> {
    let topology = spec.validate()?;
    let config = ServerConfig {
        stamp_mode: mode,
        ..ServerConfig::default()
    };
    let mut sim = Simulation::new(topology, config, model)?;
    for s in sim.topology().servers().collect::<Vec<_>>() {
        sim.register_agent(s, ECHO_AGENT, Box::new(EchoAgent));
    }
    Ok(sim)
}

/// The server farthest (in routing hops) from server 0 — the paper's
/// "remote server", chosen so the message crosses the maximum number of
/// causal domains.
///
/// # Errors
///
/// Propagates routing-table construction errors (none for validated
/// topologies).
pub fn farthest_server(topology: &Topology) -> Result<ServerId> {
    let table = RoutingTable::build(topology, ServerId::new(0))?;
    let mut best = ServerId::new(0);
    let mut best_hops = 0;
    for s in topology.servers() {
        let hops = table.hops(s)?;
        if hops > best_hops || (hops == best_hops && s > best) {
            best = s;
            best_hops = hops;
        }
    }
    Ok(best)
}

/// One experiment measurement: the average round-trip (or completion)
/// time plus the aggregate protocol statistics.
#[derive(Debug, Clone, Copy)]
pub struct Measurement {
    /// Average time per round, in virtual time.
    pub avg: VDuration,
    /// Aggregate statistics over the whole run.
    pub stats: StepStats,
}

fn ping_rounds(mut sim: Simulation, target: ServerId, rounds: u32) -> Result<Measurement> {
    let main = AgentId::new(ServerId::new(0), MAIN_AGENT);
    let echo = AgentId::new(target, ECHO_AGENT);
    let mut total = VDuration::ZERO;
    for _ in 0..rounds {
        let t0 = sim.now();
        sim.client_send(main, echo, Notification::signal("ping"));
        sim.run_until_quiet()?;
        total += sim.last_delivery() - t0;
    }
    Ok(Measurement {
        avg: VDuration::from_micros(total.as_micros() / u64::from(rounds.max(1))),
        stats: sim.total_stats(),
    })
}

/// Remote unicast (Figures 7 and 10): ping-pong between server 0 and the
/// farthest server, averaged over `rounds`.
///
/// # Errors
///
/// Propagates topology validation and simulation errors.
pub fn remote_unicast_avg_rtt(
    spec: TopologySpec,
    mode: StampMode,
    model: CostModel,
    rounds: u32,
) -> Result<VDuration> {
    Ok(remote_unicast(spec, mode, model, rounds)?.avg)
}

/// Like [`remote_unicast_avg_rtt`] but also returns protocol statistics.
///
/// # Errors
///
/// Propagates topology validation and simulation errors.
pub fn remote_unicast(
    spec: TopologySpec,
    mode: StampMode,
    model: CostModel,
    rounds: u32,
) -> Result<Measurement> {
    let sim = build_sim(spec, mode, model)?;
    let target = farthest_server(sim.topology())?;
    ping_rounds(sim, target, rounds)
}

/// Local unicast (§6.1's first test): ping-pong between two agents on
/// server 0 — exercises the local bus, no causal machinery.
///
/// # Errors
///
/// Propagates topology validation and simulation errors.
pub fn local_unicast(
    spec: TopologySpec,
    mode: StampMode,
    model: CostModel,
    rounds: u32,
) -> Result<Measurement> {
    let sim = build_sim(spec, mode, model)?;
    ping_rounds(sim, ServerId::new(0), rounds)
}

/// Broadcast (Figure 8): the main agent sends to the echo agent of every
/// other server and waits for all echoes; returns the average completion
/// time over `rounds`.
///
/// # Errors
///
/// Propagates topology validation and simulation errors.
pub fn broadcast(
    spec: TopologySpec,
    mode: StampMode,
    model: CostModel,
    rounds: u32,
) -> Result<Measurement> {
    let mut sim = build_sim(spec, mode, model)?;
    let main = AgentId::new(ServerId::new(0), MAIN_AGENT);
    let targets: Vec<ServerId> = sim
        .topology()
        .servers()
        .filter(|s| *s != ServerId::new(0))
        .collect();
    let mut total = VDuration::ZERO;
    for _ in 0..rounds {
        let t0 = sim.now();
        for &t in &targets {
            sim.client_send(main, AgentId::new(t, ECHO_AGENT), Notification::signal("b"));
        }
        sim.run_until_quiet()?;
        total += sim.last_delivery() - t0;
    }
    Ok(Measurement {
        avg: VDuration::from_micros(total.as_micros() / u64::from(rounds.max(1))),
        stats: sim.total_stats(),
    })
}

/// Average end-to-end delivery time of a sequential pair workload: each
/// `(from, to)` pair sends one notification from server `from`'s client
/// agent to server `to`'s echo agent and waits for the bus to go quiet.
/// Used by the domain-splitting experiment to price decompositions under
/// application-shaped traffic.
///
/// # Errors
///
/// Propagates topology validation and simulation errors, and rejects
/// out-of-range or self-addressed pairs with [`aaa_base::Error::Config`].
pub fn pair_workload_avg_time(
    spec: TopologySpec,
    mode: StampMode,
    model: CostModel,
    pairs: &[(u16, u16)],
) -> Result<VDuration> {
    let mut sim = build_sim(spec, mode, model)?;
    let n = sim.topology().server_count() as u16;
    let mut total = VDuration::ZERO;
    let mut count = 0u64;
    for &(from, to) in pairs {
        if from >= n || to >= n || from == to {
            return Err(aaa_base::Error::Config(format!(
                "invalid workload pair ({from}, {to}) for {n} servers"
            )));
        }
        let t0 = sim.now();
        sim.client_send(
            AgentId::new(ServerId::new(from), MAIN_AGENT),
            AgentId::new(ServerId::new(to), ECHO_AGENT),
            Notification::signal("w"),
        );
        sim.run_until_quiet()?;
        total += sim.last_delivery() - t0;
        count += 1;
    }
    Ok(VDuration::from_micros(total.as_micros() / count.max(1)))
}

/// Average stamp bytes per transmitted message for a pair-traffic
/// workload — the Appendix-A ablation quantity.
///
/// # Errors
///
/// Propagates topology validation and simulation errors.
pub fn stamp_bytes_per_message(spec: TopologySpec, mode: StampMode, rounds: u32) -> Result<f64> {
    let m = remote_unicast(spec, mode, CostModel::zero(), rounds)?;
    if m.stats.transmitted == 0 {
        return Ok(0.0);
    }
    Ok(m.stats.stamp_bytes as f64 / m.stats.transmitted as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn farthest_in_bus_is_in_last_leaf() {
        let topo = TopologySpec::bus(3, 3).validate().unwrap();
        let far = farthest_server(&topo).unwrap();
        // Leaf 3 holds servers 6..9; its non-router members are 7 and 8.
        assert_eq!(far, ServerId::new(8));
    }

    #[test]
    fn local_unicast_is_cheap_and_flat() {
        let a = local_unicast(
            TopologySpec::single_domain(10),
            StampMode::Updates,
            CostModel::paper_calibrated(),
            5,
        )
        .unwrap();
        let b = local_unicast(
            TopologySpec::single_domain(50),
            StampMode::Updates,
            CostModel::paper_calibrated(),
            5,
        )
        .unwrap();
        // Local traffic bypasses the causal machinery entirely: its cost
        // must not grow with the number of servers.
        assert_eq!(a.avg, b.avg);
        // And it is far below even the smallest remote round trip.
        assert!(a.avg.as_millis_f64() < 40.0);
    }

    #[test]
    fn remote_unicast_matches_paper_scale() {
        // Paper Figure 7: ≈ 61 ms at 10 servers, ≈ 201 ms at 50.
        let t10 = remote_unicast_avg_rtt(
            TopologySpec::single_domain(10),
            StampMode::Updates,
            CostModel::paper_calibrated(),
            5,
        )
        .unwrap()
        .as_millis_f64();
        let t50 = remote_unicast_avg_rtt(
            TopologySpec::single_domain(50),
            StampMode::Updates,
            CostModel::paper_calibrated(),
            5,
        )
        .unwrap()
        .as_millis_f64();
        assert!((t10 - 61.0).abs() < 10.0, "t(10) = {t10}");
        assert!((t50 - 201.0).abs() < 25.0, "t(50) = {t50}");
    }

    #[test]
    fn domains_turn_quadratic_into_linear() {
        // Flat vs bus-of-√n-domains at n = 100: the decomposition must win
        // clearly (Figure 11's crossover is far below 100).
        let flat = remote_unicast_avg_rtt(
            TopologySpec::single_domain(100),
            StampMode::Updates,
            CostModel::paper_calibrated(),
            3,
        )
        .unwrap();
        let bus = remote_unicast_avg_rtt(
            TopologySpec::bus(10, 10),
            StampMode::Updates,
            CostModel::paper_calibrated(),
            3,
        )
        .unwrap();
        assert!(
            bus.as_millis_f64() < flat.as_millis_f64(),
            "bus {bus} should beat flat {flat} at n=100"
        );
    }

    #[test]
    fn broadcast_grows_fast_without_domains() {
        let t10 = broadcast(
            TopologySpec::single_domain(10),
            StampMode::Updates,
            CostModel::paper_calibrated(),
            2,
        )
        .unwrap()
        .avg
        .as_millis_f64();
        let t30 = broadcast(
            TopologySpec::single_domain(30),
            StampMode::Updates,
            CostModel::paper_calibrated(),
            2,
        )
        .unwrap()
        .avg
        .as_millis_f64();
        // Paper Figure 8: 636 ms at 10 servers, 2771 at 30 — superlinear.
        assert!(t10 > 150.0 && t10 < 1300.0, "t(10) = {t10}");
        assert!(t30 / t10 > 3.0, "superlinear growth: {t10} -> {t30}");
    }

    #[test]
    fn stamp_bytes_updates_much_smaller() {
        let full =
            stamp_bytes_per_message(TopologySpec::single_domain(20), StampMode::Full, 10).unwrap();
        let upd = stamp_bytes_per_message(TopologySpec::single_domain(20), StampMode::Updates, 10)
            .unwrap();
        assert!(upd * 5.0 < full, "updates {upd}B vs full {full}B");
    }

    #[test]
    fn bounded_stamp_modes_much_smaller_than_full() {
        let spec = || TopologySpec::single_domain(20);
        let full = stamp_bytes_per_message(spec(), StampMode::Full, 10).unwrap();
        for mode in [StampMode::Reduced, StampMode::Hybrid] {
            let bytes = stamp_bytes_per_message(spec(), mode, 10).unwrap();
            assert!(bytes * 5.0 < full, "{mode} {bytes}B vs full {full}B");
        }
    }
}
