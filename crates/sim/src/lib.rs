#![warn(missing_docs)]
#![forbid(unsafe_code)]

//! Discrete-event simulation of the AAA MOM.
//!
//! The paper's evaluation (§6) ran on ten Bi-Pentium II PCs with up to 150
//! JVMs; this crate replaces that testbed with a deterministic
//! discrete-event simulator that drives the *real* protocol state machines
//! (`aaa-mom`'s [`ServerCore`](aaa_mom::ServerCore)) under a calibrated
//! [`CostModel`]. Only time is virtual: every stamp, matrix operation,
//! routing decision and queue is the production code path.
//!
//! - [`CostModel`] — charges virtual time per matrix-cell operation, per
//!   stamp byte, per message hop and per reaction. The defaults are
//!   calibrated so the non-decomposed MOM reproduces the paper's Figure 7
//!   series (61…201 ms for 10…50 servers) — everything else (Figures 8,
//!   10, 11) then follows from the protocol itself;
//! - [`Simulation`] — the event loop: per-server busy time, per-link
//!   latency, deterministic FIFO delivery;
//! - [`experiments`] — the §6.1 measurement protocol (ping-pong round
//!   trips, broadcasts) packaged as reusable drivers for the benchmark
//!   harness.
//!
//! # Example
//!
//! ```
//! use aaa_sim::{experiments, CostModel};
//! use aaa_topology::TopologySpec;
//! use aaa_clocks::StampMode;
//!
//! // Average remote-unicast round-trip in a flat 10-server MOM.
//! let rtt = experiments::remote_unicast_avg_rtt(
//!     TopologySpec::single_domain(10),
//!     StampMode::Updates,
//!     CostModel::paper_calibrated(),
//!     10,
//! ).unwrap();
//! assert!(rtt.as_millis_f64() > 30.0 && rtt.as_millis_f64() < 120.0);
//! ```

mod cost;
pub mod experiments;
mod simulation;

pub use aaa_chaos::{CrashEvent, FaultAction, FaultPlan, FaultStats, LinkFaults, Partition};
pub use cost::CostModel;
pub use simulation::Simulation;
