//! The calibrated cost model.
//!
//! §6.1 of the paper decomposes message turn-around time into a "nearly
//! constant" transfer term (serialization, transfer, agent saving) and a
//! causal-ordering term (checking, updating and saving the matrix clock).
//! We charge the former per message hop and the latter per matrix-cell
//! operation, with the constants fitted to the paper's Figure 7:
//!
//! - one remote round trip crosses 2 hops → `2 × hop ≈ 55 ms` intercept;
//! - per hop the channel performs ≈ `2n²` cell operations (stamping `n²`,
//!   delivery merge `n²`), so a round trip costs ≈ `4n²` cell ops; fitting
//!   `0.0583 ms/n²` from the paper's series gives ≈ `14.6 µs` per cell
//!   operation (a matrix entry serialized, compared, merged and saved to
//!   disk in 2001-era Java).

use aaa_base::VDuration;
use aaa_mom::StepStats;

/// Virtual-time prices of the simulated resources.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Cost of transmitting one message on a link (sender side).
    pub tx_base_us: f64,
    /// Cost of receiving and processing one message (receiver side,
    /// excluding causal ordering).
    pub rx_base_us: f64,
    /// Cost per matrix-cell operation (check, update, persist).
    pub cell_op_us: f64,
    /// Cost per stamp byte on the wire (0 by default: under the paper's
    /// LAN the per-cell maintenance dominates; the Updates ablation raises
    /// it to model slower links).
    pub stamp_byte_us: f64,
    /// Cost per agent reaction (event dispatch).
    pub reaction_us: f64,
    /// One-way link propagation latency.
    pub link_latency: VDuration,
}

impl CostModel {
    /// Constants fitted to the paper's Figure 7 (see module docs).
    pub fn paper_calibrated() -> Self {
        CostModel {
            tx_base_us: 13_750.0,
            rx_base_us: 13_750.0,
            cell_op_us: 14.6,
            stamp_byte_us: 0.0,
            reaction_us: 100.0,
            link_latency: VDuration::from_micros(500),
        }
    }

    /// A free model: every operation takes zero virtual time except link
    /// latency. Useful to count operations rather than time.
    pub fn zero() -> Self {
        CostModel {
            tx_base_us: 0.0,
            rx_base_us: 0.0,
            cell_op_us: 0.0,
            stamp_byte_us: 0.0,
            reaction_us: 0.0,
            link_latency: VDuration::from_micros(1),
        }
    }

    /// A model for a slow wide-area link, where bytes on the wire dominate
    /// (used by the Appendix-A Updates ablation).
    pub fn wan(bytes_per_ms: f64) -> Self {
        CostModel {
            tx_base_us: 2_000.0,
            rx_base_us: 2_000.0,
            cell_op_us: 1.0,
            stamp_byte_us: 1_000.0 / bytes_per_ms,
            reaction_us: 100.0,
            link_latency: VDuration::from_millis(5),
        }
    }

    /// Virtual processing time for one server step with the given
    /// statistics.
    pub fn step_cost(&self, stats: &StepStats) -> VDuration {
        let us = stats.transmitted as f64 * self.tx_base_us
            + (stats.delivered + stats.forwarded) as f64 * self.rx_base_us
            + stats.cell_ops as f64 * self.cell_op_us
            + stats.stamp_bytes as f64 * self.stamp_byte_us
            + stats.reactions as f64 * self.reaction_us;
        VDuration::from_micros(us.round() as u64)
    }
}

impl Default for CostModel {
    fn default() -> Self {
        Self::paper_calibrated()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_model_is_free() {
        let stats = StepStats {
            cell_ops: 100,
            stamp_bytes: 100,
            delivered: 5,
            transmitted: 5,
            forwarded: 2,
            reactions: 3,
            disk_bytes: 0,
        };
        assert_eq!(CostModel::zero().step_cost(&stats), VDuration::ZERO);
    }

    #[test]
    fn calibrated_round_trip_intercept() {
        // One hop out + one hop back with no cell ops ≈ 55 ms.
        let m = CostModel::paper_calibrated();
        let hop = StepStats {
            transmitted: 1,
            delivered: 1,
            ..StepStats::default()
        };
        let two_hops = m.step_cost(&hop).as_millis_f64() * 2.0;
        assert!((two_hops - 55.0).abs() < 1.0, "got {two_hops}");
    }

    #[test]
    fn calibrated_quadratic_term() {
        // 4n² cell ops at n = 50 ≈ 146 ms.
        let m = CostModel::paper_calibrated();
        let stats = StepStats {
            cell_ops: 4 * 50 * 50,
            ..StepStats::default()
        };
        let t = m.step_cost(&stats).as_millis_f64();
        assert!((t - 146.0).abs() < 2.0, "got {t}");
    }

    #[test]
    fn wan_charges_bytes() {
        let m = CostModel::wan(100.0); // 100 bytes per ms
        let stats = StepStats {
            stamp_bytes: 1_000,
            ..StepStats::default()
        };
        assert_eq!(m.step_cost(&stats), VDuration::from_millis(10));
    }
}
