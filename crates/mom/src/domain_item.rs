//! Per-domain state held by a server: the paper's `DomainItem` (§5).

use aaa_base::{DomainId, DomainServerId, ServerId};
use aaa_clocks::{CausalState, StampMode};
use aaa_topology::Topology;

/// One domain's description and causal state on one server.
///
/// Mirrors the paper's `DomainItem` class: the domain identifier, this
/// server's identifier *within* the domain, the `idTable` translating
/// between global and per-domain server ids, and the domain's matrix clock.
/// A causal router-server simply holds several `DomainItem`s.
#[derive(Debug, Clone)]
pub struct DomainItem {
    domain_id: DomainId,
    me: DomainServerId,
    /// `id_table[domain_server_id] = global server id`, ascending.
    id_table: Vec<ServerId>,
    clock: CausalState,
}

impl DomainItem {
    /// Builds the item for `server`'s membership in `domain` of `topology`.
    ///
    /// # Panics
    ///
    /// Panics if `server` is not a member of `domain` (the builder only
    /// calls this for actual memberships).
    pub fn new(topology: &Topology, domain: DomainId, server: ServerId, mode: StampMode) -> Self {
        let info = topology.domain(domain).expect("domain exists");
        let me = info
            .domain_server_id(server)
            .expect("server is a member of the domain");
        DomainItem {
            domain_id: domain,
            me,
            id_table: info.members().to_vec(),
            clock: CausalState::new(me, info.size(), mode),
        }
    }

    /// Rebuilds an item from persisted parts (recovery path).
    pub fn from_parts(
        domain_id: DomainId,
        me: DomainServerId,
        id_table: Vec<ServerId>,
        clock: CausalState,
    ) -> Self {
        DomainItem {
            domain_id,
            me,
            id_table,
            clock,
        }
    }

    /// The domain this item describes.
    pub fn domain_id(&self) -> DomainId {
        self.domain_id
    }

    /// This server's identifier within the domain.
    pub fn me(&self) -> DomainServerId {
        self.me
    }

    /// The domain's member servers, indexed by [`DomainServerId`].
    pub fn id_table(&self) -> &[ServerId] {
        &self.id_table
    }

    /// Translates a global id to this domain's id, if the server is a
    /// member.
    pub fn domain_server_id(&self, server: ServerId) -> Option<DomainServerId> {
        self.id_table
            .binary_search(&server)
            .ok()
            .map(|i| DomainServerId::new(i as u16))
    }

    /// Translates a per-domain id back to the global id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn server_at(&self, id: DomainServerId) -> ServerId {
        self.id_table[id.as_usize()]
    }

    /// The domain's causal state (matrix clock and delivery vector).
    pub fn clock(&self) -> &CausalState {
        &self.clock
    }

    /// Mutable access to the causal state, for the channel protocol.
    pub fn clock_mut(&mut self) -> &mut CausalState {
        &mut self.clock
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aaa_topology::TopologySpec;

    #[test]
    fn item_for_router_in_figure2() {
        let topo = TopologySpec::from_domains(vec![
            vec![0, 1, 2],
            vec![3, 4],
            vec![6, 7],
            vec![2, 4, 5, 6],
        ])
        .validate()
        .unwrap();
        // Server 2 is a router in domains 0 and 3.
        let item0 = DomainItem::new(&topo, DomainId::new(0), ServerId::new(2), StampMode::Full);
        assert_eq!(item0.domain_id(), DomainId::new(0));
        assert_eq!(item0.me(), DomainServerId::new(2));
        assert_eq!(item0.id_table().len(), 3);

        let item3 = DomainItem::new(&topo, DomainId::new(3), ServerId::new(2), StampMode::Full);
        assert_eq!(item3.me(), DomainServerId::new(0));
        assert_eq!(item3.clock().n(), 4);
        assert_eq!(
            item3.domain_server_id(ServerId::new(6)),
            Some(DomainServerId::new(3))
        );
        assert_eq!(item3.domain_server_id(ServerId::new(0)), None);
        assert_eq!(item3.server_at(DomainServerId::new(1)), ServerId::new(4));
    }

    #[test]
    #[should_panic(expected = "member of the domain")]
    fn non_member_panics() {
        let topo = TopologySpec::from_domains(vec![vec![0, 1], vec![1, 2]])
            .validate()
            .unwrap();
        let _ = DomainItem::new(&topo, DomainId::new(1), ServerId::new(0), StampMode::Full);
    }
}
