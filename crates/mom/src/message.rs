//! Application-level notifications and middleware messages.

use aaa_base::{AgentId, MessageId};
use bytes::Bytes;

/// An application-level event, the unit of the agents' event/reaction
/// pattern (§3).
///
/// A notification has a `kind` (the event name agents dispatch on) and an
/// opaque `body`. The middleware never interprets the body.
///
/// # Examples
///
/// ```
/// use aaa_mom::Notification;
///
/// let note = Notification::new("quote", b"ACME:42.5".to_vec());
/// assert_eq!(note.kind(), "quote");
/// assert_eq!(&note.body()[..], b"ACME:42.5");
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Notification {
    kind: String,
    body: Bytes,
}

impl Notification {
    /// Creates a notification of the given kind with an owned body.
    pub fn new(kind: impl Into<String>, body: impl Into<Bytes>) -> Self {
        Notification {
            kind: kind.into(),
            body: body.into(),
        }
    }

    /// Creates a body-less notification (a pure signal).
    pub fn signal(kind: impl Into<String>) -> Self {
        Notification {
            kind: kind.into(),
            body: Bytes::new(),
        }
    }

    /// The event name.
    pub fn kind(&self) -> &str {
        &self.kind
    }

    /// The opaque body.
    pub fn body(&self) -> &Bytes {
        &self.body
    }

    /// The body parsed as UTF-8, if it is valid.
    pub fn body_str(&self) -> Option<&str> {
        std::str::from_utf8(&self.body).ok()
    }
}

/// Per-message delivery quality of service.
///
/// The paper's introduction notes that "the CORBA Messaging reference
/// specification defines the ordering policy as part of the messaging
/// Quality of Service"; the AAA bus offers the same knob: causal ordering
/// (the default, and the subject of the paper) or no ordering at all —
/// unordered messages skip the matrix-clock machinery entirely and may
/// overtake causal traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum DeliveryPolicy {
    /// Deliver in causal order (matrix-clock checked).
    #[default]
    Causal,
    /// Deliver on arrival; no ordering guarantee, no stamp overhead.
    Unordered,
}

/// Per-send options: the delivery policy today, room for more knobs
/// (TTL, priority, …) tomorrow.
///
/// `SendOptions` is the single policy argument of the unified send path
/// ([`crate::Mom::send_with`], [`crate::channel::ChannelCore::submit_with`],
/// [`crate::ServerCore::client_send_with`]). It is `#[non_exhaustive]`, so
/// build it through the constructors/setters; a bare [`DeliveryPolicy`]
/// converts implicitly wherever `impl Into<SendOptions>` is accepted.
///
/// # Examples
///
/// ```
/// use aaa_mom::{DeliveryPolicy, SendOptions};
///
/// let defaults = SendOptions::new();
/// assert_eq!(defaults.policy, DeliveryPolicy::Causal);
///
/// let fast = SendOptions::unordered();
/// assert_eq!(fast.policy, DeliveryPolicy::Unordered);
///
/// // DeliveryPolicy converts into SendOptions.
/// let from_policy: SendOptions = DeliveryPolicy::Unordered.into();
/// assert_eq!(from_policy, fast);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[non_exhaustive]
pub struct SendOptions {
    /// Ordering quality of service (default: [`DeliveryPolicy::Causal`]).
    pub policy: DeliveryPolicy,
    /// Flush the link batcher immediately after this send (default:
    /// `false`). Urgent sends bypass any group-commit coalescing delay:
    /// the message and everything buffered before it go on the wire in
    /// the same step.
    pub flush: bool,
}

impl SendOptions {
    /// Default options: causal ordering, no forced flush.
    pub fn new() -> Self {
        SendOptions::default()
    }

    /// Options selecting causal ordering (the default).
    pub fn causal() -> Self {
        SendOptions::default()
    }

    /// Options selecting the unordered quality of service.
    pub fn unordered() -> Self {
        SendOptions::default().with_policy(DeliveryPolicy::Unordered)
    }

    /// Options for an urgent send: causal ordering plus an immediate
    /// link flush (no coalescing delay).
    pub fn urgent() -> Self {
        SendOptions::default().with_flush(true)
    }

    /// Returns the options with the given delivery policy.
    #[must_use]
    pub fn with_policy(mut self, policy: DeliveryPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Returns the options with the given flush behaviour.
    #[must_use]
    pub fn with_flush(mut self, flush: bool) -> Self {
        self.flush = flush;
        self
    }
}

impl From<DeliveryPolicy> for SendOptions {
    fn from(policy: DeliveryPolicy) -> Self {
        SendOptions::default().with_policy(policy)
    }
}

/// A notification in flight between two agents, as seen by engines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AgentMessage {
    /// Globally unique id, assigned when the message enters the bus.
    pub id: MessageId,
    /// The sending agent.
    pub from: AgentId,
    /// The destination agent.
    pub to: AgentId,
    /// The notification carried.
    pub note: Notification,
}

#[cfg(test)]
mod tests {
    use super::*;
    use aaa_base::ServerId;

    #[test]
    fn notification_accessors() {
        let n = Notification::new("ping", b"x".to_vec());
        assert_eq!(n.kind(), "ping");
        assert_eq!(n.body_str(), Some("x"));
        let s = Notification::signal("go");
        assert!(s.body().is_empty());
        assert_eq!(s.body_str(), Some(""));
    }

    #[test]
    fn invalid_utf8_body_str_is_none() {
        let n = Notification::new("bin", vec![0xFF, 0xFE]);
        assert_eq!(n.body_str(), None);
    }

    #[test]
    fn send_options_compose() {
        assert_eq!(SendOptions::new(), SendOptions::causal());
        assert_eq!(
            SendOptions::causal().with_policy(DeliveryPolicy::Unordered),
            SendOptions::unordered()
        );
        let via_into: SendOptions = DeliveryPolicy::Causal.into();
        assert_eq!(via_into, SendOptions::default());
        assert!(SendOptions::urgent().flush);
        assert_eq!(SendOptions::urgent().policy, DeliveryPolicy::Causal);
        assert!(!SendOptions::causal().flush);
        assert_eq!(
            SendOptions::unordered().with_flush(true),
            SendOptions::urgent().with_policy(DeliveryPolicy::Unordered)
        );
    }

    #[test]
    fn agent_message_is_plain_data() {
        let m = AgentMessage {
            id: MessageId::new(ServerId::new(0), 1),
            from: AgentId::new(ServerId::new(0), 0),
            to: AgentId::new(ServerId::new(1), 0),
            note: Notification::signal("hello"),
        };
        let m2 = m.clone();
        assert_eq!(m, m2);
    }
}
