//! The MOM runtimes: thread-per-server and sharded event loops behind
//! one readiness-based API.
//!
//! [`MomBuilder`] assembles a complete bus — validated topology, a byte
//! transport, one [`ServerCore`](crate::ServerCore) per server — and
//! returns a [`Mom`]
//! handle for clients: register agents, send notifications, crash and
//! recover servers, snapshot the causality trace, collect statistics.
//! Configuration is three typed values ([`RuntimeConfig`], [`NetConfig`],
//! [`ClockConfig`]; see [`config`]) instead of a flat pile of setters.
//!
//! Two execution substrates drive the same sans-IO cores
//! (selected by [`RuntimeKind`]):
//!
//! - **[`RuntimeKind::Threaded`]** (`threaded` module) — one OS thread
//!   per server, the paper's one-JVM-per-server deployment shrunk into a
//!   process. Each thread blocks on its command channel and a
//!   [`aaa_net::ReadyMailbox`] fed by the transport's readiness
//!   notifier.
//! - **[`RuntimeKind::Evented`]** (`evented` module) — N event-loop
//!   shards over a fixed worker pool, multiplexing *all* servers onto
//!   them with work-stealing. This is the C10K runtime: one process
//!   sustains four-digit server counts because idle servers cost a slot
//!   table entry, not a stack and a scheduler entry.
//!
//! Either way each server runs a **batched step loop**: one wakeup
//! greedily drains the transport via [`Transport::poll_recv`] and hands
//! every ready datagram to
//! [`ServerCore::on_datagram_batch`](crate::ServerCore::on_datagram_batch)
//! as a single transaction — deliveries and reactions run together, outgoing
//! messages are group-stamped and coalesced into one wire packet per
//! peer (see [`aaa_net::BatchPolicy`]), and one group commit persists
//! the result. Urgent traffic bypasses the coalescing delay via
//! [`SendOptions::urgent`] or [`Mom::flush`].

pub mod config;
mod driver;
mod evented;
mod threaded;

use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use aaa_base::{AgentId, Error, MessageId, Result, ServerId};
use aaa_net::{MemoryNetwork, MuxTcpNetwork, TcpNetwork};
use aaa_obs::{LatencyTracker, Meter, MetricsServer, MetricsSnapshot, Registry};
use aaa_storage::{MemoryStore, StableStore};
use aaa_topology::{Topology, TopologySpec};
use aaa_trace::TraceRecorder;
use crossbeam::channel::{bounded, Sender};

pub use config::{ClockConfig, NetConfig, RuntimeConfig, RuntimeKind, TransportKind};

use crate::agent::Agent;
use crate::message::{Notification, SendOptions};
use crate::server::{ServerConfig, StepStats};

use driver::ServerDriver;
use evented::EventedPool;

/// The byte-transport abstraction, re-exported from `aaa-net` where it
/// lives beside the endpoint types that implement it ([`aaa_net::memory`],
/// [`aaa_net::tcp`], [`aaa_net::mux`]). Select between them with
/// [`NetConfig::transport`].
pub use aaa_net::Transport;

/// Maximum datagrams one step loop iteration drains from the transport
/// before processing them as a single transaction. Bounds step latency
/// while letting bursts amortize stamping, flushing and the group commit.
pub(crate) const MAX_STEP_DRAIN: usize = 256;

/// The default patience of [`Mom::shutdown`] — how long the bus gets to
/// take its final group commits before workers are reaped regardless.
const DEFAULT_SHUTDOWN_TIMEOUT: Duration = Duration::from_secs(5);

pub(crate) enum Command {
    Register {
        local: u32,
        agent: Box<dyn Agent>,
        reply: Sender<()>,
    },
    Send {
        from: AgentId,
        to: AgentId,
        note: Notification,
        opts: SendOptions,
        reply: Sender<Result<MessageId>>,
    },
    SendBatch {
        from: AgentId,
        batch: Vec<(AgentId, Notification)>,
        opts: SendOptions,
        reply: Sender<Result<Vec<MessageId>>>,
    },
    Flush {
        reply: Sender<()>,
    },
    Crash,
    Recover {
        agents: Vec<(u32, Box<dyn Agent>)>,
        reply: Sender<Result<()>>,
    },
    Probe {
        reply: Sender<bool>,
    },
    RelayConnect {
        subscriber: AgentId,
        connected: bool,
        reply: Sender<Result<()>>,
    },
    Stats {
        reply: Sender<StepStats>,
    },
    Shutdown,
}

/// Replies to a client command, tolerating a hung-up client.
///
/// Every `Command` carries a bounded reply channel; if the client timed out
/// or was dropped, the receiver is gone and `send` fails. That failure is
/// the *client's* outcome, not the server's — the server step already ran to
/// completion — so the error is deliberately discarded here, in exactly one
/// place.
pub(crate) fn respond<T>(reply: &Sender<T>, value: T) {
    // audit:allow(error-swallow)
    let _ = reply.send(value);
}

/// Everything the runtimes need to mint per-server drivers: shared,
/// immutable boot-time state.
pub(crate) struct Boot {
    topology: Arc<Topology>,
    config: ServerConfig,
    stores: Vec<Arc<dyn StableStore>>,
    recorder: TraceRecorder,
    record_trace: bool,
    in_flight: Arc<AtomicI64>,
    registry: Option<Registry>,
    latency: Option<LatencyTracker>,
    relay: Option<crate::relay::RelayConfig>,
    pub(crate) start: Instant,
}

impl Boot {
    /// The per-server observability pair (meter + end-to-end latency
    /// tracker), if metrics are enabled. The tracker is minted together
    /// with the registry, so zipping the two options never silently
    /// drops one.
    pub(crate) fn obs_for(&self, i: usize) -> Option<(Meter, LatencyTracker)> {
        self.registry
            .as_ref()
            .zip(self.latency.clone())
            .map(|(r, tracker)| (Meter::new(r).with_label("server", i.to_string()), tracker))
    }

    /// Builds the driver for server `me`.
    pub(crate) fn driver(
        &self,
        me: ServerId,
        obs: Option<(Meter, LatencyTracker)>,
    ) -> Result<ServerDriver> {
        ServerDriver::new(
            self.topology.clone(),
            me,
            self.config,
            self.stores[me.as_usize()].clone(),
            self.record_trace.then(|| self.recorder.clone()),
            self.in_flight.clone(),
            obs,
            self.relay.clone(),
        )
    }
}

/// Builder for a MOM bus.
///
/// Configuration is grouped into three typed values, one per layer:
/// [`RuntimeConfig`] (execution), [`NetConfig`] (wire), [`ClockConfig`]
/// (causality stamps). Each has a sensible default, so the minimal bus
/// is `MomBuilder::new(spec).build()?`.
///
/// # Examples
///
/// ```
/// use aaa_mom::{ClockConfig, MomBuilder, NetConfig, RuntimeConfig, StampMode};
/// use aaa_topology::TopologySpec;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mom = MomBuilder::new(TopologySpec::bus(2, 3))
///     .runtime(RuntimeConfig::evented(2))
///     .clock(ClockConfig::mode(StampMode::Updates))
///     .build()?;
/// mom.shutdown();
/// # Ok(())
/// # }
/// ```
pub struct MomBuilder {
    spec: TopologySpec,
    runtime: RuntimeConfig,
    net: NetConfig,
    clock: ClockConfig,
    transports: Option<Vec<Box<dyn Transport>>>,
    stores: Option<Vec<Arc<dyn StableStore>>>,
    registry: Option<Registry>,
    relay: Option<crate::relay::RelayConfig>,
}

impl MomBuilder {
    /// Starts a builder for the given topology, with every config at its
    /// default ([`RuntimeKind::Threaded`], in-memory transport,
    /// [`aaa_clocks::StampMode::Updates`]).
    pub fn new(spec: TopologySpec) -> Self {
        MomBuilder {
            spec,
            runtime: RuntimeConfig::default(),
            net: NetConfig::default(),
            clock: ClockConfig::default(),
            transports: None,
            stores: None,
            registry: None,
            relay: None,
        }
    }

    /// Sets the execution-layer configuration (runtime kind, persistence,
    /// tracing, metrics, backpressure).
    #[must_use]
    pub fn runtime(mut self, runtime: RuntimeConfig) -> Self {
        self.runtime = runtime;
        self
    }

    /// Sets the network-layer configuration (transport kind, batching,
    /// retransmission timeout, connect timeout).
    #[must_use]
    pub fn net(mut self, net: NetConfig) -> Self {
        self.net = net;
        self
    }

    /// Sets the clock-layer configuration (stamp encoding mode).
    #[must_use]
    pub fn clock(mut self, clock: ClockConfig) -> Self {
        self.clock = clock;
        self
    }

    /// Supplies pre-built transport endpoints — one per server, indexed
    /// by id — instead of letting the builder create the mesh. This is
    /// how chaos tests run the runtimes over
    /// `aaa_chaos::FaultTransport`-wrapped endpoints; it also admits any
    /// custom [`Transport`] implementation. Overrides
    /// [`NetConfig::transport`].
    #[must_use]
    pub fn transports(mut self, transports: Vec<Box<dyn Transport>>) -> Self {
        self.transports = Some(transports);
        self
    }

    /// Supplies per-server stable stores (defaults to fresh
    /// [`MemoryStore`]s). Must be one per server, indexed by id.
    #[must_use]
    pub fn stores(mut self, stores: Vec<Arc<dyn StableStore>>) -> Self {
        self.stores = Some(stores);
        self
    }

    /// Supplies an external metrics [`Registry`] (for example one shared
    /// with other buses or already served over HTTP). Defaults to a fresh
    /// registry, accessible through [`Mom::metrics`].
    #[must_use]
    pub fn registry(mut self, registry: Registry) -> Self {
        self.registry = Some(registry);
        self
    }

    /// Enables the store-and-forward relay on **every** server with the
    /// given configuration (DESIGN.md §17): topics built with
    /// [`crate::pubsub::TopicAgent::with_relay`] get durable
    /// per-subscriber queues, at-least-once redelivery and cross-server
    /// handoff; [`Mom::relay_connect`] / [`Mom::relay_disconnect`] drive
    /// subscriber reachability.
    #[must_use]
    pub fn relay(mut self, relay: crate::relay::RelayConfig) -> Self {
        self.relay = Some(relay);
        self
    }

    /// Validates the topology, boots the runtime and returns the bus
    /// handle.
    ///
    /// # Errors
    ///
    /// Propagates topology validation errors ([`Error::InvalidTopology`],
    /// [`Error::CyclicDomainGraph`]) and [`Error::Config`] if a supplied
    /// store or transport list has the wrong length.
    pub fn build(self) -> Result<Mom> {
        let topology = Arc::new(if self.runtime.allow_cycles {
            self.spec.validate_allow_cycles()?
        } else {
            self.spec.validate()?
        });
        let n = topology.server_count();
        let stores = match self.stores {
            Some(stores) => {
                if stores.len() != n {
                    return Err(Error::Config(format!(
                        "expected {n} stores, got {}",
                        stores.len()
                    )));
                }
                stores
            }
            None => (0..n)
                .map(|_| Arc::new(MemoryStore::new()) as Arc<dyn StableStore>)
                .collect(),
        };

        let registry = self
            .runtime
            .metrics
            .then(|| self.registry.unwrap_or_default());
        let boot = Boot {
            topology: topology.clone(),
            config: config::server_config(&self.runtime, &self.net, &self.clock),
            stores: stores.clone(),
            recorder: TraceRecorder::new(),
            record_trace: self.runtime.record_trace,
            in_flight: Arc::new(AtomicI64::new(0)),
            latency: registry.as_ref().map(|_| LatencyTracker::new()),
            registry,
            relay: self.relay,
            start: Instant::now(),
        };

        let endpoints: Vec<Box<dyn Transport>> = match self.transports {
            Some(transports) => {
                if transports.len() != n {
                    return Err(Error::Config(format!(
                        "expected {n} transports, got {}",
                        transports.len()
                    )));
                }
                transports
            }
            None => match self.net.transport {
                TransportKind::Memory => MemoryNetwork::create(n)
                    .into_iter()
                    .map(|e| Box::new(e) as Box<dyn Transport>)
                    .collect(),
                TransportKind::Tcp => {
                    TcpNetwork::create_with_connect_timeout(n, self.net.connect_timeout)?
                        .into_iter()
                        .map(|e| Box::new(e) as Box<dyn Transport>)
                        .collect()
                }
                TransportKind::MuxTcp => {
                    let shards = self.runtime.kind.worker_count().unwrap_or(1).clamp(1, n);
                    MuxTcpNetwork::create_with_connect_timeout(n, shards, self.net.connect_timeout)?
                        .into_iter()
                        .map(|e| Box::new(e) as Box<dyn Transport>)
                        .collect()
                }
            },
        };

        let dispatch = match self.runtime.kind {
            RuntimeKind::Threaded => {
                let (cmd_txs, handles) = threaded::spawn(&boot, endpoints)?;
                Dispatcher::Threaded { cmd_txs, handles }
            }
            RuntimeKind::Evented { .. } => {
                let workers = self
                    .runtime
                    .kind
                    .worker_count()
                    .unwrap_or(1)
                    .clamp(1, n.max(1));
                Dispatcher::Evented(EventedPool::start(&boot, endpoints, workers)?)
            }
        };

        Ok(Mom {
            topology,
            dispatch,
            recorder: boot.recorder,
            in_flight: boot.in_flight,
            stores,
            registry: boot.registry,
        })
    }
}

/// The execution substrate behind a running [`Mom`].
enum Dispatcher {
    Threaded {
        cmd_txs: Vec<Sender<Command>>,
        handles: Vec<std::thread::JoinHandle<()>>,
    },
    Evented(EventedPool),
}

impl Dispatcher {
    fn server_count(&self) -> usize {
        match self {
            Dispatcher::Threaded { cmd_txs, .. } => cmd_txs.len(),
            Dispatcher::Evented(pool) => pool.server_count(),
        }
    }

    fn send_cmd(&self, i: usize, cmd: Command) -> Result<()> {
        match self {
            Dispatcher::Threaded { cmd_txs, .. } => cmd_txs
                .get(i)
                .ok_or(Error::UnknownServer(ServerId::new(i as u16)))?
                .send(cmd)
                .map_err(|_| Error::Closed("server thread")),
            Dispatcher::Evented(pool) => pool.send_cmd(i, cmd),
        }
    }

    /// Sends every server its shutdown command (final batch flush + group
    /// commit) and reaps the workers, waiting until `deadline` for the
    /// evented pool's slots to finish. Returns `false` if reaping timed
    /// out before every server took its final commit.
    fn finish(self, deadline: Instant) -> bool {
        match self {
            Dispatcher::Threaded { cmd_txs, handles } => {
                for tx in &cmd_txs {
                    // A server that crashed mid-run has already dropped its
                    // command receiver; shutdown must still reap the rest.
                    // audit:allow(error-swallow)
                    let _ = tx.send(Command::Shutdown);
                }
                for handle in handles {
                    // Join errors mean the thread panicked; the panic is
                    // already on stderr and shutdown keeps reaping.
                    // audit:allow(error-swallow)
                    let _ = handle.join();
                }
                true
            }
            Dispatcher::Evented(pool) => {
                for i in 0..pool.server_count() {
                    // As above: a dead slot is already past its shutdown.
                    // audit:allow(error-swallow)
                    let _ = pool.send_cmd(i, Command::Shutdown);
                }
                pool.stop(deadline)
            }
        }
    }
}

/// A running MOM bus (threaded or evented; see [`RuntimeKind`]).
pub struct Mom {
    topology: Arc<Topology>,
    dispatch: Dispatcher,
    recorder: TraceRecorder,
    in_flight: Arc<AtomicI64>,
    stores: Vec<Arc<dyn StableStore>>,
    registry: Option<Registry>,
}

impl std::fmt::Debug for Mom {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mom")
            .field("servers", &self.dispatch.server_count())
            .field("in_flight", &self.in_flight.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl Mom {
    /// The validated topology this bus runs.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    fn cmd(&self, server: ServerId, cmd: Command) -> Result<()> {
        if server.as_usize() >= self.dispatch.server_count() {
            return Err(Error::UnknownServer(server));
        }
        self.dispatch.send_cmd(server.as_usize(), cmd)
    }

    /// Registers an agent on `server` under server-local id `local`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownServer`] for an unknown server or
    /// [`Error::Closed`] if the bus is shutting down.
    pub fn register_agent(
        &self,
        server: ServerId,
        local: u32,
        agent: Box<dyn Agent>,
    ) -> Result<AgentId> {
        let (reply, rx) = bounded(1);
        self.cmd(
            server,
            Command::Register {
                local,
                agent,
                reply,
            },
        )?;
        rx.recv().map_err(|_| Error::Closed("server"))?;
        Ok(AgentId::new(server, local))
    }

    /// Sends a notification from `from` (an agent identity on its server)
    /// to `to`, waiting until the origin server has accepted it.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownServer`] for unknown endpoints,
    /// [`Error::Closed`] if the origin server is crashed or shut down, and
    /// propagates channel validation errors.
    pub fn send(&self, from: AgentId, to: AgentId, note: Notification) -> Result<MessageId> {
        self.send_with(from, to, note, SendOptions::causal())
    }

    /// Sends a notification with no ordering guarantee (and no stamp
    /// overhead): the unordered quality of service. Excluded from the
    /// causality trace. Equivalent to
    /// `send_with(from, to, note, SendOptions::unordered())`.
    ///
    /// # Errors
    ///
    /// As for [`Mom::send`].
    pub fn send_unordered(
        &self,
        from: AgentId,
        to: AgentId,
        note: Notification,
    ) -> Result<MessageId> {
        self.send_with(from, to, note, SendOptions::unordered())
    }

    /// Sends a notification with explicit per-send options — the unified
    /// send path ([`Mom::send`] and [`Mom::send_unordered`] are thin
    /// wrappers over it). Anything convertible into [`SendOptions`] is
    /// accepted, including a bare [`DeliveryPolicy`](crate::DeliveryPolicy).
    ///
    /// # Errors
    ///
    /// As for [`Mom::send`].
    pub fn send_with(
        &self,
        from: AgentId,
        to: AgentId,
        note: Notification,
        opts: impl Into<SendOptions>,
    ) -> Result<MessageId> {
        let (reply, rx) = bounded(1);
        self.cmd(
            from.server(),
            Command::Send {
                from,
                to,
                note,
                opts: opts.into(),
                reply,
            },
        )?;
        rx.recv().map_err(|_| Error::Closed("server"))?
    }

    /// Sends several notifications from `from` as **one transaction** on
    /// the origin server: the batch is stamped together (consecutive
    /// same-peer stamps collapse into one-byte continuations), coalesced
    /// into multi-frame wire packets per peer, and covered by a single
    /// group commit. Returns the assigned message ids in order.
    ///
    /// # Errors
    ///
    /// As for [`Mom::send`]; the first failing submission aborts the batch
    /// (earlier messages remain queued and are still delivered).
    pub fn send_batch(
        &self,
        from: AgentId,
        batch: Vec<(AgentId, Notification)>,
        opts: impl Into<SendOptions>,
    ) -> Result<Vec<MessageId>> {
        let (reply, rx) = bounded(1);
        self.cmd(
            from.server(),
            Command::SendBatch {
                from,
                batch,
                opts: opts.into(),
                reply,
            },
        )?;
        rx.recv().map_err(|_| Error::Closed("server"))?
    }

    /// Flushes every server's partially filled link batches immediately,
    /// bypassing any configured `max_delay`. A no-op under the default
    /// policy (zero `max_delay` never leaves frames buffered between
    /// steps); crashed servers are skipped.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Closed`] if the bus is shutting down.
    pub fn flush(&self) -> Result<()> {
        let mut waits = Vec::with_capacity(self.dispatch.server_count());
        for i in 0..self.dispatch.server_count() {
            let (reply, rx) = bounded(1);
            self.dispatch.send_cmd(i, Command::Flush { reply })?;
            waits.push(rx);
        }
        for rx in waits {
            rx.recv().map_err(|_| Error::Closed("server"))?;
        }
        Ok(())
    }

    /// Crashes `server`: its in-memory state is discarded and incoming
    /// frames are dropped until [`Mom::recover`]. The stable store
    /// survives.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownServer`] / [`Error::Closed`].
    pub fn crash(&self, server: ServerId) -> Result<()> {
        self.cmd(server, Command::Crash)
    }

    /// Recovers `server` from its stable store, registering fresh agent
    /// instances (state is restored from their snapshots).
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownServer`] / [`Error::Closed`], or the
    /// recovery error encountered by the server.
    pub fn recover(&self, server: ServerId, agents: Vec<(u32, Box<dyn Agent>)>) -> Result<()> {
        let (reply, rx) = bounded(1);
        self.cmd(server, Command::Recover { agents, reply })?;
        rx.recv().map_err(|_| Error::Closed("server"))?
    }

    /// Marks `subscriber` reachable on its home server's relay: the
    /// accumulated backlog redelivers in causal order until acknowledged.
    /// Requires the bus to have been built with [`MomBuilder::relay`].
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownServer`] / [`Error::Closed`] (including
    /// when no relay is enabled on the bus).
    pub fn relay_connect(&self, subscriber: AgentId) -> Result<()> {
        self.relay_set_connected(subscriber, true)
    }

    /// Marks `subscriber` unreachable on its home server's relay:
    /// publications accumulate in its durable queue (bounded by
    /// `max_depth` and the TTL) instead of being dispatched.
    ///
    /// # Errors
    ///
    /// As for [`Mom::relay_connect`].
    pub fn relay_disconnect(&self, subscriber: AgentId) -> Result<()> {
        self.relay_set_connected(subscriber, false)
    }

    fn relay_set_connected(&self, subscriber: AgentId, connected: bool) -> Result<()> {
        let (reply, rx) = bounded(1);
        self.cmd(
            subscriber.server(),
            Command::RelayConnect {
                subscriber,
                connected,
                reply,
            },
        )?;
        rx.recv().map_err(|_| Error::Closed("server"))?
    }

    /// Cumulative statistics of one server.
    ///
    /// With metrics enabled (the default) this is a **view over the
    /// metrics registry**: the same counters that power [`Mom::metrics`],
    /// summed for the server's `server="<id>"` label. With metrics
    /// disabled it falls back to asking the server for its drained
    /// [`StepStats`] accumulator.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownServer`] / [`Error::Closed`].
    pub fn stats(&self, server: ServerId) -> Result<StepStats> {
        if server.as_usize() >= self.dispatch.server_count() {
            return Err(Error::UnknownServer(server));
        }
        if let Some(registry) = &self.registry {
            let snap = registry.snapshot();
            let id = server.as_u16().to_string();
            let labels = [("server", id.as_str())];
            return Ok(StepStats {
                cell_ops: snap.sum_counter_labelled("aaa_channel_cell_ops_total", &labels),
                stamp_bytes: snap.sum_counter_labelled("aaa_channel_stamp_bytes_total", &labels),
                disk_bytes: snap.sum_counter_labelled("aaa_server_disk_bytes_total", &labels),
                delivered: snap.sum_counter_labelled("aaa_channel_delivered_total", &labels),
                transmitted: snap.sum_counter_labelled("aaa_channel_transmitted_total", &labels),
                forwarded: snap.sum_counter_labelled("aaa_channel_forwarded_total", &labels),
                reactions: snap.sum_counter_labelled("aaa_engine_reactions_total", &labels),
            });
        }
        let (reply, rx) = bounded(1);
        self.cmd(server, Command::Stats { reply })?;
        rx.recv().map_err(|_| Error::Closed("server"))
    }

    /// Snapshot of every metric of the bus, in deterministic order.
    ///
    /// Returns an empty snapshot if metrics were disabled with
    /// [`RuntimeConfig::metrics`]. The per-domain causal-cost counters
    /// (`aaa_channel_cell_ops_total`, `aaa_channel_stamp_bytes_total`) are
    /// the series plotted in Figures 7/8 of the paper.
    ///
    /// # Examples
    ///
    /// ```
    /// use aaa_base::{AgentId, ServerId};
    /// use aaa_mom::{EchoAgent, MomBuilder, Notification};
    /// use aaa_topology::TopologySpec;
    /// use std::time::Duration;
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let mom = MomBuilder::new(TopologySpec::single_domain(2)).build()?;
    /// let echo = mom.register_agent(ServerId::new(1), 1, Box::new(EchoAgent))?;
    /// mom.send(AgentId::new(ServerId::new(0), 9), echo, Notification::signal("hi"))?;
    /// assert!(mom.quiesce(Duration::from_secs(5)));
    ///
    /// let snap = mom.metrics();
    /// // Every message delivered to an engine shows up exactly once.
    /// assert_eq!(snap.sum_counter("aaa_channel_delivered_total"), 2);
    /// // The snapshot renders as Prometheus text…
    /// assert!(snap.render_prometheus().contains("aaa_channel_delivered_total"));
    /// mom.shutdown();
    /// # Ok(())
    /// # }
    /// ```
    pub fn metrics(&self) -> MetricsSnapshot {
        self.registry
            .as_ref()
            .map(|r| r.snapshot())
            .unwrap_or_default()
    }

    /// The metrics registry, if metrics are enabled (to share with other
    /// components or export through a custom pipeline).
    pub fn registry(&self) -> Option<&Registry> {
        self.registry.as_ref()
    }

    /// Serves the metrics registry over HTTP at `addr` (for example
    /// `"127.0.0.1:9464"`, or port `0` to pick a free port): `GET /metrics`
    /// returns Prometheus text, `GET /metrics.json` JSON. The exporter
    /// stops when the returned handle is dropped.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Config`] if metrics are disabled or the address
    /// cannot be bound.
    pub fn serve_metrics(&self, addr: &str) -> Result<MetricsServer> {
        let registry = self
            .registry
            .clone()
            .ok_or_else(|| Error::Config("metrics are disabled on this bus".into()))?;
        aaa_obs::serve(registry, addr).map_err(|e| Error::Config(format!("metrics exporter: {e}")))
    }

    /// Number of end-to-end messages currently in flight (accepted but not
    /// yet delivered to their destination engine).
    pub fn in_flight(&self) -> i64 {
        // Relaxed: a monitoring counter, updated Relaxed at the
        // fetch_add/fetch_sub sites; quiesce() polls it in a loop, so
        // eventual visibility is all it needs.
        self.in_flight.load(Ordering::Relaxed)
    }

    /// Waits until every server reports itself idle twice in a row, or the
    /// timeout expires. Returns `true` on quiescence.
    ///
    /// Crashed servers report idle; combine with [`Mom::recover`] before
    /// quiescing if deliveries must complete.
    pub fn quiesce(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut consecutive = 0;
        while Instant::now() < deadline {
            let all_idle = (0..self.dispatch.server_count()).all(|i| {
                let (reply, rx) = bounded(1);
                if self.dispatch.send_cmd(i, Command::Probe { reply }).is_err() {
                    return true; // shut down counts as idle
                }
                rx.recv().unwrap_or(true)
            });
            if all_idle {
                consecutive += 1;
                if consecutive >= 2 {
                    return true;
                }
            } else {
                consecutive = 0;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        false
    }

    /// Snapshot of the recorded causality trace.
    ///
    /// # Errors
    ///
    /// Propagates trace validation errors (which would indicate a recorder
    /// misuse bug).
    pub fn trace(&self) -> Result<aaa_trace::Trace> {
        self.recorder.snapshot()
    }

    /// The stable store of one server (to inspect persistence traffic).
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownServer`] if the server does not exist.
    pub fn store(&self, server: ServerId) -> Result<Arc<dyn StableStore>> {
        self.stores
            .get(server.as_usize())
            .cloned()
            .ok_or(Error::UnknownServer(server))
    }

    /// Gracefully stops the bus with the default timeout: every server
    /// flushes its pending batches and takes a final group commit before
    /// its worker is reaped. Equivalent to
    /// `shutdown_within(...)` with a 5 s budget, discarding the verdict.
    pub fn shutdown(self) {
        let deadline = Instant::now() + DEFAULT_SHUTDOWN_TIMEOUT;
        self.dispatch.finish(deadline);
    }

    /// Drains and stops the bus within `timeout`: flushes every link
    /// batch, waits for in-flight traffic to quiesce, then has every
    /// server take a final group commit before the workers are joined.
    /// Returns `true` if the bus fully drained and every server finished
    /// its final commit in time; `false` means the timeout cut the drain
    /// short (workers are still reaped).
    pub fn shutdown_within(self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut drained = false;
        while !drained && Instant::now() < deadline {
            // Alternate flushing and quiescing: multi-hop traffic can land
            // new frames in a peer's batcher after the previous flush, so
            // one flush pass is not enough to settle the bus.
            // audit:allow(error-swallow)
            let _ = self.flush();
            let slice = deadline
                .saturating_duration_since(Instant::now())
                .min(Duration::from_millis(100));
            drained = self.quiesce(slice);
        }
        let committed = self.dispatch.finish(deadline);
        drained && committed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agent::EchoAgent;
    use aaa_base::VDuration;
    use aaa_net::BatchPolicy;
    use std::time::Duration;

    fn sid(i: u16) -> ServerId {
        ServerId::new(i)
    }

    #[test]
    fn builder_rejects_invalid_topologies() {
        let sparse = TopologySpec::from_domains(vec![vec![0, 2]]);
        assert!(MomBuilder::new(sparse).build().is_err());
        let cyclic = TopologySpec::from_domains(vec![vec![0, 1], vec![1, 2], vec![2, 0]]);
        assert!(matches!(
            MomBuilder::new(cyclic).build(),
            Err(Error::CyclicDomainGraph { .. })
        ));
    }

    #[test]
    fn builder_rejects_wrong_store_count() {
        let stores: Vec<Arc<dyn StableStore>> = vec![Arc::new(MemoryStore::new())];
        let err = MomBuilder::new(TopologySpec::single_domain(3))
            .stores(stores)
            .build()
            .unwrap_err();
        assert!(matches!(err, Error::Config(_)));
    }

    #[test]
    fn unknown_server_operations_error() {
        let mom = MomBuilder::new(TopologySpec::single_domain(2))
            .build()
            .unwrap();
        assert!(matches!(
            mom.register_agent(sid(9), 1, Box::new(EchoAgent)),
            Err(Error::UnknownServer(_))
        ));
        assert!(matches!(mom.crash(sid(9)), Err(Error::UnknownServer(_))));
        assert!(matches!(mom.stats(sid(9)), Err(Error::UnknownServer(_))));
        assert!(matches!(mom.store(sid(9)), Err(Error::UnknownServer(_))));
        mom.shutdown();
    }

    #[test]
    fn stats_and_in_flight_settle_to_zero() {
        let mom = MomBuilder::new(TopologySpec::single_domain(2))
            .build()
            .unwrap();
        mom.register_agent(sid(1), 1, Box::new(EchoAgent)).unwrap();
        mom.send(
            AgentId::new(sid(0), 9),
            AgentId::new(sid(1), 1),
            Notification::signal("x"),
        )
        .unwrap();
        assert!(mom.quiesce(Duration::from_secs(5)));
        assert_eq!(mom.in_flight(), 0);
        let s0 = mom.stats(sid(0)).unwrap();
        let s1 = mom.stats(sid(1)).unwrap();
        assert_eq!(s0.transmitted, 1);
        assert_eq!(s1.transmitted, 1); // the echo
        assert_eq!(s1.reactions, 1);
        assert!(format!("{mom:?}").contains("Mom"));
        mom.shutdown();
    }

    #[test]
    fn quiesce_on_idle_bus_is_immediate() {
        let mom = MomBuilder::new(TopologySpec::single_domain(2))
            .build()
            .unwrap();
        assert!(mom.quiesce(Duration::from_secs(1)));
        assert_eq!(mom.topology().server_count(), 2);
        mom.shutdown();
    }

    #[test]
    fn trace_can_be_disabled() {
        let mom = MomBuilder::new(TopologySpec::single_domain(2))
            .runtime(RuntimeConfig::threaded().record_trace(false))
            .build()
            .unwrap();
        mom.register_agent(sid(1), 1, Box::new(EchoAgent)).unwrap();
        mom.send(
            AgentId::new(sid(0), 9),
            AgentId::new(sid(1), 1),
            Notification::signal("x"),
        )
        .unwrap();
        assert!(mom.quiesce(Duration::from_secs(5)));
        assert_eq!(mom.trace().unwrap().message_count(), 0);
        mom.shutdown();
    }

    #[test]
    fn send_batch_is_one_transaction_with_flush() {
        let mom = MomBuilder::new(TopologySpec::single_domain(2))
            .build()
            .unwrap();
        mom.register_agent(sid(1), 1, Box::new(EchoAgent)).unwrap();
        let batch: Vec<_> = (0..10)
            .map(|i| {
                (
                    AgentId::new(sid(1), 1),
                    Notification::new("b", vec![i as u8]),
                )
            })
            .collect();
        let ids = mom
            .send_batch(AgentId::new(sid(0), 9), batch, SendOptions::new())
            .unwrap();
        assert_eq!(ids.len(), 10);
        mom.flush().unwrap(); // no-op under the default policy
        assert!(mom.quiesce(Duration::from_secs(5)));
        assert_eq!(mom.in_flight(), 0);
        assert_eq!(mom.stats(sid(1)).unwrap().reactions, 10);
        assert!(mom.trace().unwrap().check_causality().is_ok());
        // The batch metrics observed coalesced flushes.
        let snap = mom.metrics();
        assert!(snap.sum_counter("aaa_link_flushes_total") > 0);
        mom.shutdown();
    }

    #[test]
    fn batching_can_be_disabled_per_bus() {
        let mom = MomBuilder::new(TopologySpec::single_domain(2))
            .net(NetConfig::memory().batch(BatchPolicy::disabled()))
            .build()
            .unwrap();
        mom.register_agent(sid(1), 1, Box::new(EchoAgent)).unwrap();
        let batch: Vec<_> = (0..4)
            .map(|_| (AgentId::new(sid(1), 1), Notification::signal("x")))
            .collect();
        mom.send_batch(AgentId::new(sid(0), 9), batch, SendOptions::new())
            .unwrap();
        assert!(mom.quiesce(Duration::from_secs(5)));
        assert_eq!(mom.stats(sid(1)).unwrap().reactions, 4);
        mom.shutdown();
    }

    #[test]
    fn urgent_sends_flush_held_batches() {
        // With a large max_delay, frames would sit in the batcher; an
        // urgent send forces them onto the wire in the same step.
        let mom = MomBuilder::new(TopologySpec::single_domain(2))
            .net(NetConfig::memory().batch(BatchPolicy {
                max_frames: 32,
                max_bytes: 256 * 1024,
                max_delay: VDuration::from_millis(50),
            }))
            .build()
            .unwrap();
        mom.register_agent(sid(1), 1, Box::new(EchoAgent)).unwrap();
        mom.send_with(
            AgentId::new(sid(0), 9),
            AgentId::new(sid(1), 1),
            Notification::signal("now"),
            SendOptions::urgent(),
        )
        .unwrap();
        assert!(mom.quiesce(Duration::from_secs(5)));
        assert_eq!(mom.stats(sid(1)).unwrap().reactions, 1);
        mom.shutdown();
    }

    #[test]
    fn delayed_batches_flush_on_mom_flush_or_deadline() {
        let mom = MomBuilder::new(TopologySpec::single_domain(2))
            .net(NetConfig::memory().batch(BatchPolicy {
                max_frames: 32,
                max_bytes: 256 * 1024,
                max_delay: VDuration::from_millis(30),
            }))
            .build()
            .unwrap();
        mom.register_agent(sid(1), 1, Box::new(EchoAgent)).unwrap();
        for _ in 0..3 {
            mom.send(
                AgentId::new(sid(0), 9),
                AgentId::new(sid(1), 1),
                Notification::signal("held"),
            )
            .unwrap();
        }
        mom.flush().unwrap();
        assert!(mom.quiesce(Duration::from_secs(5)));
        assert_eq!(mom.stats(sid(1)).unwrap().reactions, 3);
        assert!(mom.trace().unwrap().check_causality().is_ok());
        mom.shutdown();
    }

    #[test]
    fn recover_running_server_is_allowed_and_harmless() {
        // Recovering a server that never crashed resets its volatile state
        // from the (empty) store; without persistence this is a fresh core.
        let mom = MomBuilder::new(TopologySpec::single_domain(2))
            .build()
            .unwrap();
        mom.recover(sid(1), vec![(1, Box::new(EchoAgent) as Box<dyn Agent>)])
            .unwrap();
        mom.send(
            AgentId::new(sid(0), 9),
            AgentId::new(sid(1), 1),
            Notification::signal("x"),
        )
        .unwrap();
        assert!(mom.quiesce(Duration::from_secs(5)));
        assert_eq!(mom.stats(sid(1)).unwrap().reactions, 1);
        mom.shutdown();
    }

    #[test]
    fn evented_bus_delivers_and_quiesces() {
        let mom = MomBuilder::new(TopologySpec::bus(2, 2))
            .runtime(RuntimeConfig::evented(2))
            .build()
            .unwrap();
        let n = mom.topology().server_count();
        for s in 1..n {
            mom.register_agent(sid(s as u16), 1, Box::new(EchoAgent))
                .unwrap();
        }
        for s in 1..n {
            mom.send(
                AgentId::new(sid(0), 9),
                AgentId::new(sid(s as u16), 1),
                Notification::signal("ping"),
            )
            .unwrap();
        }
        assert!(mom.quiesce(Duration::from_secs(10)));
        assert_eq!(mom.in_flight(), 0);
        let trace = mom.trace().unwrap();
        assert!(trace.check_causality().is_ok());
        assert!(mom.shutdown_within(Duration::from_secs(5)));
    }

    #[test]
    fn evented_crash_recover_round_trip() {
        let mom = MomBuilder::new(TopologySpec::single_domain(3))
            .runtime(RuntimeConfig::evented(2).persist(true))
            .build()
            .unwrap();
        mom.register_agent(sid(1), 1, Box::new(EchoAgent)).unwrap();
        mom.send(
            AgentId::new(sid(0), 9),
            AgentId::new(sid(1), 1),
            Notification::signal("a"),
        )
        .unwrap();
        assert!(mom.quiesce(Duration::from_secs(10)));
        mom.crash(sid(1)).unwrap();
        // The origin (server 0) is alive, so this send is accepted; the
        // frame is retransmitted until server 1 recovers, then delivered
        // exactly once.
        mom.send(
            AgentId::new(sid(0), 9),
            AgentId::new(sid(1), 1),
            Notification::signal("b"),
        )
        .unwrap();
        mom.recover(sid(1), vec![(1, Box::new(EchoAgent) as Box<dyn Agent>)])
            .unwrap();
        assert!(mom.quiesce(Duration::from_secs(10)));
        assert_eq!(mom.stats(sid(1)).unwrap().reactions, 2);
        assert!(mom.shutdown_within(Duration::from_secs(5)));
    }

    #[test]
    fn evented_sized_from_parallelism_when_zero() {
        let mom = MomBuilder::new(TopologySpec::single_domain(2))
            .runtime(RuntimeConfig::evented(0))
            .build()
            .unwrap();
        mom.register_agent(sid(1), 1, Box::new(EchoAgent)).unwrap();
        mom.send(
            AgentId::new(sid(0), 9),
            AgentId::new(sid(1), 1),
            Notification::signal("x"),
        )
        .unwrap();
        assert!(mom.quiesce(Duration::from_secs(10)));
        mom.shutdown();
    }

    #[test]
    fn shutdown_within_drains_held_batches() {
        // Frames held by a cross-step batching delay must still reach
        // their destination before shutdown returns true.
        let mom = MomBuilder::new(TopologySpec::single_domain(2))
            .net(NetConfig::memory().batch(BatchPolicy {
                max_frames: 1024,
                max_bytes: 1024 * 1024,
                max_delay: VDuration::from_millis(60_000),
            }))
            .build()
            .unwrap();
        mom.register_agent(sid(1), 1, Box::new(EchoAgent)).unwrap();
        mom.send(
            AgentId::new(sid(0), 9),
            AgentId::new(sid(1), 1),
            Notification::signal("held"),
        )
        .unwrap();
        let registry = mom.registry().cloned();
        assert!(mom.shutdown_within(Duration::from_secs(10)));
        let snap = registry.unwrap().snapshot();
        assert_eq!(snap.sum_counter("aaa_engine_reactions_total"), 1);
    }
}
