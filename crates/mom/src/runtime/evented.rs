//! The sharded event-loop runtime: N worker threads drive *all* servers.
//!
//! Where the threaded runtime spends one OS thread per server (and falls
//! over around a few hundred servers per process), this runtime
//! multiplexes every server onto a fixed pool of shard workers — the
//! C10K shape. Each server lives in a [`Slot`]:
//!
//! - its transport installs a readiness notifier that marks the slot
//!   *scheduled* and pushes its index onto a shared MPMC run queue;
//! - shard workers pop indices off that queue — because the queue is
//!   shared, an idle shard steals runnable servers from a busy one for
//!   free — and run one bounded step ([`PoolShared::run_ready_server`]):
//!   drain commands, drain up to [`MAX_STEP_DRAIN`] datagrams into one
//!   batched transaction, poll link timers;
//! - a dedicated timer thread scans per-slot deadlines (retransmission
//!   timeouts, held batch flushes) every millisecond and schedules slots
//!   whose deadline passed, so an otherwise-quiet server still retransmits
//!   on time.
//!
//! The scheduled flag collapses notification bursts: a slot is enqueued at
//! most once until a worker picks it up, so a thousand datagrams cost one
//! queue entry. Workers never block on a slot — if a stale wakeup races a
//! step in progress, `try_lock` fails and the slot is simply re-queued.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Weak};
use std::time::{Duration, Instant};

use aaa_base::{Error, Result, ServerId, VTime};
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use parking_lot::Mutex;

use super::driver::ServerDriver;
use super::{Boot, Command, Transport, MAX_STEP_DRAIN};

/// Run-queue sentinel: wakes a worker without running a slot (used to
/// drain workers at shutdown).
const WAKE: usize = usize::MAX;

/// How often the timer thread scans slot deadlines.
const TIMER_RESOLUTION: Duration = Duration::from_millis(1);

/// How long a worker sleeps on an empty run queue before re-checking the
/// stop flag.
const IDLE_PARK: Duration = Duration::from_millis(50);

/// Sentinel deadline meaning "no wakeup needed".
const NO_DEADLINE: u64 = u64::MAX;

struct SlotState {
    driver: ServerDriver,
    endpoint: Box<dyn Transport>,
}

/// One server multiplexed onto the shard pool.
struct Slot {
    /// Set while the slot sits in the run queue (or a worker is about to
    /// run it); collapses wakeup bursts into one queue entry.
    scheduled: AtomicBool,
    /// Set once the slot processed [`Command::Shutdown`] (final flush and
    /// group commit done); dead slots are never run again.
    dead: AtomicBool,
    cmd_tx: Sender<Command>,
    cmd_rx: Receiver<Command>,
    state: Mutex<SlotState>,
    /// Earliest link deadline in micros-since-start ([`NO_DEADLINE`] if
    /// none); maintained after every step, consumed by the timer thread.
    deadline_us: AtomicU64,
}

pub(crate) struct PoolShared {
    slots: Vec<Slot>,
    runq_tx: Sender<usize>,
    runq_rx: Receiver<usize>,
    stop: AtomicBool,
    start: Instant,
}

impl PoolShared {
    fn now(&self) -> VTime {
        VTime::from_micros(self.start.elapsed().as_micros() as u64)
    }

    /// Marks slot `i` runnable. The swap makes this idempotent: a slot
    /// already queued is not queued twice.
    fn schedule(&self, i: usize) {
        let slot = &self.slots[i];
        if slot.dead.load(Ordering::Acquire) {
            return;
        }
        if !slot.scheduled.swap(true, Ordering::AcqRel) {
            // Failure means every worker already exited at teardown;
            // nothing is left to run the slot anyway.
            // audit:allow(error-swallow)
            let _ = self.runq_tx.send(i);
        }
    }

    /// Runs one bounded step of server `i`: commands, a capped datagram
    /// drain processed as one transaction, then link timers. This is the
    /// shard-loop entry point — everything reachable from here must stay
    /// non-blocking (enforced by the `block-in-step` audit rule).
    pub(crate) fn run_ready_server(&self, i: usize) {
        let slot = &self.slots[i];
        // Clear before draining: arrivals that race the drain re-schedule.
        slot.scheduled.store(false, Ordering::Release);
        if slot.dead.load(Ordering::Acquire) {
            return;
        }
        let Some(mut guard) = slot.state.try_lock() else {
            // Another worker is mid-step here (a timer wakeup racing a
            // traffic wakeup). Hand the slot back so the event is not
            // lost; the running worker will make progress meanwhile.
            self.schedule(i);
            std::thread::yield_now();
            return;
        };
        // Re-check under the lock: `dead` is only ever set by the worker
        // holding this guard, so a worker that passed the check above
        // while another worker was mid-shutdown can acquire the lock
        // right after the final flush + group commit and would otherwise
        // poll the endpoint and tick the driver of a dead slot (the
        // step-after-dead race; the interleaving model check in
        // aaa-audit finds exactly this window when the re-check knob is
        // disabled).
        if slot.dead.load(Ordering::Acquire) {
            return;
        }
        let st = &mut *guard;

        while let Ok(cmd) = slot.cmd_rx.try_recv() {
            if !st
                .driver
                .handle_command(st.endpoint.as_ref(), cmd, self.now())
            {
                slot.dead.store(true, Ordering::Release);
                slot.deadline_us.store(NO_DEADLINE, Ordering::Release);
                return;
            }
        }

        let mut drained = Vec::new();
        while drained.len() < MAX_STEP_DRAIN {
            match st.endpoint.poll_recv() {
                Ok(Some(inc)) => drained.push((inc.from, inc.bytes)),
                Ok(None) | Err(_) => break,
            }
        }
        let saturated = drained.len() >= MAX_STEP_DRAIN;
        if !drained.is_empty() {
            st.driver
                .on_batch(st.endpoint.as_ref(), drained, self.now());
        }

        st.driver.tick(st.endpoint.as_ref(), self.now());
        let next = st
            .driver
            .next_wakeup()
            .map_or(NO_DEADLINE, VTime::as_micros);
        slot.deadline_us.store(next, Ordering::Release);
        drop(guard);

        if saturated || !slot.cmd_rx.is_empty() {
            // More work is already waiting; go to the back of the queue
            // instead of starving the other servers on this shard.
            self.schedule(i);
        }
    }

    fn worker(self: &Arc<Self>) {
        while !self.stop.load(Ordering::Acquire) {
            match self.runq_rx.recv_timeout(IDLE_PARK) {
                Ok(WAKE) => {}
                Ok(i) => self.run_ready_server(i),
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => return,
            }
        }
    }

    fn timer(self: &Arc<Self>) {
        while !self.stop.load(Ordering::Acquire) {
            let now_us = self.start.elapsed().as_micros() as u64;
            for (i, slot) in self.slots.iter().enumerate() {
                let due = slot.deadline_us.load(Ordering::Acquire);
                if due <= now_us
                    && slot
                        .deadline_us
                        .compare_exchange(due, NO_DEADLINE, Ordering::AcqRel, Ordering::Acquire)
                        .is_ok()
                {
                    self.schedule(i);
                }
            }
            std::thread::sleep(TIMER_RESOLUTION);
        }
    }
}

/// The running shard pool: worker threads plus the shared slot table.
pub(crate) struct EventedPool {
    shared: Arc<PoolShared>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl EventedPool {
    /// Builds the slot table, installs readiness notifiers and starts
    /// `shards` workers plus the timer thread. Every slot is scheduled
    /// once so pre-notifier arrivals are drained promptly.
    pub(crate) fn start(
        boot: &Boot,
        endpoints: Vec<Box<dyn Transport>>,
        shards: usize,
    ) -> Result<EventedPool> {
        let n = endpoints.len();
        let (runq_tx, runq_rx) = unbounded::<usize>();
        let mut slots = Vec::with_capacity(n);
        for (i, mut endpoint) in endpoints.into_iter().enumerate() {
            let me = ServerId::new(i as u16);
            let obs = boot.obs_for(i);
            if let Some((meter, _)) = &obs {
                endpoint.attach_meter(meter);
            }
            let driver = boot.driver(me, obs)?;
            let (cmd_tx, cmd_rx) = unbounded::<Command>();
            slots.push(Slot {
                scheduled: AtomicBool::new(false),
                dead: AtomicBool::new(false),
                cmd_tx,
                cmd_rx,
                state: Mutex::new(SlotState { driver, endpoint }),
                deadline_us: AtomicU64::new(NO_DEADLINE),
            });
        }
        let shared = Arc::new(PoolShared {
            slots,
            runq_tx,
            runq_rx,
            stop: AtomicBool::new(false),
            start: boot.start,
        });

        // The notifier holds a Weak so slot → endpoint → notifier does not
        // keep the pool alive past the last external handle.
        for i in 0..n {
            let weak: Weak<PoolShared> = Arc::downgrade(&shared);
            let notifier: aaa_net::ReadyNotifier = Arc::new(move || {
                if let Some(shared) = weak.upgrade() {
                    shared.schedule(i);
                }
            });
            shared.slots[i]
                .state
                .lock()
                .endpoint
                .set_ready_notifier(notifier);
            shared.schedule(i);
        }

        let mut workers = Vec::with_capacity(shards + 1);
        for _ in 0..shards {
            let shared = shared.clone();
            workers.push(std::thread::spawn(move || shared.worker()));
        }
        let timer_shared = shared.clone();
        workers.push(std::thread::spawn(move || timer_shared.timer()));
        Ok(EventedPool { shared, workers })
    }

    pub(crate) fn server_count(&self) -> usize {
        self.shared.slots.len()
    }

    /// Enqueues a command for server `i` and wakes a worker for it.
    pub(crate) fn send_cmd(&self, i: usize, cmd: Command) -> Result<()> {
        let slot = self
            .shared
            .slots
            .get(i)
            .ok_or(Error::UnknownServer(ServerId::new(i as u16)))?;
        if slot.dead.load(Ordering::Acquire) {
            return Err(Error::Closed("server shut down"));
        }
        slot.cmd_tx
            .send(cmd)
            .map_err(|_| Error::Closed("shard pool"))?;
        self.shared.schedule(i);
        Ok(())
    }

    /// Waits (until `deadline`) for every slot to process its shutdown
    /// command, then stops and joins the workers. Returns `true` if all
    /// slots shut down gracefully in time.
    pub(crate) fn stop(mut self, deadline: Instant) -> bool {
        let all_dead = loop {
            if self
                .shared
                .slots
                .iter()
                .all(|s| s.dead.load(Ordering::Acquire))
            {
                break true;
            }
            if Instant::now() >= deadline {
                break false;
            }
            std::thread::sleep(Duration::from_millis(1));
        };
        self.halt();
        for handle in self.workers.drain(..) {
            // Join errors mean the thread panicked; the panic is already
            // on stderr and shutdown must keep reaping the others.
            // audit:allow(error-swallow)
            let _ = handle.join();
        }
        all_dead
    }

    fn halt(&self) {
        self.shared.stop.store(true, Ordering::Release);
        for _ in 0..self.workers.len() {
            // Workers may have already exited and dropped the receiver.
            // audit:allow(error-swallow)
            let _ = self.shared.runq_tx.send(WAKE);
        }
    }
}

impl Drop for EventedPool {
    fn drop(&mut self) {
        // Dropping a Mom without shutdown() must not leak the pool's
        // threads; they are detached here and exit within one IDLE_PARK.
        if !self.workers.is_empty() {
            self.halt();
        }
    }
}

impl std::fmt::Debug for EventedPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventedPool")
            .field("servers", &self.shared.slots.len())
            .field("workers", &self.workers.len())
            .finish()
    }
}
