//! The typed configuration trio behind [`MomBuilder`](super::MomBuilder).
//!
//! Historically the builder accreted thirteen setters with no structure;
//! this module replaces them with three value types, grouped by the layer
//! they configure:
//!
//! - [`RuntimeConfig`] — *how servers execute*: the [`RuntimeKind`]
//!   (thread-per-server or sharded event loops), persistence, trace
//!   recording, metrics, backpressure;
//! - [`NetConfig`] — *how bytes move*: the [`TransportKind`], link
//!   batching policy, retransmission timeout;
//! - [`ClockConfig`] — *how causality is stamped*: the
//!   [`StampMode`].
//!
//! Each type is plain data with chainable `#[must_use]` updates, so a
//! config can be built inline, stored in test fixtures, or derived from
//! another:
//!
//! ```
//! use aaa_mom::{ClockConfig, MomBuilder, NetConfig, RuntimeConfig, StampMode};
//! use aaa_topology::TopologySpec;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mom = MomBuilder::new(TopologySpec::bus(2, 3))
//!     .runtime(RuntimeConfig::evented(4).persist(true))
//!     .net(NetConfig::memory().rto(aaa_base::VDuration::from_millis(50)))
//!     .clock(ClockConfig::mode(StampMode::Reduced))
//!     .build()?;
//! mom.shutdown();
//! # Ok(())
//! # }
//! ```

use std::time::Duration;

use aaa_base::VDuration;
use aaa_clocks::StampMode;
use aaa_net::BatchPolicy;

use crate::server::ServerConfig;

/// How the bus executes its servers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RuntimeKind {
    /// One OS thread per server — the paper's one-JVM-per-server shape,
    /// faithful but bounded to a few hundred servers per process.
    Threaded,
    /// N event-loop shards over a fixed worker pool, multiplexing every
    /// server onto them with work-stealing — the C10K runtime.
    Evented {
        /// Number of shard workers; `0` sizes the pool from available
        /// parallelism.
        shards: usize,
    },
}

impl RuntimeKind {
    /// Resolves the worker count for this kind (`None` for threaded).
    #[must_use]
    pub fn worker_count(self) -> Option<usize> {
        match self {
            RuntimeKind::Threaded => None,
            RuntimeKind::Evented { shards } => Some(if shards == 0 {
                std::thread::available_parallelism()
                    .map(std::num::NonZeroUsize::get)
                    .unwrap_or(4)
            } else {
                shards
            }),
        }
    }
}

/// Execution-layer configuration: runtime kind, durability, observability.
#[derive(Debug, Clone)]
pub struct RuntimeConfig {
    /// The execution substrate (default: [`RuntimeKind::Threaded`]).
    pub kind: RuntimeKind,
    /// Transactional persistence of every server (default: off).
    /// Required for crash/recover to be meaningful.
    pub persist: bool,
    /// Outstanding-message cap before client sends fail with
    /// backpressure (default: 65 536). See
    /// [`ServerConfig::max_outstanding`].
    pub max_outstanding: usize,
    /// Causality-trace recording (default: on).
    pub record_trace: bool,
    /// Accept a cyclic domain graph (counterexample experiments; the
    /// theorem's guarantee is void). Default: off.
    pub allow_cycles: bool,
    /// Metrics collection (default: on).
    pub metrics: bool,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig::threaded()
    }
}

impl RuntimeConfig {
    /// Thread-per-server execution with the default knobs.
    #[must_use]
    pub fn threaded() -> RuntimeConfig {
        RuntimeConfig {
            kind: RuntimeKind::Threaded,
            persist: false,
            max_outstanding: 65_536,
            record_trace: true,
            allow_cycles: false,
            metrics: true,
        }
    }

    /// Sharded event-loop execution over `shards` workers (`0` = size
    /// from available parallelism), default knobs otherwise.
    #[must_use]
    pub fn evented(shards: usize) -> RuntimeConfig {
        RuntimeConfig {
            kind: RuntimeKind::Evented { shards },
            ..RuntimeConfig::threaded()
        }
    }

    /// Replaces the runtime kind.
    #[must_use]
    pub fn kind(mut self, kind: RuntimeKind) -> RuntimeConfig {
        self.kind = kind;
        self
    }

    /// Enables or disables transactional persistence.
    #[must_use]
    pub fn persist(mut self, on: bool) -> RuntimeConfig {
        self.persist = on;
        self
    }

    /// Caps outstanding (accepted, undelivered) messages per server.
    #[must_use]
    pub fn max_outstanding(mut self, cap: usize) -> RuntimeConfig {
        self.max_outstanding = cap;
        self
    }

    /// Enables or disables causality-trace recording.
    #[must_use]
    pub fn record_trace(mut self, on: bool) -> RuntimeConfig {
        self.record_trace = on;
        self
    }

    /// Accepts cyclic domain graphs (voids the theorem's guarantee).
    #[must_use]
    pub fn allow_cycles(mut self, on: bool) -> RuntimeConfig {
        self.allow_cycles = on;
        self
    }

    /// Enables or disables metrics collection.
    #[must_use]
    pub fn metrics(mut self, on: bool) -> RuntimeConfig {
        self.metrics = on;
        self
    }
}

/// Which byte substrate carries the bus.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransportKind {
    /// In-process FIFO channels (default; fastest, test-friendly).
    Memory,
    /// Localhost TCP, one socket pair per server pair — the paper's
    /// deployment shape.
    Tcp,
    /// Localhost TCP multiplexed over one socket per event-loop shard:
    /// many logical links per socket, per-link FIFO preserved. The
    /// C10K-friendly wire substrate.
    MuxTcp,
}

/// Network-layer configuration: substrate, batching, retransmission.
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// The byte substrate (default: [`TransportKind::Memory`]).
    pub transport: TransportKind,
    /// Outbound connect timeout for TCP substrates (default: 2 s).
    pub connect_timeout: Duration,
    /// Group-commit batching policy for outgoing link frames.
    ///
    /// Batching is **on by default** with [`BatchPolicy::default`] — up
    /// to 32 frames or 256 KiB per wire packet, `max_delay` zero (frames
    /// coalesce only *within* a step). Pass [`BatchPolicy::disabled`]
    /// for one-packet-per-message, or a non-zero `max_delay` to hold
    /// partial batches across steps.
    pub batch: BatchPolicy,
    /// Link retransmission timeout (default: 200 ms).
    pub rto: VDuration,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig::memory()
    }
}

impl NetConfig {
    /// The in-memory mesh with default batching and RTO.
    #[must_use]
    pub fn memory() -> NetConfig {
        NetConfig {
            transport: TransportKind::Memory,
            connect_timeout: aaa_net::tcp::DEFAULT_CONNECT_TIMEOUT,
            batch: BatchPolicy::default(),
            rto: ServerConfig::default().rto,
        }
    }

    /// The pairwise localhost TCP mesh.
    #[must_use]
    pub fn tcp() -> NetConfig {
        NetConfig {
            transport: TransportKind::Tcp,
            ..NetConfig::memory()
        }
    }

    /// The shard-multiplexed localhost TCP mesh.
    #[must_use]
    pub fn mux_tcp() -> NetConfig {
        NetConfig {
            transport: TransportKind::MuxTcp,
            ..NetConfig::memory()
        }
    }

    /// Replaces the transport kind.
    #[must_use]
    pub fn transport(mut self, kind: TransportKind) -> NetConfig {
        self.transport = kind;
        self
    }

    /// Sets the TCP outbound connect timeout.
    #[must_use]
    pub fn connect_timeout(mut self, timeout: Duration) -> NetConfig {
        self.connect_timeout = timeout;
        self
    }

    /// Sets the link batching policy.
    #[must_use]
    pub fn batch(mut self, policy: BatchPolicy) -> NetConfig {
        self.batch = policy;
        self
    }

    /// Sets the link retransmission timeout.
    #[must_use]
    pub fn rto(mut self, rto: VDuration) -> NetConfig {
        self.rto = rto;
        self
    }
}

/// Clock-layer configuration: how causality stamps are encoded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClockConfig {
    /// The stamp encoding mode (default: [`StampMode::Updates`]).
    pub stamp_mode: StampMode,
}

impl Default for ClockConfig {
    fn default() -> Self {
        ClockConfig {
            stamp_mode: StampMode::Updates,
        }
    }
}

impl ClockConfig {
    /// A clock config with the given stamp mode.
    #[must_use]
    pub fn mode(stamp_mode: StampMode) -> ClockConfig {
        ClockConfig { stamp_mode }
    }
}

/// Folds the trio into the per-server sans-IO config.
pub(crate) fn server_config(
    runtime: &RuntimeConfig,
    net: &NetConfig,
    clock: &ClockConfig,
) -> ServerConfig {
    ServerConfig {
        stamp_mode: clock.stamp_mode,
        rto: net.rto,
        persist: runtime.persist,
        batch: net.batch,
        max_outstanding: runtime.max_outstanding,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_mirror_the_legacy_builder() {
        let rt = RuntimeConfig::default();
        assert_eq!(rt.kind, RuntimeKind::Threaded);
        assert!(!rt.persist);
        assert!(rt.record_trace);
        assert!(rt.metrics);
        assert_eq!(rt.max_outstanding, 65_536);
        let net = NetConfig::default();
        assert_eq!(net.transport, TransportKind::Memory);
        assert_eq!(net.rto, ServerConfig::default().rto);
        let clock = ClockConfig::default();
        assert_eq!(clock.stamp_mode, StampMode::Updates);
    }

    #[test]
    fn chainers_update_in_place() {
        let rt = RuntimeConfig::evented(0)
            .persist(true)
            .record_trace(false)
            .metrics(false)
            .max_outstanding(7)
            .allow_cycles(true);
        assert!(matches!(rt.kind, RuntimeKind::Evented { shards: 0 }));
        assert!(rt.kind.worker_count().unwrap() >= 1);
        assert_eq!(RuntimeKind::Evented { shards: 3 }.worker_count(), Some(3));
        assert_eq!(RuntimeKind::Threaded.worker_count(), None);
        let net = NetConfig::mux_tcp()
            .connect_timeout(Duration::from_millis(100))
            .rto(VDuration::from_millis(10));
        assert_eq!(net.transport, TransportKind::MuxTcp);
        let sc = server_config(&rt, &net, &ClockConfig::mode(StampMode::Hybrid));
        assert!(sc.persist);
        assert_eq!(sc.max_outstanding, 7);
        assert_eq!(sc.rto, VDuration::from_millis(10));
        assert_eq!(sc.stamp_mode, StampMode::Hybrid);
    }
}
