//! The runtime-agnostic server shell.
//!
//! A [`ServerDriver`] owns everything one server needs besides the
//! execution substrate: the sans-IO [`ServerCore`], its stable store,
//! trace/metrics attachments, cumulative statistics and the probe
//! throttle for down peers. Both runtimes drive the same methods —
//! [`ServerDriver::handle_command`] for client commands,
//! [`ServerDriver::on_batch`] for drained datagrams and
//! [`ServerDriver::tick`] for timers — so protocol behaviour is
//! identical whether a server has a dedicated thread or shares an
//! event-loop shard with a thousand others.

use std::collections::HashMap;
use std::sync::atomic::AtomicI64;
use std::sync::Arc;
use std::time::{Duration, Instant};

use aaa_base::{Absorb, Error, Result, ServerId, VTime};
use aaa_net::PeerState;
use aaa_obs::{LatencyTracker, Meter};
use aaa_storage::StableStore;
use aaa_topology::Topology;
use aaa_trace::TraceRecorder;

use super::{respond, Command, Transport};
use crate::agent::Agent;
use crate::relay::RelayConfig;
use crate::server::{ServerConfig, ServerCore, StepStats, Transmission};

/// While a peer is [`PeerState::Down`], at most one transmission run per
/// this interval goes out to it as a liveness probe; everything else is
/// suppressed (the link layer re-offers it after recovery) so the step
/// loop does not hot-spin retransmits into a dead socket.
const PROBE_INTERVAL: Duration = Duration::from_millis(100);

/// One server's runtime-agnostic state and step logic.
pub(crate) struct ServerDriver {
    topology: Arc<Topology>,
    me: ServerId,
    config: ServerConfig,
    store: Arc<dyn StableStore>,
    recorder: Option<TraceRecorder>,
    in_flight: Arc<AtomicI64>,
    obs: Option<(Meter, LatencyTracker)>,
    /// Store-and-forward relay configuration; enabled on every fresh or
    /// recovered core when present.
    relay: Option<RelayConfig>,
    core: Option<ServerCore>,
    cumulative: StepStats,
    last_probe: HashMap<ServerId, Instant>,
}

impl ServerDriver {
    /// Builds the driver with a fresh core.
    ///
    /// # Errors
    ///
    /// Propagates core construction failures (topology/config mismatch).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        topology: Arc<Topology>,
        me: ServerId,
        config: ServerConfig,
        store: Arc<dyn StableStore>,
        recorder: Option<TraceRecorder>,
        in_flight: Arc<AtomicI64>,
        obs: Option<(Meter, LatencyTracker)>,
        relay: Option<RelayConfig>,
    ) -> Result<ServerDriver> {
        let mut driver = ServerDriver {
            topology,
            me,
            config,
            store,
            recorder,
            in_flight,
            obs,
            relay,
            core: None,
            cumulative: StepStats::default(),
            last_probe: HashMap::new(),
        };
        driver.core = Some(driver.fresh(Vec::new())?);
        Ok(driver)
    }

    fn attach_obs(&self, core: &mut ServerCore) {
        if let Some((meter, tracker)) = &self.obs {
            core.attach_meter(meter);
            core.set_latency_tracker(tracker.clone());
        }
    }

    fn fresh(&self, agents: Vec<(u32, Box<dyn Agent>)>) -> Result<ServerCore> {
        let mut core = ServerCore::new(&self.topology, self.me, self.config, self.store.clone())?;
        for (local, agent) in agents {
            core.register_agent(local, agent);
        }
        if let Some(rec) = &self.recorder {
            core.set_recorder(rec.clone());
        }
        core.set_in_flight(self.in_flight.clone());
        self.attach_obs(&mut core);
        if let Some(cfg) = &self.relay {
            // A fresh core has no recovered registry, so enabling the
            // relay produces no transmissions to forward.
            core.enable_relay(cfg.clone(), VTime::ZERO)?;
        }
        Ok(core)
    }

    /// Hands outgoing transmissions to the transport, coalescing
    /// consecutive same-destination packets through the batch-native
    /// path and throttling traffic into Down peers to liveness probes.
    pub(crate) fn transmit(&mut self, endpoint: &dyn Transport, ts: Vec<Transmission>) {
        let mut i = 0;
        while i < ts.len() {
            let to = ts[i].to;
            let mut j = i + 1;
            while j < ts.len() && ts[j].to == to {
                j += 1;
            }
            if endpoint.peer_state(to) == PeerState::Down {
                let probe_due = self
                    .last_probe
                    .get(&to)
                    .is_none_or(|t| t.elapsed() >= PROBE_INTERVAL);
                if !probe_due {
                    i = j; // suppressed: the link layer re-offers later
                    continue;
                }
                self.last_probe.insert(to, Instant::now());
                // Fall through: this run doubles as the liveness probe.
            }
            if j - i == 1 {
                // Best-effort over a lossy transport: a failed wire write is
                // indistinguishable from packet loss, and the link layer's
                // retransmission machinery recovers either way.
                // audit:allow(error-swallow)
                let _ = endpoint.send(to, ts[i].bytes.clone());
            } else {
                let run: Vec<bytes::Bytes> = ts[i..j].iter().map(|t| t.bytes.clone()).collect();
                // Same as above: batch loss is recovered by retransmission.
                // audit:allow(error-swallow)
                let _ = endpoint.send_batch(to, &run);
            }
            i = j;
        }
    }

    /// Applies one client command. Returns `false` when the command was
    /// [`Command::Shutdown`] — the driver has already flushed pending
    /// batches and taken its final group commit; the caller should stop
    /// driving this server.
    pub(crate) fn handle_command(
        &mut self,
        endpoint: &dyn Transport,
        cmd: Command,
        now: VTime,
    ) -> bool {
        match cmd {
            Command::Register {
                local,
                agent,
                reply,
            } => {
                if let Some(core) = self.core.as_mut() {
                    core.register_agent(local, agent);
                }
                respond(&reply, ());
            }
            Command::Send {
                from,
                to,
                note,
                opts,
                reply,
            } => {
                let result = match self.core.as_mut() {
                    Some(core) => core.client_send_with(from, to, note, opts, now),
                    None => Err(Error::Closed("crashed server")),
                };
                let result = result.map(|(id, ts)| {
                    self.transmit(endpoint, ts);
                    id
                });
                self.take_stats();
                respond(&reply, result);
            }
            Command::SendBatch {
                from,
                batch,
                opts,
                reply,
            } => {
                let result = match self.core.as_mut() {
                    Some(core) => core.client_send_batch(from, batch, opts, now),
                    None => Err(Error::Closed("crashed server")),
                };
                let result = result.map(|(ids, ts)| {
                    self.transmit(endpoint, ts);
                    ids
                });
                self.take_stats();
                respond(&reply, result);
            }
            Command::Flush { reply } => {
                if let Some(core) = self.core.as_mut() {
                    let ts = core.flush_links();
                    self.transmit(endpoint, ts);
                }
                respond(&reply, ());
            }
            Command::Crash => {
                self.core = None;
            }
            Command::Recover { agents, reply } => {
                let result = ServerCore::recover(
                    &self.topology,
                    self.me,
                    self.config,
                    self.store.clone(),
                    agents,
                    now,
                )
                .and_then(|mut c| {
                    if let Some(rec) = &self.recorder {
                        c.set_recorder(rec.clone());
                    }
                    c.set_in_flight(self.in_flight.clone());
                    self.attach_obs(&mut c);
                    // Re-enabling the relay reopens the durable queues
                    // named by the recovered registry and redelivers the
                    // uncommitted window.
                    let ts = match &self.relay {
                        Some(cfg) => c.enable_relay(cfg.clone(), now)?,
                        None => Vec::new(),
                    };
                    self.core = Some(c);
                    Ok(ts)
                })
                .map(|ts| self.transmit(endpoint, ts));
                respond(&reply, result);
            }
            Command::RelayConnect {
                subscriber,
                connected,
                reply,
            } => {
                let result = match self.core.as_mut() {
                    Some(core) => core.relay_set_connected(subscriber, connected, now),
                    None => Err(Error::Closed("crashed server")),
                };
                let result = result.map(|ts| self.transmit(endpoint, ts));
                self.take_stats();
                respond(&reply, result);
            }
            Command::Probe { reply } => {
                let idle = self.core.as_ref().map(|c| c.is_idle()).unwrap_or(true);
                respond(&reply, idle);
            }
            Command::Stats { reply } => {
                self.take_stats();
                respond(&reply, self.cumulative);
            }
            Command::Shutdown => {
                // Graceful teardown: push out whatever the batcher still
                // holds, then group-commit the drained image so recovery
                // restarts from here instead of replaying the tail.
                if let Some(core) = self.core.as_mut() {
                    let ts = core.flush_links();
                    self.transmit(endpoint, ts);
                }
                if let Some(core) = self.core.as_mut() {
                    // A failed final checkpoint must not abort teardown;
                    // the previous committed image is still consistent.
                    // audit:allow(error-swallow)
                    let _ = core.checkpoint();
                }
                return false;
            }
        }
        true
    }

    /// Processes one drained batch of datagrams as a single transaction.
    pub(crate) fn on_batch(
        &mut self,
        endpoint: &dyn Transport,
        drained: Vec<(ServerId, bytes::Bytes)>,
        now: VTime,
    ) {
        if let Some(core) = self.core.as_mut() {
            match core.on_datagram_batch(drained, now) {
                Ok(ts) => self.transmit(endpoint, ts),
                Err(e) => {
                    debug_assert!(false, "datagram processing failed: {e}");
                }
            }
            self.take_stats();
        }
        // Crashed servers silently drop frames: the sender's
        // retransmission redelivers them after recovery.
    }

    /// Polls link timers (retransmissions, overdue batch flushes).
    pub(crate) fn tick(&mut self, endpoint: &dyn Transport, now: VTime) {
        if let Some(core) = self.core.as_mut() {
            let ts = core.on_tick(now);
            self.transmit(endpoint, ts);
        }
    }

    /// The earliest link deadline (retransmission or held batch), if any
    /// — when the evented runtime must next wake this server without
    /// traffic.
    pub(crate) fn next_wakeup(&self) -> Option<VTime> {
        self.core.as_ref().and_then(ServerCore::next_deadline)
    }

    fn take_stats(&mut self) {
        if let Some(core) = self.core.as_mut() {
            self.cumulative.absorb(core.take_step_stats());
        }
    }
}
