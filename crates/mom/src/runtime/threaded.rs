//! The thread-per-server runtime: one OS thread drives each agent
//! server's whole step loop (commands, inbox, timers).
//!
//! This is the moral equivalent of the paper's deployment of one JVM per
//! agent server on a LAN, shrunk into a single process. Readiness flows
//! through the [`Transport`]'s notifier into a [`ReadyMailbox`], whose
//! receiver the thread blocks on alongside its command channel — the
//! mailbox collapses notification bursts into a single wakeup, and each
//! wakeup greedily drains [`Transport::poll_recv`] into one batched
//! transaction.

use std::time::{Duration, Instant};

use aaa_base::{ServerId, VTime};
use aaa_net::ReadyMailbox;
use crossbeam::channel::{unbounded, Receiver, Sender};

use super::driver::ServerDriver;
use super::{Boot, Command, Transport, MAX_STEP_DRAIN};

/// Command senders and join handles for the spawned server threads.
type SpawnedThreads = (Vec<Sender<Command>>, Vec<std::thread::JoinHandle<()>>);

/// Spawns one thread per server, each owning its endpoint and driver.
pub(crate) fn spawn(
    boot: &Boot,
    endpoints: Vec<Box<dyn Transport>>,
) -> aaa_base::Result<SpawnedThreads> {
    let mut cmd_txs = Vec::with_capacity(endpoints.len());
    let mut handles = Vec::with_capacity(endpoints.len());
    for (i, mut endpoint) in endpoints.into_iter().enumerate() {
        let me = ServerId::new(i as u16);
        let (tx, rx) = unbounded::<Command>();
        cmd_txs.push(tx);
        let obs = boot.obs_for(i);
        if let Some((meter, _)) = &obs {
            endpoint.attach_meter(meter);
        }
        let driver = boot.driver(me, obs)?;
        let start = boot.start;
        handles.push(std::thread::spawn(move || {
            server_thread(driver, endpoint, rx, start);
        }));
    }
    Ok((cmd_txs, handles))
}

/// Drains up to [`MAX_STEP_DRAIN`] ready datagrams and processes them as
/// one transaction. Returns `true` if the drain hit the cap (more data
/// may be pending).
fn drain_ready(driver: &mut ServerDriver, endpoint: &dyn Transport, now: VTime) -> bool {
    let mut drained = Vec::new();
    while drained.len() < MAX_STEP_DRAIN {
        match endpoint.poll_recv() {
            Ok(Some(inc)) => drained.push((inc.from, inc.bytes)),
            Ok(None) | Err(_) => break,
        }
    }
    let saturated = drained.len() >= MAX_STEP_DRAIN;
    if !drained.is_empty() {
        driver.on_batch(endpoint, drained, now);
    }
    saturated
}

fn server_thread(
    mut driver: ServerDriver,
    mut endpoint: Box<dyn Transport>,
    commands: Receiver<Command>,
    start: Instant,
) {
    let now = move || VTime::from_micros(start.elapsed().as_micros() as u64);
    let mailbox = ReadyMailbox::new();
    endpoint.set_ready_notifier(mailbox.notifier());
    // Anything that arrived before the notifier was installed produced no
    // wakeup token; drain once so it is not stranded until the first tick.
    let ready = mailbox.receiver().clone();
    if drain_ready(&mut driver, endpoint.as_ref(), now()) {
        mailbox.reschedule();
    }

    loop {
        crossbeam::channel::select! {
            recv(commands) -> cmd => {
                let Ok(cmd) = cmd else { return };
                if !driver.handle_command(endpoint.as_ref(), cmd, now()) {
                    return;
                }
            }
            recv(ready) -> token => {
                if token.is_err() {
                    return;
                }
                // Re-arm before draining so datagrams that race the drain
                // produce a fresh token instead of being lost.
                mailbox.ack();
                if drain_ready(&mut driver, endpoint.as_ref(), now()) {
                    mailbox.reschedule();
                }
            }
            default(Duration::from_millis(5)) => {
                // Safety net: poll even without a wakeup so a lost or
                // pre-installation notification only costs one tick.
                if drain_ready(&mut driver, endpoint.as_ref(), now()) {
                    mailbox.reschedule();
                }
            }
        }
        driver.tick(endpoint.as_ref(), now());
    }
}
