//! The AAA Engine: atomic agent reactions (§3).
//!
//! The engine "guarantees the Agents' properties": it serializes reactions,
//! makes each reaction atomic (the notifications an agent emits while
//! reacting are buffered and released on commit) and snapshots agent state
//! for recovery.

use std::collections::{HashMap, VecDeque};

use aaa_base::AgentId;
use aaa_obs::Meter;

use crate::agent::{Agent, ReactionContext};
use crate::message::{AgentMessage, DeliveryPolicy, Notification};
use crate::metrics::EngineMetrics;

/// The result of one committed reaction.
#[derive(Debug)]
pub struct Reaction {
    /// The message that triggered the reaction.
    pub msg: AgentMessage,
    /// Notifications the agent emitted, in emission order, with their
    /// delivery policy.
    pub outgoing: Vec<(AgentId, Notification, DeliveryPolicy)>,
    /// `false` if no agent with the destination id exists (the message
    /// became a dead letter).
    pub reacted: bool,
}

/// The engine of one agent server (sans-IO).
pub struct EngineCore {
    agents: HashMap<AgentId, Box<dyn Agent>>,
    queue_in: VecDeque<AgentMessage>,
    reactions: u64,
    dead_letters: u64,
    /// Optional instruments; `None` (the default) costs one branch per event.
    metrics: Option<EngineMetrics>,
}

impl std::fmt::Debug for EngineCore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EngineCore")
            .field("agents", &self.agents.len())
            .field("queue_in", &self.queue_in.len())
            .field("reactions", &self.reactions)
            .field("dead_letters", &self.dead_letters)
            .finish()
    }
}

impl Default for EngineCore {
    fn default() -> Self {
        Self::new()
    }
}

impl EngineCore {
    /// Creates an engine with no agents.
    pub fn new() -> Self {
        EngineCore {
            agents: HashMap::new(),
            queue_in: VecDeque::new(),
            reactions: 0,
            dead_letters: 0,
            metrics: None,
        }
    }

    /// Attaches a metrics meter; subsequent events update `aaa_engine_*`
    /// instruments in the meter's registry. Without a meter (the default)
    /// instrumentation compiles to one branch per event.
    pub fn attach_meter(&mut self, meter: &Meter) {
        let m = EngineMetrics::new(meter);
        m.queue_depth.set(self.queue_in.len() as i64);
        self.metrics = Some(m);
    }

    /// Registers (or replaces) the agent with identity `id`.
    pub fn register(&mut self, id: AgentId, agent: Box<dyn Agent>) {
        self.agents.insert(id, agent);
    }

    /// Returns `true` if an agent with identity `id` is registered.
    pub fn has_agent(&self, id: AgentId) -> bool {
        self.agents.contains_key(&id)
    }

    /// The registered agent identities, in unspecified order.
    pub fn agent_ids(&self) -> Vec<AgentId> {
        self.agents.keys().copied().collect()
    }

    /// Snapshot of one agent's state, if it exists.
    pub fn snapshot_agent(&self, id: AgentId) -> Option<Vec<u8>> {
        self.agents.get(&id).map(|a| a.snapshot())
    }

    /// Restores one agent's state from a persisted image.
    ///
    /// Returns `false` if no such agent is registered.
    pub fn restore_agent(&mut self, id: AgentId, image: &[u8]) -> bool {
        match self.agents.get_mut(&id) {
            Some(a) => {
                a.restore(image);
                true
            }
            None => false,
        }
    }

    /// Enqueues a delivered message on `QueueIN`.
    pub fn enqueue(&mut self, msg: AgentMessage) {
        self.queue_in.push_back(msg);
        if let Some(m) = &self.metrics {
            m.queue_depth.inc();
        }
    }

    /// Messages waiting on `QueueIN`.
    pub fn pending(&self) -> usize {
        self.queue_in.len()
    }

    /// Reads the persisted engine queue back (recovery path).
    pub(crate) fn queue_snapshot(&self) -> impl Iterator<Item = &AgentMessage> + '_ {
        self.queue_in.iter()
    }

    /// Committed reactions so far.
    pub fn reactions(&self) -> u64 {
        self.reactions
    }

    /// Messages dropped because no agent matched their destination.
    pub fn dead_letters(&self) -> u64 {
        self.dead_letters
    }

    /// Executes one atomic reaction from `QueueIN`, if any message waits.
    pub fn step(&mut self) -> Option<Reaction> {
        let msg = self.queue_in.pop_front()?;
        if let Some(m) = &self.metrics {
            m.queue_depth.dec();
        }
        let mut outgoing = Vec::new();
        let reacted = match self.agents.get_mut(&msg.to) {
            Some(agent) => {
                let started = self.metrics.is_some().then(std::time::Instant::now);
                let mut ctx = ReactionContext::new(msg.to, &mut outgoing);
                agent.react(&mut ctx, msg.from, &msg.note);
                self.reactions += 1;
                if let Some(m) = &self.metrics {
                    m.reactions.inc();
                    if let Some(t0) = started {
                        m.reaction_latency_us
                            .observe(t0.elapsed().as_micros() as u64);
                    }
                }
                true
            }
            None => {
                self.dead_letters += 1;
                if let Some(m) = &self.metrics {
                    m.dead_letters.inc();
                }
                false
            }
        };
        Some(Reaction {
            msg,
            outgoing,
            reacted,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agent::{EchoAgent, FnAgent};
    use aaa_base::{MessageId, ServerId};

    fn aid(s: u16, l: u32) -> AgentId {
        AgentId::new(ServerId::new(s), l)
    }

    fn msg(from: AgentId, to: AgentId, kind: &str) -> AgentMessage {
        AgentMessage {
            id: MessageId::new(from.server(), 1),
            from,
            to,
            note: Notification::signal(kind),
        }
    }

    #[test]
    fn reaction_produces_buffered_sends() {
        let mut eng = EngineCore::new();
        eng.register(aid(0, 1), Box::new(EchoAgent));
        assert!(eng.has_agent(aid(0, 1)));
        eng.enqueue(msg(aid(1, 1), aid(0, 1), "ping"));
        let r = eng.step().expect("one message queued");
        assert!(r.reacted);
        assert_eq!(r.outgoing.len(), 1);
        assert_eq!(r.outgoing[0].0, aid(1, 1));
        assert_eq!(r.outgoing[0].2, DeliveryPolicy::Causal);
        assert_eq!(eng.reactions(), 1);
        assert!(eng.step().is_none());
    }

    #[test]
    fn missing_agent_is_dead_letter() {
        let mut eng = EngineCore::new();
        eng.enqueue(msg(aid(1, 1), aid(0, 9), "lost"));
        let r = eng.step().unwrap();
        assert!(!r.reacted);
        assert!(r.outgoing.is_empty());
        assert_eq!(eng.dead_letters(), 1);
        assert_eq!(eng.reactions(), 0);
    }

    #[test]
    fn reactions_are_serialized_in_queue_order() {
        let mut eng = EngineCore::new();
        let log = std::sync::Arc::new(std::sync::Mutex::new(Vec::new()));
        let log2 = log.clone();
        eng.register(
            aid(0, 1),
            Box::new(FnAgent::new(move |_ctx, _from, note| {
                log2.lock().unwrap().push(note.kind().to_owned());
            })),
        );
        for k in ["a", "b", "c"] {
            eng.enqueue(msg(aid(1, 1), aid(0, 1), k));
        }
        assert_eq!(eng.pending(), 3);
        while eng.step().is_some() {}
        assert_eq!(*log.lock().unwrap(), vec!["a", "b", "c"]);
    }

    #[test]
    fn snapshot_and_restore_roundtrip() {
        struct Counter(u32);
        impl Agent for Counter {
            fn react(&mut self, _: &mut ReactionContext<'_>, _: AgentId, _: &Notification) {
                self.0 += 1;
            }
            fn snapshot(&self) -> Vec<u8> {
                self.0.to_le_bytes().to_vec()
            }
            fn restore(&mut self, image: &[u8]) {
                self.0 = u32::from_le_bytes(image.try_into().expect("4 bytes"));
            }
        }
        let mut eng = EngineCore::new();
        eng.register(aid(0, 1), Box::new(Counter(0)));
        eng.enqueue(msg(aid(1, 1), aid(0, 1), "x"));
        eng.step();
        let image = eng.snapshot_agent(aid(0, 1)).unwrap();
        assert_eq!(image, 1u32.to_le_bytes().to_vec());

        let mut eng2 = EngineCore::new();
        eng2.register(aid(0, 1), Box::new(Counter(0)));
        assert!(eng2.restore_agent(aid(0, 1), &image));
        assert_eq!(eng2.snapshot_agent(aid(0, 1)).unwrap(), image);
        assert!(!eng2.restore_agent(aid(0, 9), &image));
    }

    #[test]
    fn agent_ids_lists_registered() {
        let mut eng = EngineCore::new();
        eng.register(aid(0, 1), Box::new(EchoAgent));
        eng.register(aid(0, 2), Box::new(EchoAgent));
        let mut ids = eng.agent_ids();
        ids.sort();
        assert_eq!(ids, vec![aid(0, 1), aid(0, 2)]);
        assert!(format!("{eng:?}").contains("EngineCore"));
    }
}
