//! Crash-recovery images of an agent server.
//!
//! The paper's servers keep "a persistent image of the matrix on each
//! server in order to recover communication in case of failure" (§3), plus
//! persistent agents and transactional queues. We persist, per committed
//! channel/engine transaction:
//!
//! - every `DomainItem` (matrix clock state, including the Updates
//!   bookkeeping so the delta protocol resumes seamlessly);
//! - `QueueOUT`, the postponed queue and the engine's `QueueIN`;
//! - the link-layer state (next sequence numbers, unacknowledged frames,
//!   cumulative receive counters) so retransmission and duplicate
//!   suppression survive the crash;
//! - the message-id counter;
//! - each agent's state snapshot, inside the same blob so a single atomic
//!   `put` commits the whole transaction.

use std::collections::VecDeque;

use aaa_base::{Error, Result, ServerId, VTime};
use aaa_clocks::{CausalState, MatrixClock, PendingStamp};
use aaa_net::wire::{Decoder, Encoder};
use aaa_net::LinkFrame;
use bytes::Bytes;

use crate::channel::{Envelope, Postponed};
use crate::domain_item::DomainItem;
use crate::message::{AgentMessage, DeliveryPolicy, Notification};

/// Persisted link-sender state toward one peer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct LinkTxImage {
    pub peer: ServerId,
    pub next_seq: u64,
    pub unacked: Vec<LinkFrame>,
}

/// Persisted link-receiver state from one peer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct LinkRxImage {
    pub peer: ServerId,
    pub cum_seq: u64,
}

/// The complete crash-recovery image of one server core.
#[derive(Debug)]
pub(crate) struct ServerImage {
    pub next_msg_seq: u64,
    pub items: Vec<DomainItem>,
    pub queue_out: VecDeque<Envelope>,
    pub postponed: Vec<Postponed>,
    pub engine_queue: Vec<AgentMessage>,
    pub links_tx: Vec<LinkTxImage>,
    pub links_rx: Vec<LinkRxImage>,
    /// Agent state snapshots `(local id, image)` — stored inside the same
    /// blob so one `put` commits the whole transaction atomically.
    pub agents: Vec<(u32, Vec<u8>)>,
    /// Store-and-forward relay registry (subscriptions, connectivity,
    /// handoff watermarks, receive-side dedup) — empty when no relay runs
    /// here. Queue *contents* live in their own segment files; this blob
    /// only names them (DESIGN.md §17). Absent in pre-relay images.
    pub relay: Vec<u8>,
}

fn encode_envelope(e: &mut Encoder, env: &Envelope) {
    e.message_id(env.id);
    e.agent_id(env.from);
    e.agent_id(env.to);
    e.server_id(env.src);
    e.server_id(env.dest);
    e.u8(match env.policy {
        DeliveryPolicy::Causal => 0,
        DeliveryPolicy::Unordered => 1,
    });
    e.string(env.note.kind());
    e.bytes(env.note.body());
}

fn decode_envelope(d: &mut Decoder) -> Result<Envelope> {
    Ok(Envelope {
        id: d.message_id()?,
        from: d.agent_id()?,
        to: d.agent_id()?,
        src: d.server_id()?,
        dest: d.server_id()?,
        policy: match d.u8()? {
            0 => DeliveryPolicy::Causal,
            1 => DeliveryPolicy::Unordered,
            p => return Err(Error::Codec(format!("unknown delivery policy {p}"))),
        },
        note: {
            let kind = d.string()?;
            let body = d.bytes()?;
            Notification::new(kind, body)
        },
    })
}

fn encode_agent_message(e: &mut Encoder, m: &AgentMessage) {
    e.message_id(m.id);
    e.agent_id(m.from);
    e.agent_id(m.to);
    e.string(m.note.kind());
    e.bytes(m.note.body());
}

fn decode_agent_message(d: &mut Decoder) -> Result<AgentMessage> {
    Ok(AgentMessage {
        id: d.message_id()?,
        from: d.agent_id()?,
        to: d.agent_id()?,
        note: {
            let kind = d.string()?;
            let body = d.bytes()?;
            Notification::new(kind, body)
        },
    })
}

impl ServerImage {
    /// Encodes the image to bytes.
    pub(crate) fn encode(&self) -> Bytes {
        let mut e = Encoder::new();
        e.u64(self.next_msg_seq);

        e.count(self.items.len());
        for item in &self.items {
            e.domain_id(item.domain_id());
            e.u16(item.me().as_u16());
            e.count(item.id_table().len());
            for s in item.id_table() {
                e.server_id(*s);
            }
            let mut clock_bytes = Vec::new();
            item.clock().write_bytes(&mut clock_bytes);
            e.bytes(&clock_bytes);
        }

        e.count(self.queue_out.len());
        for env in &self.queue_out {
            encode_envelope(&mut e, env);
        }

        e.count(self.postponed.len());
        for p in &self.postponed {
            // `item_idx` indexes `items`, so it fits whenever the item
            // count does; `count` keeps the narrowing checked.
            e.count(p.item_idx);
            e.u16(p.from.as_u16());
            e.u64(p.arrived_at.as_micros());
            let mut m = Vec::new();
            p.pending.matrix().write_bytes(&mut m);
            e.bytes(&m);
            encode_envelope(&mut e, &p.env);
        }

        e.count(self.engine_queue.len());
        for m in &self.engine_queue {
            encode_agent_message(&mut e, m);
        }

        e.count(self.links_tx.len());
        for link in &self.links_tx {
            e.server_id(link.peer);
            e.u64(link.next_seq);
            e.count(link.unacked.len());
            for f in &link.unacked {
                e.u64(f.seq);
                e.bytes(&f.payload);
            }
        }

        e.count(self.links_rx.len());
        for link in &self.links_rx {
            e.server_id(link.peer);
            e.u64(link.cum_seq);
        }

        e.count(self.agents.len());
        for (local, image) in &self.agents {
            e.u32(*local);
            e.bytes(image);
        }

        e.bytes(&self.relay);

        e.finish()
    }

    /// Decodes an image written by [`ServerImage::encode`].
    ///
    /// # Errors
    ///
    /// Returns [`Error::Codec`] on truncation or structural corruption.
    pub(crate) fn decode(bytes: Bytes) -> Result<ServerImage> {
        let mut d = Decoder::new(bytes);
        let next_msg_seq = d.u64()?;

        let n_items = d.u32()? as usize;
        let mut items = Vec::with_capacity(n_items);
        for _ in 0..n_items {
            let domain = d.domain_id()?;
            let me = aaa_base::DomainServerId::new(d.u16()?);
            let n_members = d.u32()? as usize;
            let mut id_table = Vec::with_capacity(n_members);
            for _ in 0..n_members {
                id_table.push(d.server_id()?);
            }
            let clock_bytes = d.bytes()?;
            let (clock, used) = CausalState::read_bytes(&clock_bytes)
                .ok_or_else(|| Error::Codec("corrupt causal state image".into()))?;
            if used != clock_bytes.len() {
                return Err(Error::Codec("trailing bytes in causal state".into()));
            }
            items.push(DomainItem::from_parts(domain, me, id_table, clock));
        }

        let n_out = d.u32()? as usize;
        let mut queue_out = VecDeque::with_capacity(n_out);
        for _ in 0..n_out {
            queue_out.push_back(decode_envelope(&mut d)?);
        }

        let n_post = d.u32()? as usize;
        let mut postponed = Vec::with_capacity(n_post);
        for _ in 0..n_post {
            let item_idx = d.u32()? as usize;
            if item_idx >= items.len() {
                return Err(Error::Codec("postponed item index out of range".into()));
            }
            let from = d.domain_server_id()?;
            let arrived_at = VTime::from_micros(d.u64()?);
            let m_bytes = d.bytes()?;
            let (matrix, _) = MatrixClock::read_bytes(&m_bytes)
                .ok_or_else(|| Error::Codec("corrupt pending stamp".into()))?;
            let env = decode_envelope(&mut d)?;
            postponed.push(Postponed {
                item_idx,
                from,
                pending: PendingStamp::from_matrix(matrix),
                env,
                arrived_at,
            });
        }

        let n_in = d.u32()? as usize;
        let mut engine_queue = Vec::with_capacity(n_in);
        for _ in 0..n_in {
            engine_queue.push(decode_agent_message(&mut d)?);
        }

        let n_tx = d.u32()? as usize;
        let mut links_tx = Vec::with_capacity(n_tx);
        for _ in 0..n_tx {
            let peer = d.server_id()?;
            let next_seq = d.u64()?;
            let n_frames = d.u32()? as usize;
            let mut unacked = Vec::with_capacity(n_frames);
            for _ in 0..n_frames {
                let seq = d.u64()?;
                let payload = d.bytes()?;
                unacked.push(LinkFrame { seq, payload });
            }
            links_tx.push(LinkTxImage {
                peer,
                next_seq,
                unacked,
            });
        }

        let n_rx = d.u32()? as usize;
        let mut links_rx = Vec::with_capacity(n_rx);
        for _ in 0..n_rx {
            let peer = d.server_id()?;
            let cum_seq = d.u64()?;
            links_rx.push(LinkRxImage { peer, cum_seq });
        }

        let n_agents = d.u32()? as usize;
        let mut agents = Vec::with_capacity(n_agents);
        for _ in 0..n_agents {
            let local = d.u32()?;
            let image = d.bytes()?;
            agents.push((local, image.to_vec()));
        }

        // Pre-relay images end here; treat the missing field as empty.
        let relay = if d.remaining() > 0 {
            d.bytes()?.to_vec()
        } else {
            Vec::new()
        };

        Ok(ServerImage {
            next_msg_seq,
            items,
            queue_out,
            postponed,
            engine_queue,
            links_tx,
            links_rx,
            agents,
            relay,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aaa_base::{AgentId, DomainId, DomainServerId, MessageId};
    use aaa_clocks::StampMode;

    fn sample_image() -> ServerImage {
        let clock = CausalState::new(DomainServerId::new(0), 3, StampMode::Updates);
        let item = DomainItem::from_parts(
            DomainId::new(1),
            DomainServerId::new(0),
            vec![ServerId::new(0), ServerId::new(2), ServerId::new(4)],
            clock,
        );
        let env = Envelope {
            id: MessageId::new(ServerId::new(0), 9),
            from: AgentId::new(ServerId::new(0), 1),
            to: AgentId::new(ServerId::new(4), 2),
            src: ServerId::new(0),
            dest: ServerId::new(4),
            note: Notification::new("k", b"body".to_vec()),
            policy: DeliveryPolicy::Causal,
        };
        let post = Postponed {
            item_idx: 0,
            from: DomainServerId::new(1),
            pending: PendingStamp::from_matrix(MatrixClock::new(3)),
            env: env.clone(),
            arrived_at: VTime::from_micros(1_234),
        };
        let am = AgentMessage {
            id: env.id,
            from: env.from,
            to: env.to,
            note: env.note.clone(),
        };
        ServerImage {
            next_msg_seq: 17,
            items: vec![item],
            queue_out: VecDeque::from([env]),
            postponed: vec![post],
            engine_queue: vec![am],
            links_tx: vec![LinkTxImage {
                peer: ServerId::new(2),
                next_seq: 5,
                unacked: vec![LinkFrame {
                    seq: 4,
                    payload: Bytes::from_static(b"frame"),
                }],
            }],
            links_rx: vec![LinkRxImage {
                peer: ServerId::new(2),
                cum_seq: 7,
            }],
            agents: vec![(1, b"agent-state".to_vec())],
            relay: b"relay-registry".to_vec(),
        }
    }

    #[test]
    fn image_roundtrip() {
        let img = sample_image();
        let decoded = ServerImage::decode(img.encode()).unwrap();
        assert_eq!(decoded.next_msg_seq, 17);
        assert_eq!(decoded.items.len(), 1);
        assert_eq!(decoded.items[0].domain_id(), DomainId::new(1));
        assert_eq!(decoded.items[0].id_table().len(), 3);
        assert_eq!(decoded.queue_out.len(), 1);
        assert_eq!(decoded.queue_out[0].note.kind(), "k");
        assert_eq!(decoded.postponed.len(), 1);
        assert_eq!(decoded.postponed[0].from, DomainServerId::new(1));
        assert_eq!(decoded.postponed[0].arrived_at, VTime::from_micros(1_234));
        assert_eq!(decoded.engine_queue.len(), 1);
        assert_eq!(decoded.links_tx[0].unacked[0].seq, 4);
        assert_eq!(decoded.links_rx[0].cum_seq, 7);
        assert_eq!(decoded.agents, vec![(1, b"agent-state".to_vec())]);
        assert_eq!(decoded.relay, b"relay-registry".to_vec());
    }

    #[test]
    fn pre_relay_image_decodes_with_empty_registry() {
        // An image written before the relay field existed ends right after
        // the agents section; decoding must default the registry to empty
        // rather than erroring.
        let img = sample_image();
        let full = img.encode();
        let legacy = full.slice(0..full.len() - 4 - b"relay-registry".len());
        let decoded = ServerImage::decode(legacy).unwrap();
        assert!(decoded.relay.is_empty());
        assert_eq!(decoded.agents, vec![(1, b"agent-state".to_vec())]);
    }

    #[test]
    fn active_clock_survives_journal_in_every_mode() {
        // The journal must round-trip engine bookkeeping in every stamp
        // mode — including mid-batch GroupNext state and the hybrid
        // engine's knowledge model, which lives beyond the shared core
        // image.
        use aaa_clocks::Batching;
        for mode in StampMode::ALL {
            let mut a = CausalState::new(DomainServerId::new(0), 3, mode);
            let mut b = CausalState::new(DomainServerId::new(1), 3, mode);
            for _ in 0..2 {
                let s = a.stamp_send(DomainServerId::new(1), Batching::Grouped);
                let p = b.on_frame(DomainServerId::new(0), s);
                b.deliver(DomainServerId::new(0), &p);
            }
            let mut img = sample_image();
            img.items = vec![DomainItem::from_parts(
                DomainId::new(1),
                DomainServerId::new(0),
                vec![ServerId::new(0), ServerId::new(2), ServerId::new(4)],
                a.clone(),
            )];
            img.postponed.clear();
            let decoded = ServerImage::decode(img.encode()).unwrap();
            assert_eq!(decoded.items[0].clock(), &a, "{mode}");

            // The recovered clock continues the open batch where the
            // original left off.
            let mut recovered = decoded.items[0].clock().clone();
            let s = recovered.stamp_send(DomainServerId::new(1), Batching::Grouped);
            assert!(s.is_group_next(), "{mode}: batch must survive recovery");
            let p = b.on_frame(DomainServerId::new(0), s);
            assert!(b.can_deliver(DomainServerId::new(0), &p), "{mode}");
        }
    }

    #[test]
    fn truncated_image_rejected() {
        let img = sample_image();
        let bytes = img.encode();
        for cut in [0, 4, 12, bytes.len() / 2, bytes.len() - 1] {
            let cutbytes = bytes.slice(0..cut);
            assert!(
                ServerImage::decode(cutbytes).is_err(),
                "cut at {cut} should fail"
            );
        }
    }

    #[test]
    fn out_of_range_postponed_index_rejected() {
        let mut img = sample_image();
        img.postponed[0].item_idx = 99;
        assert!(ServerImage::decode(img.encode()).is_err());
    }
}
