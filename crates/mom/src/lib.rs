#![warn(missing_docs)]
#![forbid(unsafe_code)]

//! # The AAA message-oriented middleware
//!
//! A from-scratch reproduction of the AAA (Agent Anytime Anywhere) MOM of
//! *Preserving Causality in a Scalable Message-Oriented Middleware*
//! (Laumay, Bruneton, Bellissard, Krakowiak — MIDDLEWARE 2001), with the
//! paper's contribution at its heart: **causal message delivery scaled
//! through domains of causality**.
//!
//! Each agent server (§3, Figure 1) pairs an [`EngineCore`] — persistent
//! agents reacting atomically to notifications — with a
//! [`ChannelCore`](channel::ChannelCore) — reliable delivery in causal
//! order, enforced with one matrix clock *per domain of causality* rather
//! than one global `n × n` clock. Servers belonging to several domains are
//! causal router-servers and forward messages between domains in delivery
//! order; as long as the domain graph is acyclic, the paper's theorem
//! guarantees global causal order (§4).
//!
//! The crate is layered:
//!
//! - sans-IO cores: [`ChannelCore`](channel::ChannelCore),
//!   [`EngineCore`], [`ServerCore`] — deterministic
//!   state machines, also driven by the `aaa-sim` discrete-event simulator;
//! - the runtimes: [`MomBuilder`] / [`Mom`] — either one thread per
//!   server ([`RuntimeKind::Threaded`]) or N event-loop shards driving
//!   every server over a fixed worker pool
//!   ([`RuntimeKind::Evented`]), both over a pluggable byte transport
//!   (in-memory, pairwise TCP, or shard-multiplexed TCP; see
//!   [`NetConfig`]).
//!
//! # Example: causal ping-pong across domains
//!
//! ```
//! use aaa_base::{AgentId, ServerId};
//! use aaa_mom::{EchoAgent, MomBuilder, Notification};
//! use aaa_topology::TopologySpec;
//! use std::time::Duration;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Two domains bridged by the router server 0.
//! let mom = MomBuilder::new(TopologySpec::bus(2, 2)).build()?;
//! let echo = mom.register_agent(ServerId::new(3), 1, Box::new(EchoAgent))?;
//! let client = AgentId::new(ServerId::new(1), 7);
//! mom.send(client, echo, Notification::signal("ping"))?;
//! assert!(mom.quiesce(Duration::from_secs(5)));
//! // The recorded trace is causally consistent.
//! assert!(mom.trace()?.check_causality().is_ok());
//! mom.shutdown();
//! # Ok(())
//! # }
//! ```

pub mod agent;
pub mod channel;
pub mod domain_item;
pub mod engine;
pub mod message;
mod metrics;
mod persist;
pub mod pubsub;
pub mod relay;
pub mod runtime;
pub mod server;

pub use aaa_clocks::StampMode;
pub use aaa_net::{BatchPolicy, Transport};
pub use agent::{Agent, EchoAgent, FnAgent, ReactionContext};
pub use domain_item::DomainItem;
pub use engine::EngineCore;
pub use message::{AgentMessage, DeliveryPolicy, Notification, SendOptions};
pub use relay::{relay_agent, RelayConfig};
pub use runtime::{
    ClockConfig, Mom, MomBuilder, NetConfig, RuntimeConfig, RuntimeKind, TransportKind,
};
pub use server::{ServerConfig, ServerCore, StepStats, Transmission};
