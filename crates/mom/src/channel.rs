//! The AAA Channel: causal stamping, checking and routing (§5).
//!
//! The channel is the half of an agent server that "ensures reliable
//! message delivery and causal order". This implementation is sans-IO: it
//! consumes already-FIFO streams of [`WireMessage`]s per neighbour (the
//! link layer in `aaa-net` provides that) and produces messages to transmit
//! plus local deliveries for the engine.
//!
//! Per the paper's pseudo-code:
//!
//! - **send**: look the destination up in the routing table, pick the
//!   domain shared with the next hop, stamp the message with that domain's
//!   matrix clock, transmit;
//! - **receive**: translate the sender into the stamping domain's
//!   namespace, `Check(mclock)`, then push the event to `QueueIN` (it is
//!   for a local agent) or `QueueOUT` (it must travel further) — crucially,
//!   in *delivery order*, which is how a causal router-server carries
//!   causality from one domain into the next.

use std::collections::VecDeque;

use aaa_base::{
    Absorb, AgentId, DomainId, DomainServerId, Error, MessageId, Result, ServerId, VTime,
};
use aaa_clocks::{Batching, PendingStamp, StampMode};
use aaa_net::WireMessage;
use aaa_obs::Meter;
use aaa_topology::{RoutingTable, Topology};

use crate::domain_item::DomainItem;
use crate::message::{AgentMessage, DeliveryPolicy, Notification, SendOptions};
use crate::metrics::ChannelMetrics;

/// A message travelling through the bus, between stampings.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Envelope {
    /// Globally unique id assigned at the origin server.
    pub id: MessageId,
    /// Sending agent.
    pub from: AgentId,
    /// Destination agent.
    pub to: AgentId,
    /// Server where the message entered the bus.
    pub src: ServerId,
    /// Server hosting the destination agent.
    pub dest: ServerId,
    /// The notification carried.
    pub note: Notification,
    /// Delivery quality of service.
    pub policy: DeliveryPolicy,
}

/// A received message waiting for its causal delivery condition.
#[derive(Debug, Clone)]
pub(crate) struct Postponed {
    pub(crate) item_idx: usize,
    pub(crate) from: DomainServerId,
    pub(crate) pending: PendingStamp,
    pub(crate) env: Envelope,
    /// When the message arrived (caller's clock: wall micros in the
    /// threaded runtime, virtual time in the simulator). Used for the
    /// postponement-duration histogram; persisted so durations survive
    /// crash recovery.
    pub(crate) arrived_at: VTime,
}

/// Counters accumulated by the channel, drained by the simulator's cost
/// model and by experiments.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ChannelStats {
    /// Matrix-cell operations performed (stamping ≈ n², checking ≈ n,
    /// delivery merge ≈ n²) — the paper's unit of causal-ordering cost.
    pub cell_ops: u64,
    /// Bytes of causal stamps emitted.
    pub stamp_bytes: u64,
    /// Messages transmitted to a neighbour (including forwards).
    pub transmitted: u64,
    /// Messages delivered to the local engine.
    pub delivered: u64,
    /// Messages forwarded to another domain (router work).
    pub forwarded: u64,
}

impl Absorb for ChannelStats {
    fn absorb(&mut self, other: ChannelStats) {
        self.cell_ops += other.cell_ops;
        self.stamp_bytes += other.stamp_bytes;
        self.transmitted += other.transmitted;
        self.delivered += other.delivered;
        self.forwarded += other.forwarded;
    }
}

/// The outcome of submitting a notification at its origin server.
#[derive(Debug)]
pub enum Submit {
    /// The destination agent lives on this server: deliver through the
    /// local bus without touching the causal machinery.
    Local(AgentMessage),
    /// The message was queued for transmission.
    Queued(MessageId),
}

/// The causal channel of one agent server (sans-IO).
#[derive(Debug)]
pub struct ChannelCore {
    me: ServerId,
    mode: StampMode,
    routing: RoutingTable,
    items: Vec<DomainItem>,
    queue_out: VecDeque<Envelope>,
    postponed: Vec<Postponed>,
    next_seq: u64,
    stats: ChannelStats,
    metrics: Option<ChannelMetrics>,
}

impl ChannelCore {
    /// Builds the channel of server `me` for a validated topology.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownServer`] if `me` is not in the topology.
    pub fn new(topology: &Topology, me: ServerId, mode: StampMode) -> Result<Self> {
        topology.check_server(me)?;
        let routing = RoutingTable::build(topology, me)?;
        let items = topology
            .memberships(me)
            .iter()
            .map(|&d| DomainItem::new(topology, d, me, mode))
            .collect();
        Ok(ChannelCore {
            me,
            mode,
            routing,
            items,
            queue_out: VecDeque::new(),
            postponed: Vec::new(),
            next_seq: 0,
            stats: ChannelStats::default(),
            metrics: None,
        })
    }

    /// Attaches an `aaa-obs` meter: the channel mints its instruments
    /// (per-domain cell-op/stamp-byte counters, delivery counters, the
    /// postponed gauge and the postponement histogram) under the meter's
    /// base labels and updates them alongside [`ChannelStats`]. Without a
    /// meter every event pays one branch and no atomic traffic.
    pub fn attach_meter(&mut self, meter: &Meter) {
        let domains: Vec<DomainId> = self.items.iter().map(|it| it.domain_id()).collect();
        let metrics = ChannelMetrics::new(meter, &domains, self.mode);
        metrics.postponed.set(self.postponed.len() as i64);
        self.metrics = Some(metrics);
    }

    /// This channel's server id.
    pub fn me(&self) -> ServerId {
        self.me
    }

    /// The stamp encoding mode.
    pub fn mode(&self) -> StampMode {
        self.mode
    }

    /// The domain items (one per domain this server belongs to).
    pub fn items(&self) -> &[DomainItem] {
        &self.items
    }

    /// The routing table.
    pub fn routing(&self) -> &RoutingTable {
        &self.routing
    }

    /// Messages queued for transmission (`QueueOUT`).
    pub fn queued_out(&self) -> usize {
        self.queue_out.len()
    }

    /// Messages received but not yet causally deliverable.
    pub fn postponed_count(&self) -> usize {
        self.postponed.len()
    }

    /// Drains and returns the accumulated statistics.
    pub fn take_stats(&mut self) -> ChannelStats {
        std::mem::take(&mut self.stats)
    }

    /// Assigns the next globally unique message id.
    fn next_message_id(&mut self) -> MessageId {
        self.next_seq += 1;
        MessageId::new(self.me, self.next_seq)
    }

    /// Accepts a notification from a local agent (or client).
    ///
    /// Local destinations are returned immediately for the engine
    /// ([`Submit::Local`]); remote ones enter `QueueOUT` and will be
    /// stamped by [`ChannelCore::take_transmissions`].
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownServer`] if the destination server does not
    /// exist, or [`Error::InvalidTopology`] if `from` does not live on this
    /// server.
    pub fn submit(&mut self, from: AgentId, to: AgentId, note: Notification) -> Result<Submit> {
        self.submit_with(from, to, note, SendOptions::default())
    }

    /// Like [`ChannelCore::submit`], with explicit [`SendOptions`] (a bare
    /// [`DeliveryPolicy`] converts). Unordered messages are routed but
    /// never stamped or checked; they may overtake causal traffic.
    ///
    /// # Errors
    ///
    /// As for [`ChannelCore::submit`].
    pub fn submit_with(
        &mut self,
        from: AgentId,
        to: AgentId,
        note: Notification,
        opts: impl Into<SendOptions>,
    ) -> Result<Submit> {
        let policy = opts.into().policy;
        if from.server() != self.me {
            return Err(Error::InvalidTopology(format!(
                "agent {from} does not live on server {}",
                self.me
            )));
        }
        self.routing.next_hop(to.server())?; // validates the destination
        let id = self.next_message_id();
        let env = Envelope {
            id,
            from,
            to,
            src: self.me,
            dest: to.server(),
            note,
            policy,
        };
        if env.dest == self.me {
            self.stats.delivered += 1;
            if let Some(m) = &self.metrics {
                m.delivered.inc();
            }
            Ok(Submit::Local(AgentMessage {
                id: env.id,
                from: env.from,
                to: env.to,
                note: env.note,
            }))
        } else {
            self.queue_out.push_back(env);
            Ok(Submit::Queued(id))
        }
    }

    /// Submits several notifications as one batch, amortizing validation
    /// and queueing. The returned outcomes are in submission order; remote
    /// messages will be stamped together by the next
    /// [`ChannelCore::take_transmissions_batched`] call, which collapses
    /// consecutive same-hop stamps into `GroupNext` continuations.
    ///
    /// # Errors
    ///
    /// As for [`ChannelCore::submit_with`]; the first failing submission
    /// aborts the batch (earlier submissions remain queued).
    pub fn submit_batch(
        &mut self,
        from: AgentId,
        batch: impl IntoIterator<Item = (AgentId, Notification)>,
        opts: impl Into<SendOptions>,
    ) -> Result<Vec<Submit>> {
        let opts = opts.into();
        batch
            .into_iter()
            .map(|(to, note)| self.submit_with(from, to, note, opts))
            .collect()
    }

    /// Stamps and drains `QueueOUT`, returning `(next_hop, message)` pairs
    /// in transmission order.
    ///
    /// # Errors
    ///
    /// Returns [`Error::NoRoute`] /[`Error::UnknownServer`] if routing
    /// fails (impossible on a validated topology), or
    /// [`Error::NotInDomain`] if the next hop shares no domain with this
    /// server (likewise impossible).
    pub fn take_transmissions(&mut self) -> Result<Vec<(ServerId, WireMessage)>> {
        self.take_transmissions_batched(false)
    }

    /// Like [`ChannelCore::take_transmissions`], with group-commit stamp
    /// amortization. With `batched` true, consecutive causal sends to the
    /// same next hop with no intervening clock activity are stamped with
    /// [`aaa_clocks::Stamp::GroupNext`] (one tag byte, O(1) cell work)
    /// instead of a full/delta stamp — the continuation is reconstructed
    /// from the previous frame at the receiver over the FIFO link. See
    /// [`aaa_clocks::Batching::Grouped`].
    ///
    /// # Errors
    ///
    /// As for [`ChannelCore::take_transmissions`].
    pub fn take_transmissions_batched(
        &mut self,
        batched: bool,
    ) -> Result<Vec<(ServerId, WireMessage)>> {
        let mut out = Vec::with_capacity(self.queue_out.len());
        while let Some(env) = self.queue_out.pop_front() {
            let next_hop = self.routing.next_hop(env.dest)?;
            debug_assert_ne!(next_hop, self.me, "queued message routed to self");
            let (item_idx, hop_dsid) = self.item_for_peer(next_hop)?;
            let item = &mut self.items[item_idx];
            let stamp = match env.policy {
                DeliveryPolicy::Causal => {
                    let n = item.clock().n() as u64;
                    let batching = if batched {
                        Batching::Grouped
                    } else {
                        Batching::Single
                    };
                    let stamp = item.clock_mut().stamp_send(hop_dsid, batching);
                    // A GroupNext continuation touches one matrix cell;
                    // a full stamping pass touches n².
                    let ops = if stamp.is_group_next() { 1 } else { n * n };
                    self.stats.cell_ops += ops;
                    self.stats.stamp_bytes += stamp.encoded_len() as u64;
                    if let Some(m) = &self.metrics {
                        m.domains[item_idx].cell_ops.add(ops);
                        m.domains[item_idx]
                            .stamp_bytes
                            .add(stamp.encoded_len() as u64);
                    }
                    Some(stamp)
                }
                DeliveryPolicy::Unordered => None,
            };
            self.stats.transmitted += 1;
            if let Some(m) = &self.metrics {
                m.transmitted.inc();
            }
            let msg = WireMessage {
                id: env.id,
                from_agent: env.from,
                to_agent: env.to,
                src_server: env.src,
                dest_server: env.dest,
                domain: item.domain_id(),
                stamp,
                kind: env.note.kind().to_owned(),
                body: env.note.body().clone(),
            };
            out.push((next_hop, msg));
        }
        Ok(out)
    }

    /// Finds the item of the smallest-id domain shared with `peer` and the
    /// peer's id within it.
    fn item_for_peer(&self, peer: ServerId) -> Result<(usize, DomainServerId)> {
        self.items
            .iter()
            .enumerate()
            .find_map(|(i, item)| item.domain_server_id(peer).map(|d| (i, d)))
            .ok_or(Error::NotInDomain {
                server: peer,
                domain: DomainId::new(u16::MAX),
            })
    }

    /// Ingests one message from neighbour `from` (messages from one
    /// neighbour must arrive in link FIFO order), then delivers everything
    /// that has become causally deliverable.
    ///
    /// Returned messages are for *local* agents, in delivery order;
    /// messages for other servers have been re-queued on `QueueOUT` in that
    /// same order (ready for [`ChannelCore::take_transmissions`]).
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownDomain`] if the message names a domain this
    /// server is not in, or [`Error::NotInDomain`] if the link sender is
    /// not a member of that domain — both indicate a corrupt or misrouted
    /// frame.
    pub fn on_message(&mut self, from: ServerId, msg: WireMessage) -> Result<Vec<AgentMessage>> {
        self.on_message_at(from, msg, VTime::ZERO)
    }

    /// Like [`ChannelCore::on_message`], with the caller's current time
    /// (wall-clock microseconds since runtime start, or virtual time).
    /// `now` timestamps postponed messages so the postponement-duration
    /// histogram has something to measure; it never affects delivery
    /// order.
    ///
    /// # Errors
    ///
    /// As for [`ChannelCore::on_message`].
    pub fn on_message_at(
        &mut self,
        from: ServerId,
        msg: WireMessage,
        now: VTime,
    ) -> Result<Vec<AgentMessage>> {
        let item_idx = self
            .items
            .iter()
            .position(|it| it.domain_id() == msg.domain)
            .ok_or(Error::UnknownDomain(msg.domain))?;
        let item = &mut self.items[item_idx];
        let from_dsid = item.domain_server_id(from).ok_or(Error::NotInDomain {
            server: from,
            domain: msg.domain,
        })?;
        let Some(stamp) = msg.stamp else {
            // Unordered QoS: deliver or forward immediately, no clock.
            let env = Envelope {
                id: msg.id,
                from: msg.from_agent,
                to: msg.to_agent,
                src: msg.src_server,
                dest: msg.dest_server,
                note: Notification::new(msg.kind, msg.body),
                policy: DeliveryPolicy::Unordered,
            };
            if env.dest == self.me {
                self.stats.delivered += 1;
                if let Some(m) = &self.metrics {
                    m.delivered.inc();
                }
                return Ok(vec![AgentMessage {
                    id: env.id,
                    from: env.from,
                    to: env.to,
                    note: env.note,
                }]);
            }
            self.stats.forwarded += 1;
            if let Some(m) = &self.metrics {
                m.forwarded.inc();
            }
            self.queue_out.push_back(env);
            return Ok(Vec::new());
        };
        let pending = item.clock_mut().on_frame(from_dsid, stamp);
        let n_check = item.clock().n() as u64;
        self.stats.cell_ops += n_check;
        if let Some(m) = &self.metrics {
            m.domains[item_idx].cell_ops.add(n_check);
            m.postponed.inc();
        }
        self.postponed.push(Postponed {
            item_idx,
            from: from_dsid,
            pending,
            env: Envelope {
                id: msg.id,
                from: msg.from_agent,
                to: msg.to_agent,
                src: msg.src_server,
                dest: msg.dest_server,
                note: Notification::new(msg.kind, msg.body),
                policy: DeliveryPolicy::Causal,
            },
            arrived_at: now,
        });
        Ok(self.pump(now))
    }

    /// Delivers every postponed message whose causal condition now holds.
    fn pump(&mut self, now: VTime) -> Vec<AgentMessage> {
        let mut local = Vec::new();
        loop {
            let hit = self.postponed.iter().position(|p| {
                let item = &self.items[p.item_idx];
                item.clock().can_deliver(p.from, &p.pending)
            });
            let Some(i) = hit else { break };
            let p = self.postponed.remove(i);
            let item = &mut self.items[p.item_idx];
            let n = item.clock().n() as u64;
            item.clock_mut().deliver(p.from, &p.pending);
            self.stats.cell_ops += n * n + n;
            if let Some(m) = &self.metrics {
                m.domains[p.item_idx].cell_ops.add(n * n + n);
                m.postponed.dec();
                m.postponement_us
                    .observe(now.as_micros().saturating_sub(p.arrived_at.as_micros()));
            }
            if p.env.dest == self.me {
                self.stats.delivered += 1;
                if let Some(m) = &self.metrics {
                    m.delivered.inc();
                }
                local.push(AgentMessage {
                    id: p.env.id,
                    from: p.env.from,
                    to: p.env.to,
                    note: p.env.note,
                });
            } else {
                self.stats.forwarded += 1;
                if let Some(m) = &self.metrics {
                    m.forwarded.inc();
                }
                self.queue_out.push_back(p.env);
            }
        }
        local
    }

    // --- persistence plumbing (crate-internal) ---

    pub(crate) fn persist_parts(
        &self,
    ) -> (
        u64,
        &VecDeque<Envelope>,
        &[Postponed],
        &[DomainItem],
        ChannelStats,
    ) {
        (
            self.next_seq,
            &self.queue_out,
            &self.postponed,
            &self.items,
            self.stats,
        )
    }

    pub(crate) fn restore_parts(
        topology: &Topology,
        me: ServerId,
        mode: StampMode,
        next_seq: u64,
        queue_out: VecDeque<Envelope>,
        postponed: Vec<Postponed>,
        items: Vec<DomainItem>,
    ) -> Result<Self> {
        topology.check_server(me)?;
        let routing = RoutingTable::build(topology, me)?;
        Ok(ChannelCore {
            me,
            mode,
            routing,
            items,
            queue_out,
            postponed,
            next_seq,
            stats: ChannelStats::default(),
            metrics: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aaa_topology::TopologySpec;

    fn aid(s: u16, l: u32) -> AgentId {
        AgentId::new(ServerId::new(s), l)
    }

    fn s(i: u16) -> ServerId {
        ServerId::new(i)
    }

    fn single_domain(n: u16) -> Topology {
        TopologySpec::single_domain(n).validate().unwrap()
    }

    fn channels(topo: &Topology, mode: StampMode) -> Vec<ChannelCore> {
        topo.servers()
            .map(|sv| ChannelCore::new(topo, sv, mode).unwrap())
            .collect()
    }

    #[test]
    fn local_submit_bypasses_network() {
        let topo = single_domain(2);
        let mut ch = ChannelCore::new(&topo, s(0), StampMode::Full).unwrap();
        match ch
            .submit(aid(0, 1), aid(0, 2), Notification::signal("hi"))
            .unwrap()
        {
            Submit::Local(m) => {
                assert_eq!(m.to, aid(0, 2));
                assert_eq!(m.note.kind(), "hi");
            }
            other => panic!("expected local delivery, got {other:?}"),
        }
        assert_eq!(ch.queued_out(), 0);
        assert!(ch.take_transmissions().unwrap().is_empty());
    }

    #[test]
    fn remote_submit_is_stamped_and_transmitted() {
        let topo = single_domain(2);
        let mut ch = ChannelCore::new(&topo, s(0), StampMode::Full).unwrap();
        let sub = ch
            .submit(
                aid(0, 1),
                aid(1, 1),
                Notification::new("ping", b"1".to_vec()),
            )
            .unwrap();
        assert!(matches!(sub, Submit::Queued(_)));
        let tx = ch.take_transmissions().unwrap();
        assert_eq!(tx.len(), 1);
        let (hop, msg) = &tx[0];
        assert_eq!(*hop, s(1));
        assert_eq!(msg.dest_server, s(1));
        assert_eq!(msg.domain, DomainId::new(0));
        let stats = ch.take_stats();
        assert_eq!(stats.transmitted, 1);
        assert!(stats.cell_ops >= 4);
        assert!(stats.stamp_bytes > 0);
    }

    #[test]
    fn end_to_end_one_domain() {
        let topo = single_domain(2);
        let mut chs = channels(&topo, StampMode::Updates);
        let _ = chs[0]
            .submit(aid(0, 1), aid(1, 1), Notification::signal("ping"))
            .unwrap();
        let tx = chs[0].take_transmissions().unwrap();
        let (hop, msg) = tx.into_iter().next().unwrap();
        let delivered = chs[hop.as_usize()].on_message(s(0), msg).unwrap();
        assert_eq!(delivered.len(), 1);
        assert_eq!(delivered[0].to, aid(1, 1));
    }

    #[test]
    fn fifo_over_one_link_respected_even_if_probed() {
        let topo = single_domain(2);
        let mut chs = channels(&topo, StampMode::Full);
        for i in 0..3 {
            chs[0]
                .submit(aid(0, 1), aid(1, 1), Notification::new("n", vec![i as u8]))
                .unwrap();
        }
        let tx = chs[0].take_transmissions().unwrap();
        assert_eq!(tx.len(), 3);
        // Frames arrive in FIFO order (the link layer guarantees this).
        let mut all = Vec::new();
        for (_, msg) in tx {
            all.extend(chs[1].on_message(s(0), msg).unwrap());
        }
        let bodies: Vec<u8> = all.iter().map(|m| m.note.body()[0]).collect();
        assert_eq!(bodies, vec![0, 1, 2]);
    }

    #[test]
    fn routed_forwarding_across_domains() {
        // Figure 2 (0-based): 0 -> 7 must route 0 -> 2 -> 6 -> 7.
        let topo = TopologySpec::from_domains(vec![
            vec![0, 1, 2],
            vec![3, 4],
            vec![6, 7],
            vec![2, 4, 5, 6],
        ])
        .validate()
        .unwrap();
        let mut chs = channels(&topo, StampMode::Updates);
        chs[0]
            .submit(
                aid(0, 1),
                aid(7, 1),
                Notification::new("x", b"payload".to_vec()),
            )
            .unwrap();

        // Hop 1: 0 -> 2, stamped in domain 0.
        let tx = chs[0].take_transmissions().unwrap();
        assert_eq!(tx.len(), 1);
        let (hop1, msg1) = tx.into_iter().next().unwrap();
        assert_eq!(hop1, s(2));
        assert_eq!(msg1.domain, DomainId::new(0));

        // Router 2 delivers in domain 0 and forwards into domain 3.
        let local = chs[2].on_message(s(0), msg1).unwrap();
        assert!(local.is_empty(), "router must not deliver locally");
        let tx = chs[2].take_transmissions().unwrap();
        assert_eq!(tx.len(), 1);
        let (hop2, msg2) = tx.into_iter().next().unwrap();
        assert_eq!(hop2, s(6));
        assert_eq!(msg2.domain, DomainId::new(3));
        assert_eq!(chs[2].take_stats().forwarded, 1);

        // Router 6 forwards into domain 2.
        let local = chs[6].on_message(s(2), msg2).unwrap();
        assert!(local.is_empty());
        let tx = chs[6].take_transmissions().unwrap();
        let (hop3, msg3) = tx.into_iter().next().unwrap();
        assert_eq!(hop3, s(7));
        assert_eq!(msg3.domain, DomainId::new(2));

        // Final delivery at 7.
        let local = chs[7].on_message(s(6), msg3).unwrap();
        assert_eq!(local.len(), 1);
        assert_eq!(local[0].note.body_str(), Some("payload"));
        assert_eq!(local[0].from, aid(0, 1));
    }

    #[test]
    fn causal_postponement_in_triangle() {
        // Servers 0, 1, 2 in one domain. 0 sends m_a to 2, then m_b to 1;
        // 1 forwards m_c to 2. If m_c reaches 2 first it must wait for m_a.
        let topo = single_domain(3);
        let mut chs = channels(&topo, StampMode::Full);

        chs[0]
            .submit(aid(0, 1), aid(2, 1), Notification::signal("a"))
            .unwrap();
        chs[0]
            .submit(aid(0, 1), aid(1, 1), Notification::signal("b"))
            .unwrap();
        let tx = chs[0].take_transmissions().unwrap();
        let (m_a, m_b) = {
            let mut it = tx.into_iter();
            let a = it.next().unwrap();
            let b = it.next().unwrap();
            (a, b)
        };
        assert_eq!(m_a.0, s(2));
        assert_eq!(m_b.0, s(1));

        // 1 receives m_b and reacts by sending m_c to 2.
        let delivered = chs[1].on_message(s(0), m_b.1).unwrap();
        assert_eq!(delivered.len(), 1);
        chs[1]
            .submit(aid(1, 1), aid(2, 1), Notification::signal("c"))
            .unwrap();
        let tx = chs[1].take_transmissions().unwrap();
        let (_, m_c) = tx.into_iter().next().unwrap();

        // 2 receives m_c first: must be postponed.
        let delivered = chs[2].on_message(s(1), m_c).unwrap();
        assert!(delivered.is_empty());
        assert_eq!(chs[2].postponed_count(), 1);

        // m_a arrives: both become deliverable, in causal order a, c.
        let delivered = chs[2].on_message(s(0), m_a.1).unwrap();
        let kinds: Vec<&str> = delivered.iter().map(|m| m.note.kind()).collect();
        assert_eq!(kinds, vec!["a", "c"]);
        assert_eq!(chs[2].postponed_count(), 0);
    }

    #[test]
    fn unordered_overtakes_postponed_causal_traffic() {
        // Same triangle as `causal_postponement_in_triangle`, but while
        // m_c waits for m_a, an *unordered* message from 1 sails through.
        let topo = single_domain(3);
        let mut chs = channels(&topo, StampMode::Full);

        chs[0]
            .submit(aid(0, 1), aid(2, 1), Notification::signal("a"))
            .unwrap();
        chs[0]
            .submit(aid(0, 1), aid(1, 1), Notification::signal("b"))
            .unwrap();
        let tx = chs[0].take_transmissions().unwrap();
        let mut it = tx.into_iter();
        let m_a = it.next().unwrap();
        let m_b = it.next().unwrap();

        chs[1].on_message(s(0), m_b.1).unwrap();
        chs[1]
            .submit(aid(1, 1), aid(2, 1), Notification::signal("c"))
            .unwrap();
        chs[1]
            .submit_with(
                aid(1, 1),
                aid(2, 1),
                Notification::signal("express"),
                DeliveryPolicy::Unordered,
            )
            .unwrap();
        let tx = chs[1].take_transmissions().unwrap();
        let mut it = tx.into_iter();
        let m_c = it.next().unwrap();
        let m_x = it.next().unwrap();
        assert!(m_x.1.stamp.is_none(), "unordered messages carry no stamp");

        // m_c arrives first and is postponed; the unordered message is
        // delivered immediately despite arriving later.
        assert!(chs[2].on_message(s(1), m_c.1).unwrap().is_empty());
        let got = chs[2].on_message(s(1), m_x.1).unwrap();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].note.kind(), "express");
        assert_eq!(chs[2].postponed_count(), 1, "causal message still waits");

        // Causal order among causal messages is untouched.
        let got = chs[2].on_message(s(0), m_a.1).unwrap();
        let kinds: Vec<&str> = got.iter().map(|m| m.note.kind()).collect();
        assert_eq!(kinds, vec!["a", "c"]);
    }

    #[test]
    fn unordered_messages_are_routed_across_domains() {
        let topo = TopologySpec::from_domains(vec![vec![0, 1], vec![1, 2]])
            .validate()
            .unwrap();
        let mut chs = channels(&topo, StampMode::Updates);
        chs[0]
            .submit_with(
                aid(0, 1),
                aid(2, 1),
                Notification::signal("x"),
                DeliveryPolicy::Unordered,
            )
            .unwrap();
        let tx = chs[0].take_transmissions().unwrap();
        let (hop, msg) = tx.into_iter().next().unwrap();
        assert_eq!(hop, s(1));
        assert!(msg.stamp.is_none());
        // Router forwards without touching any clock.
        assert!(chs[1].on_message(s(0), msg).unwrap().is_empty());
        assert_eq!(
            chs[1].take_stats().cell_ops,
            0,
            "no matrix work for unordered"
        );
        let tx = chs[1].take_transmissions().unwrap();
        let (hop, msg) = tx.into_iter().next().unwrap();
        assert_eq!(hop, s(2));
        let got = chs[2].on_message(s(1), msg).unwrap();
        assert_eq!(got.len(), 1);
    }

    #[test]
    fn batched_transmissions_collapse_stamps() {
        for mode in StampMode::ALL {
            let topo = single_domain(4);
            let mut chs = channels(&topo, mode);
            let batch: Vec<_> = (0..8)
                .map(|i| (aid(1, 1), Notification::new("b", vec![i as u8])))
                .collect();
            chs[0]
                .submit_batch(aid(0, 1), batch, SendOptions::new())
                .unwrap();
            let tx = chs[0].take_transmissions_batched(true).unwrap();
            assert_eq!(tx.len(), 8);
            assert!(!tx[0].1.stamp.as_ref().unwrap().is_group_next());
            for (_, msg) in &tx[1..] {
                assert!(
                    msg.stamp.as_ref().unwrap().is_group_next(),
                    "{mode:?}: continuation expected"
                );
            }
            let stats = chs[0].take_stats();
            // Only the first stamp pays matrix bytes; continuations are free.
            assert_eq!(
                stats.stamp_bytes,
                tx[0].1.stamp.as_ref().unwrap().encoded_len() as u64
            );
            // Delivery at the receiver, in FIFO order.
            let mut got = Vec::new();
            for (_, msg) in tx {
                got.extend(chs[1].on_message(s(0), msg).unwrap());
            }
            let bodies: Vec<u8> = got.iter().map(|m| m.note.body()[0]).collect();
            assert_eq!(bodies, (0..8).collect::<Vec<u8>>(), "{mode:?}");
        }
    }

    #[test]
    fn batched_stamping_interleaves_with_unbatched_receivers() {
        // A batched sender and a plain `take_transmissions` sender agree on
        // causal order at a third server.
        let topo = single_domain(3);
        let mut chs = channels(&topo, StampMode::Updates);
        for i in 0..4u8 {
            chs[0]
                .submit(aid(0, 1), aid(2, 1), Notification::new("m", vec![i]))
                .unwrap();
        }
        let tx = chs[0].take_transmissions_batched(true).unwrap();
        for (_, msg) in tx {
            chs[2].on_message(s(0), msg).unwrap();
        }
        assert_eq!(chs[2].postponed_count(), 0);
        assert_eq!(chs[2].take_stats().delivered, 4);
    }

    #[test]
    fn submit_from_foreign_agent_rejected() {
        let topo = single_domain(2);
        let mut ch = ChannelCore::new(&topo, s(0), StampMode::Full).unwrap();
        assert!(ch
            .submit(aid(1, 1), aid(0, 1), Notification::signal("x"))
            .is_err());
    }

    #[test]
    fn submit_to_unknown_server_rejected() {
        let topo = single_domain(2);
        let mut ch = ChannelCore::new(&topo, s(0), StampMode::Full).unwrap();
        assert!(matches!(
            ch.submit(aid(0, 1), aid(9, 1), Notification::signal("x")),
            Err(Error::UnknownServer(_))
        ));
    }

    #[test]
    fn misrouted_frames_rejected() {
        let topo = TopologySpec::from_domains(vec![vec![0, 1], vec![1, 2]])
            .validate()
            .unwrap();
        let mut chs = channels(&topo, StampMode::Full);
        chs[0]
            .submit(aid(0, 1), aid(1, 1), Notification::signal("x"))
            .unwrap();
        let tx = chs[0].take_transmissions().unwrap();
        let (_, msg) = tx.into_iter().next().unwrap();
        // Server 2 is not in domain 0: decoding the frame must fail.
        assert!(matches!(
            chs[2].on_message(s(0), msg.clone()),
            Err(Error::UnknownDomain(_))
        ));
        // Server 1 is in domain 0, but the claimed sender 2 is not.
        let mut bad = msg;
        assert!(matches!(
            chs[1].on_message(s(2), {
                bad.domain = DomainId::new(0);
                bad
            }),
            Err(Error::NotInDomain { .. })
        ));
    }

    #[test]
    fn updates_mode_interoperates_end_to_end() {
        let topo = single_domain(4);
        let mut chs = channels(&topo, StampMode::Updates);
        // Everyone messages everyone, twice.
        for round in 0..2 {
            for from in 0..4u16 {
                for to in 0..4u16 {
                    if from == to {
                        continue;
                    }
                    chs[from as usize]
                        .submit(
                            aid(from, 1),
                            aid(to, 1),
                            Notification::new("r", vec![round as u8]),
                        )
                        .unwrap();
                }
                let tx = chs[from as usize].take_transmissions().unwrap();
                for (hop, msg) in tx {
                    chs[hop.as_usize()].on_message(s(from), msg).unwrap();
                }
            }
        }
        for (i, ch) in chs.iter_mut().enumerate() {
            assert_eq!(ch.postponed_count(), 0, "server {i} stuck");
            let stats = ch.take_stats();
            assert_eq!(stats.delivered, 6, "server {i}");
        }
    }
}
