//! Optional metric bundles held by the sans-IO cores.
//!
//! Cores store `Option<…Metrics>` bundles of concrete `aaa-obs` handles:
//! absent a meter (the default) every event pays exactly one branch and no
//! atomic traffic; with a meter attached each event is one or two relaxed
//! atomic adds. Registration (which takes the registry mutex) happens once,
//! in `attach_meter`, never on the hot path.
//!
//! The metric vocabulary (all labelled `server="<id>"` via the meter's base
//! labels; per-domain families add `domain="<id>"`):
//!
//! | name | kind | unit |
//! |---|---|---|
//! | `aaa_channel_cell_ops_total` | counter | matrix-cell operations |
//! | `aaa_channel_stamp_bytes_total` (+`mode`) | counter | bytes |
//! | `aaa_channel_transmitted_total` | counter | messages |
//! | `aaa_channel_delivered_total` | counter | messages |
//! | `aaa_channel_forwarded_total` | counter | messages |
//! | `aaa_channel_postponed` | gauge | messages waiting |
//! | `aaa_channel_postponement_us` | histogram | µs (caller clock) |
//! | `aaa_engine_reactions_total` | counter | reactions |
//! | `aaa_engine_dead_letters_total` | counter | messages |
//! | `aaa_engine_queue_depth` | gauge | messages in `QueueIN` |
//! | `aaa_engine_reaction_latency_us` | histogram | µs (wall clock) |
//! | `aaa_server_delivery_latency_us` | histogram | µs send→deliver |
//! | `aaa_server_disk_bytes_total` | counter | bytes persisted |
//! | `aaa_server_retransmissions_total` (+`peer`) | counter | frames |
//! | `aaa_mom_backpressure_total` | counter | rejected client sends |
//! | `aaa_link_batch_frames` | histogram | frames per flushed batch |
//! | `aaa_link_flushes_total` | counter | batch flushes |
//! | `aaa_persist_group_commit_total` | counter | group commits |
//! | `aaa_persist_group_commit_us` | histogram | µs per group commit |
//! | `aaa_relay_queue_depth` | gauge | unacked journaled entries |
//! | `aaa_relay_enqueued_total` | counter | publications journaled |
//! | `aaa_relay_acked_total` | counter | entries committed by ACK |
//! | `aaa_relay_redeliveries_total` | counter | entries redelivered |
//! | `aaa_relay_expired_total` | counter | entries dropped by TTL |
//! | `aaa_relay_handoff_total` | counter | handoffs accepted |
//! | `aaa_relay_handoff_dup_total` | counter | duplicate handoffs |
//! | `aaa_relay_handoff_dropped_total` | counter | misrouted handoffs |
//! | `aaa_relay_compactions_total` | counter | compaction passes |
//! | `aaa_relay_compaction_reclaimed_bytes_total` | counter | bytes |
//! | `aaa_pubsub_dropped_total` | counter | publications dropped |

use std::collections::HashMap;

use aaa_base::{DomainId, ServerId};
use aaa_clocks::StampMode;
use aaa_obs::{Counter, Gauge, Histogram, Meter, LATENCY_BUCKETS_US};

/// Per-domain causal-cost counters (Figures 7/8 of the paper are plots of
/// exactly these two series).
#[derive(Debug, Clone)]
pub(crate) struct DomainChannelMetrics {
    pub cell_ops: Counter,
    pub stamp_bytes: Counter,
}

/// Instruments of one [`crate::channel::ChannelCore`].
#[derive(Debug, Clone)]
pub(crate) struct ChannelMetrics {
    /// Parallel to `ChannelCore::items` (one entry per domain membership).
    pub domains: Vec<DomainChannelMetrics>,
    pub transmitted: Counter,
    pub delivered: Counter,
    pub forwarded: Counter,
    pub postponed: Gauge,
    pub postponement_us: Histogram,
}

impl ChannelMetrics {
    pub fn new(meter: &Meter, domains: &[DomainId], mode: StampMode) -> Self {
        let per_domain = domains
            .iter()
            .map(|d| DomainChannelMetrics {
                cell_ops: meter.counter_with(
                    "aaa_channel_cell_ops_total",
                    "Matrix-cell operations (stamp, check, delivery merge)",
                    &[("domain", d.as_u16().to_string())],
                ),
                // The stamp-byte series carries the engine name so the
                // mode shootout can be read straight off the dashboard.
                stamp_bytes: meter.counter_with(
                    "aaa_channel_stamp_bytes_total",
                    "Causal stamp bytes emitted",
                    &[
                        ("domain", d.as_u16().to_string()),
                        ("mode", mode.to_string()),
                    ],
                ),
            })
            .collect();
        ChannelMetrics {
            domains: per_domain,
            transmitted: meter.counter(
                "aaa_channel_transmitted_total",
                "Messages transmitted to a neighbour (including forwards)",
            ),
            delivered: meter.counter(
                "aaa_channel_delivered_total",
                "Messages delivered to the local engine",
            ),
            forwarded: meter.counter(
                "aaa_channel_forwarded_total",
                "Messages forwarded to another domain (router work)",
            ),
            postponed: meter.gauge(
                "aaa_channel_postponed",
                "Messages received but not yet causally deliverable",
            ),
            postponement_us: meter.histogram(
                "aaa_channel_postponement_us",
                "Time causal messages spent postponed, in microseconds",
                LATENCY_BUCKETS_US,
            ),
        }
    }
}

/// Instruments of one [`crate::engine::EngineCore`].
#[derive(Debug, Clone)]
pub(crate) struct EngineMetrics {
    pub reactions: Counter,
    pub dead_letters: Counter,
    pub queue_depth: Gauge,
    pub reaction_latency_us: Histogram,
}

impl EngineMetrics {
    pub fn new(meter: &Meter) -> Self {
        EngineMetrics {
            reactions: meter.counter("aaa_engine_reactions_total", "Agent reactions committed"),
            dead_letters: meter.counter(
                "aaa_engine_dead_letters_total",
                "Messages dropped because no agent matched their destination",
            ),
            queue_depth: meter.gauge(
                "aaa_engine_queue_depth",
                "Messages waiting on the engine's QueueIN",
            ),
            reaction_latency_us: meter.histogram(
                "aaa_engine_reaction_latency_us",
                "Wall-clock duration of one agent reaction, in microseconds",
                LATENCY_BUCKETS_US,
            ),
        }
    }
}

/// Instruments of one [`crate::ServerCore`] (beyond its channel/engine).
#[derive(Debug, Clone)]
pub(crate) struct ServerMetrics {
    meter: Meter,
    pub delivery_latency_us: Histogram,
    pub disk_bytes: Counter,
    /// Frames per flushed link batch (group-commit coalescing width).
    pub batch_frames: Histogram,
    /// Link batch flushes (each becomes one wire packet to one peer).
    pub flushes: Counter,
    /// Transactional group commits (one `put` covering a whole batch).
    pub group_commit_total: Counter,
    /// Wall-clock duration of one group commit, in microseconds.
    pub group_commit_us: Histogram,
    /// Client sends rejected because the outstanding budget was exhausted.
    pub backpressure: Counter,
    /// Minted lazily per peer (retransmissions are rare).
    retransmissions: HashMap<ServerId, Counter>,
}

/// Bucket edges for the batch-width histogram: powers of two up to the
/// default `BatchPolicy::max_frames` and a little beyond.
const BATCH_FRAME_BUCKETS: &[u64] = &[1, 2, 4, 8, 16, 32, 64];

impl ServerMetrics {
    pub fn new(meter: &Meter) -> Self {
        ServerMetrics {
            meter: meter.clone(),
            delivery_latency_us: meter.histogram(
                "aaa_server_delivery_latency_us",
                "End-to-end send-to-delivery latency of causal messages, in \
                 microseconds on the runtime's clock",
                LATENCY_BUCKETS_US,
            ),
            disk_bytes: meter.counter(
                "aaa_server_disk_bytes_total",
                "Bytes written to stable storage by transactional commits",
            ),
            batch_frames: meter.histogram(
                "aaa_link_batch_frames",
                "Frames coalesced into one flushed link batch",
                BATCH_FRAME_BUCKETS,
            ),
            flushes: meter.counter(
                "aaa_link_flushes_total",
                "Link batch flushes (one wire packet per flush)",
            ),
            group_commit_total: meter.counter(
                "aaa_persist_group_commit_total",
                "Transactional group commits (one put per batch of deliveries)",
            ),
            group_commit_us: meter.histogram(
                "aaa_persist_group_commit_us",
                "Wall-clock duration of one group commit, in microseconds",
                LATENCY_BUCKETS_US,
            ),
            backpressure: meter.counter(
                "aaa_mom_backpressure_total",
                "Client sends rejected because the outstanding-message budget \
                 was exhausted",
            ),
            retransmissions: HashMap::new(),
        }
    }

    /// The retransmission counter toward `peer`, minted on first use.
    pub fn retransmissions(&mut self, peer: ServerId) -> &Counter {
        let meter = &self.meter;
        self.retransmissions.entry(peer).or_insert_with(|| {
            meter.counter_with(
                "aaa_server_retransmissions_total",
                "Link-layer frames retransmitted after an RTO expiry",
                &[("peer", peer.as_u16().to_string())],
            )
        })
    }
}

/// Instruments of one [`crate::relay::RelayCore`] plus the pubsub drop
/// counter it accounts on the topics' behalf.
#[derive(Debug, Clone)]
pub(crate) struct RelayMetrics {
    /// Unacknowledged journaled entries across all subscriber queues.
    pub queue_depth: Gauge,
    /// Publications journaled into a subscriber queue.
    pub enqueued: Counter,
    /// Entries committed (released) by a cumulative recipient ACK.
    pub acked: Counter,
    /// Entries redelivered after a retry timeout expired unacked.
    pub redeliveries: Counter,
    /// Entries dropped because they outlived the retention TTL.
    pub expired: Counter,
    /// Relay-to-relay handoffs accepted for a local subscriber.
    pub handoff_accepted: Counter,
    /// Handoffs suppressed by the `(origin, seq)` idempotency key.
    pub handoff_duplicates: Counter,
    /// Handoffs dropped because the subscriber is not hosted here.
    pub handoff_dropped: Counter,
    /// Queue compaction passes completed.
    pub compactions: Counter,
    /// Disk bytes reclaimed by compaction.
    pub compaction_reclaimed: Counter,
    /// Publications dropped at the depth bound (cold subscriber full).
    pub pubsub_dropped: Counter,
    /// Torn mid-generation segments found when recovering a queue — a
    /// sign that records were truncated outside the normal
    /// crash-mid-append window.
    pub recovery_anomalies: Counter,
}

impl RelayMetrics {
    pub fn new(meter: &Meter) -> Self {
        RelayMetrics {
            queue_depth: meter.gauge(
                "aaa_relay_queue_depth",
                "Unacknowledged journaled entries across subscriber queues",
            ),
            enqueued: meter.counter(
                "aaa_relay_enqueued_total",
                "Publications journaled into a durable subscriber queue",
            ),
            acked: meter.counter(
                "aaa_relay_acked_total",
                "Journaled entries committed by a cumulative recipient ACK",
            ),
            redeliveries: meter.counter(
                "aaa_relay_redeliveries_total",
                "Journaled entries redelivered after an unacked retry timeout",
            ),
            expired: meter.counter(
                "aaa_relay_expired_total",
                "Journaled entries dropped because they outlived the TTL",
            ),
            handoff_accepted: meter.counter(
                "aaa_relay_handoff_total",
                "Relay-to-relay handoffs accepted for a local subscriber",
            ),
            handoff_duplicates: meter.counter(
                "aaa_relay_handoff_dup_total",
                "Handoffs suppressed as duplicates by the (origin, seq) key",
            ),
            handoff_dropped: meter.counter(
                "aaa_relay_handoff_dropped_total",
                "Handoffs dropped because the subscriber is not hosted here",
            ),
            compactions: meter.counter(
                "aaa_relay_compactions_total",
                "Subscriber-queue compaction passes completed",
            ),
            compaction_reclaimed: meter.counter(
                "aaa_relay_compaction_reclaimed_bytes_total",
                "Disk bytes reclaimed by subscriber-queue compaction",
            ),
            pubsub_dropped: meter.counter(
                "aaa_pubsub_dropped_total",
                "Publications dropped because a subscriber queue hit its \
                 depth bound",
            ),
            recovery_anomalies: meter.counter(
                "aaa_relay_recovery_anomalies_total",
                "Torn mid-generation segments detected while recovering \
                 a subscriber queue",
            ),
        }
    }
}
