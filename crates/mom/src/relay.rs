//! The durable store-and-forward relay (DESIGN.md §17).
//!
//! The plain [`TopicAgent`](crate::pubsub::TopicAgent) assumes every
//! subscriber is live: a publication fans out as ordinary sends, and a
//! subscriber that is disconnected when they arrive simply never sees
//! them. The relay closes that dynamicity gap. A topic built with
//! [`TopicAgent::with_relay`](crate::pubsub::TopicAgent::with_relay)
//! forwards its traffic to the server-local relay instead, which:
//!
//! - **journals before delivering** — every publication is appended to the
//!   subscriber's durable [`SegmentQueue`] *together with the wire causal
//!   stamp* that ordered it, then dispatched; a crash between journal and
//!   delivery redelivers on recovery (at-least-once below, exactly-once
//!   after the receiver's dedup);
//! - **commits on recipient ACK** — delivery completes only when the
//!   subscriber's server acks the relay sequence number (cumulative
//!   [`RelayAck`]); unacked entries are redelivered after a capped backoff
//!   ([`retry_backoff_ms`], the `aaa-net::health` schedule);
//! - **bounds cold subscribers** — a disconnected subscriber's queue
//!   accepts at most `max_depth` entries and then drops (counted in
//!   `aaa_pubsub_dropped_total`) instead of growing without bound, and a
//!   TTL expires entries that outlive their usefulness;
//! - **hands off across servers** — a subscriber hosted elsewhere is
//!   served by *its* home relay: the publishing relay journals locally and
//!   forwards `__relay_handoff` records, deduplicated at the home relay by
//!   the `(origin server, origin sequence)` key, and the handoff is
//!   terminal (a relay never re-forwards a handoff), so no relay loop can
//!   form.
//!
//! The relay is not an [`Agent`](crate::agent::Agent): agents snapshot
//! into the transactional image, but the relay's state *is* its durable
//! queues, which have their own crash story. It is instead addressed as a
//! pseudo-agent at local id [`RELAY_LOCAL`] and wired directly into
//! [`ServerCore`](crate::ServerCore)'s delivery path, so relay control
//! traffic rides the normal causal bus in both runtimes.

use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};
use std::path::PathBuf;

use aaa_base::{AgentId, Error, Result, ServerId, VDuration, VTime};
use aaa_net::health::retry_backoff_ms;
use aaa_net::wire::{Decoder, Encoder};
use aaa_net::RelayAck;
use aaa_storage::{QueueConfig, SegmentQueue};
use bytes::Bytes;

use crate::message::{DeliveryPolicy, Notification};
use crate::metrics::RelayMetrics;

/// The server-local index reserved for the relay pseudo-agent. No real
/// agent may register at this index.
pub const RELAY_LOCAL: u32 = u32::MAX;

/// Control kind: a topic forwards a publication to its relay.
pub const RELAY_PUBLISH: &str = "__relay_publish";
/// Control kind: a topic registers a subscriber with its relay.
pub const RELAY_SUBSCRIBE: &str = "__relay_subscribe";
/// Control kind: a topic removes a subscriber from its relay.
pub const RELAY_UNSUBSCRIBE: &str = "__relay_unsubscribe";
/// Control kind: the relay delivers one journaled publication.
pub const RELAY_DELIVER: &str = "__relay_deliver";
/// Control kind: cumulative delivery acknowledgement ([`RelayAck`] body).
pub const RELAY_ACK: &str = "__relay_ack";
/// Control kind: relay-to-relay transfer of one journaled publication.
pub const RELAY_HANDOFF: &str = "__relay_handoff";

/// The relay pseudo-agent of `server`.
#[must_use]
pub fn relay_agent(server: ServerId) -> AgentId {
    AgentId::new(server, RELAY_LOCAL)
}

/// Retention, redelivery and handoff policy of a server's relay.
#[derive(Debug, Clone)]
pub struct RelayConfig {
    /// Per-subscriber unacknowledged-entry cap; beyond it publications to
    /// that subscriber are dropped and counted, never buffered unbounded.
    pub max_depth: usize,
    /// Entries older than this are expired (skipped, then reclaimed at
    /// compaction). `None` retains forever.
    pub ttl: Option<VDuration>,
    /// Records per on-disk segment before the active segment rolls.
    pub segment_max_records: usize,
    /// Redelivery window: at most this many unacked entries in flight to
    /// one subscriber at a time.
    pub window: u64,
    /// Base retry timeout before an unacked dispatch is redelivered; the
    /// capped `aaa-net::health` backoff is added per attempt.
    pub retry_rto: VDuration,
    /// Forward publications for remote subscribers to their home relay
    /// (`false` delivers directly to the remote agent instead).
    pub handoff: bool,
    /// Root directory for durable queues; `None` keeps queues in memory
    /// (redelivery still works, but a crash loses the backlog).
    pub dir: Option<PathBuf>,
}

impl Default for RelayConfig {
    fn default() -> RelayConfig {
        RelayConfig {
            max_depth: 4096,
            ttl: None,
            segment_max_records: 1024,
            window: 64,
            retry_rto: VDuration::from_millis(200),
            handoff: true,
            dir: None,
        }
    }
}

impl RelayConfig {
    /// Replaces the per-subscriber depth cap.
    #[must_use]
    pub fn max_depth(mut self, depth: usize) -> RelayConfig {
        self.max_depth = depth;
        self
    }

    /// Replaces the entry TTL.
    #[must_use]
    pub fn ttl(mut self, ttl: Option<VDuration>) -> RelayConfig {
        self.ttl = ttl;
        self
    }

    /// Replaces the segment roll threshold.
    #[must_use]
    pub fn segment_max_records(mut self, records: usize) -> RelayConfig {
        self.segment_max_records = records;
        self
    }

    /// Replaces the redelivery window.
    #[must_use]
    pub fn window(mut self, window: u64) -> RelayConfig {
        self.window = window;
        self
    }

    /// Replaces the base retry timeout.
    #[must_use]
    pub fn retry_rto(mut self, rto: VDuration) -> RelayConfig {
        self.retry_rto = rto;
        self
    }

    /// Enables or disables relay-to-relay handoff.
    #[must_use]
    pub fn handoff(mut self, on: bool) -> RelayConfig {
        self.handoff = on;
        self
    }

    /// Backs the queues by durable segments rooted at `dir`.
    #[must_use]
    pub fn dir(mut self, dir: impl Into<PathBuf>) -> RelayConfig {
        self.dir = Some(dir.into());
        self
    }

    fn queue_config(&self) -> QueueConfig {
        QueueConfig {
            // The relay enforces `max_depth` on the undispatched backlog;
            // the queue's own cap is a hard stop that additionally admits
            // the bounded in-flight window.
            max_depth: self
                .max_depth
                .saturating_add(usize::try_from(self.window).unwrap_or(usize::MAX)),
            ttl_ticks: self.ttl.map(VDuration::as_micros),
            segment_max_records: self.segment_max_records,
            // The relay's journal-before-deliver guarantee is against
            // power loss, not just a process crash: default sync policy.
            ..QueueConfig::default()
        }
    }
}

/// Redelivery state of one subscriber.
#[derive(Debug)]
struct SubState {
    queue: SegmentQueue,
    /// Whether the subscriber is reachable; cold subscribers accumulate
    /// backlog instead of being dispatched to.
    connected: bool,
    /// `true` when this subscriber is served through its home relay (it
    /// lives on another server and handoff is enabled).
    remote_handoff: bool,
    /// Highest sequence number dispatched since the last (re)connect or
    /// retry reset; entries in `acked+1 ..= dispatched_upto` are in
    /// flight.
    dispatched_upto: u64,
    /// Retry attempt counter (resets when the window fully acks).
    attempt: u32,
    /// When the unacked in-flight window is redelivered.
    next_retry: Option<VTime>,
    /// Ack watermark at the last compaction pass.
    compacted_at: u64,
}

/// The sans-IO relay state machine of one server.
///
/// Driven by [`ServerCore`](crate::ServerCore): control notifications
/// addressed to [`relay_agent`]`(me)` are routed here, and everything the
/// relay wants to send is drained from `outbox` through the normal
/// submit path (so handoffs and deliveries are stamped, journaled and
/// retransmitted exactly like application traffic).
#[derive(Debug)]
pub(crate) struct RelayCore {
    me: ServerId,
    cfg: RelayConfig,
    /// Topic agent → its subscribers (mirrors the relayed `TopicAgent`s).
    topics: BTreeMap<AgentId, BTreeSet<AgentId>>,
    subs: BTreeMap<AgentId, SubState>,
    /// What the relay wants sent: `(to, note, policy)` triples.
    outbox: VecDeque<(AgentId, Notification, DeliveryPolicy)>,
    /// Handoff dedup: highest origin sequence accepted per
    /// `(origin server, subscriber)` — the `(origin, seq)` idempotency
    /// key with bounded memory (acceptance is monotone).
    handoff_rx: HashMap<(ServerId, AgentId), u64>,
    /// Incrementally maintained total of [`RelayCore::backlog`], so the
    /// per-ack gauge update stays O(1) instead of scanning every
    /// subscriber queue (10k subscribers × one ack each is the common
    /// fan-out shape).
    depth_cache: u64,
    metrics: Option<RelayMetrics>,
}

impl RelayCore {
    pub fn new(me: ServerId, cfg: RelayConfig) -> RelayCore {
        RelayCore {
            me,
            cfg,
            topics: BTreeMap::new(),
            subs: BTreeMap::new(),
            outbox: VecDeque::new(),
            handoff_rx: HashMap::new(),
            depth_cache: 0,
            metrics: None,
        }
    }

    pub fn attach_metrics(&mut self, metrics: RelayMetrics) {
        self.metrics = Some(metrics);
    }

    /// Total unacknowledged backlog across subscribers, recomputed from
    /// the queues (the oracle `depth_cache` mirrors incrementally; tests
    /// cross-check the two).
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn backlog(&self) -> usize {
        self.subs.values().map(|s| s.queue.depth()).sum()
    }

    fn update_depth_gauge(&self) {
        if let Some(m) = &self.metrics {
            m.queue_depth
                .set(i64::try_from(self.depth_cache).unwrap_or(i64::MAX));
        }
    }

    /// The queue directory of `sub` under this relay, when durable.
    fn queue_dir(&self, sub: AgentId) -> Option<PathBuf> {
        self.cfg.dir.as_ref().map(|root| {
            root.join(format!("relay-{}", self.me.as_u16()))
                .join(format!("sub-{}-{}", sub.server().as_u16(), sub.local()))
        })
    }

    fn ensure_sub(&mut self, sub: AgentId) -> Result<&mut SubState> {
        if !self.subs.contains_key(&sub) {
            let queue = match self.queue_dir(sub) {
                Some(dir) => SegmentQueue::open(dir, self.cfg.queue_config())?,
                None => SegmentQueue::in_memory(self.cfg.queue_config()),
            };
            let dispatched_upto = queue.acked();
            // A reopened durable queue carries its recovered backlog.
            self.depth_cache = self.depth_cache.saturating_add(queue.depth() as u64);
            if queue.recovery_anomalies() > 0 {
                // A torn *middle* segment truncated records that a
                // crash-mid-append cannot explain; surface it instead of
                // serving the queue as if recovery were clean.
                if let Some(m) = &self.metrics {
                    m.recovery_anomalies.add(queue.recovery_anomalies());
                }
            }
            self.subs.insert(
                sub,
                SubState {
                    queue,
                    connected: true,
                    remote_handoff: self.cfg.handoff && sub.server() != self.me,
                    dispatched_upto,
                    attempt: 0,
                    next_retry: None,
                    compacted_at: 0,
                },
            );
        }
        self.subs
            .get_mut(&sub)
            .ok_or_else(|| Error::Storage("relay subscriber state vanished".into()))
    }

    /// Registers `sub` on `topic`, opening its durable queue.
    pub fn on_subscribe(&mut self, topic: AgentId, sub: AgentId, now: VTime) -> Result<()> {
        self.topics.entry(topic).or_default().insert(sub);
        self.ensure_sub(sub)?;
        self.pump(sub, now);
        Ok(())
    }

    /// Removes `sub` from `topic`; the queue (and any backlog) is dropped
    /// once no topic references the subscriber and nothing is pending.
    pub fn on_unsubscribe(&mut self, topic: AgentId, sub: AgentId) {
        if let Some(members) = self.topics.get_mut(&topic) {
            members.remove(&sub);
            if members.is_empty() {
                self.topics.remove(&topic);
            }
        }
        let orphan = !self.topics.values().any(|m| m.contains(&sub));
        if orphan {
            if let Some(st) = self.subs.get(&sub) {
                if st.queue.depth() == 0 {
                    self.subs.remove(&sub);
                }
            }
        }
    }

    /// Journals one publication from `topic` for every subscriber, then
    /// dispatches to the warm ones. `stamp` is the wire causal stamp of
    /// the publication (empty when it was a purely local submit).
    pub fn on_publish(
        &mut self,
        topic: AgentId,
        kind: &str,
        body: &Bytes,
        stamp: Vec<u8>,
        now: VTime,
    ) -> Result<()> {
        let members: Vec<AgentId> = self
            .topics
            .get(&topic)
            .map(|m| m.iter().copied().collect())
            .unwrap_or_default();
        let mut payload_enc = Encoder::new();
        payload_enc.agent_id(topic);
        payload_enc.string(kind);
        payload_enc.bytes(body);
        let payload = payload_enc.finish().to_vec();
        for sub in members {
            self.ensure_sub(sub)?;
            let Some(st) = self.subs.get_mut(&sub) else {
                continue;
            };
            // The depth cap bounds the *undispatched* backlog; entries
            // already dispatched and awaiting an ack are governed by
            // `window`, so a warm subscriber with lagging acks is never
            // throttled by its own in-flight traffic.
            let horizon = st.dispatched_upto;
            let undispatched = st
                .queue
                .pending(now.as_micros())
                .filter(|e| e.seq > horizon)
                .count();
            if undispatched >= self.cfg.max_depth {
                // The bound working as designed: a cold subscriber's
                // queue is full, so the publication is dropped for
                // them (and only them) and counted.
                if let Some(m) = &self.metrics {
                    m.pubsub_dropped.add(1);
                }
                continue;
            }
            match st
                .queue
                .enqueue(now.as_micros(), stamp.clone(), payload.clone())
            {
                Ok(_) => {
                    self.depth_cache = self.depth_cache.saturating_add(1);
                    if let Some(m) = &self.metrics {
                        m.enqueued.add(1);
                    }
                }
                Err(Error::Backpressure) => {
                    // The queue's own hard cap (`max_depth + window`).
                    if let Some(m) = &self.metrics {
                        m.pubsub_dropped.add(1);
                    }
                    continue;
                }
                Err(e) => return Err(e),
            }
            self.pump(sub, now);
        }
        self.update_depth_gauge();
        Ok(())
    }

    /// Commits cumulative delivery for `sub` up to `upto` and refills the
    /// dispatch window.
    pub fn on_ack(&mut self, sub: AgentId, upto: u64, now: VTime) -> Result<()> {
        let Some(st) = self.subs.get_mut(&sub) else {
            return Ok(()); // unsubscribed meanwhile: stale ack, ignore
        };
        let released = st.queue.ack_up_to(upto)?;
        if released > 0 {
            self.depth_cache = self.depth_cache.saturating_sub(released);
            if let Some(m) = &self.metrics {
                m.acked.add(released);
            }
        }
        if st.queue.acked() >= st.dispatched_upto {
            // The whole in-flight window is committed.
            st.attempt = 0;
            st.next_retry = None;
        }
        self.pump(sub, now);
        self.maybe_compact(sub, now)?;
        self.update_depth_gauge();
        Ok(())
    }

    /// Accepts one relay-to-relay handoff for a *local* subscriber.
    ///
    /// Handoff is terminal: a record for a subscriber not hosted here is
    /// dropped (loop prevention), and duplicates — the origin redelivering
    /// past a lost ack — are suppressed by the `(origin, seq)` watermark.
    /// Either way a cumulative ack is returned to the origin relay.
    pub fn on_handoff(&mut self, origin: ServerId, body: &Bytes, now: VTime) -> Result<()> {
        let mut d = Decoder::new(body.clone());
        let sub = d.agent_id()?;
        let seq = d.u64()?;
        let stamp = d.bytes()?.to_vec();
        let payload = d.bytes()?.to_vec();
        if sub.server() != self.me {
            // Not ours: a misrouted or looping handoff ends here.
            if let Some(m) = &self.metrics {
                m.handoff_dropped.add(1);
            }
            return Ok(());
        }
        let last = self.handoff_rx.get(&(origin, sub)).copied().unwrap_or(0);
        if seq > last {
            self.handoff_rx.insert((origin, sub), seq);
            if let Some(m) = &self.metrics {
                m.handoff_accepted.add(1);
            }
            let st = self.ensure_sub(sub)?;
            match st.queue.enqueue(now.as_micros(), stamp, payload) {
                Ok(_) => {
                    self.depth_cache = self.depth_cache.saturating_add(1);
                }
                Err(Error::Backpressure) => {
                    if let Some(m) = &self.metrics {
                        m.pubsub_dropped.add(1);
                    }
                }
                Err(e) => return Err(e),
            }
            self.pump(sub, now);
        } else if let Some(m) = &self.metrics {
            m.handoff_duplicates.add(1);
        }
        // Always re-ack: a duplicate means the origin missed our last ack.
        let upto = self.handoff_rx.get(&(origin, sub)).copied().unwrap_or(0);
        self.outbox.push_back((
            relay_agent(origin),
            Notification::new(
                RELAY_ACK,
                RelayAck {
                    subscriber: sub,
                    upto,
                }
                .encode(),
            ),
            DeliveryPolicy::Unordered,
        ));
        self.update_depth_gauge();
        Ok(())
    }

    /// Marks `sub` connected (re-dispatching its backlog; the receiver's
    /// dedup map absorbs any overlap) or disconnected (halting dispatch;
    /// the backlog accumulates under the depth/TTL bounds).
    pub fn set_connected(&mut self, sub: AgentId, connected: bool, now: VTime) -> Result<()> {
        let st = self.ensure_sub(sub)?;
        st.connected = connected;
        if connected {
            st.attempt = 0;
            st.next_retry = None;
            // Anything dispatched before the disconnect may have been
            // lost; rewind to the committed watermark and redeliver.
            st.dispatched_upto = st.queue.acked();
            self.pump(sub, now);
        } else {
            st.next_retry = None;
        }
        Ok(())
    }

    /// Advances TTL expiry, redelivery timers and compaction; call once
    /// per server tick.
    pub fn on_tick(&mut self, now: VTime) -> Result<()> {
        // Fast path: without a TTL nothing expires, and when no retry is
        // due there is nothing to redeliver or compact — skip the
        // per-subscriber walk (the tick fires continuously and the walk
        // touches every queue, which hurts at 10k subscribers).
        if self.cfg.ttl.is_none() && self.next_retry_deadline().is_none_or(|t| t > now) {
            return Ok(());
        }
        let subs: Vec<AgentId> = self.subs.keys().copied().collect();
        let tick = now.as_micros();
        for sub in subs {
            // TTL-expired head-of-queue entries are acked away so they can
            // never wedge the dispatch window of a reconnecting
            // subscriber.
            let (expired_upto, retry_due) = {
                let Some(st) = self.subs.get_mut(&sub) else {
                    continue;
                };
                (
                    st.queue.expired_prefix(tick),
                    st.next_retry.is_some_and(|t| t <= now),
                )
            };
            if expired_upto > 0 {
                let Some(st) = self.subs.get_mut(&sub) else {
                    continue;
                };
                let dropped = st.queue.ack_up_to(expired_upto)?;
                self.depth_cache = self.depth_cache.saturating_sub(dropped);
                st.dispatched_upto = st.dispatched_upto.max(st.queue.acked());
                if let Some(m) = &self.metrics {
                    m.expired.add(dropped);
                }
            }
            if retry_due {
                let Some(st) = self.subs.get_mut(&sub) else {
                    continue;
                };
                st.attempt = st.attempt.saturating_add(1);
                let redelivered = st.dispatched_upto.saturating_sub(st.queue.acked());
                if let Some(m) = &self.metrics {
                    m.redeliveries.add(redelivered);
                }
                st.dispatched_upto = st.queue.acked();
                st.next_retry = None;
                self.pump(sub, now);
            }
            self.maybe_compact(sub, now)?;
        }
        self.update_depth_gauge();
        Ok(())
    }

    /// Compacts `sub`'s queue once enough acked records have accumulated
    /// since the last pass.
    fn maybe_compact(&mut self, sub: AgentId, now: VTime) -> Result<()> {
        let threshold = self.cfg.segment_max_records as u64;
        let Some(st) = self.subs.get_mut(&sub) else {
            return Ok(());
        };
        if st.queue.acked().saturating_sub(st.compacted_at) < threshold {
            return Ok(());
        }
        let report = st.queue.compact(now.as_micros())?;
        st.compacted_at = st.queue.acked();
        if let Some(m) = &self.metrics {
            m.compactions.add(1);
            m.compaction_reclaimed.add(report.bytes_reclaimed);
        }
        Ok(())
    }

    /// Dispatches pending entries of `sub` into the outbox, up to the
    /// redelivery window, and arms the retry timer.
    fn pump(&mut self, sub: AgentId, now: VTime) {
        let RelayCore {
            me,
            cfg,
            subs,
            outbox,
            ..
        } = self;
        let Some(st) = subs.get_mut(&sub) else { return };
        if !st.connected && !st.remote_handoff {
            st.next_retry = None;
            return;
        }
        let tick = now.as_micros();
        let acked = st.queue.acked();
        st.dispatched_upto = st.dispatched_upto.max(acked);
        let mut batch: Vec<(u64, Vec<u8>, Vec<u8>)> = Vec::new();
        for e in st.queue.pending(tick) {
            if e.seq <= st.dispatched_upto {
                continue;
            }
            if e.seq.saturating_sub(acked) > cfg.window {
                break;
            }
            batch.push((e.seq, e.stamp.clone(), e.payload.clone()));
        }
        for (seq, stamp, payload) in batch {
            st.dispatched_upto = seq;
            if st.remote_handoff {
                let mut e = Encoder::new();
                e.agent_id(sub);
                e.u64(seq);
                e.bytes(&stamp);
                e.bytes(&payload);
                outbox.push_back((
                    relay_agent(sub.server()),
                    Notification::new(RELAY_HANDOFF, e.finish()),
                    DeliveryPolicy::Causal,
                ));
            } else {
                let mut e = Encoder::new();
                e.u64(seq);
                e.bytes(&stamp);
                e.bytes(&payload);
                outbox.push_back((
                    sub,
                    Notification::new(RELAY_DELIVER, e.finish()),
                    DeliveryPolicy::Causal,
                ));
            }
        }
        if st.dispatched_upto > st.queue.acked() {
            if st.next_retry.is_none() {
                let peer = if st.remote_handoff { sub.server() } else { *me };
                let backoff =
                    VDuration::from_millis(retry_backoff_ms(*me, peer, st.attempt.max(1)));
                st.next_retry = Some(now + cfg.retry_rto + backoff);
            }
        } else {
            st.next_retry = None;
        }
    }

    /// Pops the next outgoing relay notification, if any.
    pub fn pop_outbox(&mut self) -> Option<(AgentId, Notification, DeliveryPolicy)> {
        self.outbox.pop_front()
    }

    /// `true` when no outgoing relay notification is queued.
    pub fn outbox_is_empty(&self) -> bool {
        self.outbox.is_empty()
    }

    /// `true` when nothing is queued for a reachable subscriber and the
    /// outbox is drained (cold backlogs do not block idleness).
    pub fn is_idle(&self) -> bool {
        self.outbox.is_empty()
            && self
                .subs
                .values()
                .all(|st| (!st.connected && !st.remote_handoff) || st.queue.depth() == 0)
    }

    /// The earliest pending retry deadline, if any.
    pub fn next_retry_deadline(&self) -> Option<VTime> {
        self.subs.values().filter_map(|st| st.next_retry).min()
    }

    /// Serializes the registry (topics, subscriber flags, handoff
    /// watermarks). Queue *contents* are not here — they live in the
    /// durable segments (or are accepted as lost for in-memory queues).
    pub fn snapshot(&self) -> Vec<u8> {
        let mut e = Encoder::new();
        e.count(self.topics.len());
        for (topic, members) in &self.topics {
            e.agent_id(*topic);
            e.count(members.len());
            for m in members {
                e.agent_id(*m);
            }
        }
        e.count(self.subs.len());
        for (sub, st) in &self.subs {
            e.agent_id(*sub);
            e.u8(u8::from(st.connected));
        }
        e.count(self.handoff_rx.len());
        let mut watermarks: Vec<(&(ServerId, AgentId), &u64)> = self.handoff_rx.iter().collect();
        watermarks.sort();
        for ((origin, sub), upto) in watermarks {
            e.server_id(*origin);
            e.agent_id(*sub);
            e.u64(*upto);
        }
        e.finish().to_vec()
    }

    /// Rebuilds the registry from [`RelayCore::snapshot`], reopening each
    /// subscriber's durable queue. Dispatch watermarks reset to the acked
    /// position: recovery redelivers the uncommitted window and the
    /// receiver's dedup restores exactly-once.
    pub fn restore(&mut self, image: &[u8], now: VTime) -> Result<()> {
        if image.is_empty() {
            return Ok(());
        }
        let mut d = Decoder::new(Bytes::from(image.to_vec()));
        let topics = d.u32()?;
        for _ in 0..topics {
            let topic = d.agent_id()?;
            let members = d.u32()?;
            for _ in 0..members {
                let sub = d.agent_id()?;
                self.topics.entry(topic).or_default().insert(sub);
            }
        }
        let subs = d.u32()?;
        for _ in 0..subs {
            let sub = d.agent_id()?;
            let connected = d.u8()? != 0;
            self.ensure_sub(sub)?;
            // `ensure_sub` opened the durable queue; recovery redispatches
            // from the committed watermark for everyone reachable.
            self.set_connected(sub, connected, now)?;
        }
        let watermarks = d.u32()?;
        for _ in 0..watermarks {
            let origin = d.server_id()?;
            let sub = d.agent_id()?;
            let upto = d.u64()?;
            self.handoff_rx.insert((origin, sub), upto);
        }
        Ok(())
    }
}

/// Decodes a journaled relay payload back into `(topic, kind, body)`.
pub(crate) fn decode_payload(payload: &Bytes) -> Result<(AgentId, String, Bytes)> {
    let mut d = Decoder::new(payload.clone());
    let topic = d.agent_id()?;
    let kind = d.string()?;
    let body = d.bytes()?;
    Ok((topic, kind, body))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn aid(s: u16, l: u32) -> AgentId {
        AgentId::new(ServerId::new(s), l)
    }

    fn local_cfg() -> RelayConfig {
        RelayConfig::default()
            .window(4)
            .retry_rto(VDuration::from_millis(10))
    }

    fn drain(r: &mut RelayCore) -> Vec<(AgentId, String)> {
        let mut out = Vec::new();
        while let Some((to, note, _)) = r.pop_outbox() {
            out.push((to, note.kind().to_owned()));
        }
        out
    }

    #[test]
    fn publish_journals_then_dispatches_in_order() {
        let mut r = RelayCore::new(ServerId::new(0), local_cfg());
        let topic = aid(0, 1);
        let sub = aid(0, 2);
        r.on_subscribe(topic, sub, VTime::ZERO).unwrap();
        for i in 0..3u8 {
            r.on_publish(topic, "ev", &Bytes::from(vec![i]), vec![], VTime::ZERO)
                .unwrap();
        }
        let out = drain(&mut r);
        assert_eq!(out.len(), 3);
        assert!(out.iter().all(|(to, k)| *to == sub && k == RELAY_DELIVER));
        assert_eq!(r.backlog(), 3, "journaled until acked");
        r.on_ack(sub, 3, VTime::ZERO).unwrap();
        assert_eq!(r.backlog(), 0);
        assert!(r.is_idle());
    }

    #[test]
    fn window_bounds_inflight_and_acks_refill() {
        let mut r = RelayCore::new(ServerId::new(0), local_cfg());
        let topic = aid(0, 1);
        let sub = aid(0, 2);
        r.on_subscribe(topic, sub, VTime::ZERO).unwrap();
        for i in 0..10u8 {
            r.on_publish(topic, "ev", &Bytes::from(vec![i]), vec![], VTime::ZERO)
                .unwrap();
        }
        assert_eq!(drain(&mut r).len(), 4, "window caps in-flight");
        r.on_ack(sub, 4, VTime::ZERO).unwrap();
        assert_eq!(drain(&mut r).len(), 4, "acks open the window");
    }

    #[test]
    fn cold_subscriber_accumulates_then_drains_on_connect() {
        let mut r = RelayCore::new(ServerId::new(0), local_cfg());
        let topic = aid(0, 1);
        let sub = aid(0, 2);
        r.on_subscribe(topic, sub, VTime::ZERO).unwrap();
        r.set_connected(sub, false, VTime::ZERO).unwrap();
        r.on_publish(topic, "ev", &Bytes::from_static(b"x"), vec![], VTime::ZERO)
            .unwrap();
        assert!(drain(&mut r).is_empty(), "cold: journal only");
        assert!(r.is_idle(), "cold backlog does not block idleness");
        r.set_connected(sub, true, VTime::ZERO).unwrap();
        assert_eq!(drain(&mut r).len(), 1);
    }

    #[test]
    fn depth_cache_tracks_backlog_through_every_mutation() {
        let mut r = RelayCore::new(
            ServerId::new(0),
            local_cfg().ttl(Some(VDuration::from_millis(1))),
        );
        let topic = aid(0, 1);
        let sub = aid(0, 2);
        r.on_subscribe(topic, sub, VTime::ZERO).unwrap();
        for i in 0..5u8 {
            r.on_publish(topic, "ev", &Bytes::from(vec![i]), vec![], VTime::ZERO)
                .unwrap();
            assert_eq!(r.depth_cache as usize, r.backlog());
        }
        r.on_ack(sub, 2, VTime::ZERO).unwrap();
        assert_eq!(r.depth_cache as usize, r.backlog());
        // TTL-expire the rest on a late tick.
        r.on_tick(VTime::ZERO + VDuration::from_millis(10)).unwrap();
        assert_eq!(r.depth_cache as usize, r.backlog());
        assert_eq!(r.backlog(), 0);
    }

    #[test]
    fn backpressure_drops_for_the_full_subscriber_only() {
        let mut r = RelayCore::new(ServerId::new(0), local_cfg().max_depth(2));
        let topic = aid(0, 1);
        let (cold, warm) = (aid(0, 2), aid(0, 3));
        r.on_subscribe(topic, cold, VTime::ZERO).unwrap();
        r.on_subscribe(topic, warm, VTime::ZERO).unwrap();
        r.set_connected(cold, false, VTime::ZERO).unwrap();
        for i in 0..3u8 {
            r.on_publish(topic, "ev", &Bytes::from(vec![i]), vec![], VTime::ZERO)
                .unwrap();
        }
        // cold is capped at 2; warm got all 3.
        let warm_out = drain(&mut r).iter().filter(|(to, _)| *to == warm).count();
        assert_eq!(warm_out, 3);
        assert_eq!(r.backlog(), 2 + 3);
    }

    #[test]
    fn retry_redelivers_the_unacked_window() {
        let mut r = RelayCore::new(ServerId::new(0), local_cfg());
        let topic = aid(0, 1);
        let sub = aid(0, 2);
        r.on_subscribe(topic, sub, VTime::ZERO).unwrap();
        r.on_publish(topic, "ev", &Bytes::from_static(b"x"), vec![], VTime::ZERO)
            .unwrap();
        assert_eq!(drain(&mut r).len(), 1);
        let deadline = r.next_retry_deadline().expect("retry armed");
        r.on_tick(deadline).unwrap();
        assert_eq!(drain(&mut r).len(), 1, "redelivered after the rto");
        assert!(r.next_retry_deadline().unwrap() > deadline, "backoff grows");
        r.on_ack(sub, 1, deadline).unwrap();
        assert!(r.next_retry_deadline().is_none(), "ack disarms the timer");
    }

    #[test]
    fn ttl_expired_head_is_acked_away() {
        let mut r = RelayCore::new(
            ServerId::new(0),
            local_cfg().ttl(Some(VDuration::from_micros(5))),
        );
        let topic = aid(0, 1);
        let sub = aid(0, 2);
        r.on_subscribe(topic, sub, VTime::ZERO).unwrap();
        r.set_connected(sub, false, VTime::ZERO).unwrap();
        r.on_publish(topic, "ev", &Bytes::from_static(b"x"), vec![], VTime::ZERO)
            .unwrap();
        r.on_tick(VTime::from_micros(10)).unwrap();
        assert_eq!(r.backlog(), 0, "expired prefix reclaimed");
        r.set_connected(sub, true, VTime::from_micros(10)).unwrap();
        assert!(drain(&mut r).is_empty(), "nothing stale redelivered");
    }

    #[test]
    fn remote_subscriber_rides_handoff_to_home_relay() {
        let mut origin = RelayCore::new(ServerId::new(0), local_cfg());
        let mut home = RelayCore::new(ServerId::new(1), local_cfg());
        let topic = aid(0, 1);
        let sub = aid(1, 2);
        origin.on_subscribe(topic, sub, VTime::ZERO).unwrap();
        origin
            .on_publish(topic, "ev", &Bytes::from_static(b"x"), vec![7], VTime::ZERO)
            .unwrap();
        let (to, note, policy) = origin.pop_outbox().expect("handoff dispatched");
        assert_eq!(to, relay_agent(ServerId::new(1)));
        assert_eq!(note.kind(), RELAY_HANDOFF);
        assert_eq!(policy, DeliveryPolicy::Causal);
        home.on_handoff(ServerId::new(0), note.body(), VTime::ZERO)
            .unwrap();
        // Home relay delivers locally and acks the origin.
        let out: Vec<_> = std::iter::from_fn(|| home.pop_outbox()).collect();
        assert_eq!(out.len(), 2);
        let ack = out.iter().find(|(_, n, _)| n.kind() == RELAY_ACK).unwrap();
        assert_eq!(ack.0, relay_agent(ServerId::new(0)));
        let deliver = out
            .iter()
            .find(|(_, n, _)| n.kind() == RELAY_DELIVER)
            .unwrap();
        assert_eq!(deliver.0, sub);
        // The journaled stamp survived the hop.
        let mut d = Decoder::new(deliver.1.body().clone());
        let _seq = d.u64().unwrap();
        assert_eq!(d.bytes().unwrap().as_ref(), &[7]);
        // Origin commits on the ack.
        let ack_body = RelayAck::decode(ack.1.body().clone()).unwrap();
        assert_eq!(
            ack_body,
            RelayAck {
                subscriber: sub,
                upto: 1
            }
        );
        origin.on_ack(sub, ack_body.upto, VTime::ZERO).unwrap();
        assert_eq!(origin.backlog(), 0);
    }

    #[test]
    fn duplicate_handoff_is_suppressed_but_reacked() {
        let mut home = RelayCore::new(ServerId::new(1), local_cfg());
        let sub = aid(1, 2);
        let mut e = Encoder::new();
        e.agent_id(sub);
        e.u64(1);
        e.bytes(&[]);
        let mut p = Encoder::new();
        p.agent_id(aid(0, 1));
        p.string("ev");
        p.bytes(b"x");
        e.bytes(&p.finish());
        let body = e.finish();
        home.on_handoff(ServerId::new(0), &body, VTime::ZERO)
            .unwrap();
        home.on_handoff(ServerId::new(0), &body, VTime::ZERO)
            .unwrap();
        let out: Vec<_> = std::iter::from_fn(|| home.pop_outbox()).collect();
        let delivers = out
            .iter()
            .filter(|(_, n, _)| n.kind() == RELAY_DELIVER)
            .count();
        let acks = out.iter().filter(|(_, n, _)| n.kind() == RELAY_ACK).count();
        assert_eq!(delivers, 1, "(origin, seq) dedup");
        assert_eq!(acks, 2, "every handoff is acked, duplicates included");
    }

    #[test]
    fn foreign_handoff_is_dropped_not_forwarded() {
        let mut relay = RelayCore::new(ServerId::new(1), local_cfg());
        let mut e = Encoder::new();
        e.agent_id(aid(5, 2)); // not hosted on server 1
        e.u64(1);
        e.bytes(&[]);
        e.bytes(&[]);
        relay
            .on_handoff(ServerId::new(0), &e.finish(), VTime::ZERO)
            .unwrap();
        assert!(
            relay.pop_outbox().is_none(),
            "loop prevention: terminal drop"
        );
    }

    #[test]
    fn snapshot_restore_reopens_durable_queues() {
        let dir = std::env::temp_dir().join(format!(
            "aaa-relay-restore-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = local_cfg().dir(&dir);
        let topic = aid(0, 1);
        let sub = aid(0, 2);
        let image = {
            let mut r = RelayCore::new(ServerId::new(0), cfg.clone());
            r.on_subscribe(topic, sub, VTime::ZERO).unwrap();
            for i in 0..3u8 {
                r.on_publish(topic, "ev", &Bytes::from(vec![i]), vec![], VTime::ZERO)
                    .unwrap();
            }
            drain(&mut r);
            r.on_ack(sub, 1, VTime::ZERO).unwrap();
            r.snapshot()
        }; // crash: in-flight 2 and 3 never acked
        let mut r = RelayCore::new(ServerId::new(0), cfg);
        r.restore(&image, VTime::ZERO).unwrap();
        let out = drain(&mut r);
        assert_eq!(out.len(), 2, "uncommitted window redelivered");
        assert_eq!(r.backlog(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn payload_roundtrip() {
        let mut e = Encoder::new();
        e.agent_id(aid(3, 9));
        e.string("price");
        e.bytes(b"42");
        let (topic, kind, body) = decode_payload(&e.finish()).unwrap();
        assert_eq!(topic, aid(3, 9));
        assert_eq!(kind, "price");
        assert_eq!(body.as_ref(), b"42");
    }
}
