//! The agent programming model: persistent reactive objects (§3).
//!
//! Agents are "autonomous reactive objects executing concurrently, and
//! communicating through an event/reaction pattern". A reaction is atomic:
//! the notifications an agent emits while reacting are buffered by the
//! [`ReactionContext`] and only enter the bus when the engine commits the
//! reaction — which is also when the agent's state image is persisted.

use aaa_base::AgentId;

use crate::message::{DeliveryPolicy, Notification};

/// A reactive, persistent agent.
///
/// Implementations react to notifications by mutating their state and
/// emitting further notifications through the [`ReactionContext`]. The
/// engine guarantees reactions are atomic and serialized per server.
///
/// # Examples
///
/// ```
/// use aaa_base::AgentId;
/// use aaa_mom::{Agent, Notification, ReactionContext};
///
/// /// Echoes every "ping" back to its sender as "pong".
/// struct Ponger;
///
/// impl Agent for Ponger {
///     fn react(&mut self, ctx: &mut ReactionContext<'_>, from: AgentId, note: &Notification) {
///         if note.kind() == "ping" {
///             ctx.send(from, Notification::signal("pong"));
///         }
///     }
/// }
/// ```
pub trait Agent: Send {
    /// Handles one notification from `from`. All sends performed through
    /// `ctx` belong to this reaction's atomic transaction.
    fn react(&mut self, ctx: &mut ReactionContext<'_>, from: AgentId, note: &Notification);

    /// Serializes the agent's state for persistence.
    ///
    /// The default image is empty, suitable for stateless agents.
    fn snapshot(&self) -> Vec<u8> {
        Vec::new()
    }

    /// Restores the agent's state from a [`Agent::snapshot`] image after a
    /// server recovery.
    ///
    /// The default does nothing, matching the default snapshot.
    fn restore(&mut self, _image: &[u8]) {}
}

/// The capabilities an agent may use while reacting.
///
/// Sends are buffered and released only when the engine commits the
/// reaction, making reactions atomic (all-or-nothing with the state image).
#[derive(Debug)]
pub struct ReactionContext<'a> {
    me: AgentId,
    outgoing: &'a mut Vec<(AgentId, Notification, DeliveryPolicy)>,
}

impl<'a> ReactionContext<'a> {
    pub(crate) fn new(
        me: AgentId,
        outgoing: &'a mut Vec<(AgentId, Notification, DeliveryPolicy)>,
    ) -> Self {
        ReactionContext { me, outgoing }
    }

    /// The identity of the reacting agent.
    pub fn me(&self) -> AgentId {
        self.me
    }

    /// Emits a causally ordered notification to `to` as part of the
    /// current reaction.
    pub fn send(&mut self, to: AgentId, note: Notification) {
        self.outgoing.push((to, note, DeliveryPolicy::Causal));
    }

    /// Emits an *unordered* notification: no causal stamp, no ordering
    /// guarantee — it may overtake earlier traffic (telemetry, gossip).
    pub fn send_unordered(&mut self, to: AgentId, note: Notification) {
        self.outgoing.push((to, note, DeliveryPolicy::Unordered));
    }

    /// Number of notifications emitted so far in this reaction.
    pub fn sent_count(&self) -> usize {
        self.outgoing.len()
    }
}

/// An agent built from a closure — convenient in tests and examples.
///
/// # Examples
///
/// ```
/// use aaa_mom::{FnAgent, Notification};
///
/// let mut counter = 0u32;
/// let _agent = FnAgent::new(move |ctx, from, note| {
///     counter += 1;
///     if note.kind() == "ping" {
///         ctx.send(from, Notification::signal("pong"));
///     }
/// });
/// ```
pub struct FnAgent<F> {
    f: F,
}

impl<F> FnAgent<F>
where
    F: FnMut(&mut ReactionContext<'_>, AgentId, &Notification) + Send,
{
    /// Wraps a reaction closure into an agent.
    pub fn new(f: F) -> Self {
        FnAgent { f }
    }
}

impl<F> Agent for FnAgent<F>
where
    F: FnMut(&mut ReactionContext<'_>, AgentId, &Notification) + Send,
{
    fn react(&mut self, ctx: &mut ReactionContext<'_>, from: AgentId, note: &Notification) {
        (self.f)(ctx, from, note);
    }
}

impl<F> std::fmt::Debug for FnAgent<F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("FnAgent")
    }
}

/// The ping-pong echo agent of the paper's measurement protocol (§6.1):
/// sends every received notification straight back to its sender.
#[derive(Debug, Default, Clone, Copy)]
pub struct EchoAgent;

impl Agent for EchoAgent {
    fn react(&mut self, ctx: &mut ReactionContext<'_>, from: AgentId, note: &Notification) {
        ctx.send(from, note.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aaa_base::ServerId;

    fn aid(s: u16, l: u32) -> AgentId {
        AgentId::new(ServerId::new(s), l)
    }

    #[test]
    fn context_buffers_sends() {
        let mut out = Vec::new();
        let mut ctx = ReactionContext::new(aid(0, 1), &mut out);
        assert_eq!(ctx.me(), aid(0, 1));
        ctx.send(aid(1, 1), Notification::signal("a"));
        ctx.send_unordered(aid(2, 1), Notification::signal("b"));
        assert_eq!(ctx.sent_count(), 2);
        // End the context's borrow of `out` before inspecting it.
        let _ = ctx;
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].0, aid(1, 1));
        assert_eq!(out[0].2, DeliveryPolicy::Causal);
        assert_eq!(out[1].2, DeliveryPolicy::Unordered);
    }

    #[test]
    fn echo_agent_replies_to_sender() {
        let mut agent = EchoAgent;
        let mut out = Vec::new();
        let mut ctx = ReactionContext::new(aid(1, 0), &mut out);
        agent.react(
            &mut ctx,
            aid(0, 0),
            &Notification::new("ping", b"7".to_vec()),
        );
        assert_eq!(
            out,
            vec![(
                aid(0, 0),
                Notification::new("ping", b"7".to_vec()),
                DeliveryPolicy::Causal
            )]
        );
    }

    #[test]
    fn fn_agent_captures_state() {
        let mut agent = FnAgent::new(|ctx, from, note| {
            if note.kind() == "double" {
                ctx.send(from, Notification::signal("x"));
                ctx.send(from, Notification::signal("x"));
            }
        });
        let mut out = Vec::new();
        let mut ctx = ReactionContext::new(aid(1, 0), &mut out);
        agent.react(&mut ctx, aid(0, 0), &Notification::signal("double"));
        agent.react(&mut ctx, aid(0, 0), &Notification::signal("ignored"));
        assert_eq!(out.len(), 2);
        assert_eq!(format!("{agent:?}"), "FnAgent");
    }

    #[test]
    fn default_snapshot_is_empty_and_restore_is_noop() {
        let mut agent = EchoAgent;
        assert!(agent.snapshot().is_empty());
        agent.restore(b"whatever");
    }
}
