//! One complete agent server: Engine + Channel + links + persistence.
//!
//! `ServerCore` is the sans-IO composition of every per-server piece
//! (Figure 1 / Figure 6 of the paper): the [`EngineCore`] running atomic
//! agent reactions, the [`ChannelCore`] enforcing per-domain causal order
//! and routing, one reliable-link endpoint pair per neighbour, the
//! crash-recovery image, and optional trace recording.
//!
//! Both runtimes drive the same core: the threaded runtime
//! ([`crate::runtime`]) with wall-clock time and an in-memory network, the
//! discrete-event simulator (`aaa-sim`) with virtual time and a cost model.
//! Every input is a method call returning the datagrams to transmit.

use std::collections::HashMap;
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;

use aaa_base::{Absorb, AgentId, Error, MessageId, Result, ServerId, VDuration, VTime};
use aaa_clocks::StampMode;
use aaa_net::link::{Datagram, LinkFrame};
use aaa_net::wire::{Decoder, Encoder};
use aaa_net::{BatchPolicy, LinkReceiver, LinkSender, RelayAck, WireMessage};
use aaa_obs::{LatencyTracker, Meter};
use aaa_storage::StableStore;
use aaa_topology::Topology;
use aaa_trace::TraceRecorder;
use bytes::Bytes;

use crate::agent::Agent;
use crate::channel::{ChannelCore, Submit};
use crate::engine::EngineCore;
use crate::message::{AgentMessage, DeliveryPolicy, Notification, SendOptions};
use crate::metrics::{RelayMetrics, ServerMetrics};
use crate::persist::{LinkRxImage, LinkTxImage, ServerImage};
use crate::relay::{self, relay_agent, RelayConfig, RelayCore, RELAY_LOCAL};

/// Storage key of the transactional server image.
const IMAGE_KEY: &str = "server-image";

/// Configuration of one agent server.
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Stamp encoding: full matrices or Appendix-A deltas.
    pub stamp_mode: StampMode,
    /// Link retransmission timeout.
    pub rto: VDuration,
    /// Whether to persist the transactional image after every step.
    pub persist: bool,
    /// Group-commit batching policy for outgoing link frames. The default
    /// coalesces every frame produced within one step into a single wire
    /// packet per peer with no added latency (`max_delay` = 0); use
    /// [`BatchPolicy::disabled`] for the legacy one-packet-per-message
    /// behaviour.
    pub batch: BatchPolicy,
    /// Outstanding-message budget: the maximum number of messages that may
    /// be queued, postponed or in flight on the links before client sends
    /// are rejected with [`Error::Backpressure`]. Bounds the postponed and
    /// retransmit queues when a peer is partitioned away, so a stalled link
    /// degrades into a visible error instead of unbounded memory growth.
    pub max_outstanding: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            stamp_mode: StampMode::Updates,
            rto: VDuration::from_millis(200),
            persist: false,
            batch: BatchPolicy::default(),
            max_outstanding: 65_536,
        }
    }
}

/// A datagram to hand to the transport.
#[derive(Debug, Clone)]
pub struct Transmission {
    /// Destination server.
    pub to: ServerId,
    /// Encoded [`Datagram`].
    pub bytes: Bytes,
}

/// Counters drained after each step, used by the simulator's cost model
/// and by experiments.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct StepStats {
    /// Matrix-cell operations (the paper's causal-ordering cost unit).
    pub cell_ops: u64,
    /// Causal stamp bytes emitted.
    pub stamp_bytes: u64,
    /// Bytes written to stable storage.
    pub disk_bytes: u64,
    /// Messages delivered to local agents.
    pub delivered: u64,
    /// Messages transmitted to neighbours.
    pub transmitted: u64,
    /// Messages forwarded between domains (router work).
    pub forwarded: u64,
    /// Agent reactions committed.
    pub reactions: u64,
}

impl Absorb for StepStats {
    fn absorb(&mut self, other: StepStats) {
        self.cell_ops += other.cell_ops;
        self.stamp_bytes += other.stamp_bytes;
        self.disk_bytes += other.disk_bytes;
        self.delivered += other.delivered;
        self.transmitted += other.transmitted;
        self.forwarded += other.forwarded;
        self.reactions += other.reactions;
    }
}

/// One complete agent server (sans-IO).
pub struct ServerCore {
    me: ServerId,
    config: ServerConfig,
    channel: ChannelCore,
    engine: EngineCore,
    links_tx: HashMap<ServerId, LinkSender>,
    links_rx: HashMap<ServerId, LinkReceiver>,
    store: Arc<dyn StableStore>,
    recorder: Option<TraceRecorder>,
    in_flight: Option<Arc<AtomicI64>>,
    disk_bytes: u64,
    reactions_snapshot: u64,
    metrics: Option<ServerMetrics>,
    latency: Option<LatencyTracker>,
    /// The store-and-forward relay, when enabled (DESIGN.md §17).
    relay: Option<RelayCore>,
    /// Receiver-side exactly-once dedup: highest relay sequence accepted
    /// per `(subscriber, relay server)`. Lives on every server (a
    /// subscriber's server need not run a relay of its own).
    deliver_rx: HashMap<(AgentId, ServerId), u64>,
    /// Wire causal stamps of in-flight publications, keyed by message id:
    /// captured at ingestion (before the channel consumes the stamp) and
    /// handed to the relay so the stamp is journaled with the payload.
    publish_stamps: HashMap<MessageId, Vec<u8>>,
    /// Acks and other sends queued by the local delivery path, drained by
    /// [`ServerCore::run_reactions`]: `(from, to, note, policy)`.
    pending_sends: std::collections::VecDeque<(AgentId, AgentId, Notification, DeliveryPolicy)>,
    /// Meter stash so a relay enabled after [`ServerCore::attach_meter`]
    /// still gets instruments.
    meter: Option<Meter>,
    /// Relay registry blob recovered from the image, consumed by
    /// [`ServerCore::enable_relay`].
    relay_image: Vec<u8>,
}

impl std::fmt::Debug for ServerCore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerCore")
            .field("me", &self.me)
            .field("channel", &self.channel)
            .field("engine", &self.engine)
            .finish_non_exhaustive()
    }
}

impl ServerCore {
    /// Creates a fresh server for `me` in `topology`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownServer`] if `me` is not in the topology.
    pub fn new(
        topology: &Topology,
        me: ServerId,
        config: ServerConfig,
        store: Arc<dyn StableStore>,
    ) -> Result<Self> {
        Ok(ServerCore {
            me,
            config,
            channel: ChannelCore::new(topology, me, config.stamp_mode)?,
            engine: EngineCore::new(),
            links_tx: HashMap::new(),
            links_rx: HashMap::new(),
            store,
            recorder: None,
            in_flight: None,
            disk_bytes: 0,
            reactions_snapshot: 0,
            metrics: None,
            latency: None,
            relay: None,
            deliver_rx: HashMap::new(),
            publish_stamps: HashMap::new(),
            pending_sends: std::collections::VecDeque::new(),
            meter: None,
            relay_image: Vec::new(),
        })
    }

    /// Attaches a metrics meter to the server and both its cores. Every
    /// subsequent event updates the `aaa_channel_*`, `aaa_engine_*` and
    /// `aaa_server_*` instruments in the meter's registry; without a meter
    /// (the default) instrumentation costs one branch per event.
    pub fn attach_meter(&mut self, meter: &Meter) {
        self.channel.attach_meter(meter);
        self.engine.attach_meter(meter);
        self.metrics = Some(ServerMetrics::new(meter));
        if let Some(relay) = &mut self.relay {
            relay.attach_metrics(RelayMetrics::new(meter));
        }
        self.meter = Some(meter.clone());
    }

    /// Enables the store-and-forward relay on this server, restoring any
    /// registry recovered with the transactional image (reopening durable
    /// subscriber queues) and redelivering the uncommitted window. Returns
    /// the datagrams that redelivery produced.
    ///
    /// # Errors
    ///
    /// Propagates [`Error::Storage`] from queue recovery.
    pub fn enable_relay(&mut self, cfg: RelayConfig, now: VTime) -> Result<Vec<Transmission>> {
        let mut relay = RelayCore::new(self.me, cfg);
        if let Some(meter) = &self.meter {
            relay.attach_metrics(RelayMetrics::new(meter));
        }
        let image = std::mem::take(&mut self.relay_image);
        relay.restore(&image, now)?;
        self.relay = Some(relay);
        self.relay_step(now)
    }

    /// Marks a relayed subscriber connected (its backlog redelivers) or
    /// disconnected (its backlog accumulates, bounded by depth and TTL).
    /// Returns the datagrams produced by the resulting redelivery.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Closed`] when no relay is enabled here and
    /// propagates storage errors from the subscriber's queue.
    pub fn relay_set_connected(
        &mut self,
        sub: AgentId,
        connected: bool,
        now: VTime,
    ) -> Result<Vec<Transmission>> {
        let Some(relay) = &mut self.relay else {
            return Err(Error::Closed("no relay enabled on this server"));
        };
        relay.set_connected(sub, connected, now)?;
        self.relay_step(now)
    }

    /// Runs a full step (reactions, flush, commit) when the relay has
    /// outbox work; a cheap no-op otherwise.
    fn relay_step(&mut self, now: VTime) -> Result<Vec<Transmission>> {
        if self.relay.as_ref().is_none_or(RelayCore::outbox_is_empty) {
            return Ok(Vec::new());
        }
        self.run_reactions(now)?;
        let out = self.flush(now, false)?;
        self.commit()?;
        Ok(out)
    }

    /// Attaches a shared send→deliver latency tracker feeding the
    /// `aaa_server_delivery_latency_us` histogram. One tracker is shared by
    /// all servers of a bus; it is clock-agnostic (the threaded runtime
    /// passes wall-clock µs, the simulator virtual-time µs).
    pub fn set_latency_tracker(&mut self, tracker: LatencyTracker) {
        self.latency = Some(tracker);
    }

    /// Attaches a trace recorder; every end-to-end send and delivery on
    /// this server will be recorded.
    pub fn set_recorder(&mut self, recorder: TraceRecorder) {
        self.recorder = Some(recorder);
    }

    /// Attaches a shared in-flight counter (incremented per accepted
    /// remote send, decremented per final delivery) used by runtimes to
    /// detect quiescence.
    pub fn set_in_flight(&mut self, counter: Arc<AtomicI64>) {
        self.in_flight = Some(counter);
    }

    /// This server's id.
    pub fn me(&self) -> ServerId {
        self.me
    }

    /// The configuration.
    pub fn config(&self) -> &ServerConfig {
        &self.config
    }

    /// The causal channel (for inspection).
    pub fn channel(&self) -> &ChannelCore {
        &self.channel
    }

    /// The engine (for inspection).
    pub fn engine(&self) -> &EngineCore {
        &self.engine
    }

    /// Registers an agent under server-local id `local`.
    pub fn register_agent(&mut self, local: u32, agent: Box<dyn Agent>) -> AgentId {
        let id = AgentId::new(self.me, local);
        self.engine.register(id, agent);
        id
    }

    /// Drains the per-step statistics.
    pub fn take_step_stats(&mut self) -> StepStats {
        let ch = self.channel.take_stats();
        let reactions = self.engine.reactions() - self.reactions_snapshot;
        self.reactions_snapshot = self.engine.reactions();
        let disk = std::mem::take(&mut self.disk_bytes);
        StepStats {
            cell_ops: ch.cell_ops,
            stamp_bytes: ch.stamp_bytes,
            disk_bytes: disk,
            delivered: ch.delivered,
            transmitted: ch.transmitted,
            forwarded: ch.forwarded,
            reactions,
        }
    }

    fn record_send(&self, dest: ServerId, id: MessageId, now: VTime) {
        if let Some(rec) = &self.recorder {
            rec.record_send(self.me, dest, id);
        }
        if dest != self.me {
            if let Some(c) = &self.in_flight {
                c.fetch_add(1, Ordering::Relaxed);
            }
            if self.metrics.is_some() {
                if let Some(t) = &self.latency {
                    t.record_send(id, now.as_micros());
                }
            }
        }
    }

    fn record_delivery(&self, id: MessageId, remote: bool, now: VTime) {
        if let Some(rec) = &self.recorder {
            rec.record_delivery(self.me, id);
        }
        if remote {
            if let Some(c) = &self.in_flight {
                c.fetch_sub(1, Ordering::Relaxed);
            }
            if let (Some(m), Some(t)) = (&self.metrics, &self.latency) {
                if let Some(sent) = t.take_send(id) {
                    m.delivery_latency_us
                        .observe(now.as_micros().saturating_sub(sent));
                }
            }
        }
    }

    /// Injects a notification from a local client or agent identity
    /// `from`, addressed to `to`. Runs any local reactions to quiescence,
    /// commits the transaction and returns the datagrams to transmit.
    ///
    /// # Errors
    ///
    /// Propagates channel validation errors (unknown destination server,
    /// foreign sender agent).
    pub fn client_send(
        &mut self,
        from: AgentId,
        to: AgentId,
        note: Notification,
        now: VTime,
    ) -> Result<(MessageId, Vec<Transmission>)> {
        self.client_send_with(from, to, note, SendOptions::default(), now)
    }

    /// Like [`ServerCore::client_send`], with explicit per-send options
    /// (anything convertible into [`SendOptions`], including a bare
    /// [`DeliveryPolicy`]).
    ///
    /// Unordered messages are excluded from the causality trace (they are
    /// free to violate causal order by design); they still count toward
    /// the in-flight counter so quiescence detection covers them.
    ///
    /// # Errors
    ///
    /// As for [`ServerCore::client_send`]; additionally returns
    /// [`Error::Backpressure`] when the outstanding-message budget
    /// ([`ServerConfig::max_outstanding`]) is exhausted.
    pub fn client_send_with(
        &mut self,
        from: AgentId,
        to: AgentId,
        note: Notification,
        opts: impl Into<SendOptions>,
        now: VTime,
    ) -> Result<(MessageId, Vec<Transmission>)> {
        self.check_backpressure()?;
        let opts = opts.into();
        let causal = opts.policy == DeliveryPolicy::Causal;
        let id = match self.channel.submit_with(from, to, note, opts)? {
            Submit::Local(msg) => {
                let id = msg.id;
                if causal {
                    self.record_send(self.me, id, now);
                    self.record_delivery(id, false, now);
                }
                self.deliver_local(msg, now)?;
                id
            }
            Submit::Queued(id) => {
                if causal {
                    self.record_send(to.server(), id, now);
                } else if let Some(c) = &self.in_flight {
                    c.fetch_add(1, Ordering::Relaxed);
                }
                id
            }
        };
        self.run_reactions(now)?;
        let out = self.flush(now, opts.flush)?;
        self.commit()?;
        Ok((id, out))
    }

    /// Injects several notifications from `from` as one transaction: all of
    /// them are stamped together (consecutive same-hop stamps collapse to
    /// `GroupNext` continuations), flushed as coalesced wire packets and
    /// covered by a single group commit.
    ///
    /// # Errors
    ///
    /// As for [`ServerCore::client_send`]; the first failing submission
    /// aborts the batch (earlier submissions remain queued and are still
    /// flushed by the next step). Returns [`Error::Backpressure`] when the
    /// outstanding-message budget ([`ServerConfig::max_outstanding`]) is
    /// exhausted (checked once, before the first submission).
    pub fn client_send_batch(
        &mut self,
        from: AgentId,
        batch: Vec<(AgentId, Notification)>,
        opts: impl Into<SendOptions>,
        now: VTime,
    ) -> Result<(Vec<MessageId>, Vec<Transmission>)> {
        self.check_backpressure()?;
        let opts = opts.into();
        let causal = opts.policy == DeliveryPolicy::Causal;
        let mut ids = Vec::with_capacity(batch.len());
        for (to, note) in batch {
            match self.channel.submit_with(from, to, note, opts)? {
                Submit::Local(msg) => {
                    let id = msg.id;
                    if causal {
                        self.record_send(self.me, id, now);
                        self.record_delivery(id, false, now);
                    }
                    self.deliver_local(msg, now)?;
                    ids.push(id);
                }
                Submit::Queued(id) => {
                    if causal {
                        self.record_send(to.server(), id, now);
                    } else if let Some(c) = &self.in_flight {
                        c.fetch_add(1, Ordering::Relaxed);
                    }
                    ids.push(id);
                }
            }
        }
        self.run_reactions(now)?;
        let out = self.flush(now, opts.flush)?;
        self.commit()?;
        Ok((ids, out))
    }

    /// Processes one datagram from neighbour `from`, commits the resulting
    /// transaction, and returns the datagrams to transmit (always
    /// including a link acknowledgement for data frames).
    ///
    /// Equivalent to [`ServerCore::on_datagram_batch`] with one element.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Codec`] for malformed datagrams and propagates
    /// channel errors for misrouted frames.
    pub fn on_datagram(
        &mut self,
        from: ServerId,
        bytes: Bytes,
        now: VTime,
    ) -> Result<Vec<Transmission>> {
        self.on_datagram_batch(std::iter::once((from, bytes)), now)
    }

    /// Processes a whole inbox drain as **one transaction**: every ready
    /// frame is ingested, causal deliveries and reactions run, the produced
    /// messages are batch-stamped and coalesced per peer, and a single
    /// group commit persists the result — one `StableStore::put` covering
    /// N deliveries. One cumulative acknowledgement per data-sending peer
    /// is appended (batches of frames from a peer are acked once).
    ///
    /// Pure-ack input produces no reactions, no flush and no commit, as
    /// with the single-datagram path.
    ///
    /// # Errors
    ///
    /// As for [`ServerCore::on_datagram`]. An error aborts the step before
    /// the commit.
    pub fn on_datagram_batch(
        &mut self,
        datagrams: impl IntoIterator<Item = (ServerId, Bytes)>,
        now: VTime,
    ) -> Result<Vec<Transmission>> {
        let mut any_data = false;
        // Last cumulative ack per peer, in first-seen peer order.
        let mut acks: Vec<(ServerId, u64)> = Vec::new();
        for (from, bytes) in datagrams {
            let frames = match Datagram::decode(bytes)? {
                Datagram::Ack { cum_seq } => {
                    if let Some(tx) = self.links_tx.get_mut(&from) {
                        tx.on_ack(cum_seq);
                    }
                    continue;
                }
                Datagram::Data(frame) => vec![frame],
                Datagram::Batch(frames) => frames,
            };
            any_data = true;
            let mut delivered = Vec::new();
            let mut ack = None;
            {
                let rx = self.links_rx.entry(from).or_default();
                for frame in frames {
                    let d = rx.on_frame(frame);
                    delivered.extend(d.delivered);
                    if d.ack.is_some() {
                        ack = d.ack;
                    }
                }
            }
            for payload in delivered {
                let msg = WireMessage::decode(payload)?;
                let unordered = msg.stamp.is_none() && msg.dest_server == self.me;
                // Publications bound for a relay journal their causal
                // stamp with the payload; the channel consumes the wire
                // stamp below, so capture it here, keyed by message id.
                if self.relay.is_some()
                    && msg.dest_server == self.me
                    && (msg.kind == crate::pubsub::PUBLISH || msg.kind == relay::RELAY_PUBLISH)
                {
                    if let Some(stamp) = &msg.stamp {
                        let mut e = Encoder::new();
                        e.stamp(stamp);
                        self.publish_stamps.insert(msg.id, e.finish().to_vec());
                    }
                }
                let local = self.channel.on_message_at(from, msg, now)?;
                for m in local {
                    if unordered {
                        // Unordered deliveries stay out of the causal
                        // trace but settle the in-flight counter.
                        if let Some(c) = &self.in_flight {
                            c.fetch_sub(1, Ordering::Relaxed);
                        }
                    } else {
                        self.record_delivery(m.id, m.from.server() != self.me, now);
                    }
                    self.deliver_local(m, now)?;
                }
            }
            if let Some(cum_seq) = ack {
                match acks.iter_mut().find(|(peer, _)| *peer == from) {
                    Some(entry) => entry.1 = cum_seq,
                    None => acks.push((from, cum_seq)),
                }
            }
        }
        if !any_data {
            return Ok(Vec::new());
        }
        self.run_reactions(now)?;
        let mut out = self.flush(now, false)?;
        self.commit()?;
        for (to, cum_seq) in acks {
            out.push(Transmission {
                to,
                bytes: Datagram::Ack { cum_seq }.encode(),
            });
        }
        Ok(out)
    }

    /// Polls link timers: retransmits overdue unacked frames (coalesced
    /// into one wire packet per peer) and flushes partial batches whose
    /// `max_delay` has elapsed.
    pub fn on_tick(&mut self, now: VTime) -> Vec<Transmission> {
        let mut out = Vec::new();
        let mut flushed: Vec<(ServerId, Vec<LinkFrame>)> = Vec::new();
        for (&peer, tx) in self.links_tx.iter_mut() {
            let due = tx.due_retransmissions(now);
            if !due.is_empty() {
                if let Some(m) = &mut self.metrics {
                    m.retransmissions(peer).add(due.len() as u64);
                }
                if let Some(d) = Datagram::for_frames(due) {
                    out.push(Transmission {
                        to: peer,
                        bytes: d.encode(),
                    });
                }
            }
            if tx.flush_deadline().is_some_and(|d| d <= now) {
                if let Some(frames) = tx.flush() {
                    flushed.push((peer, frames));
                }
            }
        }
        for (peer, frames) in flushed {
            self.push_batch(&mut out, peer, frames);
        }
        if let Some(relay) = &mut self.relay {
            let ticked = relay.on_tick(now);
            debug_assert!(ticked.is_ok(), "relay tick failed: {ticked:?}");
            // A storage error here (release builds) leaves the affected
            // queue to the next retry timer rather than poisoning the
            // whole tick. audit:allow(error-swallow)
            let _ = ticked;
            if !relay.outbox_is_empty() {
                let stepped = self
                    .run_reactions(now)
                    .and_then(|()| self.flush(now, false))
                    .and_then(|tx| self.commit().map(|()| tx));
                debug_assert!(stepped.is_ok(), "relay retry step failed: {stepped:?}");
                // Same containment as above. audit:allow(error-swallow)
                if let Ok(tx) = stepped {
                    out.extend(tx);
                }
            }
        }
        out
    }

    /// Flushes every link's partial batch immediately, regardless of the
    /// batching policy's `max_delay` — the urgent path behind
    /// [`crate::Mom::flush`]. With the default policy (`max_delay` = 0)
    /// nothing is ever left buffered between steps and this returns
    /// nothing. No commit is needed: buffered frames already live in the
    /// persisted unacked window.
    pub fn flush_links(&mut self) -> Vec<Transmission> {
        let mut out = Vec::new();
        let mut flushed: Vec<(ServerId, Vec<LinkFrame>)> = Vec::new();
        for (&peer, tx) in self.links_tx.iter_mut() {
            if let Some(frames) = tx.flush() {
                flushed.push((peer, frames));
            }
        }
        for (peer, frames) in flushed {
            self.push_batch(&mut out, peer, frames);
        }
        out
    }

    /// Forces a group commit of the server's transactional image *now*,
    /// outside any step — the final checkpoint a graceful shutdown takes
    /// after draining, so a later recovery restarts from the drained
    /// state instead of replaying the whole tail. A no-op without
    /// persistence.
    ///
    /// # Errors
    ///
    /// Propagates [`Error::Storage`] from the stable store.
    pub fn checkpoint(&mut self) -> Result<()> {
        self.commit()
    }

    /// The earliest retransmission deadline across links and relay retry
    /// timers, if any.
    pub fn next_deadline(&self) -> Option<VTime> {
        let links = self.links_tx.values().filter_map(|tx| tx.next_deadline());
        let relay = self.relay.as_ref().and_then(RelayCore::next_retry_deadline);
        links.chain(relay).min()
    }

    /// Returns `true` if the server holds no queued, postponed or unacked
    /// work.
    pub fn is_idle(&self) -> bool {
        self.channel.queued_out() == 0
            && self.channel.postponed_count() == 0
            && self.engine.pending() == 0
            && self.links_tx.values().all(|tx| tx.in_flight() == 0)
            && self.pending_sends.is_empty()
            && self.relay.as_ref().is_none_or(RelayCore::is_idle)
    }

    /// Messages currently queued, postponed, or unacknowledged on a link —
    /// the quantity bounded by [`ServerConfig::max_outstanding`].
    pub fn outstanding(&self) -> usize {
        self.channel.queued_out()
            + self.channel.postponed_count()
            + self
                .links_tx
                .values()
                .map(|tx| tx.in_flight())
                .sum::<usize>()
    }

    /// Rejects a client send when the outstanding budget is exhausted.
    fn check_backpressure(&mut self) -> Result<()> {
        if self.outstanding() >= self.config.max_outstanding {
            if let Some(m) = &self.metrics {
                m.backpressure.inc();
            }
            return Err(Error::Backpressure);
        }
        Ok(())
    }

    /// Runs engine reactions, pending relay-path sends and relay outbox
    /// dispatches until all three sources are drained.
    fn run_reactions(&mut self, now: VTime) -> Result<()> {
        loop {
            if let Some(reaction) = self.engine.step() {
                // A topic agent reacting to a relayed publication forwards
                // the journaled wire stamp to the relay alongside the
                // payload (consumed here either way, so nothing leaks).
                let stamp = self.publish_stamps.remove(&reaction.msg.id);
                for (to, note, policy) in reaction.outgoing {
                    let hint = if note.kind() == relay::RELAY_PUBLISH {
                        stamp.clone()
                    } else {
                        None
                    };
                    self.submit_local_or_queue(reaction.msg.to, to, note, policy, hint, now)?;
                }
            } else if let Some((from, to, note, policy)) = self.pending_sends.pop_front() {
                self.submit_local_or_queue(from, to, note, policy, None, now)?;
            } else if let Some((to, note, policy)) =
                self.relay.as_mut().and_then(RelayCore::pop_outbox)
            {
                self.submit_local_or_queue(relay_agent(self.me), to, note, policy, None, now)?;
            } else {
                return Ok(());
            }
        }
    }

    /// Submits one notification into the channel and routes a `Local`
    /// result back through [`ServerCore::deliver_local`]. `stamp_hint`
    /// re-keys a journaled publication stamp under the new message id.
    fn submit_local_or_queue(
        &mut self,
        from: AgentId,
        to: AgentId,
        note: Notification,
        policy: DeliveryPolicy,
        stamp_hint: Option<Vec<u8>>,
        now: VTime,
    ) -> Result<()> {
        let causal = policy == DeliveryPolicy::Causal;
        match self.channel.submit_with(from, to, note, policy)? {
            Submit::Local(msg) => {
                if causal {
                    self.record_send(self.me, msg.id, now);
                    self.record_delivery(msg.id, false, now);
                }
                if let Some(stamp) = stamp_hint {
                    self.publish_stamps.insert(msg.id, stamp);
                }
                self.deliver_local(msg, now)?;
            }
            Submit::Queued(id) => {
                if causal {
                    self.record_send(to.server(), id, now);
                } else if let Some(c) = &self.in_flight {
                    c.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        Ok(())
    }

    /// Routes a locally deliverable message: to the relay pseudo-agent, to
    /// the relay-delivery receive path, or onto the engine's `QueueIN`.
    fn deliver_local(&mut self, msg: AgentMessage, now: VTime) -> Result<()> {
        if msg.to.local() == RELAY_LOCAL {
            self.deliver_to_relay(msg, now)
        } else if msg.note.kind() == relay::RELAY_DELIVER {
            self.deliver_from_relay(msg, now)
        } else {
            self.engine.enqueue(msg);
            Ok(())
        }
    }

    /// Handles a message addressed to this server's relay pseudo-agent.
    fn deliver_to_relay(&mut self, msg: AgentMessage, now: VTime) -> Result<()> {
        // Pop the journaled stamp first so a relay-less server (dead
        // letter) does not leak the entry.
        let stamp = self.publish_stamps.remove(&msg.id);
        let Some(relay) = &mut self.relay else {
            return Ok(());
        };
        let body = Bytes::from(msg.note.body().to_vec());
        match msg.note.kind() {
            relay::RELAY_PUBLISH => {
                let mut d = Decoder::new(body);
                let topic = d.agent_id()?;
                let kind = d.string()?;
                let inner = d.bytes()?;
                relay.on_publish(topic, &kind, &inner, stamp.unwrap_or_default(), now)
            }
            relay::RELAY_SUBSCRIBE => {
                let mut d = Decoder::new(body);
                let topic = d.agent_id()?;
                let sub = d.agent_id()?;
                relay.on_subscribe(topic, sub, now)
            }
            relay::RELAY_UNSUBSCRIBE => {
                let mut d = Decoder::new(body);
                let topic = d.agent_id()?;
                let sub = d.agent_id()?;
                relay.on_unsubscribe(topic, sub);
                Ok(())
            }
            relay::RELAY_ACK => {
                let ack = RelayAck::decode(body)?;
                relay.on_ack(ack.subscriber, ack.upto, now)
            }
            relay::RELAY_HANDOFF => relay.on_handoff(msg.from.server(), &body, now),
            _ => Ok(()),
        }
    }

    /// Handles a relay delivery addressed to a local subscriber: dedups by
    /// `(subscriber, relay)` watermark, re-validates the journaled causal
    /// stamp, unwraps the original publication for the engine, and queues
    /// the cumulative ack back to the relay.
    fn deliver_from_relay(&mut self, msg: AgentMessage, _now: VTime) -> Result<()> {
        let mut d = Decoder::new(Bytes::from(msg.note.body().to_vec()));
        let seq = d.u64()?;
        let stamp = d.bytes()?;
        let payload = d.bytes()?;
        let key = (msg.to, msg.from.server());
        let last = self.deliver_rx.get(&key).copied().unwrap_or(0);
        if seq > last {
            self.deliver_rx.insert(key, seq);
            // The journaled stamp must still parse (empty = a local
            // publication that never had a wire stamp). A poisoned entry
            // is skipped but still acked so the window keeps moving.
            let stamp_ok = stamp.is_empty() || Decoder::new(stamp.clone()).stamp().is_ok();
            match relay::decode_payload(&payload) {
                Ok((topic, kind, inner)) if stamp_ok => {
                    self.engine.enqueue(AgentMessage {
                        id: msg.id,
                        from: topic,
                        to: msg.to,
                        note: Notification::new(kind, inner.to_vec()),
                    });
                }
                _ => {}
            }
        }
        let upto = self.deliver_rx.get(&key).copied().unwrap_or(seq.max(last));
        let ack = RelayAck {
            subscriber: msg.to,
            upto,
        };
        self.pending_sends.push_back((
            msg.to,
            msg.from,
            Notification::new(relay::RELAY_ACK, ack.encode().to_vec()),
            DeliveryPolicy::Unordered,
        ));
        Ok(())
    }

    /// Stamps and hands queued messages to the link layer, returning the
    /// datagrams for the transport. With batching enabled, consecutive
    /// same-hop messages are group-stamped and coalesced into multi-frame
    /// wire packets; `urgent` (or a zero `max_delay`) flushes partial
    /// batches at the end of the step so no latency is added.
    fn flush(&mut self, now: VTime, urgent: bool) -> Result<Vec<Transmission>> {
        let rto = self.config.rto;
        let policy = self.config.batch;
        let mut out = Vec::new();
        let mut touched: Vec<ServerId> = Vec::new();
        for (hop, msg) in self
            .channel
            .take_transmissions_batched(!policy.is_disabled())?
        {
            let payload = msg.encode();
            let full = self
                .links_tx
                .entry(hop)
                .or_insert_with(|| LinkSender::with_rto(rto).with_policy(policy))
                .buffer(payload, now);
            if let Some(frames) = full {
                self.push_batch(&mut out, hop, frames);
            }
            if !touched.contains(&hop) {
                touched.push(hop);
            }
        }
        if urgent || policy.max_delay == VDuration::ZERO {
            for hop in touched {
                let flushed = self.links_tx.get_mut(&hop).and_then(|tx| tx.flush());
                if let Some(frames) = flushed {
                    self.push_batch(&mut out, hop, frames);
                }
            }
        }
        Ok(out)
    }

    /// Encodes one flushed batch as a wire packet and records its width.
    fn push_batch(&self, out: &mut Vec<Transmission>, to: ServerId, frames: Vec<LinkFrame>) {
        if let Some(m) = &self.metrics {
            m.batch_frames.observe(frames.len() as u64);
            m.flushes.inc();
        }
        if let Some(d) = Datagram::for_frames(frames) {
            out.push(Transmission {
                to,
                bytes: d.encode(),
            });
        }
    }

    /// Persists the transactional image, if persistence is enabled. One
    /// call covers everything the step did — a batch of N deliveries costs
    /// one `put` (the group commit).
    fn commit(&mut self) -> Result<()> {
        if !self.config.persist {
            return Ok(());
        }
        let started = std::time::Instant::now();
        let image = self.build_image();
        let bytes = image.encode();
        self.disk_bytes += bytes.len() as u64;
        self.store
            .put(IMAGE_KEY, &bytes)
            .map_err(|e| Error::Storage(format!("commit failed: {e}")))?;
        if let Some(m) = &self.metrics {
            m.disk_bytes.add(bytes.len() as u64);
            m.group_commit_total.inc();
            m.group_commit_us
                .observe(started.elapsed().as_micros() as u64);
        }
        Ok(())
    }

    fn build_image(&self) -> ServerImage {
        let (next_msg_seq, queue_out, postponed, items, _) = self.channel.persist_parts();
        let mut agents: Vec<(u32, Vec<u8>)> = self
            .engine
            .agent_ids()
            .into_iter()
            .filter_map(|id| Some((id.local(), self.engine.snapshot_agent(id)?)))
            .collect();
        agents.sort_unstable_by_key(|(local, _)| *local);
        ServerImage {
            next_msg_seq,
            items: items.to_vec(),
            queue_out: queue_out.clone(),
            postponed: postponed.to_vec(),
            engine_queue: self.engine.queue_snapshot().cloned().collect(),
            links_tx: self
                .links_tx
                .iter()
                .map(|(&peer, tx)| LinkTxImage {
                    peer,
                    next_seq: tx.next_seq(),
                    unacked: tx.unacked_frames().cloned().collect(),
                })
                .collect(),
            links_rx: self
                .links_rx
                .iter()
                .map(|(&peer, rx)| LinkRxImage {
                    peer,
                    cum_seq: rx.cum_seq(),
                })
                .collect(),
            agents,
            relay: self.relay_blob(),
        }
    }

    /// Encodes the relay registry plus the receive-side dedup watermarks
    /// for the image; empty when neither exists.
    fn relay_blob(&self) -> Vec<u8> {
        if self.relay.is_none() && self.deliver_rx.is_empty() {
            return Vec::new();
        }
        let mut rx: Vec<(&(AgentId, ServerId), &u64)> = self.deliver_rx.iter().collect();
        rx.sort_unstable_by_key(|(k, _)| *k);
        let mut e = Encoder::new();
        e.count(rx.len());
        for (&(sub, srv), &upto) in rx {
            e.agent_id(sub);
            e.server_id(srv);
            e.u64(upto);
        }
        e.bytes(
            &self
                .relay
                .as_ref()
                .map(RelayCore::snapshot)
                .unwrap_or_default(),
        );
        e.finish().to_vec()
    }

    /// Rebuilds a server from its persisted image after a crash.
    ///
    /// `agents` supplies fresh instances (the code is not persisted, only
    /// the state); each is restored from its snapshot in the image. If no
    /// image exists (the server never committed), a fresh server with the
    /// given agents is returned.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Codec`]/[`Error::Storage`] if the image is corrupt
    /// or unreadable, and propagates topology validation errors.
    pub fn recover(
        topology: &Topology,
        me: ServerId,
        config: ServerConfig,
        store: Arc<dyn StableStore>,
        agents: Vec<(u32, Box<dyn Agent>)>,
        now: VTime,
    ) -> Result<Self> {
        let image_bytes = store.get(IMAGE_KEY)?;
        let mut core = ServerCore::new(topology, me, config, store)?;
        for (local, agent) in agents {
            core.register_agent(local, agent);
        }
        let Some(bytes) = image_bytes else {
            return Ok(core);
        };
        let image = ServerImage::decode(Bytes::from(bytes))?;
        core.channel = ChannelCore::restore_parts(
            topology,
            me,
            config.stamp_mode,
            image.next_msg_seq,
            image.queue_out,
            image.postponed,
            image.items,
        )?;
        for m in image.engine_queue {
            core.engine.enqueue(m);
        }
        for link in image.links_tx {
            core.links_tx.insert(
                link.peer,
                LinkSender::restore(config.rto, link.next_seq, link.unacked, now)
                    .with_policy(config.batch),
            );
        }
        for link in image.links_rx {
            core.links_rx
                .insert(link.peer, LinkReceiver::restore(link.cum_seq));
        }
        for (local, snapshot) in image.agents {
            core.engine
                .restore_agent(AgentId::new(me, local), &snapshot);
        }
        if !image.relay.is_empty() {
            let mut d = Decoder::new(Bytes::from(image.relay));
            let n = d.u32()? as usize;
            for _ in 0..n {
                let sub = d.agent_id()?;
                let srv = d.server_id()?;
                let upto = d.u64()?;
                core.deliver_rx.insert((sub, srv), upto);
            }
            // The registry itself is replayed by `enable_relay`, which the
            // runtime calls once it knows the relay configuration.
            core.relay_image = d.bytes()?.to_vec();
        }
        Ok(core)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agent::{EchoAgent, FnAgent};
    use aaa_storage::MemoryStore;
    use aaa_topology::TopologySpec;

    fn aid(s: u16, l: u32) -> AgentId {
        AgentId::new(ServerId::new(s), l)
    }

    fn s(i: u16) -> ServerId {
        ServerId::new(i)
    }

    fn make(topo: &Topology, me: u16, config: ServerConfig) -> ServerCore {
        let mut core = ServerCore::new(topo, s(me), config, Arc::new(MemoryStore::new())).unwrap();
        core.register_agent(1, Box::new(EchoAgent));
        core
    }

    /// Delivers transmissions between cores until everything is idle.
    fn settle(cores: &mut [ServerCore], mut pending: Vec<Transmission>, from: ServerId) {
        // (from, transmission) pairs
        let mut queue: Vec<(ServerId, Transmission)> =
            pending.drain(..).map(|t| (from, t)).collect();
        let mut guard = 0;
        while let Some((src, t)) = queue.pop() {
            guard += 1;
            assert!(guard < 10_000, "settle did not converge");
            let more = cores[t.to.as_usize()]
                .on_datagram(src, t.bytes, VTime::ZERO)
                .unwrap();
            let me = cores[t.to.as_usize()].me();
            queue.extend(more.into_iter().map(|t| (me, t)));
        }
    }

    #[test]
    fn ping_pong_two_servers() {
        let topo = TopologySpec::single_domain(2).validate().unwrap();
        let mut cores: Vec<ServerCore> = (0..2)
            .map(|i| make(&topo, i, ServerConfig::default()))
            .collect();

        let got: Arc<parking_lot::Mutex<Vec<String>>> = Default::default();
        let got2 = got.clone();
        cores[0].register_agent(
            9,
            Box::new(FnAgent::new(move |_ctx, _from, note| {
                got2.lock().push(note.kind().to_owned());
            })),
        );

        // Client on server 0 pings the echo agent on server 1.
        let (_, tx) = cores[0]
            .client_send(
                aid(0, 9),
                aid(1, 1),
                Notification::signal("ping"),
                VTime::ZERO,
            )
            .unwrap();
        settle(&mut cores, tx, s(0));
        assert_eq!(*got.lock(), vec!["ping".to_owned()]);
        assert!(cores.iter().all(|c| c.is_idle()));
    }

    #[test]
    fn local_delivery_without_network() {
        let topo = TopologySpec::single_domain(1).validate().unwrap();
        let mut core = make(&topo, 0, ServerConfig::default());
        let seen: Arc<parking_lot::Mutex<u32>> = Default::default();
        let seen2 = seen.clone();
        core.register_agent(
            2,
            Box::new(FnAgent::new(move |_ctx, _f, _n| {
                *seen2.lock() += 1;
            })),
        );
        let (_, tx) = core
            .client_send(aid(0, 1), aid(0, 2), Notification::signal("x"), VTime::ZERO)
            .unwrap();
        assert!(tx.is_empty());
        assert_eq!(*seen.lock(), 1);
        let stats = core.take_step_stats();
        assert_eq!(stats.delivered, 1);
        assert_eq!(stats.transmitted, 0);
        assert_eq!(stats.reactions, 1);
    }

    #[test]
    fn trace_recording_end_to_end() {
        let topo = TopologySpec::single_domain(3).validate().unwrap();
        let recorder = TraceRecorder::new();
        let counter = Arc::new(AtomicI64::new(0));
        let mut cores: Vec<ServerCore> = (0..3)
            .map(|i| {
                let mut c = make(&topo, i, ServerConfig::default());
                c.set_recorder(recorder.clone());
                c.set_in_flight(counter.clone());
                c
            })
            .collect();
        let (_, tx) = cores[0]
            .client_send(
                aid(0, 9),
                aid(2, 1),
                Notification::signal("hi"),
                VTime::ZERO,
            )
            .unwrap();
        settle(&mut cores, tx, s(0));
        // hi (0->2) + echo (2->0): 2 sends, 2 deliveries recorded.
        let trace = recorder.snapshot().unwrap();
        assert_eq!(trace.message_count(), 2);
        assert!(trace.check_causality().is_ok());
        assert_eq!(counter.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn crash_recovery_preserves_agent_state_and_clocks() {
        struct Counter(u32);
        impl Agent for Counter {
            fn react(&mut self, _: &mut crate::ReactionContext<'_>, _: AgentId, _: &Notification) {
                self.0 += 1;
            }
            fn snapshot(&self) -> Vec<u8> {
                self.0.to_le_bytes().to_vec()
            }
            fn restore(&mut self, image: &[u8]) {
                self.0 = u32::from_le_bytes(image.try_into().expect("4 bytes"));
            }
        }

        let topo = TopologySpec::single_domain(2).validate().unwrap();
        let store1: Arc<dyn StableStore> = Arc::new(MemoryStore::new());
        let config = ServerConfig {
            persist: true,
            ..ServerConfig::default()
        };
        let mut c0 = ServerCore::new(&topo, s(0), config, Arc::new(MemoryStore::new())).unwrap();
        let mut c1 = ServerCore::new(&topo, s(1), config, store1.clone()).unwrap();
        c1.register_agent(1, Box::new(Counter(0)));

        // Two messages delivered to the counter before the crash.
        for _ in 0..2 {
            let (_, tx) = c0
                .client_send(aid(0, 9), aid(1, 1), Notification::signal("x"), VTime::ZERO)
                .unwrap();
            for t in tx {
                let replies = c1.on_datagram(s(0), t.bytes, VTime::ZERO).unwrap();
                for r in replies {
                    // Feed acks back so c0's unacked queue drains.
                    let _ = c0.on_datagram(s(1), r.bytes, VTime::ZERO).unwrap();
                }
            }
        }

        // Crash c1, rebuild from its store.
        drop(c1);
        let mut c1 = ServerCore::recover(
            &topo,
            s(1),
            config,
            store1,
            vec![(1, Box::new(Counter(0)))],
            VTime::ZERO,
        )
        .unwrap();

        // Agent state survived.
        assert_eq!(
            c1.engine.snapshot_agent(aid(1, 1)).unwrap(),
            2u32.to_le_bytes().to_vec()
        );
        // Clocks survived: a third message is delivered normally (seq 3 on
        // the link, DELIV = 2 in the domain).
        let (_, tx) = c0
            .client_send(aid(0, 9), aid(1, 1), Notification::signal("x"), VTime::ZERO)
            .unwrap();
        for t in tx {
            c1.on_datagram(s(0), t.bytes, VTime::ZERO).unwrap();
        }
        assert_eq!(
            c1.engine.snapshot_agent(aid(1, 1)).unwrap(),
            3u32.to_le_bytes().to_vec()
        );
    }

    #[test]
    fn duplicate_frames_after_recovery_are_suppressed() {
        let topo = TopologySpec::single_domain(2).validate().unwrap();
        let store1: Arc<dyn StableStore> = Arc::new(MemoryStore::new());
        let config = ServerConfig {
            persist: true,
            ..ServerConfig::default()
        };
        let mut c0 = ServerCore::new(&topo, s(0), config, Arc::new(MemoryStore::new())).unwrap();
        let mut c1 = ServerCore::new(&topo, s(1), config, store1.clone()).unwrap();
        c1.register_agent(1, Box::new(EchoAgent));

        let (_, tx) = c0
            .client_send(aid(0, 9), aid(1, 1), Notification::signal("x"), VTime::ZERO)
            .unwrap();
        let frame = tx.into_iter().next().unwrap();
        // Delivered once; ack lost; server crashes after committing.
        let _ = c1
            .on_datagram(s(0), frame.bytes.clone(), VTime::ZERO)
            .unwrap();
        drop(c1);
        let mut c1 = ServerCore::recover(
            &topo,
            s(1),
            config,
            store1,
            vec![(1, Box::new(EchoAgent))],
            VTime::ZERO,
        )
        .unwrap();
        // c0 retransmits the same frame: no double delivery.
        let out = c1.on_datagram(s(0), frame.bytes, VTime::ZERO).unwrap();
        assert_eq!(c1.engine.reactions(), 0, "duplicate must not re-react");
        // But the ack is re-emitted.
        assert!(out.iter().any(|t| matches!(
            Datagram::decode(t.bytes.clone()),
            Ok(Datagram::Ack { cum_seq: 1 })
        )));
    }

    #[test]
    fn retransmission_timer_resends_unacked() {
        let topo = TopologySpec::single_domain(2).validate().unwrap();
        let config = ServerConfig {
            rto: VDuration::from_millis(10),
            ..ServerConfig::default()
        };
        let mut c0 = make(&topo, 0, config);
        let (_, tx) = c0
            .client_send(aid(0, 1), aid(1, 1), Notification::signal("x"), VTime::ZERO)
            .unwrap();
        assert_eq!(tx.len(), 1);
        // Frame "lost": nothing acked. Tick past the deadline.
        assert!(c0.on_tick(VTime::from_micros(5_000)).is_empty());
        let re = c0.on_tick(VTime::from_micros(10_000));
        assert_eq!(re.len(), 1);
        assert_eq!(re[0].to, s(1));
        assert!(c0.next_deadline().is_some());
        assert!(!c0.is_idle());
    }

    #[test]
    fn batched_sends_coalesce_into_one_wire_packet() {
        let topo = TopologySpec::single_domain(2).validate().unwrap();
        let mut cores: Vec<ServerCore> = (0..2)
            .map(|i| make(&topo, i, ServerConfig::default()))
            .collect();
        let batch: Vec<_> = (0..5)
            .map(|i| (aid(1, 1), Notification::new("b", vec![i as u8])))
            .collect();
        let (ids, tx) = cores[0]
            .client_send_batch(aid(0, 9), batch, SendOptions::new(), VTime::ZERO)
            .unwrap();
        assert_eq!(ids.len(), 5);
        assert_eq!(tx.len(), 1, "five messages, one wire packet");
        match Datagram::decode(tx[0].bytes.clone()).unwrap() {
            Datagram::Batch(frames) => assert_eq!(frames.len(), 5),
            other => panic!("expected a batch, got {other:?}"),
        }
        let out = cores[1]
            .on_datagram(s(0), tx[0].bytes.clone(), VTime::ZERO)
            .unwrap();
        assert_eq!(cores[1].engine.reactions(), 5);
        // Exactly one cumulative ack for the whole batch.
        let acks: Vec<u64> = out
            .iter()
            .filter_map(|t| match Datagram::decode(t.bytes.clone()).unwrap() {
                Datagram::Ack { cum_seq } => Some(cum_seq),
                _ => None,
            })
            .collect();
        assert_eq!(acks, vec![5]);
    }

    #[test]
    fn disabled_batching_keeps_one_packet_per_message() {
        let topo = TopologySpec::single_domain(2).validate().unwrap();
        let config = ServerConfig {
            batch: BatchPolicy::disabled(),
            ..ServerConfig::default()
        };
        let mut c0 = make(&topo, 0, config);
        let batch: Vec<_> = (0..3)
            .map(|_| (aid(1, 1), Notification::signal("x")))
            .collect();
        let (_, tx) = c0
            .client_send_batch(aid(0, 1), batch, SendOptions::new(), VTime::ZERO)
            .unwrap();
        assert_eq!(tx.len(), 3);
        for t in &tx {
            assert!(matches!(
                Datagram::decode(t.bytes.clone()).unwrap(),
                Datagram::Data(_)
            ));
        }
    }

    #[test]
    fn group_commit_is_one_put_per_batch() {
        let topo = TopologySpec::single_domain(2).validate().unwrap();
        let config = ServerConfig {
            persist: true,
            ..ServerConfig::default()
        };
        let store1 = Arc::new(MemoryStore::new());
        let mut c0 = ServerCore::new(&topo, s(0), config, Arc::new(MemoryStore::new())).unwrap();
        let mut c1 = ServerCore::new(&topo, s(1), config, store1.clone()).unwrap();
        c1.register_agent(1, Box::new(EchoAgent));
        let batch: Vec<_> = (0..8)
            .map(|i| (aid(1, 1), Notification::new("b", vec![i as u8])))
            .collect();
        let (_, tx) = c0
            .client_send_batch(aid(0, 9), batch, SendOptions::new(), VTime::ZERO)
            .unwrap();
        assert_eq!(tx.len(), 1);
        let before = store1.stats().writes();
        c1.on_datagram(s(0), tx[0].bytes.clone(), VTime::ZERO)
            .unwrap();
        assert_eq!(
            store1.stats().writes() - before,
            1,
            "eight deliveries, one group commit"
        );
    }

    #[test]
    fn mid_batch_crash_recovers_without_loss_or_duplicates() {
        // The sender crashes after buffering a batch but before the wire
        // packet is transmitted; the persisted unacked window re-flushes
        // everything on recovery.
        let topo = TopologySpec::single_domain(2).validate().unwrap();
        let config = ServerConfig {
            persist: true,
            ..ServerConfig::default()
        };
        let store0: Arc<dyn StableStore> = Arc::new(MemoryStore::new());
        let mut c0 = ServerCore::new(&topo, s(0), config, store0.clone()).unwrap();
        let mut c1 = make(&topo, 1, config);
        let batch: Vec<_> = (0..4)
            .map(|i| (aid(1, 1), Notification::new("b", vec![i as u8])))
            .collect();
        let (_, tx) = c0
            .client_send_batch(aid(0, 9), batch, SendOptions::new(), VTime::ZERO)
            .unwrap();
        // The packet is "lost" and the sender crashes.
        drop(tx);
        drop(c0);
        let mut c0 =
            ServerCore::recover(&topo, s(0), config, store0, Vec::new(), VTime::ZERO).unwrap();
        // The retransmission timer re-sends all four frames as one packet.
        let re = c0.on_tick(VTime::ZERO + config.rto);
        assert_eq!(re.len(), 1);
        match Datagram::decode(re[0].bytes.clone()).unwrap() {
            Datagram::Batch(frames) => assert_eq!(frames.len(), 4),
            other => panic!("expected a batch, got {other:?}"),
        }
        c1.on_datagram(s(0), re[0].bytes.clone(), VTime::ZERO)
            .unwrap();
        assert_eq!(c1.engine.reactions(), 4);
        assert_eq!(c1.channel().postponed_count(), 0);
    }

    #[test]
    fn backpressure_rejects_sends_past_the_outstanding_cap() {
        let topo = TopologySpec::single_domain(2).validate().unwrap();
        let config = ServerConfig {
            max_outstanding: 2,
            ..ServerConfig::default()
        };
        let mut core = make(&topo, 0, config);
        let registry = aaa_obs::Registry::new();
        core.attach_meter(&aaa_obs::Meter::new(&registry).with_label("server", "0"));

        // Never delivering the transmissions keeps the frames in flight on
        // the link, so outstanding grows by one per send until the cap.
        for i in 0..2u8 {
            core.client_send(
                aid(0, 1),
                aid(1, 1),
                Notification::new("n", vec![i]),
                VTime::ZERO,
            )
            .unwrap();
        }
        assert_eq!(core.outstanding(), 2);
        let err = core
            .client_send(
                aid(0, 1),
                aid(1, 1),
                Notification::signal("over"),
                VTime::ZERO,
            )
            .unwrap_err();
        assert_eq!(err, Error::Backpressure);
        let err = core
            .client_send_batch(
                aid(0, 1),
                vec![(aid(1, 1), Notification::signal("over"))],
                SendOptions::new(),
                VTime::ZERO,
            )
            .unwrap_err();
        assert_eq!(err, Error::Backpressure);
        let snap = registry.snapshot();
        assert_eq!(
            snap.counter("aaa_mom_backpressure_total", &[("server", "0")]),
            Some(2)
        );
    }

    #[test]
    fn recover_without_image_is_fresh() {
        let topo = TopologySpec::single_domain(2).validate().unwrap();
        let core = ServerCore::recover(
            &topo,
            s(0),
            ServerConfig::default(),
            Arc::new(MemoryStore::new()),
            vec![(1, Box::new(EchoAgent))],
            VTime::ZERO,
        )
        .unwrap();
        assert!(core.is_idle());
        assert!(core.engine().has_agent(aid(0, 1)));
    }
}
