//! The threaded runtime: one OS thread drives each agent server's whole
//! step loop (commands, inbox, timers) — not one thread per agent.
//!
//! [`MomBuilder`] assembles a complete bus — validated topology, in-memory
//! network, one [`ServerCore`] per server, each driven by its own thread —
//! and returns a [`Mom`] handle for clients: register agents, send
//! notifications, crash and recover servers, snapshot the causality trace,
//! and collect statistics.
//!
//! Each server thread runs a **batched step loop**: one `select!` wakeup
//! greedily drains the transport inbox and hands every ready datagram to
//! [`ServerCore::on_datagram_batch`] as a single transaction — deliveries
//! and reactions run together, outgoing messages are group-stamped and
//! coalesced into one wire packet per peer (see
//! [`aaa_net::BatchPolicy`]), and one group commit persists the result.
//! Urgent traffic bypasses the coalescing delay via
//! [`SendOptions::urgent`] or [`Mom::flush`].
//!
//! This is the moral equivalent of the paper's deployment of one JVM per
//! agent server on a LAN, shrunk into a single process.

use std::collections::HashMap;
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use aaa_base::{Absorb, AgentId, Error, MessageId, Result, ServerId, VDuration, VTime};
use aaa_clocks::StampMode;
use aaa_net::{BatchPolicy, MemoryNetwork, PeerState, TcpNetwork};
use aaa_obs::{LatencyTracker, Meter, MetricsServer, MetricsSnapshot, Registry};
use aaa_storage::{MemoryStore, StableStore};
use aaa_topology::{Topology, TopologySpec};
use aaa_trace::TraceRecorder;
use crossbeam::channel::{bounded, unbounded, Sender};

use crate::agent::Agent;
use crate::message::{Notification, SendOptions};
use crate::server::{ServerConfig, ServerCore, StepStats, Transmission};

/// The byte-transport abstraction, re-exported from `aaa-net` where it
/// lives beside the endpoint types that implement it ([`aaa_net::memory`],
/// [`aaa_net::tcp`]). Select between them with [`MomBuilder::tcp`].
pub use aaa_net::Transport;

/// Maximum datagrams one step loop iteration drains from the inbox before
/// processing them as a single transaction. Bounds step latency while
/// letting bursts amortize stamping, flushing and the group commit.
const MAX_STEP_DRAIN: usize = 256;

/// While a peer is [`PeerState::Down`], at most one transmission run per
/// this interval goes out to it as a liveness probe; everything else is
/// suppressed (the link layer re-offers it after recovery) so the step
/// loop does not hot-spin retransmits into a dead socket.
const PROBE_INTERVAL: Duration = Duration::from_millis(100);

enum Command {
    Register {
        local: u32,
        agent: Box<dyn Agent>,
        reply: Sender<()>,
    },
    Send {
        from: AgentId,
        to: AgentId,
        note: Notification,
        opts: SendOptions,
        reply: Sender<Result<MessageId>>,
    },
    SendBatch {
        from: AgentId,
        batch: Vec<(AgentId, Notification)>,
        opts: SendOptions,
        reply: Sender<Result<Vec<MessageId>>>,
    },
    Flush {
        reply: Sender<()>,
    },
    Crash,
    Recover {
        agents: Vec<(u32, Box<dyn Agent>)>,
        reply: Sender<Result<()>>,
    },
    Probe {
        reply: Sender<bool>,
    },
    Stats {
        reply: Sender<StepStats>,
    },
    Shutdown,
}

/// Builder for a threaded MOM.
///
/// # Examples
///
/// ```
/// use aaa_mom::{MomBuilder, StampMode};
/// use aaa_topology::TopologySpec;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mom = MomBuilder::new(TopologySpec::bus(2, 3))
///     .stamp_mode(StampMode::Updates)
///     .build()?;
/// mom.shutdown();
/// # Ok(())
/// # }
/// ```
pub struct MomBuilder {
    spec: TopologySpec,
    config: ServerConfig,
    record_trace: bool,
    allow_cycles: bool,
    tcp: bool,
    tcp_connect_timeout: Option<Duration>,
    transports: Option<Vec<Box<dyn Transport>>>,
    stores: Option<Vec<Arc<dyn StableStore>>>,
    metrics: bool,
    registry: Option<Registry>,
}

impl MomBuilder {
    /// Starts a builder for the given topology.
    pub fn new(spec: TopologySpec) -> Self {
        MomBuilder {
            spec,
            config: ServerConfig::default(),
            record_trace: true,
            allow_cycles: false,
            tcp: false,
            tcp_connect_timeout: None,
            transports: None,
            stores: None,
            metrics: true,
            registry: None,
        }
    }

    /// Sets the stamp encoding mode (default: [`StampMode::Updates`]).
    pub fn stamp_mode(mut self, mode: StampMode) -> Self {
        self.config.stamp_mode = mode;
        self
    }

    /// Sets the link retransmission timeout (default: 200 ms).
    pub fn rto(mut self, rto: VDuration) -> Self {
        self.config.rto = rto;
        self
    }

    /// Enables transactional persistence of every server (default: off).
    /// Required for [`Mom::crash`]/[`Mom::recover`] to be meaningful.
    pub fn persistence(mut self, on: bool) -> Self {
        self.config.persist = on;
        self
    }

    /// Sets the group-commit batching policy for outgoing link frames.
    ///
    /// Batching is **on by default** with
    /// [`BatchPolicy::default`] — up to 32 frames or 256 KiB per wire
    /// packet, and `max_delay` zero, meaning frames are coalesced only
    /// *within* a step (everything a burst produced goes out together at
    /// the end of the step) so single-message latency is unchanged. Pass
    /// [`BatchPolicy::disabled`] for the legacy one-packet-per-message
    /// behaviour, or a non-zero `max_delay` to hold partial batches across
    /// steps ([`SendOptions::urgent`] and [`Mom::flush`] bypass the delay).
    pub fn batching(mut self, policy: BatchPolicy) -> Self {
        self.config.batch = policy;
        self
    }

    /// Enables or disables causality-trace recording (default: on).
    pub fn record_trace(mut self, on: bool) -> Self {
        self.record_trace = on;
        self
    }

    /// Accepts a cyclic domain graph (for counterexample experiments). The
    /// theorem's guarantee is void on such topologies.
    pub fn allow_cycles(mut self, on: bool) -> Self {
        self.allow_cycles = on;
        self
    }

    /// Runs the bus over localhost TCP instead of the in-memory mesh —
    /// the shape of the paper's deployment (one JVM per server, meshed
    /// over TCP). Default: in-memory.
    pub fn tcp(mut self, on: bool) -> Self {
        self.tcp = on;
        self
    }

    /// Sets the outbound connect timeout used by the TCP transport
    /// (default: [`aaa_net::tcp::DEFAULT_CONNECT_TIMEOUT`], 2 s). Only
    /// meaningful together with [`MomBuilder::tcp`].
    pub fn tcp_connect_timeout(mut self, timeout: Duration) -> Self {
        self.tcp_connect_timeout = Some(timeout);
        self
    }

    /// Supplies pre-built transport endpoints — one per server, indexed
    /// by id — instead of letting the builder create the mesh. This is
    /// how chaos tests run the threaded runtime over
    /// `aaa_chaos::FaultTransport`-wrapped endpoints; it also admits any
    /// custom [`Transport`] implementation. Overrides
    /// [`MomBuilder::tcp`].
    pub fn transports(mut self, transports: Vec<Box<dyn Transport>>) -> Self {
        self.transports = Some(transports);
        self
    }

    /// Caps the number of outstanding (accepted but not yet
    /// acknowledged/delivered) messages a server accepts before client
    /// sends fail with [`Error::Backpressure`] (default: 65 536). See
    /// [`ServerConfig::max_outstanding`].
    pub fn max_outstanding(mut self, cap: usize) -> Self {
        self.config.max_outstanding = cap;
        self
    }

    /// Supplies per-server stable stores (defaults to fresh
    /// [`MemoryStore`]s). Must be one per server, indexed by id.
    pub fn stores(mut self, stores: Vec<Arc<dyn StableStore>>) -> Self {
        self.stores = Some(stores);
        self
    }

    /// Enables or disables metrics collection (default: on). When off,
    /// cores run without meters — instrumentation costs one branch per
    /// event — and [`Mom::stats`] falls back to asking the server threads.
    pub fn metrics(mut self, on: bool) -> Self {
        self.metrics = on;
        self
    }

    /// Supplies an external metrics [`Registry`] (for example one shared
    /// with other buses or already served over HTTP). Defaults to a fresh
    /// registry, accessible through [`Mom::metrics`].
    pub fn registry(mut self, registry: Registry) -> Self {
        self.registry = Some(registry);
        self
    }

    /// Validates the topology, boots every server thread and returns the
    /// bus handle.
    ///
    /// # Errors
    ///
    /// Propagates topology validation errors ([`Error::InvalidTopology`],
    /// [`Error::CyclicDomainGraph`]) and [`Error::Config`] if the supplied
    /// store list has the wrong length.
    pub fn build(self) -> Result<Mom> {
        let topology = Arc::new(if self.allow_cycles {
            self.spec.validate_allow_cycles()?
        } else {
            self.spec.validate()?
        });
        let n = topology.server_count();
        let stores = match self.stores {
            Some(stores) => {
                if stores.len() != n {
                    return Err(Error::Config(format!(
                        "expected {n} stores, got {}",
                        stores.len()
                    )));
                }
                stores
            }
            None => (0..n)
                .map(|_| Arc::new(MemoryStore::new()) as Arc<dyn StableStore>)
                .collect(),
        };

        let recorder = TraceRecorder::new();
        let in_flight = Arc::new(AtomicI64::new(0));
        let start = Instant::now();
        let registry = self.metrics.then(|| self.registry.unwrap_or_default());
        let latency = registry.as_ref().map(|_| LatencyTracker::new());

        let mut cmd_txs = Vec::with_capacity(n);
        let mut handles = Vec::with_capacity(n);
        let mut spawn_all = |endpoints: Vec<Box<dyn Transport>>| {
            for (i, mut endpoint) in endpoints.into_iter().enumerate() {
                let me = ServerId::new(i as u16);
                let (tx, rx) = unbounded::<Command>();
                cmd_txs.push(tx);
                let topology = topology.clone();
                let store = stores[i].clone();
                let recorder = self.record_trace.then(|| recorder.clone());
                let in_flight = in_flight.clone();
                let config = self.config;
                // The tracker is minted together with the registry, so
                // zipping the two options never silently drops one.
                let obs = registry.as_ref().zip(latency.clone()).map(|(r, tracker)| {
                    (Meter::new(r).with_label("server", i.to_string()), tracker)
                });
                if let Some((meter, _)) = &obs {
                    endpoint.attach_meter(meter);
                }
                handles.push(std::thread::spawn(move || {
                    server_thread(
                        topology, me, config, store, recorder, in_flight, obs, endpoint, rx, start,
                    );
                }));
            }
        };
        if let Some(transports) = self.transports {
            if transports.len() != n {
                return Err(Error::Config(format!(
                    "expected {n} transports, got {}",
                    transports.len()
                )));
            }
            spawn_all(transports);
        } else if self.tcp {
            let timeout = self
                .tcp_connect_timeout
                .unwrap_or(aaa_net::tcp::DEFAULT_CONNECT_TIMEOUT);
            let endpoints = TcpNetwork::create_with_connect_timeout(n, timeout)?;
            spawn_all(
                endpoints
                    .into_iter()
                    .map(|e| Box::new(e) as Box<dyn Transport>)
                    .collect(),
            );
        } else {
            let endpoints = MemoryNetwork::create(n);
            spawn_all(
                endpoints
                    .into_iter()
                    .map(|e| Box::new(e) as Box<dyn Transport>)
                    .collect(),
            );
        }

        Ok(Mom {
            topology,
            cmd_txs,
            handles,
            recorder,
            in_flight,
            stores,
            registry,
        })
    }
}

/// A running, threaded MOM.
pub struct Mom {
    topology: Arc<Topology>,
    cmd_txs: Vec<Sender<Command>>,
    handles: Vec<std::thread::JoinHandle<()>>,
    recorder: TraceRecorder,
    in_flight: Arc<AtomicI64>,
    stores: Vec<Arc<dyn StableStore>>,
    registry: Option<Registry>,
}

impl std::fmt::Debug for Mom {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mom")
            .field("servers", &self.cmd_txs.len())
            .field("in_flight", &self.in_flight.load(Ordering::SeqCst))
            .finish_non_exhaustive()
    }
}

impl Mom {
    /// The validated topology this bus runs.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    fn cmd(&self, server: ServerId) -> Result<&Sender<Command>> {
        self.cmd_txs
            .get(server.as_usize())
            .ok_or(Error::UnknownServer(server))
    }

    /// Registers an agent on `server` under server-local id `local`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownServer`] for an unknown server or
    /// [`Error::Closed`] if the bus is shutting down.
    pub fn register_agent(
        &self,
        server: ServerId,
        local: u32,
        agent: Box<dyn Agent>,
    ) -> Result<AgentId> {
        let (reply, rx) = bounded(1);
        self.cmd(server)?
            .send(Command::Register {
                local,
                agent,
                reply,
            })
            .map_err(|_| Error::Closed("server thread"))?;
        rx.recv().map_err(|_| Error::Closed("server thread"))?;
        Ok(AgentId::new(server, local))
    }

    /// Sends a notification from `from` (an agent identity on its server)
    /// to `to`, waiting until the origin server has accepted it.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownServer`] for unknown endpoints,
    /// [`Error::Closed`] if the origin server is crashed or shut down, and
    /// propagates channel validation errors.
    pub fn send(&self, from: AgentId, to: AgentId, note: Notification) -> Result<MessageId> {
        self.send_with(from, to, note, SendOptions::causal())
    }

    /// Sends a notification with no ordering guarantee (and no stamp
    /// overhead): the unordered quality of service. Excluded from the
    /// causality trace. Equivalent to
    /// `send_with(from, to, note, SendOptions::unordered())`.
    ///
    /// # Errors
    ///
    /// As for [`Mom::send`].
    pub fn send_unordered(
        &self,
        from: AgentId,
        to: AgentId,
        note: Notification,
    ) -> Result<MessageId> {
        self.send_with(from, to, note, SendOptions::unordered())
    }

    /// Sends a notification with explicit per-send options — the unified
    /// send path ([`Mom::send`] and [`Mom::send_unordered`] are thin
    /// wrappers over it). Anything convertible into [`SendOptions`] is
    /// accepted, including a bare [`DeliveryPolicy`](crate::DeliveryPolicy).
    ///
    /// # Errors
    ///
    /// As for [`Mom::send`].
    pub fn send_with(
        &self,
        from: AgentId,
        to: AgentId,
        note: Notification,
        opts: impl Into<SendOptions>,
    ) -> Result<MessageId> {
        let (reply, rx) = bounded(1);
        self.cmd(from.server())?
            .send(Command::Send {
                from,
                to,
                note,
                opts: opts.into(),
                reply,
            })
            .map_err(|_| Error::Closed("server thread"))?;
        rx.recv().map_err(|_| Error::Closed("server thread"))?
    }

    /// Sends several notifications from `from` as **one transaction** on
    /// the origin server: the batch is stamped together (consecutive
    /// same-peer stamps collapse into one-byte continuations), coalesced
    /// into multi-frame wire packets per peer, and covered by a single
    /// group commit. Returns the assigned message ids in order.
    ///
    /// # Errors
    ///
    /// As for [`Mom::send`]; the first failing submission aborts the batch
    /// (earlier messages remain queued and are still delivered).
    pub fn send_batch(
        &self,
        from: AgentId,
        batch: Vec<(AgentId, Notification)>,
        opts: impl Into<SendOptions>,
    ) -> Result<Vec<MessageId>> {
        let (reply, rx) = bounded(1);
        self.cmd(from.server())?
            .send(Command::SendBatch {
                from,
                batch,
                opts: opts.into(),
                reply,
            })
            .map_err(|_| Error::Closed("server thread"))?;
        rx.recv().map_err(|_| Error::Closed("server thread"))?
    }

    /// Flushes every server's partially filled link batches immediately,
    /// bypassing any configured `max_delay`. A no-op under the default
    /// policy (zero `max_delay` never leaves frames buffered between
    /// steps); crashed servers are skipped.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Closed`] if the bus is shutting down.
    pub fn flush(&self) -> Result<()> {
        let mut waits = Vec::with_capacity(self.cmd_txs.len());
        for tx in &self.cmd_txs {
            let (reply, rx) = bounded(1);
            tx.send(Command::Flush { reply })
                .map_err(|_| Error::Closed("server thread"))?;
            waits.push(rx);
        }
        for rx in waits {
            rx.recv().map_err(|_| Error::Closed("server thread"))?;
        }
        Ok(())
    }

    /// Crashes `server`: its in-memory state is discarded and incoming
    /// frames are dropped until [`Mom::recover`]. The stable store
    /// survives.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownServer`] / [`Error::Closed`].
    pub fn crash(&self, server: ServerId) -> Result<()> {
        self.cmd(server)?
            .send(Command::Crash)
            .map_err(|_| Error::Closed("server thread"))
    }

    /// Recovers `server` from its stable store, registering fresh agent
    /// instances (state is restored from their snapshots).
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownServer`] / [`Error::Closed`], or the
    /// recovery error encountered by the server.
    pub fn recover(&self, server: ServerId, agents: Vec<(u32, Box<dyn Agent>)>) -> Result<()> {
        let (reply, rx) = bounded(1);
        self.cmd(server)?
            .send(Command::Recover { agents, reply })
            .map_err(|_| Error::Closed("server thread"))?;
        rx.recv().map_err(|_| Error::Closed("server thread"))?
    }

    /// Cumulative statistics of one server.
    ///
    /// With metrics enabled (the default) this is a **view over the
    /// metrics registry**: the same counters that power [`Mom::metrics`],
    /// summed for the server's `server="<id>"` label. With metrics
    /// disabled it falls back to asking the server thread for its drained
    /// [`StepStats`] accumulator.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownServer`] / [`Error::Closed`].
    pub fn stats(&self, server: ServerId) -> Result<StepStats> {
        let cmd = self.cmd(server)?;
        if let Some(registry) = &self.registry {
            let snap = registry.snapshot();
            let id = server.as_u16().to_string();
            let labels = [("server", id.as_str())];
            return Ok(StepStats {
                cell_ops: snap.sum_counter_labelled("aaa_channel_cell_ops_total", &labels),
                stamp_bytes: snap.sum_counter_labelled("aaa_channel_stamp_bytes_total", &labels),
                disk_bytes: snap.sum_counter_labelled("aaa_server_disk_bytes_total", &labels),
                delivered: snap.sum_counter_labelled("aaa_channel_delivered_total", &labels),
                transmitted: snap.sum_counter_labelled("aaa_channel_transmitted_total", &labels),
                forwarded: snap.sum_counter_labelled("aaa_channel_forwarded_total", &labels),
                reactions: snap.sum_counter_labelled("aaa_engine_reactions_total", &labels),
            });
        }
        let (reply, rx) = bounded(1);
        cmd.send(Command::Stats { reply })
            .map_err(|_| Error::Closed("server thread"))?;
        rx.recv().map_err(|_| Error::Closed("server thread"))
    }

    /// Snapshot of every metric of the bus, in deterministic order.
    ///
    /// Returns an empty snapshot if metrics were disabled with
    /// [`MomBuilder::metrics`]. The per-domain causal-cost counters
    /// (`aaa_channel_cell_ops_total`, `aaa_channel_stamp_bytes_total`) are
    /// the series plotted in Figures 7/8 of the paper.
    ///
    /// # Examples
    ///
    /// ```
    /// use aaa_base::{AgentId, ServerId};
    /// use aaa_mom::{EchoAgent, MomBuilder, Notification};
    /// use aaa_topology::TopologySpec;
    /// use std::time::Duration;
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let mom = MomBuilder::new(TopologySpec::single_domain(2)).build()?;
    /// let echo = mom.register_agent(ServerId::new(1), 1, Box::new(EchoAgent))?;
    /// mom.send(AgentId::new(ServerId::new(0), 9), echo, Notification::signal("hi"))?;
    /// assert!(mom.quiesce(Duration::from_secs(5)));
    ///
    /// let snap = mom.metrics();
    /// // Every message delivered to an engine shows up exactly once.
    /// assert_eq!(snap.sum_counter("aaa_channel_delivered_total"), 2);
    /// // The snapshot renders as Prometheus text…
    /// assert!(snap.render_prometheus().contains("aaa_channel_delivered_total"));
    /// mom.shutdown();
    /// # Ok(())
    /// # }
    /// ```
    pub fn metrics(&self) -> MetricsSnapshot {
        self.registry
            .as_ref()
            .map(|r| r.snapshot())
            .unwrap_or_default()
    }

    /// The metrics registry, if metrics are enabled (to share with other
    /// components or export through a custom pipeline).
    pub fn registry(&self) -> Option<&Registry> {
        self.registry.as_ref()
    }

    /// Serves the metrics registry over HTTP at `addr` (for example
    /// `"127.0.0.1:9464"`, or port `0` to pick a free port): `GET /metrics`
    /// returns Prometheus text, `GET /metrics.json` JSON. The exporter
    /// stops when the returned handle is dropped.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Config`] if metrics are disabled or the address
    /// cannot be bound.
    pub fn serve_metrics(&self, addr: &str) -> Result<MetricsServer> {
        let registry = self
            .registry
            .clone()
            .ok_or_else(|| Error::Config("metrics are disabled on this bus".into()))?;
        aaa_obs::serve(registry, addr).map_err(|e| Error::Config(format!("metrics exporter: {e}")))
    }

    /// Number of end-to-end messages currently in flight (accepted but not
    /// yet delivered to their destination engine).
    pub fn in_flight(&self) -> i64 {
        self.in_flight.load(Ordering::SeqCst)
    }

    /// Waits until every server reports itself idle twice in a row, or the
    /// timeout expires. Returns `true` on quiescence.
    ///
    /// Crashed servers report idle; combine with [`Mom::recover`] before
    /// quiescing if deliveries must complete.
    pub fn quiesce(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut consecutive = 0;
        while Instant::now() < deadline {
            let all_idle = self.cmd_txs.iter().all(|tx| {
                let (reply, rx) = bounded(1);
                if tx.send(Command::Probe { reply }).is_err() {
                    return true; // shut down counts as idle
                }
                rx.recv().unwrap_or(true)
            });
            if all_idle {
                consecutive += 1;
                if consecutive >= 2 {
                    return true;
                }
            } else {
                consecutive = 0;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        false
    }

    /// Snapshot of the recorded causality trace.
    ///
    /// # Errors
    ///
    /// Propagates trace validation errors (which would indicate a recorder
    /// misuse bug).
    pub fn trace(&self) -> Result<aaa_trace::Trace> {
        self.recorder.snapshot()
    }

    /// The stable store of one server (to inspect persistence traffic).
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownServer`] if the server does not exist.
    pub fn store(&self, server: ServerId) -> Result<Arc<dyn StableStore>> {
        self.stores
            .get(server.as_usize())
            .cloned()
            .ok_or(Error::UnknownServer(server))
    }

    /// Stops every server thread and waits for them to exit.
    pub fn shutdown(self) {
        for tx in &self.cmd_txs {
            // A server that crashed mid-run has already dropped its command
            // receiver; shutdown must still reap the remaining threads.
            // audit:allow(error-swallow)
            let _ = tx.send(Command::Shutdown);
        }
        for handle in self.handles {
            // Join errors mean the thread panicked; the panic is already on
            // stderr and shutdown must keep reaping the other threads.
            // audit:allow(error-swallow)
            let _ = handle.join();
        }
    }
}

/// Replies to a client command, tolerating a hung-up client.
///
/// Every `Command` carries a bounded reply channel; if the client timed out
/// or was dropped, the receiver is gone and `send` fails. That failure is
/// the *client's* outcome, not the server's — the server step already ran to
/// completion — so the error is deliberately discarded here, in exactly one
/// place.
fn respond<T>(reply: &Sender<T>, value: T) {
    // audit:allow(error-swallow)
    let _ = reply.send(value);
}

#[allow(clippy::too_many_arguments)]
fn server_thread(
    topology: Arc<Topology>,
    me: ServerId,
    config: ServerConfig,
    store: Arc<dyn StableStore>,
    recorder: Option<TraceRecorder>,
    in_flight: Arc<AtomicI64>,
    obs: Option<(Meter, LatencyTracker)>,
    endpoint: Box<dyn Transport>,
    commands: crossbeam::channel::Receiver<Command>,
    start: Instant,
) {
    let now = || VTime::from_micros(start.elapsed().as_micros() as u64);
    let attach_obs = |core: &mut ServerCore| {
        if let Some((meter, tracker)) = &obs {
            core.attach_meter(meter);
            core.set_latency_tracker(tracker.clone());
        }
    };
    let fresh = |agents: Vec<(u32, Box<dyn Agent>)>| -> Result<ServerCore> {
        let mut core = ServerCore::new(&topology, me, config, store.clone())?;
        for (local, agent) in agents {
            core.register_agent(local, agent);
        }
        if let Some(rec) = &recorder {
            core.set_recorder(rec.clone());
        }
        core.set_in_flight(in_flight.clone());
        attach_obs(&mut core);
        Ok(core)
    };

    let mut core: Option<ServerCore> = match fresh(Vec::new()) {
        Ok(c) => Some(c),
        Err(e) => {
            // A server that cannot start must not take the whole process
            // down mid-run; the thread exits and peers see a dead link.
            eprintln!("aaa-mom: server {} failed to start: {e}", me.as_usize());
            return;
        }
    };
    let mut cumulative = StepStats::default();

    // Consecutive same-destination packets go through the transport's
    // batch-native path (one syscall/lock per run for TCP). Failures count
    // as packet loss: the link layer retransmits.
    //
    // Self-healing: when the transport's failure detector says a peer is
    // Down, transmissions to it are suppressed except for one probe run
    // per `PROBE_INTERVAL` — the suppressed frames stay unacknowledged in
    // the link layer, which re-offers them on the next tick, so nothing
    // is lost and nothing hot-loops into a dead socket. A successful
    // probe flips the peer back to Up and full traffic resumes.
    let mut last_probe: HashMap<ServerId, Instant> = HashMap::new();
    let mut transmit = move |endpoint: &dyn Transport, ts: Vec<Transmission>| {
        let mut i = 0;
        while i < ts.len() {
            let to = ts[i].to;
            let mut j = i + 1;
            while j < ts.len() && ts[j].to == to {
                j += 1;
            }
            if endpoint.peer_state(to) == PeerState::Down {
                let probe_due = last_probe
                    .get(&to)
                    .is_none_or(|t| t.elapsed() >= PROBE_INTERVAL);
                if !probe_due {
                    i = j; // suppressed: the link layer re-offers later
                    continue;
                }
                last_probe.insert(to, Instant::now());
                // Fall through: this run doubles as the liveness probe.
            }
            if j - i == 1 {
                // Best-effort over a lossy transport: a failed wire write is
                // indistinguishable from packet loss, and the link layer's
                // retransmission machinery recovers either way.
                // audit:allow(error-swallow)
                let _ = endpoint.send(to, ts[i].bytes.clone());
            } else {
                let run: Vec<bytes::Bytes> = ts[i..j].iter().map(|t| t.bytes.clone()).collect();
                // Same as above: batch loss is recovered by retransmission.
                // audit:allow(error-swallow)
                let _ = endpoint.send_batch(to, &run);
            }
            i = j;
        }
    };

    loop {
        crossbeam::channel::select! {
            recv(commands) -> cmd => {
                let Ok(cmd) = cmd else { return };
                match cmd {
                    Command::Register { local, agent, reply } => {
                        if let Some(core) = core.as_mut() {
                            core.register_agent(local, agent);
                        }
                        respond(&reply, ());
                    }
                    Command::Send { from, to, note, opts, reply } => {
                        let result = match core.as_mut() {
                            Some(core) => core
                                .client_send_with(from, to, note, opts, now())
                                .map(|(id, ts)| {
                                    transmit(endpoint.as_ref(), ts);
                                    id
                                }),
                            None => Err(Error::Closed("crashed server")),
                        };
                        if let Some(core) = core.as_mut() {
                            cumulative.absorb(core.take_step_stats());
                        }
                        respond(&reply, result);
                    }
                    Command::SendBatch { from, batch, opts, reply } => {
                        let result = match core.as_mut() {
                            Some(core) => core
                                .client_send_batch(from, batch, opts, now())
                                .map(|(ids, ts)| {
                                    transmit(endpoint.as_ref(), ts);
                                    ids
                                }),
                            None => Err(Error::Closed("crashed server")),
                        };
                        if let Some(core) = core.as_mut() {
                            cumulative.absorb(core.take_step_stats());
                        }
                        respond(&reply, result);
                    }
                    Command::Flush { reply } => {
                        if let Some(core) = core.as_mut() {
                            let ts = core.flush_links();
                            transmit(endpoint.as_ref(), ts);
                        }
                        respond(&reply, ());
                    }
                    Command::Crash => {
                        core = None;
                    }
                    Command::Recover { agents, reply } => {
                        let result = ServerCore::recover(
                            &topology,
                            me,
                            config,
                            store.clone(),
                            agents,
                            now(),
                        )
                        .map(|mut c| {
                            if let Some(rec) = &recorder {
                                c.set_recorder(rec.clone());
                            }
                            c.set_in_flight(in_flight.clone());
                            attach_obs(&mut c);
                            core = Some(c);
                        });
                        respond(&reply, result);
                    }
                    Command::Probe { reply } => {
                        let idle = core.as_ref().map(|c| c.is_idle()).unwrap_or(true);
                        respond(&reply, idle);
                    }
                    Command::Stats { reply } => {
                        if let Some(core) = core.as_mut() {
                            cumulative.absorb(core.take_step_stats());
                        }
                        respond(&reply, cumulative);
                    }
                    Command::Shutdown => return,
                }
            }
            recv(endpoint.inbox_receiver()) -> inc => {
                let Ok(inc) = inc else { return };
                endpoint.record_rx(inc.from, inc.bytes.len());
                // Greedily drain whatever else is already queued and
                // process the whole burst as one transaction: batched
                // stamping, coalesced wire packets, one group commit.
                let mut drained = vec![(inc.from, inc.bytes)];
                while drained.len() < MAX_STEP_DRAIN {
                    let Ok(more) = endpoint.inbox_receiver().try_recv() else {
                        break;
                    };
                    endpoint.record_rx(more.from, more.bytes.len());
                    drained.push((more.from, more.bytes));
                }
                if let Some(core) = core.as_mut() {
                    match core.on_datagram_batch(drained, now()) {
                        Ok(ts) => transmit(endpoint.as_ref(), ts),
                        Err(e) => {
                            debug_assert!(false, "datagram processing failed: {e}");
                        }
                    }
                    cumulative.absorb(core.take_step_stats());
                }
                // Crashed servers silently drop frames: the sender's
                // retransmission redelivers them after recovery.
            }
            default(Duration::from_millis(5)) => {}
        }
        if let Some(core) = core.as_mut() {
            let ts = core.on_tick(now());
            transmit(endpoint.as_ref(), ts);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agent::EchoAgent;
    use std::time::Duration;

    fn sid(i: u16) -> ServerId {
        ServerId::new(i)
    }

    #[test]
    fn builder_rejects_invalid_topologies() {
        let sparse = TopologySpec::from_domains(vec![vec![0, 2]]);
        assert!(MomBuilder::new(sparse).build().is_err());
        let cyclic = TopologySpec::from_domains(vec![vec![0, 1], vec![1, 2], vec![2, 0]]);
        assert!(matches!(
            MomBuilder::new(cyclic).build(),
            Err(Error::CyclicDomainGraph { .. })
        ));
    }

    #[test]
    fn builder_rejects_wrong_store_count() {
        let stores: Vec<Arc<dyn StableStore>> = vec![Arc::new(MemoryStore::new())];
        let err = MomBuilder::new(TopologySpec::single_domain(3))
            .stores(stores)
            .build()
            .unwrap_err();
        assert!(matches!(err, Error::Config(_)));
    }

    #[test]
    fn unknown_server_operations_error() {
        let mom = MomBuilder::new(TopologySpec::single_domain(2))
            .build()
            .unwrap();
        assert!(matches!(
            mom.register_agent(sid(9), 1, Box::new(EchoAgent)),
            Err(Error::UnknownServer(_))
        ));
        assert!(matches!(mom.crash(sid(9)), Err(Error::UnknownServer(_))));
        assert!(matches!(mom.stats(sid(9)), Err(Error::UnknownServer(_))));
        assert!(matches!(mom.store(sid(9)), Err(Error::UnknownServer(_))));
        mom.shutdown();
    }

    #[test]
    fn stats_and_in_flight_settle_to_zero() {
        let mom = MomBuilder::new(TopologySpec::single_domain(2))
            .build()
            .unwrap();
        mom.register_agent(sid(1), 1, Box::new(EchoAgent)).unwrap();
        mom.send(
            AgentId::new(sid(0), 9),
            AgentId::new(sid(1), 1),
            Notification::signal("x"),
        )
        .unwrap();
        assert!(mom.quiesce(Duration::from_secs(5)));
        assert_eq!(mom.in_flight(), 0);
        let s0 = mom.stats(sid(0)).unwrap();
        let s1 = mom.stats(sid(1)).unwrap();
        assert_eq!(s0.transmitted, 1);
        assert_eq!(s1.transmitted, 1); // the echo
        assert_eq!(s1.reactions, 1);
        assert!(format!("{mom:?}").contains("Mom"));
        mom.shutdown();
    }

    #[test]
    fn quiesce_on_idle_bus_is_immediate() {
        let mom = MomBuilder::new(TopologySpec::single_domain(2))
            .build()
            .unwrap();
        assert!(mom.quiesce(Duration::from_secs(1)));
        assert_eq!(mom.topology().server_count(), 2);
        mom.shutdown();
    }

    #[test]
    fn trace_can_be_disabled() {
        let mom = MomBuilder::new(TopologySpec::single_domain(2))
            .record_trace(false)
            .build()
            .unwrap();
        mom.register_agent(sid(1), 1, Box::new(EchoAgent)).unwrap();
        mom.send(
            AgentId::new(sid(0), 9),
            AgentId::new(sid(1), 1),
            Notification::signal("x"),
        )
        .unwrap();
        assert!(mom.quiesce(Duration::from_secs(5)));
        assert_eq!(mom.trace().unwrap().message_count(), 0);
        mom.shutdown();
    }

    #[test]
    fn send_batch_is_one_transaction_with_flush() {
        let mom = MomBuilder::new(TopologySpec::single_domain(2))
            .build()
            .unwrap();
        mom.register_agent(sid(1), 1, Box::new(EchoAgent)).unwrap();
        let batch: Vec<_> = (0..10)
            .map(|i| {
                (
                    AgentId::new(sid(1), 1),
                    Notification::new("b", vec![i as u8]),
                )
            })
            .collect();
        let ids = mom
            .send_batch(AgentId::new(sid(0), 9), batch, SendOptions::new())
            .unwrap();
        assert_eq!(ids.len(), 10);
        mom.flush().unwrap(); // no-op under the default policy
        assert!(mom.quiesce(Duration::from_secs(5)));
        assert_eq!(mom.in_flight(), 0);
        assert_eq!(mom.stats(sid(1)).unwrap().reactions, 10);
        assert!(mom.trace().unwrap().check_causality().is_ok());
        // The batch metrics observed coalesced flushes.
        let snap = mom.metrics();
        assert!(snap.sum_counter("aaa_link_flushes_total") > 0);
        mom.shutdown();
    }

    #[test]
    fn batching_can_be_disabled_per_bus() {
        let mom = MomBuilder::new(TopologySpec::single_domain(2))
            .batching(BatchPolicy::disabled())
            .build()
            .unwrap();
        mom.register_agent(sid(1), 1, Box::new(EchoAgent)).unwrap();
        let batch: Vec<_> = (0..4)
            .map(|_| (AgentId::new(sid(1), 1), Notification::signal("x")))
            .collect();
        mom.send_batch(AgentId::new(sid(0), 9), batch, SendOptions::new())
            .unwrap();
        assert!(mom.quiesce(Duration::from_secs(5)));
        assert_eq!(mom.stats(sid(1)).unwrap().reactions, 4);
        mom.shutdown();
    }

    #[test]
    fn urgent_sends_flush_held_batches() {
        // With a large max_delay, frames would sit in the batcher; an
        // urgent send forces them onto the wire in the same step.
        let mom = MomBuilder::new(TopologySpec::single_domain(2))
            .batching(BatchPolicy {
                max_frames: 32,
                max_bytes: 256 * 1024,
                max_delay: VDuration::from_millis(50),
            })
            .build()
            .unwrap();
        mom.register_agent(sid(1), 1, Box::new(EchoAgent)).unwrap();
        mom.send_with(
            AgentId::new(sid(0), 9),
            AgentId::new(sid(1), 1),
            Notification::signal("now"),
            SendOptions::urgent(),
        )
        .unwrap();
        assert!(mom.quiesce(Duration::from_secs(5)));
        assert_eq!(mom.stats(sid(1)).unwrap().reactions, 1);
        mom.shutdown();
    }

    #[test]
    fn delayed_batches_flush_on_mom_flush_or_deadline() {
        let mom = MomBuilder::new(TopologySpec::single_domain(2))
            .batching(BatchPolicy {
                max_frames: 32,
                max_bytes: 256 * 1024,
                max_delay: VDuration::from_millis(30),
            })
            .build()
            .unwrap();
        mom.register_agent(sid(1), 1, Box::new(EchoAgent)).unwrap();
        for _ in 0..3 {
            mom.send(
                AgentId::new(sid(0), 9),
                AgentId::new(sid(1), 1),
                Notification::signal("held"),
            )
            .unwrap();
        }
        mom.flush().unwrap();
        assert!(mom.quiesce(Duration::from_secs(5)));
        assert_eq!(mom.stats(sid(1)).unwrap().reactions, 3);
        assert!(mom.trace().unwrap().check_causality().is_ok());
        mom.shutdown();
    }

    #[test]
    fn recover_running_server_is_allowed_and_harmless() {
        // Recovering a server that never crashed resets its volatile state
        // from the (empty) store; without persistence this is a fresh core.
        let mom = MomBuilder::new(TopologySpec::single_domain(2))
            .build()
            .unwrap();
        mom.recover(sid(1), vec![(1, Box::new(EchoAgent) as Box<dyn Agent>)])
            .unwrap();
        mom.send(
            AgentId::new(sid(0), 9),
            AgentId::new(sid(1), 1),
            Notification::signal("x"),
        )
        .unwrap();
        assert!(mom.quiesce(Duration::from_secs(5)));
        assert_eq!(mom.stats(sid(1)).unwrap().reactions, 1);
        mom.shutdown();
    }
}
