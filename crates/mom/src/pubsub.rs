//! Topic-based publish/subscribe on top of the agent model.
//!
//! The real AAA MOM shipped with a JMS implementation (Joram) layered on
//! its agents; this module provides the equivalent surface for the
//! reproduction: a [`TopicAgent`] holds a durable subscriber list and fans
//! every published notification out to it.
//!
//! Because fan-out happens inside one atomic reaction, the bus's causal
//! guarantee lifts directly to topics: if a publisher emits `e1` then
//! `e2`, every subscriber — wherever it lives in the domain graph —
//! receives `e1` before `e2`; and if a subscriber republishes a reaction
//! to `e1` on another topic, no third party can see the reaction before
//! learning of `e1` itself (the stock-exchange pattern from the paper's
//! introduction).

use aaa_base::AgentId;
use aaa_net::wire::{Decoder, Encoder};
use bytes::Bytes;

use crate::agent::{Agent, ReactionContext};
use crate::message::Notification;

/// Control notification kind: subscribe the sender to the topic.
pub const SUBSCRIBE: &str = "__topic_subscribe";
/// Control notification kind: unsubscribe the sender from the topic.
pub const UNSUBSCRIBE: &str = "__topic_unsubscribe";
/// Control notification kind: publish the enclosed event to the topic.
pub const PUBLISH: &str = "__topic_publish";

/// Wraps an application event for the [`PUBLISH`] control message.
///
/// The returned notification can be sent to any [`TopicAgent`]; the topic
/// unwraps it and delivers the original `(kind, body)` to every
/// subscriber.
pub fn publication(kind: &str, body: impl Into<Bytes>) -> Notification {
    let mut e = Encoder::new();
    e.string(kind);
    e.bytes(&body.into());
    Notification::new(PUBLISH, e.finish())
}

/// A subscription request notification.
pub fn subscription() -> Notification {
    Notification::signal(SUBSCRIBE)
}

/// An unsubscription request notification.
pub fn unsubscription() -> Notification {
    Notification::signal(UNSUBSCRIBE)
}

/// A persistent topic: remembers its subscribers and fans publications out
/// to them in arrival order.
///
/// # Examples
///
/// ```
/// use aaa_base::ServerId;
/// use aaa_mom::pubsub::{publication, subscription, TopicAgent};
/// use aaa_mom::{MomBuilder, FnAgent};
/// use aaa_topology::TopologySpec;
/// use std::time::Duration;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mom = MomBuilder::new(TopologySpec::single_domain(2)).build()?;
/// let topic = mom.register_agent(ServerId::new(0), 1, Box::new(TopicAgent::new()))?;
/// let sub = mom.register_agent(ServerId::new(1), 1, Box::new(FnAgent::new(|_, _, note| {
///     assert_eq!(note.kind(), "price");
/// })))?;
/// mom.send(sub, topic, subscription())?;
/// mom.send(topic, topic, publication("price", b"42".to_vec()))?; // self-publish for demo
/// assert!(mom.quiesce(Duration::from_secs(5)));
/// mom.shutdown();
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Default, Clone)]
pub struct TopicAgent {
    subscribers: Vec<AgentId>,
    published: u64,
    /// The store-and-forward relay pseudo-agent backing this topic, if
    /// any. With a relay, publications are journaled per subscriber and
    /// redelivered across disconnects instead of fanned out fire-and-
    /// forget (the live-subscriber assumption this field removes).
    relay: Option<AgentId>,
}

impl TopicAgent {
    /// Creates a topic with no subscribers and direct (non-durable)
    /// fan-out.
    ///
    /// Direct fan-out assumes every subscriber is live: a publication to
    /// a disconnected subscriber is lost. Use [`TopicAgent::with_relay`]
    /// for durable store-and-forward delivery.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a topic whose fan-out is journaled by the store-and-forward
    /// relay at `relay` (see [`crate::relay::relay_agent`]): publications
    /// are persisted per subscriber and redelivered until acknowledged,
    /// surviving subscriber disconnects and relay crashes (DESIGN.md §17).
    pub fn with_relay(relay: AgentId) -> Self {
        TopicAgent {
            relay: Some(relay),
            ..Self::default()
        }
    }

    /// Current subscribers, in subscription order.
    pub fn subscribers(&self) -> &[AgentId] {
        &self.subscribers
    }

    /// Number of publications fanned out so far.
    pub fn published(&self) -> u64 {
        self.published
    }

    /// The relay backing this topic, if durable fan-out is enabled.
    pub fn relay(&self) -> Option<AgentId> {
        self.relay
    }
}

impl Agent for TopicAgent {
    fn react(&mut self, ctx: &mut ReactionContext<'_>, from: AgentId, note: &Notification) {
        match note.kind() {
            SUBSCRIBE if !self.subscribers.contains(&from) => {
                self.subscribers.push(from);
                if let Some(relay) = self.relay {
                    let mut e = Encoder::new();
                    e.agent_id(ctx.me());
                    e.agent_id(from);
                    ctx.send(
                        relay,
                        Notification::new(crate::relay::RELAY_SUBSCRIBE, e.finish()),
                    );
                }
            }
            SUBSCRIBE => {} // duplicate subscription: idempotent
            UNSUBSCRIBE => {
                self.subscribers.retain(|s| *s != from);
                if let Some(relay) = self.relay {
                    let mut e = Encoder::new();
                    e.agent_id(ctx.me());
                    e.agent_id(from);
                    ctx.send(
                        relay,
                        Notification::new(crate::relay::RELAY_UNSUBSCRIBE, e.finish()),
                    );
                }
            }
            PUBLISH => {
                let mut d = Decoder::new(note.body().clone());
                let Ok(kind) = d.string() else { return };
                let Ok(body) = d.bytes() else { return };
                self.published += 1;
                if let Some(relay) = self.relay {
                    // Durable path: one journaled hand-over to the relay,
                    // which fans out per subscriber queue and redelivers
                    // until each subscriber acknowledges.
                    let mut e = Encoder::new();
                    e.agent_id(ctx.me());
                    e.string(&kind);
                    e.bytes(&body);
                    ctx.send(
                        relay,
                        Notification::new(crate::relay::RELAY_PUBLISH, e.finish()),
                    );
                } else {
                    for sub in &self.subscribers {
                        ctx.send(*sub, Notification::new(kind.clone(), body.clone()));
                    }
                }
            }
            _ => {
                // Unknown control message: ignored (a topic is not a
                // general-purpose agent).
            }
        }
    }

    fn snapshot(&self) -> Vec<u8> {
        let mut e = Encoder::new();
        e.u64(self.published);
        e.count(self.subscribers.len());
        for s in &self.subscribers {
            e.agent_id(*s);
        }
        match self.relay {
            Some(relay) => {
                e.u8(1);
                e.agent_id(relay);
            }
            None => {
                e.u8(0);
            }
        }
        e.finish().to_vec()
    }

    fn restore(&mut self, image: &[u8]) {
        let mut d = Decoder::new(Bytes::from(image.to_vec()));
        let Ok(published) = d.u64() else { return };
        let Ok(count) = d.u32() else { return };
        let mut subscribers = Vec::with_capacity(count as usize);
        for _ in 0..count {
            let Ok(id) = d.agent_id() else { return };
            subscribers.push(id);
        }
        // Pre-relay snapshots end after the subscriber list.
        let relay = if d.remaining() > 0 {
            match d.u8() {
                Ok(1) => match d.agent_id() {
                    Ok(id) => Some(id),
                    Err(_) => return,
                },
                Ok(_) => None,
                Err(_) => return,
            }
        } else {
            None
        };
        self.published = published;
        self.subscribers = subscribers;
        self.relay = relay;
    }
}

/// A point-to-point queue: messages are distributed round-robin among the
/// registered consumers (JMS queue semantics, competing consumers),
/// instead of being copied to all of them like a topic.
///
/// Consumers register with [`subscription`] and leave with
/// [`unsubscription`]; producers send [`publication`]s. Delivery to a
/// single consumer preserves causal order (it rides the same bus); across
/// consumers a queue makes no ordering promise, exactly like JMS.
#[derive(Debug, Default, Clone)]
pub struct QueueAgent {
    consumers: Vec<AgentId>,
    next: usize,
    dispatched: u64,
}

impl QueueAgent {
    /// Creates a queue with no consumers.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current consumers, in registration order.
    pub fn consumers(&self) -> &[AgentId] {
        &self.consumers
    }

    /// Messages dispatched so far.
    pub fn dispatched(&self) -> u64 {
        self.dispatched
    }
}

impl Agent for QueueAgent {
    fn react(&mut self, ctx: &mut ReactionContext<'_>, from: AgentId, note: &Notification) {
        match note.kind() {
            SUBSCRIBE if !self.consumers.contains(&from) => {
                self.consumers.push(from);
            }
            SUBSCRIBE => {} // duplicate subscription: idempotent
            UNSUBSCRIBE => {
                self.consumers.retain(|c| *c != from);
                if self.next >= self.consumers.len() {
                    self.next = 0;
                }
            }
            PUBLISH => {
                if self.consumers.is_empty() {
                    return; // no consumer: the message is dropped (JMS
                            // would buffer; our queue is best-effort)
                }
                let mut d = Decoder::new(note.body().clone());
                let Ok(kind) = d.string() else { return };
                let Ok(body) = d.bytes() else { return };
                let target = self.consumers[self.next % self.consumers.len()];
                self.next = (self.next + 1) % self.consumers.len();
                self.dispatched += 1;
                ctx.send(target, Notification::new(kind, body));
            }
            _ => {}
        }
    }

    fn snapshot(&self) -> Vec<u8> {
        let mut e = Encoder::new();
        e.u64(self.dispatched);
        // `next` is an index into `consumers`, so it fits whenever the
        // consumer count does; `count` keeps the narrowing checked.
        e.count(self.next);
        e.count(self.consumers.len());
        for c in &self.consumers {
            e.agent_id(*c);
        }
        e.finish().to_vec()
    }

    fn restore(&mut self, image: &[u8]) {
        let mut d = Decoder::new(Bytes::from(image.to_vec()));
        let Ok(dispatched) = d.u64() else { return };
        let Ok(next) = d.u32() else { return };
        let Ok(count) = d.u32() else { return };
        let mut consumers = Vec::with_capacity(count as usize);
        for _ in 0..count {
            let Ok(id) = d.agent_id() else { return };
            consumers.push(id);
        }
        self.dispatched = dispatched;
        self.next = next as usize;
        self.consumers = consumers;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aaa_base::ServerId;

    fn aid(s: u16, l: u32) -> AgentId {
        AgentId::new(ServerId::new(s), l)
    }

    fn react(
        topic: &mut TopicAgent,
        from: AgentId,
        note: Notification,
    ) -> Vec<(AgentId, Notification)> {
        let mut out = Vec::new();
        let mut ctx = ReactionContext::new(aid(0, 1), &mut out);
        topic.react(&mut ctx, from, &note);
        out.into_iter().map(|(to, note, _)| (to, note)).collect()
    }

    #[test]
    fn subscribe_publish_unsubscribe() {
        let mut topic = TopicAgent::new();
        assert!(react(&mut topic, aid(1, 1), subscription()).is_empty());
        assert!(react(&mut topic, aid(2, 1), subscription()).is_empty());
        assert_eq!(topic.subscribers().len(), 2);

        let out = react(
            &mut topic,
            aid(9, 9),
            publication("news", b"hello".to_vec()),
        );
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].0, aid(1, 1));
        assert_eq!(out[0].1.kind(), "news");
        assert_eq!(out[0].1.body_str(), Some("hello"));
        assert_eq!(topic.published(), 1);

        react(&mut topic, aid(1, 1), unsubscription());
        let out = react(
            &mut topic,
            aid(9, 9),
            publication("news", b"again".to_vec()),
        );
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].0, aid(2, 1));
    }

    #[test]
    fn duplicate_subscription_is_idempotent() {
        let mut topic = TopicAgent::new();
        react(&mut topic, aid(1, 1), subscription());
        react(&mut topic, aid(1, 1), subscription());
        assert_eq!(topic.subscribers().len(), 1);
    }

    #[test]
    fn unknown_kinds_ignored() {
        let mut topic = TopicAgent::new();
        react(&mut topic, aid(1, 1), subscription());
        let out = react(&mut topic, aid(1, 1), Notification::signal("whatever"));
        assert!(out.is_empty());
        assert_eq!(topic.subscribers().len(), 1);
    }

    #[test]
    fn corrupt_publication_is_dropped() {
        let mut topic = TopicAgent::new();
        react(&mut topic, aid(1, 1), subscription());
        let out = react(
            &mut topic,
            aid(9, 9),
            Notification::new(PUBLISH, vec![1, 2, 3]),
        );
        assert!(out.is_empty());
        assert_eq!(topic.published(), 0);
    }

    fn react_queue(
        q: &mut QueueAgent,
        from: AgentId,
        note: Notification,
    ) -> Vec<(AgentId, Notification)> {
        let mut out = Vec::new();
        let mut ctx = ReactionContext::new(aid(0, 1), &mut out);
        q.react(&mut ctx, from, &note);
        out.into_iter().map(|(to, note, _)| (to, note)).collect()
    }

    #[test]
    fn queue_round_robins_consumers() {
        let mut q = QueueAgent::new();
        react_queue(&mut q, aid(1, 1), subscription());
        react_queue(&mut q, aid(2, 1), subscription());
        assert_eq!(q.consumers().len(), 2);
        let mut targets = Vec::new();
        for i in 0..4 {
            let out = react_queue(&mut q, aid(9, 9), publication("job", vec![i]));
            assert_eq!(out.len(), 1, "a queue delivers to exactly one consumer");
            targets.push(out[0].0);
        }
        assert_eq!(targets, vec![aid(1, 1), aid(2, 1), aid(1, 1), aid(2, 1)]);
        assert_eq!(q.dispatched(), 4);
    }

    #[test]
    fn queue_without_consumers_drops() {
        let mut q = QueueAgent::new();
        let out = react_queue(&mut q, aid(9, 9), publication("job", b"x".to_vec()));
        assert!(out.is_empty());
        assert_eq!(q.dispatched(), 0);
    }

    #[test]
    fn queue_unsubscription_rebalances() {
        let mut q = QueueAgent::new();
        react_queue(&mut q, aid(1, 1), subscription());
        react_queue(&mut q, aid(2, 1), subscription());
        react_queue(&mut q, aid(9, 9), publication("j", vec![0])); // -> 1
        react_queue(&mut q, aid(1, 1), unsubscription());
        let out = react_queue(&mut q, aid(9, 9), publication("j", vec![1]));
        assert_eq!(out[0].0, aid(2, 1));
        let out = react_queue(&mut q, aid(9, 9), publication("j", vec![2]));
        assert_eq!(out[0].0, aid(2, 1));
    }

    #[test]
    fn queue_snapshot_restore() {
        let mut q = QueueAgent::new();
        react_queue(&mut q, aid(1, 1), subscription());
        react_queue(&mut q, aid(2, 1), subscription());
        react_queue(&mut q, aid(9, 9), publication("j", vec![0]));
        let image = q.snapshot();
        let mut restored = QueueAgent::new();
        restored.restore(&image);
        assert_eq!(restored.consumers(), q.consumers());
        assert_eq!(restored.dispatched(), 1);
        // Round-robin position survives: next dispatch goes to consumer 2.
        let out = react_queue(&mut restored, aid(9, 9), publication("j", vec![1]));
        assert_eq!(out[0].0, aid(2, 1));
    }

    #[test]
    fn snapshot_restore_roundtrip() {
        let mut topic = TopicAgent::new();
        react(&mut topic, aid(1, 1), subscription());
        react(&mut topic, aid(2, 7), subscription());
        react(&mut topic, aid(9, 9), publication("k", b"x".to_vec()));
        let image = topic.snapshot();

        let mut restored = TopicAgent::new();
        restored.restore(&image);
        assert_eq!(restored.subscribers(), topic.subscribers());
        assert_eq!(restored.published(), 1);

        // Corrupt image leaves the agent unchanged.
        let mut untouched = TopicAgent::new();
        untouched.restore(&[1, 2]);
        assert!(untouched.subscribers().is_empty());
    }

    #[test]
    fn relayed_topic_routes_through_the_relay() {
        let relay = crate::relay::relay_agent(ServerId::new(0));
        let mut topic = TopicAgent::with_relay(relay);

        // Subscription is recorded locally *and* forwarded to the relay.
        let out = react(&mut topic, aid(1, 1), subscription());
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].0, relay);
        assert_eq!(out[0].1.kind(), crate::relay::RELAY_SUBSCRIBE);
        assert_eq!(topic.subscribers().len(), 1);

        // A publication becomes one relay hand-over, not a direct fan-out.
        let out = react(&mut topic, aid(9, 9), publication("news", b"x".to_vec()));
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].0, relay);
        assert_eq!(out[0].1.kind(), crate::relay::RELAY_PUBLISH);
        let mut d = Decoder::new(out[0].1.body().clone());
        assert_eq!(d.agent_id().unwrap(), aid(0, 1)); // ctx.me() = topic id
        assert_eq!(d.string().unwrap(), "news");
        assert_eq!(d.bytes().unwrap().as_ref(), b"x");

        // Unsubscription forwards too.
        let out = react(&mut topic, aid(1, 1), unsubscription());
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].1.kind(), crate::relay::RELAY_UNSUBSCRIBE);
        assert!(topic.subscribers().is_empty());
    }

    #[test]
    fn relay_field_survives_snapshot_and_old_images_restore() {
        let relay = crate::relay::relay_agent(ServerId::new(3));
        let mut topic = TopicAgent::with_relay(relay);
        react(&mut topic, aid(1, 1), subscription());
        let image = topic.snapshot();

        let mut restored = TopicAgent::new();
        restored.restore(&image);
        assert_eq!(restored.relay(), Some(relay));
        assert_eq!(restored.subscribers(), topic.subscribers());

        // A pre-relay image (no trailing tag) restores with no relay.
        let mut legacy = Encoder::new();
        legacy.u64(2);
        legacy.count(1);
        legacy.agent_id(aid(1, 1));
        let mut old = TopicAgent::new();
        old.restore(&legacy.finish());
        assert_eq!(old.relay(), None);
        assert_eq!(old.published(), 2);
        assert_eq!(old.subscribers(), &[aid(1, 1)]);
    }
}
