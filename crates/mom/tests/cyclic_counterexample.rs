//! The Figure 4 counterexample, executed on the real implementation.
//!
//! The theorem's part 1 (¬P2 ⇒ ¬P1) says: with a cycle in the domain
//! graph, a trace exists that respects causality in every domain yet
//! violates it globally. We drive the sans-IO server cores with a scripted
//! (adversarial) delivery schedule and reproduce exactly that trace — then
//! run the same schedule on an acyclic decomposition and observe that the
//! causal machinery forces the correct order.

use std::sync::Arc;

use aaa_base::{AgentId, ServerId, VTime};
use aaa_mom::{Notification, ServerConfig, ServerCore, Transmission};
use aaa_storage::MemoryStore;
use aaa_topology::TopologySpec;
use aaa_trace::TraceRecorder;

fn aid(s: u16, l: u32) -> AgentId {
    AgentId::new(ServerId::new(s), l)
}

fn sid(i: u16) -> ServerId {
    ServerId::new(i)
}

fn core(topo: &aaa_topology::Topology, me: u16, rec: &TraceRecorder) -> ServerCore {
    let mut c = ServerCore::new(
        topo,
        sid(me),
        ServerConfig::default(),
        Arc::new(MemoryStore::new()),
    )
    .unwrap();
    c.set_recorder(rec.clone());
    c
}

/// Applies `t` at its destination, returning follow-up transmissions.
fn apply(
    cores: &mut [ServerCore],
    from: ServerId,
    t: Transmission,
) -> Vec<(ServerId, Transmission)> {
    let me = t.to;
    cores[me.as_usize()]
        .on_datagram(from, t.bytes, VTime::ZERO)
        .unwrap()
        .into_iter()
        .map(|t| (me, t))
        .collect()
}

/// Applies transmissions breadth-first until quiet, except those matching
/// `withhold`, which are returned instead.
fn settle_except(
    cores: &mut [ServerCore],
    start: Vec<(ServerId, Transmission)>,
    withhold: impl Fn(&Transmission) -> bool,
) -> Vec<(ServerId, Transmission)> {
    let mut held = Vec::new();
    let mut queue = start;
    let mut guard = 0;
    while let Some((from, t)) = queue.pop() {
        guard += 1;
        assert!(guard < 10_000);
        if withhold(&t) {
            held.push((from, t));
        } else {
            queue.extend(apply(cores, from, t));
        }
    }
    held
}

/// On the *cyclic* decomposition {p,r}, {r,q}, {q,p}, server p = 0,
/// r = 1, q = 2: p sends the direct message `n` to q (domain {q,p}) and a
/// chain message to r (domain {p,r}); r forwards to q (domain {r,q}).
/// Withholding `n` lets the chain overtake it — the MOM cannot know,
/// because the three messages are stamped by three independent clocks.
#[test]
fn cycle_allows_global_violation_while_domains_stay_causal() {
    let topo = TopologySpec::from_domains(vec![vec![0, 1], vec![1, 2], vec![2, 0]])
        .validate_allow_cycles()
        .unwrap();
    let rec = TraceRecorder::new();
    let mut cores: Vec<ServerCore> = (0..3).map(|i| core(&topo, i, &rec)).collect();

    // r's agent relays everything it receives to q's agent.
    cores[1].register_agent(
        1,
        Box::new(aaa_mom::FnAgent::new(move |ctx, _from, note| {
            ctx.send(aid(2, 1), note.clone());
        })),
    );
    // q's agent just receives.
    cores[2].register_agent(1, Box::new(aaa_mom::FnAgent::new(|_, _, _| {})));

    // p sends n to q first...
    let (_, tx_n) = cores[0]
        .client_send(aid(0, 9), aid(2, 1), Notification::signal("n"), VTime::ZERO)
        .unwrap();
    // ...then the chain head m1 to r.
    let (_, tx_m1) = cores[0]
        .client_send(
            aid(0, 9),
            aid(1, 1),
            Notification::signal("m1"),
            VTime::ZERO,
        )
        .unwrap();

    // Deliver the chain fully while withholding every datagram to q that
    // comes directly from p (the direct message n and its acks are
    // unaffected by the withhold predicate's from-side, so hold tx_n
    // explicitly).
    let start: Vec<(ServerId, Transmission)> = tx_m1.into_iter().map(|t| (sid(0), t)).collect();
    let held = settle_except(&mut cores, start, |_| false);
    assert!(held.is_empty());

    // Now release n: q receives it last.
    let follow: Vec<(ServerId, Transmission)> = tx_n.into_iter().map(|t| (sid(0), t)).collect();
    let held = settle_except(&mut cores, follow, |_| false);
    assert!(held.is_empty());

    let trace = rec.snapshot().unwrap();
    // Global causality is broken: n ≺ m1 ≺ m2 but q delivered m2 first.
    let violation = trace.check_causality().unwrap_err();
    assert_eq!(violation.at, sid(2));
    // Yet every domain restriction is causal — exactly Figure 4.
    for domain in topo.domains() {
        assert!(
            trace.check_causality_in(domain.members()).is_ok(),
            "domain {:?} should be locally causal",
            domain.id()
        );
    }
}

/// The same scenario on an *acyclic* decomposition: p and q share no
/// domain, so the "direct" message routes through r and cannot overtake
/// the chain — global causality holds under the same adversarial schedule.
#[test]
fn acyclic_decomposition_forces_causal_order_under_same_schedule() {
    let topo = TopologySpec::from_domains(vec![vec![0, 1], vec![1, 2]])
        .validate()
        .unwrap();
    let rec = TraceRecorder::new();
    let mut cores: Vec<ServerCore> = (0..3).map(|i| core(&topo, i, &rec)).collect();

    cores[1].register_agent(
        1,
        Box::new(aaa_mom::FnAgent::new(move |ctx, _from, note| {
            if note.kind() == "m1" {
                ctx.send(aid(2, 1), Notification::signal("m2"));
            }
        })),
    );
    cores[2].register_agent(1, Box::new(aaa_mom::FnAgent::new(|_, _, _| {})));

    let (_, tx_n) = cores[0]
        .client_send(aid(0, 9), aid(2, 1), Notification::signal("n"), VTime::ZERO)
        .unwrap();
    let (_, tx_m1) = cores[0]
        .client_send(
            aid(0, 9),
            aid(1, 1),
            Notification::signal("m1"),
            VTime::ZERO,
        )
        .unwrap();

    // Adversarial order: push the chain first, then n's datagrams.
    let mut start: Vec<(ServerId, Transmission)> = tx_m1.into_iter().map(|t| (sid(0), t)).collect();
    start.extend(tx_n.into_iter().map(|t| (sid(0), t)));
    let held = settle_except(&mut cores, start, |_| false);
    assert!(held.is_empty());

    let trace = rec.snapshot().unwrap();
    assert!(
        trace.check_causality().is_ok(),
        "acyclic decomposition must preserve global causality"
    );
    // q received n before m2 (n ≺ m2 via the chain through r... n and the
    // chain share the p -> r link, so FIFO + causal order pin them).
    let deliveries = trace.deliveries_at(sid(2));
    assert_eq!(deliveries.len(), 2);
}
