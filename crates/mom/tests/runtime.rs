//! End-to-end tests of the threaded runtime.

use std::sync::Arc;
use std::time::Duration;

use aaa_base::{AgentId, ServerId};
use aaa_mom::{
    ClockConfig, EchoAgent, FnAgent, MomBuilder, NetConfig, Notification, RuntimeConfig, StampMode,
};
use aaa_topology::TopologySpec;
use parking_lot::Mutex;

fn aid(s: u16, l: u32) -> AgentId {
    AgentId::new(ServerId::new(s), l)
}

fn sid(i: u16) -> ServerId {
    ServerId::new(i)
}

#[test]
fn single_domain_random_traffic_is_causal() {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    let n = 5u16;
    let mom = MomBuilder::new(TopologySpec::single_domain(n))
        .clock(ClockConfig::mode(StampMode::Updates))
        .build()
        .unwrap();
    for s in 0..n {
        mom.register_agent(sid(s), 1, Box::new(EchoAgent)).unwrap();
    }
    let mut rng = StdRng::seed_from_u64(7);
    for _ in 0..100 {
        let from = rng.gen_range(0..n);
        let mut to = rng.gen_range(0..n);
        if to == from {
            to = (to + 1) % n;
        }
        mom.send(aid(from, 99), aid(to, 1), Notification::signal("m"))
            .unwrap();
    }
    assert!(mom.quiesce(Duration::from_secs(20)), "did not quiesce");
    let trace = mom.trace().unwrap();
    // 100 sends + 100 echoes.
    assert_eq!(trace.message_count(), 200);
    assert!(trace.check_causality().is_ok());
    mom.shutdown();
}

#[test]
fn figure2_topology_cross_domain_traffic_is_globally_causal() {
    // The paper's 8-server example (0-based), full random mesh traffic.
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    let spec = TopologySpec::from_domains(vec![
        vec![0, 1, 2],
        vec![3, 4],
        vec![6, 7],
        vec![2, 4, 5, 6],
    ]);
    let mom = MomBuilder::new(spec).build().unwrap();
    for s in 0..8 {
        mom.register_agent(sid(s), 1, Box::new(EchoAgent)).unwrap();
    }
    let mut rng = StdRng::seed_from_u64(42);
    for _ in 0..120 {
        let from = rng.gen_range(0..8u16);
        let mut to = rng.gen_range(0..8u16);
        if to == from {
            to = (to + 1) % 8;
        }
        mom.send(aid(from, 50), aid(to, 1), Notification::signal("x"))
            .unwrap();
    }
    assert!(mom.quiesce(Duration::from_secs(30)), "did not quiesce");
    let trace = mom.trace().unwrap();
    assert_eq!(trace.message_count(), 240);
    assert!(
        trace.check_causality().is_ok(),
        "theorem violated on acyclic topology"
    );
    // Each domain restriction is causal too.
    for domain in mom.topology().domains() {
        assert!(trace.check_causality_in(domain.members()).is_ok());
    }
    // Routers actually forwarded traffic.
    let forwarded: u64 = (0..8).map(|i| mom.stats(sid(i)).unwrap().forwarded).sum();
    assert!(forwarded > 0, "cross-domain traffic must be routed");
    mom.shutdown();
}

#[test]
fn bus_topology_end_to_end() {
    let mom = MomBuilder::new(TopologySpec::bus(3, 3)).build().unwrap();
    let received: Arc<Mutex<Vec<String>>> = Default::default();
    let sink = received.clone();
    mom.register_agent(
        sid(8),
        1,
        Box::new(FnAgent::new(move |_ctx, _from, note| {
            sink.lock().push(note.body_str().unwrap_or("").to_owned());
        })),
    )
    .unwrap();
    // Client on server 1 (leaf domain 1) sends three ordered messages to
    // server 8 (leaf domain 3) — they cross two routers.
    for i in 0..3 {
        mom.send(
            aid(1, 9),
            aid(8, 1),
            Notification::new("seq", format!("{i}")),
        )
        .unwrap();
    }
    assert!(mom.quiesce(Duration::from_secs(10)));
    assert_eq!(*received.lock(), vec!["0", "1", "2"]);
    // The two routers on the path (0 and 6) forwarded every message.
    let f0 = mom.stats(sid(0)).unwrap().forwarded;
    let f6 = mom.stats(sid(6)).unwrap().forwarded;
    assert_eq!(f0, 3);
    assert_eq!(f6, 3);
    mom.shutdown();
}

#[test]
fn crash_and_recover_under_traffic() {
    struct Counter(Arc<Mutex<u32>>, u32);
    impl aaa_mom::Agent for Counter {
        fn react(&mut self, _: &mut aaa_mom::ReactionContext<'_>, _: AgentId, _: &Notification) {
            self.1 += 1;
            *self.0.lock() = self.1;
        }
        fn snapshot(&self) -> Vec<u8> {
            self.1.to_le_bytes().to_vec()
        }
        fn restore(&mut self, image: &[u8]) {
            self.1 = u32::from_le_bytes(image.try_into().expect("4 bytes"));
            *self.0.lock() = self.1;
        }
    }

    let observed: Arc<Mutex<u32>> = Default::default();
    let mom = MomBuilder::new(TopologySpec::single_domain(2))
        // trace recording is off: it has no recovery semantics for
        // re-registered recorders
        .runtime(RuntimeConfig::threaded().persist(true).record_trace(false))
        .build()
        .unwrap();
    mom.register_agent(sid(1), 1, Box::new(Counter(observed.clone(), 0)))
        .unwrap();

    // Two messages delivered normally.
    for _ in 0..2 {
        mom.send(aid(0, 9), aid(1, 1), Notification::signal("x"))
            .unwrap();
    }
    assert!(mom.quiesce(Duration::from_secs(10)));
    assert_eq!(*observed.lock(), 2);

    // Crash server 1, send two more messages into the void (they sit in
    // server 0's retransmission queue), then recover.
    mom.crash(sid(1)).unwrap();
    for _ in 0..2 {
        mom.send(aid(0, 9), aid(1, 1), Notification::signal("x"))
            .unwrap();
    }
    std::thread::sleep(Duration::from_millis(50));
    mom.recover(sid(1), vec![(1, Box::new(Counter(observed.clone(), 0)))])
        .unwrap();
    assert!(
        mom.quiesce(Duration::from_secs(20)),
        "retransmissions should complete after recovery"
    );
    assert_eq!(*observed.lock(), 4, "state restored and gap replayed");
    mom.shutdown();
}

#[test]
fn sends_to_crashed_server_fail_fast() {
    let mom = MomBuilder::new(TopologySpec::single_domain(2))
        .build()
        .unwrap();
    mom.crash(sid(0)).unwrap();
    // Give the command time to be processed.
    std::thread::sleep(Duration::from_millis(20));
    let err = mom
        .send(aid(0, 1), aid(1, 1), Notification::signal("x"))
        .unwrap_err();
    assert!(matches!(err, aaa_base::Error::Closed(_)));
    mom.shutdown();
}

#[test]
fn stamp_sizes_updates_vs_full() {
    // Same workload in both modes; Updates must ship far fewer stamp
    // bytes (Appendix A).
    let run = |mode: StampMode| -> u64 {
        let n = 8u16;
        let mom = MomBuilder::new(TopologySpec::single_domain(n))
            .clock(ClockConfig::mode(mode))
            .runtime(RuntimeConfig::threaded().record_trace(false))
            .build()
            .unwrap();
        for s in 0..n {
            mom.register_agent(sid(s), 1, Box::new(EchoAgent)).unwrap();
        }
        // Stable communication pairs: the regime Appendix A optimizes.
        for _round in 0..10 {
            for s in 0..n {
                let to = (s + 1) % n;
                mom.send(aid(s, 9), aid(to, 1), Notification::signal("x"))
                    .unwrap();
            }
        }
        assert!(mom.quiesce(Duration::from_secs(20)));
        let total = (0..n).map(|i| mom.stats(sid(i)).unwrap().stamp_bytes).sum();
        mom.shutdown();
        total
    };
    let full = run(StampMode::Full);
    let updates = run(StampMode::Updates);
    assert!(
        updates * 2 < full,
        "updates ({updates}B) should be well under full ({full}B)"
    );
    // The bounded-space engines must beat full on the same live workload.
    for mode in [StampMode::Reduced, StampMode::Hybrid] {
        let bytes = run(mode);
        assert!(
            bytes * 2 < full,
            "{mode} ({bytes}B) should be well under full ({full}B)"
        );
    }
}

#[test]
fn unknown_destination_is_rejected() {
    let mom = MomBuilder::new(TopologySpec::single_domain(2))
        .build()
        .unwrap();
    let err = mom
        .send(aid(0, 1), aid(9, 1), Notification::signal("x"))
        .unwrap_err();
    assert!(matches!(err, aaa_base::Error::UnknownServer(_)));
    mom.shutdown();
}

#[test]
fn cyclic_topology_is_rejected_unless_opted_in() {
    let cyclic = TopologySpec::from_domains(vec![vec![0, 1], vec![1, 2], vec![2, 0]]);
    assert!(MomBuilder::new(cyclic.clone()).build().is_err());
    let mom = MomBuilder::new(cyclic)
        .runtime(RuntimeConfig::threaded().allow_cycles(true))
        .build()
        .unwrap();
    assert!(!mom.topology().is_acyclic());
    mom.shutdown();
}

#[test]
fn persistence_accounting_is_visible() {
    let mom = MomBuilder::new(TopologySpec::single_domain(2))
        .runtime(RuntimeConfig::threaded().persist(true))
        .build()
        .unwrap();
    mom.register_agent(sid(1), 1, Box::new(EchoAgent)).unwrap();
    mom.send(aid(0, 9), aid(1, 1), Notification::signal("x"))
        .unwrap();
    assert!(mom.quiesce(Duration::from_secs(10)));
    let store = mom.store(sid(1)).unwrap();
    assert!(store.stats().writes() > 0, "commits must hit the store");
    assert!(store.stats().bytes_written() > 0);
    let disk: u64 = (0..2).map(|i| mom.stats(sid(i)).unwrap().disk_bytes).sum();
    assert!(disk > 0);
    mom.shutdown();
}

#[test]
fn tcp_transport_end_to_end() {
    // The same bus over localhost TCP: cross-domain traffic, causal trace.
    let mom = MomBuilder::new(TopologySpec::bus(2, 3))
        .net(NetConfig::tcp())
        .build()
        .unwrap();
    for s in 0..6 {
        mom.register_agent(sid(s), 1, Box::new(EchoAgent)).unwrap();
    }
    for i in 0..10u16 {
        let from = i % 6;
        let to = (i + 3) % 6;
        mom.send(aid(from, 9), aid(to, 1), Notification::signal("tcp"))
            .unwrap();
    }
    assert!(
        mom.quiesce(Duration::from_secs(30)),
        "tcp bus should quiesce"
    );
    let trace = mom.trace().unwrap();
    assert_eq!(trace.message_count(), 20);
    assert!(trace.check_causality().is_ok());
    mom.shutdown();
}

#[test]
fn unordered_qos_delivers_but_stays_out_of_the_trace() {
    let mom = MomBuilder::new(TopologySpec::single_domain(2))
        .build()
        .unwrap();
    let seen: Arc<Mutex<Vec<String>>> = Default::default();
    let sink = seen.clone();
    mom.register_agent(
        sid(1),
        1,
        Box::new(FnAgent::new(move |_ctx, _from, note| {
            sink.lock().push(note.kind().to_owned());
        })),
    )
    .unwrap();
    mom.send(aid(0, 9), aid(1, 1), Notification::signal("causal"))
        .unwrap();
    mom.send_unordered(aid(0, 9), aid(1, 1), Notification::signal("fast"))
        .unwrap();
    assert!(mom.quiesce(Duration::from_secs(10)));
    let seen = seen.lock().clone();
    assert_eq!(seen.len(), 2, "both QoS levels deliver");
    // Only the causal message is in the trace.
    let trace = mom.trace().unwrap();
    assert_eq!(trace.message_count(), 1);
    assert!(trace.check_causality().is_ok());
    assert_eq!(mom.in_flight(), 0, "unordered still settles the counter");
    mom.shutdown();
}
