//! Property-based tests of the MOM cores: random topologies, random
//! workloads, adversarial delivery interleavings — global causality must
//! hold on every acyclic decomposition.

use std::collections::VecDeque;
use std::sync::Arc;

use aaa_base::{AgentId, ServerId, VTime};
use aaa_mom::{EchoAgent, Notification, ServerConfig, ServerCore, StampMode, Transmission};
use aaa_storage::MemoryStore;
use aaa_topology::TopologySpec;
use aaa_trace::TraceRecorder;
use proptest::prelude::*;

fn aid(s: u16, l: u32) -> AgentId {
    AgentId::new(ServerId::new(s), l)
}

/// Builds a random tree-of-domains spec from proptest-chosen shape data.
fn spec_from(sizes: &[usize], attach: &[(usize, usize)]) -> TopologySpec {
    let mut domains: Vec<Vec<u16>> = Vec::new();
    let mut next = 0u16;
    for (i, &size) in sizes.iter().enumerate() {
        let mut members = Vec::with_capacity(size);
        if i > 0 {
            let (d, s) = attach.get(i - 1).copied().unwrap_or((0, 0));
            let parent = &domains[d % domains.len()];
            members.push(parent[s % parent.len()]);
        }
        while members.len() < size {
            members.push(next);
            next += 1;
        }
        domains.push(members);
    }
    TopologySpec::from_domains(domains)
}

/// Runs a workload through sans-IO cores with an adversarial delivery
/// policy: the pending-transmission queue is serviced in an order driven
/// by `schedule_seed` (front/back alternation), exercising many global
/// interleavings while preserving per-link FIFO (links deliver what the
/// core handed them in hand-off order — we only interleave *across*
/// links... conservatively, we only pop from either end of the global
/// queue, which preserves relative order of same-link datagrams).
fn run_adversarial(
    spec: TopologySpec,
    mode: StampMode,
    sends: &[(u16, u16)],
    schedule_seed: u64,
) -> aaa_trace::Trace {
    let topo = spec.validate().expect("valid topology");
    let recorder = TraceRecorder::new();
    let n = topo.server_count() as u16;
    let mut cores: Vec<ServerCore> = (0..n)
        .map(|i| {
            let mut c = ServerCore::new(
                &topo,
                ServerId::new(i),
                ServerConfig {
                    stamp_mode: mode,
                    ..ServerConfig::default()
                },
                Arc::new(MemoryStore::new()),
            )
            .expect("core builds");
            c.register_agent(1, Box::new(EchoAgent));
            c.set_recorder(recorder.clone());
            c
        })
        .collect();

    let mut queue: VecDeque<(ServerId, Transmission)> = VecDeque::new();
    for &(from, to) in sends {
        let (from, to) = (from % n, to % n);
        if from == to {
            continue;
        }
        let (_, ts) = cores[from as usize]
            .client_send(
                aid(from, 9),
                aid(to, 1),
                Notification::signal("m"),
                VTime::ZERO,
            )
            .expect("send accepted");
        let me = ServerId::new(from);
        queue.extend(ts.into_iter().map(|t| (me, t)));
    }

    let mut state = schedule_seed | 1;
    let mut guard = 0;
    while let Some((src, t)) = {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
        if state & (1 << 40) == 0 {
            queue.pop_front()
        } else {
            queue.pop_back()
        }
    } {
        guard += 1;
        assert!(guard < 100_000, "adversarial run did not converge");
        let me = t.to;
        let ts = cores[me.as_usize()]
            .on_datagram(src, t.bytes, VTime::ZERO)
            .expect("datagram processed");
        queue.extend(ts.into_iter().map(|t| (me, t)));
    }
    recorder.snapshot().expect("well-formed trace")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Global causality holds on random acyclic topologies under
    /// adversarial delivery interleavings, in every stamp mode.
    #[test]
    fn causality_under_adversarial_interleavings(
        sizes in prop::collection::vec(2usize..4, 1..4),
        attach in prop::collection::vec((0usize..10, 0usize..10), 0..4),
        sends in prop::collection::vec((0u16..12, 0u16..12), 1..25),
        seed in any::<u64>(),
        mode in prop_oneof![
            Just(StampMode::Full),
            Just(StampMode::Updates),
            Just(StampMode::Reduced),
            Just(StampMode::Hybrid),
        ],
    ) {
        let spec = spec_from(&sizes, &attach);
        let trace = run_adversarial(spec.clone(), mode, &sends, seed);
        prop_assert!(
            trace.check_causality().is_ok(),
            "causality violated on acyclic topology {spec:?}"
        );
        // Domain restrictions hold too.
        let topo = spec.validate().expect("valid");
        for d in topo.domains() {
            prop_assert!(trace.check_causality_in(d.members()).is_ok());
        }
    }

    /// Every accepted message is delivered exactly once (echo included):
    /// the trace has 2 messages per effective send and no losses.
    #[test]
    fn exactly_once_end_to_end(
        sizes in prop::collection::vec(2usize..4, 1..3),
        sends in prop::collection::vec((0u16..8, 0u16..8), 1..20),
        seed in any::<u64>(),
    ) {
        let spec = spec_from(&sizes, &[(0, 1), (0, 3)]);
        let n = spec.server_count() as u16;
        let effective = sends.iter().filter(|(a, b)| a % n != b % n).count();
        let trace = run_adversarial(spec, StampMode::Updates, &sends, seed);
        prop_assert_eq!(trace.message_count(), effective * 2);
        // Every message that was sent was also received (no in-flight
        // leftovers after convergence).
        for m in trace.messages() {
            prop_assert!(
                trace.deliveries_at(m.dst).contains(&m.id),
                "message {} never delivered",
                m.id
            );
        }
    }
}
