//! Publish/subscribe over the threaded runtime, across domains.

use std::sync::Arc;
use std::time::Duration;

use aaa_base::{AgentId, ServerId};
use aaa_mom::pubsub::{publication, subscription, unsubscription, TopicAgent};
use aaa_mom::{FnAgent, MomBuilder, Notification, RuntimeConfig};
use aaa_topology::TopologySpec;
use parking_lot::Mutex;

fn aid(s: u16, l: u32) -> AgentId {
    AgentId::new(ServerId::new(s), l)
}

fn sid(i: u16) -> ServerId {
    ServerId::new(i)
}

#[test]
fn fanout_across_domains_preserves_publication_order() {
    // Topic on server 0 (domain 0); subscribers on servers 2 and 4
    // (domains 1 and 2), reached through routers.
    let spec = TopologySpec::from_domains(vec![vec![0, 1], vec![1, 2, 3], vec![3, 4]]);
    let mom = MomBuilder::new(spec).build().unwrap();
    let topic = mom
        .register_agent(sid(0), 1, Box::new(TopicAgent::new()))
        .unwrap();

    let received: Arc<Mutex<Vec<(u16, String)>>> = Default::default();
    let mut subs = Vec::new();
    for s in [2u16, 4] {
        let received = received.clone();
        let sub = mom
            .register_agent(
                sid(s),
                1,
                Box::new(FnAgent::new(move |_ctx, _from, note: &Notification| {
                    received
                        .lock()
                        .push((s, note.body_str().unwrap_or("").to_owned()));
                })),
            )
            .unwrap();
        mom.send(sub, topic, subscription()).unwrap();
        subs.push(sub);
    }
    assert!(mom.quiesce(Duration::from_secs(10)));

    let publisher = aid(1, 50);
    for i in 0..5 {
        mom.send(publisher, topic, publication("tick", format!("{i}")))
            .unwrap();
    }
    assert!(mom.quiesce(Duration::from_secs(10)));

    let received = received.lock().clone();
    for s in [2u16, 4] {
        let mine: Vec<&str> = received
            .iter()
            .filter(|(srv, _)| *srv == s)
            .map(|(_, b)| b.as_str())
            .collect();
        assert_eq!(mine, vec!["0", "1", "2", "3", "4"], "subscriber S{s} order");
    }
    assert!(mom.trace().unwrap().check_causality().is_ok());
    mom.shutdown();
}

#[test]
fn republication_chain_stays_causal() {
    // Topic A on server 0; a relay subscriber on server 2 republishes
    // everything to topic B on server 1; a final subscriber on server 3
    // subscribes to BOTH topics. Causality guarantees the final subscriber
    // never sees the republication before the original.
    let spec = TopologySpec::from_domains(vec![vec![0, 1, 2, 3]]);
    let mom = MomBuilder::new(spec).build().unwrap();
    let topic_a = mom
        .register_agent(sid(0), 1, Box::new(TopicAgent::new()))
        .unwrap();
    let topic_b = mom
        .register_agent(sid(1), 1, Box::new(TopicAgent::new()))
        .unwrap();

    // Final subscriber: records stream tags.
    let seen: Arc<Mutex<Vec<String>>> = Default::default();
    let sink = seen.clone();
    let final_sub = mom
        .register_agent(
            sid(3),
            1,
            Box::new(FnAgent::new(move |_ctx, _from, note: &Notification| {
                let mut seen = sink.lock();
                if note.kind() == "relayed" {
                    assert!(
                        seen.iter().any(|k| k == "original"),
                        "relayed event arrived before the original!"
                    );
                }
                seen.push(note.kind().to_owned());
            })),
        )
        .unwrap();

    // Relay: subscribes to A, republishes to B.
    let relay = mom
        .register_agent(
            sid(2),
            1,
            Box::new(FnAgent::new(move |ctx, _from, note: &Notification| {
                if note.kind() == "original" {
                    ctx.send(topic_b, publication("relayed", note.body().clone()));
                }
            })),
        )
        .unwrap();

    mom.send(final_sub, topic_a, subscription()).unwrap();
    mom.send(final_sub, topic_b, subscription()).unwrap();
    mom.send(relay, topic_a, subscription()).unwrap();
    assert!(mom.quiesce(Duration::from_secs(10)));

    let publisher = aid(0, 50);
    for i in 0..3 {
        mom.send(publisher, topic_a, publication("original", format!("{i}")))
            .unwrap();
    }
    assert!(mom.quiesce(Duration::from_secs(10)));

    let seen = seen.lock().clone();
    assert_eq!(seen.iter().filter(|k| *k == "original").count(), 3);
    assert_eq!(seen.iter().filter(|k| *k == "relayed").count(), 3);
    assert!(mom.trace().unwrap().check_causality().is_ok());
    mom.shutdown();
}

#[test]
fn unsubscription_stops_delivery() {
    let mom = MomBuilder::new(TopologySpec::single_domain(2))
        .build()
        .unwrap();
    let topic = mom
        .register_agent(sid(0), 1, Box::new(TopicAgent::new()))
        .unwrap();
    let count: Arc<Mutex<u32>> = Default::default();
    let c = count.clone();
    let sub = mom
        .register_agent(
            sid(1),
            1,
            Box::new(FnAgent::new(move |_ctx, _from, _note: &Notification| {
                *c.lock() += 1;
            })),
        )
        .unwrap();
    let publisher = aid(0, 50);

    mom.send(sub, topic, subscription()).unwrap();
    assert!(mom.quiesce(Duration::from_secs(5)));
    mom.send(publisher, topic, publication("e", b"1".to_vec()))
        .unwrap();
    assert!(mom.quiesce(Duration::from_secs(5)));
    assert_eq!(*count.lock(), 1);

    mom.send(sub, topic, unsubscription()).unwrap();
    assert!(mom.quiesce(Duration::from_secs(5)));
    mom.send(publisher, topic, publication("e", b"2".to_vec()))
        .unwrap();
    assert!(mom.quiesce(Duration::from_secs(5)));
    assert_eq!(*count.lock(), 1, "no delivery after unsubscription");
    mom.shutdown();
}

#[test]
fn topic_state_survives_crash() {
    let mom = MomBuilder::new(TopologySpec::single_domain(3))
        .runtime(RuntimeConfig::threaded().persist(true).record_trace(false))
        .build()
        .unwrap();
    let topic = mom
        .register_agent(sid(0), 1, Box::new(TopicAgent::new()))
        .unwrap();
    let count: Arc<Mutex<u32>> = Default::default();
    let c = count.clone();
    let sub = mom
        .register_agent(
            sid(1),
            1,
            Box::new(FnAgent::new(move |_ctx, _from, _note: &Notification| {
                *c.lock() += 1;
            })),
        )
        .unwrap();
    mom.send(sub, topic, subscription()).unwrap();
    assert!(mom.quiesce(Duration::from_secs(5)));

    // Crash the topic's server; recover with a fresh TopicAgent instance.
    mom.crash(sid(0)).unwrap();
    std::thread::sleep(Duration::from_millis(30));
    mom.recover(sid(0), vec![(1, Box::new(TopicAgent::new()))])
        .unwrap();
    assert!(mom.quiesce(Duration::from_secs(10)));

    // The durable subscriber list survived: publications still fan out.
    mom.send(aid(2, 50), topic, publication("e", b"post-crash".to_vec()))
        .unwrap();
    assert!(mom.quiesce(Duration::from_secs(10)));
    assert_eq!(*count.lock(), 1, "subscription must survive the crash");
    mom.shutdown();
}
