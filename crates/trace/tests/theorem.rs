//! Model-level tests of the paper's main theorem (§4.3).
//!
//! Part 1 of the proof (¬P2 ⇒ ¬P1) is constructive: given a cycle in the
//! domain graph, Figure 4 exhibits a trace that respects causality in every
//! domain yet violates it globally. We reproduce that construction here —
//! and check that on acyclic decompositions, randomized domain-causal
//! traces are always globally causal.

use aaa_base::{MessageId, ServerId};
use aaa_trace::chains;
use aaa_trace::TraceBuilder;
use proptest::prelude::*;

fn s(i: u16) -> ServerId {
    ServerId::new(i)
}

fn m(origin: u16, seq: u64) -> MessageId {
    MessageId::new(s(origin), seq)
}

/// The Figure 4(a) construction for a 3-domain cycle.
///
/// Domains: D0 = {p, p1}, D1 = {p1, q}, D2 = {q, p} — a cycle.
/// Trace: p sends n to q (in D2); then p sends m1 to p1 (D0), p1 relays m2
/// to q (D1); q receives the relayed message *before* n.
///
/// Every domain restriction sees at most one message pair whose order is
/// consistent, but globally the chain (m1, m2) ≺-precedes... rather, n ≺ m1
/// (same sender) and m2 is delivered at q before n, with n ≺ m1 ≺ m2 — a
/// global violation.
#[test]
fn figure4_cycle_breaks_global_causality_only() {
    let p = s(0);
    let p1 = s(1);
    let q = s(2);
    let domains = vec![vec![p, p1], vec![p1, q], vec![q, p]];

    // The cycle is a §4.2 cycle.
    assert!(chains::is_cycle(&domains, &[p, p1, q]));

    let n = m(0, 1); // p -> q, the direct message
    let m1 = m(0, 2); // p -> p1
    let m2 = m(1, 1); // p1 -> q, relayed after receiving m1

    let mut b = TraceBuilder::new();
    b.send(p, q, n);
    b.send(p, p1, m1);
    b.receive(p1, m1);
    b.send(p1, q, m2);
    b.receive(q, m2);
    b.receive(q, n); // n arrives last: global violation
    let t = b.build().unwrap();

    // n ≺ m1 ≺ m2: the chain around the cycle.
    assert!(t.precedes(n, m1));
    assert!(t.precedes(m1, m2));
    assert!(chains::is_chain(&t, &[m1, m2]));

    // Globally: violated.
    let v = t.check_causality().unwrap_err();
    assert_eq!(v.at, q);
    assert_eq!(v.first, m2);
    assert_eq!(v.second, n);

    // Yet every domain restriction respects causality.
    for d in &domains {
        assert!(
            t.check_causality_in(d).is_ok(),
            "domain {d:?} should be locally causal"
        );
    }
}

/// The same construction scaled to longer cycles (Figure 4 shows the
/// general chain p → p1 → … → pᵢ → q).
#[test]
fn figure4_longer_cycles() {
    for len in 2u16..6 {
        // Processes p=0, relays 1..len, q=len.
        // Domains: {0,1}, {1,2}, ..., {len-1,len}, {len,0}: a cycle.
        let mut domains: Vec<Vec<ServerId>> = (0..len).map(|i| vec![s(i), s(i + 1)]).collect();
        domains.push(vec![s(len), s(0)]);
        let path: Vec<ServerId> = (0..=len).map(s).collect();
        assert!(chains::is_cycle(&domains, &path), "len={len}");

        let n = m(0, 1);
        let mut b = TraceBuilder::new();
        b.send(s(0), s(len), n);
        // The chain around the cycle.
        let mut chain = Vec::new();
        for i in 0..len {
            let msg = m(i, 2);
            b.send(s(i), s(i + 1), msg);
            b.receive(s(i + 1), msg);
            chain.push(msg);
        }
        b.receive(s(len), n); // direct message arrives after the chain
        let t = b.build().unwrap();

        assert!(chains::is_chain(&t, &chain));
        assert!(t.check_causality().is_err(), "len={len}: global violation");
        for d in &domains {
            assert!(t.check_causality_in(d).is_ok(), "len={len}, domain {d:?}");
        }
    }
}

/// On the acyclic Figure 2 decomposition, a randomized execution where
/// every *link* is FIFO and every relay forwards in receipt order is
/// domain-causal; the theorem then promises global causality. We simulate
/// such executions directly at the model level: messages are relayed along
/// routing paths, every domain enforces causal delivery internally (here:
/// FIFO per link + relay-in-order, which for these tree-like two-server
/// overlaps is enough), and the global check must pass.
#[test]
fn acyclic_random_relays_are_globally_causal() {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    // Bus of 3 domains with 3 servers each; routers 0, 3, 6; backbone
    // domain {0, 3, 6}.
    let domains: Vec<Vec<ServerId>> = vec![
        vec![s(0), s(3), s(6)],
        vec![s(0), s(1), s(2)],
        vec![s(3), s(4), s(5)],
        vec![s(6), s(7), s(8)],
    ];

    for seed in 0..20u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut b = TraceBuilder::new();
        let mut seq = 0u64;
        // Random same-domain sends, immediately delivered (a degenerate but
        // valid domain-causal schedule: synchronous delivery).
        for _ in 0..rng.gen_range(5..40) {
            let d = &domains[rng.gen_range(0..domains.len())];
            let from = d[rng.gen_range(0..d.len())];
            let mut to = d[rng.gen_range(0..d.len())];
            if to == from {
                to = d[(d.iter().position(|&x| x == from).unwrap() + 1) % d.len()];
            }
            seq += 1;
            let id = MessageId::new(from, seq + 1000 * u64::from(from.as_u16()));
            b.send(from, to, id);
            b.receive(to, id);
        }
        let t = b.build().unwrap();
        for d in &domains {
            assert!(t.check_causality_in(d).is_ok(), "seed={seed}");
        }
        assert!(t.check_causality().is_ok(), "seed={seed}");
    }
}

proptest! {
    /// Synchronous (send-then-immediately-deliver) schedules respect
    /// causality trivially — the checker must agree on any topology.
    #[test]
    fn synchronous_schedules_always_causal(
        pairs in prop::collection::vec((0u16..6, 0u16..6), 1..60)
    ) {
        let mut b = TraceBuilder::new();
        for (i, (from, to)) in pairs.iter().enumerate() {
            if from == to { continue; }
            let id = MessageId::new(s(*from), i as u64);
            b.send(s(*from), s(*to), id);
            b.receive(s(*to), id);
        }
        let t = b.build().unwrap();
        prop_assert!(t.check_causality().is_ok());
    }

    /// Delaying a single message of a synchronous schedule to the very end
    /// is detected iff some later message causally follows it and shares
    /// its destination.
    #[test]
    fn delayed_message_detection_is_sound(
        pairs in prop::collection::vec((0u16..5, 0u16..5), 2..40),
        delayed in 0usize..40,
    ) {
        let sends: Vec<(u16, u16)> = pairs
            .into_iter()
            .filter(|(a, b)| a != b)
            .collect();
        prop_assume!(sends.len() >= 2);
        let delayed = delayed % sends.len();

        let mut b = TraceBuilder::new();
        let mut ids = Vec::new();
        for (i, (from, to)) in sends.iter().enumerate() {
            let id = MessageId::new(s(*from), i as u64);
            ids.push(id);
            b.send(s(*from), s(*to), id);
            if i != delayed {
                b.receive(s(*to), id);
            }
        }
        // Deliver the delayed message last.
        b.receive(s(sends[delayed].1), ids[delayed]);
        let t = b.build().unwrap();

        // Oracle: violation iff some message delivered at the same
        // destination causally follows the delayed one.
        let dst = s(sends[delayed].1);
        let expects_violation = ids.iter().enumerate().any(|(i, &other)| {
            i != delayed
                && sends[i].1 == dst.as_u16()
                && i > delayed
                && t.precedes(ids[delayed], other)
        });
        prop_assert_eq!(t.check_causality().is_err(), expects_violation);
    }
}
