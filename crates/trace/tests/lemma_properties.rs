//! Property-based tests of the proof machinery (Appendix B).
//!
//! Lemma 1's construction ([`chains::directify_chain`]) is executable; we
//! check its three guarantees on randomly generated relay computations:
//! the output is a *direct* chain, has the same source and destination,
//! and satisfies the local-order inequalities `m₁ ≤p n₁` and `n_L ≤q m_k`.

use aaa_base::{MessageId, ServerId};
use aaa_trace::chains;
use aaa_trace::TraceBuilder;
use proptest::prelude::*;

fn s(i: u16) -> ServerId {
    ServerId::new(i)
}

/// Builds a trace containing one long relay chain whose hops are chosen by
/// `hops` (each entry picks the next process among `n`), plus unrelated
/// noise messages interleaved. Returns (trace, the chain).
fn relay_trace(n: u16, hops: &[u16], noise: &[(u16, u16)]) -> (aaa_trace::Trace, Vec<MessageId>) {
    let mut b = TraceBuilder::new();
    let mut chain = Vec::new();
    let mut at = 0u16; // chain currently at process `at`
    let mut seq = 0u64;
    let mut noise_iter = noise.iter();
    for &h in hops {
        let next = if h % n == at { (at + 1) % n } else { h % n };
        seq += 1;
        let id = MessageId::new(s(at), seq + 10_000);
        b.send(s(at), s(next), id);
        b.receive(s(next), id);
        chain.push(id);
        at = next;
        // Interleave one noise message if available (different id space).
        if let Some(&(nf, nt)) = noise_iter.next() {
            let (nf, nt) = (nf % n, nt % n);
            if nf != nt {
                seq += 1;
                let nid = MessageId::new(s(nf), seq + 20_000);
                b.send(s(nf), s(nt), nid);
                b.receive(s(nt), nid);
            }
        }
    }
    (b.build().expect("well-formed trace"), chain)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn lemma1_construction_properties(
        n in 2u16..6,
        hops in prop::collection::vec(0u16..6, 1..12),
        noise in prop::collection::vec((0u16..6, 0u16..6), 0..12),
    ) {
        let (trace, chain) = relay_trace(n, &hops, &noise);
        prop_assert!(chains::is_chain(&trace, &chain));
        let path = chains::chain_path(&trace, &chain).expect("chain has a path");
        let (src, dst) = (path[0], *path.last().expect("non-empty"));
        prop_assume!(src != dst); // Lemma 1 requires distinct endpoints

        let direct = chains::directify_chain(&trace, &chain)
            .expect("lemma 1 applies to open chains");
        prop_assert!(chains::is_chain(&trace, &direct));
        let dpath = chains::chain_path(&trace, &direct).expect("direct chain path");

        // Same endpoints.
        prop_assert_eq!(dpath[0], src);
        prop_assert_eq!(*dpath.last().expect("non-empty"), dst);

        // Direct: all processes distinct.
        let mut sorted = dpath.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), dpath.len(), "path not direct: {:?}", dpath);

        // m1 ≤p n1: the new head is not sent before the old head.
        let old_head = trace.send_position(chain[0]).expect("sent");
        let new_head = trace.send_position(direct[0]).expect("sent");
        prop_assert!(new_head >= old_head);

        // nL ≤q mk: the new tail is not received after the old tail.
        let old_tail = trace
            .receive_position(*chain.last().expect("non-empty"))
            .expect("received");
        let new_tail = trace
            .receive_position(*direct.last().expect("non-empty"))
            .expect("received");
        prop_assert!(new_tail <= old_tail);
    }

    /// Collapsing the whole relay chain into one virtual message keeps the
    /// virtual trace well-formed and causal.
    #[test]
    fn virtual_trace_of_relay_chain_is_causal(
        n in 2u16..6,
        hops in prop::collection::vec(0u16..6, 1..10),
    ) {
        let (trace, chain) = relay_trace(n, &hops, &[]);
        let path = chains::chain_path(&trace, &chain).expect("path");
        prop_assume!(path[0] != *path.last().expect("non-empty"));
        let virt = chains::derive_virtual_trace(&trace, std::slice::from_ref(&chain))
            .expect("single chain never crosses itself");
        prop_assert_eq!(virt.message_count(), 1);
        prop_assert!(virt.check_causality().is_ok());
    }

    /// Synchronous traces have zero concurrency; their pair count matches
    /// the combinatorial total.
    #[test]
    fn concurrency_of_relay_chain_is_zero(
        n in 2u16..6,
        hops in prop::collection::vec(0u16..6, 2..8),
    ) {
        let (trace, chain) = relay_trace(n, &hops, &[]);
        let (concurrent, total) = trace.concurrency();
        prop_assert_eq!(total, chain.len() * (chain.len() - 1) / 2);
        // A chain is totally ordered: nothing is concurrent.
        prop_assert_eq!(concurrent, 0);
    }
}
