//! Traces, causal precedence and the causal-delivery checkers.

use std::collections::HashMap;

use aaa_base::{Error, MessageId, Result, ServerId};
use aaa_clocks::vector::CausalOrdering;
use aaa_clocks::VectorClock;
use serde::{Deserialize, Serialize};

/// One event of the global history.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
enum Event {
    Send { process: ServerId, msg: MessageId },
    Receive { process: ServerId, msg: MessageId },
}

/// One event of the global history, as exposed by [`Trace::raw_events`]
/// (used by the virtual-trace derivation in [`crate::chains`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RawEvent {
    /// `process` sent `msg`.
    Send {
        /// The sending process.
        process: ServerId,
        /// The message sent.
        msg: MessageId,
    },
    /// `process` received `msg`.
    Receive {
        /// The receiving process.
        process: ServerId,
        /// The message received.
        msg: MessageId,
    },
}

impl Event {
    fn process(&self) -> ServerId {
        match *self {
            Event::Send { process, .. } | Event::Receive { process, .. } => process,
        }
    }
}

/// Static description of one message of a computation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MessageInfo {
    /// The message identifier.
    pub id: MessageId,
    /// The sending process (`src(m)` in the paper).
    pub src: ServerId,
    /// The receiving process (`dst(m)`).
    pub dst: ServerId,
}

/// A causal-delivery violation: `second` causally precedes `first`, yet
/// process `at` delivered `first` earlier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Violation {
    /// The process at which delivery order disagrees with causal order.
    pub at: ServerId,
    /// The message that was delivered earlier.
    pub first: MessageId,
    /// The causally *preceding* message that was delivered later.
    pub second: MessageId,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "at {}: {} delivered before its causal predecessor {}",
            self.at, self.first, self.second
        )
    }
}

/// Incrementally records a computation's global history.
///
/// Well-formedness (each message sent exactly once, received at most once,
/// by its destination, after its send) is verified by
/// [`TraceBuilder::build`].
#[derive(Debug, Clone, Default)]
pub struct TraceBuilder {
    events: Vec<Event>,
    meta: HashMap<MessageId, MessageInfo>,
}

impl TraceBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records that `src` sends message `msg` to `dst`.
    pub fn send(&mut self, src: ServerId, dst: ServerId, msg: MessageId) -> &mut Self {
        self.meta.insert(msg, MessageInfo { id: msg, src, dst });
        self.events.push(Event::Send { process: src, msg });
        self
    }

    /// Records that `process` receives (delivers) message `msg`.
    pub fn receive(&mut self, process: ServerId, msg: MessageId) -> &mut Self {
        self.events.push(Event::Receive { process, msg });
        self
    }

    /// Number of events recorded so far.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Returns `true` if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Validates the history and computes the causal structure.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidTopology`] — reused here to mean "malformed
    /// trace" — if a message is received before being sent, received by a
    /// process other than its destination, received twice, sent twice, or
    /// received without any send on record.
    pub fn build(&self) -> Result<Trace> {
        Trace::from_events(self.events.clone(), self.meta.clone())
    }
}

/// A validated computation history with its causal structure.
///
/// Construction assigns every message a vector timestamp over the set of
/// participating processes (the standard event-level happens-before
/// oracle); the paper's message-level causal precedence `m ≺ m'` then
/// coincides with strict vector-clock order of the send events.
#[derive(Debug, Clone)]
pub struct Trace {
    events: Vec<Event>,
    meta: HashMap<MessageId, MessageInfo>,
    /// Vector timestamp of each message's send event.
    send_vc: HashMap<MessageId, VectorClock>,
    /// Global position of each message's send event.
    send_pos: HashMap<MessageId, usize>,
    /// Global position of each message's receive event.
    recv_pos: HashMap<MessageId, usize>,
    /// Dense index of the processes appearing in the trace.
    process_index: HashMap<ServerId, usize>,
}

impl Trace {
    fn from_events(events: Vec<Event>, meta: HashMap<MessageId, MessageInfo>) -> Result<Trace> {
        let bad = |why: String| Err(Error::InvalidTopology(why));

        // Dense process index.
        let mut process_index = HashMap::new();
        for e in &events {
            let next = process_index.len();
            process_index.entry(e.process()).or_insert(next);
        }
        for info in meta.values() {
            for p in [info.src, info.dst] {
                let next = process_index.len();
                process_index.entry(p).or_insert(next);
            }
        }
        let n = process_index.len().max(1);

        // Well-formedness + vector-clock replay in one pass.
        let mut sent: HashMap<MessageId, bool> = HashMap::new();
        let mut received: HashMap<MessageId, bool> = HashMap::new();
        let mut clocks: HashMap<ServerId, VectorClock> = HashMap::new();
        let mut send_vc: HashMap<MessageId, VectorClock> = HashMap::new();
        let mut send_pos: HashMap<MessageId, usize> = HashMap::new();
        let mut recv_pos: HashMap<MessageId, usize> = HashMap::new();

        for (pos, e) in events.iter().enumerate() {
            match *e {
                Event::Send { process, msg } => {
                    let Some(info) = meta.get(&msg) else {
                        return bad(format!("send of unknown message {msg}"));
                    };
                    if info.src != process {
                        return bad(format!(
                            "{msg} sent by {process}, declared src {}",
                            info.src
                        ));
                    }
                    if sent.insert(msg, true).is_some() {
                        return bad(format!("{msg} sent twice"));
                    }
                    let idx = process_index[&process];
                    let vc = clocks.entry(process).or_insert_with(|| VectorClock::new(n));
                    vc.tick(idx);
                    send_vc.insert(msg, vc.clone());
                    send_pos.insert(msg, pos);
                }
                Event::Receive { process, msg } => {
                    let Some(info) = meta.get(&msg) else {
                        return bad(format!("receive of unknown message {msg}"));
                    };
                    if info.dst != process {
                        return bad(format!(
                            "{msg} received by {process}, declared dst {}",
                            info.dst
                        ));
                    }
                    if !sent.contains_key(&msg) {
                        return bad(format!("{msg} received before being sent"));
                    }
                    if received.insert(msg, true).is_some() {
                        return bad(format!("{msg} received twice"));
                    }
                    let idx = process_index[&process];
                    let m_vc = send_vc[&msg].clone();
                    let vc = clocks.entry(process).or_insert_with(|| VectorClock::new(n));
                    vc.merge(&m_vc);
                    vc.tick(idx);
                    recv_pos.insert(msg, pos);
                }
            }
        }

        Ok(Trace {
            events,
            meta,
            send_vc,
            send_pos,
            recv_pos,
            process_index,
        })
    }

    /// All messages of the computation, in send order.
    pub fn messages(&self) -> Vec<MessageInfo> {
        self.events
            .iter()
            .filter_map(|e| match e {
                Event::Send { msg, .. } => Some(self.meta[msg]),
                _ => None,
            })
            .collect()
    }

    /// Number of messages sent.
    pub fn message_count(&self) -> usize {
        self.send_vc.len()
    }

    /// Metadata of one message, if it exists in the trace.
    pub fn message(&self, id: MessageId) -> Option<MessageInfo> {
        self.meta.get(&id).copied()
    }

    /// The processes participating in the trace, in first-appearance order.
    pub fn processes(&self) -> Vec<ServerId> {
        let mut ps: Vec<(usize, ServerId)> =
            self.process_index.iter().map(|(&p, &i)| (i, p)).collect();
        ps.sort_unstable();
        ps.into_iter().map(|(_, p)| p).collect()
    }

    /// The paper's causal precedence on messages: `a ≺ b`.
    ///
    /// # Panics
    ///
    /// Panics if either message is not part of the trace.
    pub fn precedes(&self, a: MessageId, b: MessageId) -> bool {
        let va = self.send_vc.get(&a).expect("message not in trace");
        let vb = self.send_vc.get(&b).expect("message not in trace");
        va.compare(vb) == CausalOrdering::Before
    }

    /// The raw event history, in global order.
    pub fn raw_events(&self) -> impl Iterator<Item = RawEvent> + '_ {
        self.events.iter().map(|e| match *e {
            Event::Send { process, msg } => RawEvent::Send { process, msg },
            Event::Receive { process, msg } => RawEvent::Receive { process, msg },
        })
    }

    /// Returns `true` if `earlier` was *received* by some process strictly
    /// before that same process *sent* `later` — the paper's
    /// `mᵢ <p mᵢ₊₁` chain condition. Returns `false` when the processes
    /// differ, `earlier` was never received, or `later` was never sent.
    pub fn received_before_sent(&self, earlier: MessageId, later: MessageId) -> bool {
        let (Some(info_e), Some(info_l)) = (self.message(earlier), self.message(later)) else {
            return false;
        };
        if info_e.dst != info_l.src {
            return false;
        }
        match (self.recv_pos.get(&earlier), self.send_pos.get(&later)) {
            (Some(r), Some(s)) => r < s,
            _ => false,
        }
    }

    /// Global history position of `msg`'s send event, if it was sent.
    pub fn send_position(&self, msg: MessageId) -> Option<usize> {
        self.send_pos.get(&msg).copied()
    }

    /// Global history position of `msg`'s receive event, if it was
    /// received.
    pub fn receive_position(&self, msg: MessageId) -> Option<usize> {
        self.recv_pos.get(&msg).copied()
    }

    /// Number of unordered (concurrent) message pairs — the trace-level
    /// concurrency measure the paper's introduction attributes to logical
    /// time (the paper's reference 11). Returns `(concurrent, total)` pairs.
    pub fn concurrency(&self) -> (usize, usize) {
        let ids: Vec<MessageId> = self.send_vc.keys().copied().collect();
        let mut concurrent = 0;
        let mut total = 0;
        for i in 0..ids.len() {
            for j in i + 1..ids.len() {
                total += 1;
                if !self.precedes(ids[i], ids[j]) && !self.precedes(ids[j], ids[i]) {
                    concurrent += 1;
                }
            }
        }
        (concurrent, total)
    }

    /// Messages received by `process`, in delivery order.
    pub fn deliveries_at(&self, process: ServerId) -> Vec<MessageId> {
        self.events
            .iter()
            .filter_map(|e| match *e {
                Event::Receive { process: p, msg } if p == process => Some(msg),
                _ => None,
            })
            .collect()
    }

    /// Checks that the whole trace respects causality: whenever `m ≺ m'`
    /// and both are received by the same process, `m` is received first.
    ///
    /// # Errors
    ///
    /// Returns the first [`Violation`] found, scanning processes in id
    /// order and deliveries in trace order.
    pub fn check_causality(&self) -> std::result::Result<(), Violation> {
        let mut procs = self.processes();
        procs.sort_unstable();
        for p in procs {
            let delivered = self.deliveries_at(p);
            for i in 0..delivered.len() {
                for j in i + 1..delivered.len() {
                    if self.precedes(delivered[j], delivered[i]) {
                        return Err(Violation {
                            at: p,
                            first: delivered[i],
                            second: delivered[j],
                        });
                    }
                }
            }
        }
        Ok(())
    }

    /// Restricts the trace to the messages whose source *and* destination
    /// belong to `members` — the paper's "restriction to a domain".
    pub fn restrict(&self, members: &[ServerId]) -> Trace {
        let keep = |msg: &MessageId| {
            let info = &self.meta[msg];
            members.contains(&info.src) && members.contains(&info.dst)
        };
        let events: Vec<Event> = self
            .events
            .iter()
            .filter(|e| match e {
                Event::Send { msg, .. } | Event::Receive { msg, .. } => keep(msg),
            })
            .copied()
            .collect();
        let meta: HashMap<MessageId, MessageInfo> = self
            .meta
            .iter()
            .filter(|(id, _)| keep(id))
            .map(|(&id, &info)| (id, info))
            .collect();
        Trace::from_events(events, meta).expect("restriction of a well-formed trace is well-formed")
    }

    /// Checks causal delivery on the restriction of the trace to one
    /// domain's members (§4.2: "a trace respects causality in domain `d`").
    ///
    /// Note that the restricted trace recomputes causal precedence from the
    /// restricted history only — exactly as the paper's definition demands:
    /// a chain passing *outside* the domain does not count as precedence
    /// inside it.
    ///
    /// # Errors
    ///
    /// Returns the first [`Violation`] found in the restriction.
    pub fn check_causality_in(&self, members: &[ServerId]) -> std::result::Result<(), Violation> {
        self.restrict(members).check_causality()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(i: u16) -> ServerId {
        ServerId::new(i)
    }

    fn m(origin: u16, seq: u64) -> MessageId {
        MessageId::new(s(origin), seq)
    }

    #[test]
    fn empty_trace_is_fine() {
        let t = TraceBuilder::new().build().unwrap();
        assert_eq!(t.message_count(), 0);
        assert!(t.check_causality().is_ok());
    }

    #[test]
    fn fifo_pair_in_order_ok() {
        let mut b = TraceBuilder::new();
        b.send(s(0), s(1), m(0, 1));
        b.send(s(0), s(1), m(0, 2));
        b.receive(s(1), m(0, 1));
        b.receive(s(1), m(0, 2));
        let t = b.build().unwrap();
        assert!(t.precedes(m(0, 1), m(0, 2)));
        assert!(!t.precedes(m(0, 2), m(0, 1)));
        assert!(t.check_causality().is_ok());
    }

    #[test]
    fn fifo_pair_reversed_is_violation() {
        let mut b = TraceBuilder::new();
        b.send(s(0), s(1), m(0, 1));
        b.send(s(0), s(1), m(0, 2));
        b.receive(s(1), m(0, 2));
        b.receive(s(1), m(0, 1));
        let t = b.build().unwrap();
        let v = t.check_causality().unwrap_err();
        assert_eq!(v.at, s(1));
        assert_eq!(v.first, m(0, 2));
        assert_eq!(v.second, m(0, 1));
        assert_eq!(
            v.to_string(),
            "at S1: m0:2 delivered before its causal predecessor m0:1"
        );
    }

    #[test]
    fn triangle_violation_detected() {
        // p sends a to r, then b to q; q relays c to r; r gets c before a.
        // a ≺ b ≺ c so delivering c before a is a violation at r.
        let (p, q, r) = (s(0), s(1), s(2));
        let mut b = TraceBuilder::new();
        b.send(p, r, m(0, 1)); // a
        b.send(p, q, m(0, 2)); // b
        b.receive(q, m(0, 2));
        b.send(q, r, m(1, 1)); // c, after receiving b
        b.receive(r, m(1, 1));
        b.receive(r, m(0, 1));
        let t = b.build().unwrap();
        assert!(t.precedes(m(0, 1), m(1, 1)));
        let v = t.check_causality().unwrap_err();
        assert_eq!(v.at, r);
    }

    #[test]
    fn concurrent_messages_any_order_ok() {
        let (p, q, r) = (s(0), s(1), s(2));
        let mut b = TraceBuilder::new();
        b.send(p, r, m(0, 1));
        b.send(q, r, m(1, 1));
        b.receive(r, m(1, 1));
        b.receive(r, m(0, 1));
        let t = b.build().unwrap();
        assert!(!t.precedes(m(0, 1), m(1, 1)));
        assert!(!t.precedes(m(1, 1), m(0, 1)));
        assert!(t.check_causality().is_ok());
    }

    #[test]
    fn in_flight_messages_are_tolerated() {
        let mut b = TraceBuilder::new();
        b.send(s(0), s(1), m(0, 1));
        let t = b.build().unwrap();
        assert_eq!(t.message_count(), 1);
        assert!(t.check_causality().is_ok());
    }

    #[test]
    fn malformed_traces_rejected() {
        // Receive before send.
        let mut b = TraceBuilder::new();
        b.receive(s(1), m(0, 1));
        assert!(b.build().is_err());

        // Unknown message (receive only, never declared by a send).
        let mut b = TraceBuilder::new();
        b.send(s(0), s(1), m(0, 1));
        b.receive(s(1), m(0, 1));
        b.receive(s(1), m(0, 1)); // duplicate
        assert!(b.build().is_err());

        // Wrong destination.
        let mut b = TraceBuilder::new();
        b.send(s(0), s(1), m(0, 1));
        b.receive(s(2), m(0, 1));
        assert!(b.build().is_err());

        // Sent twice.
        let mut b = TraceBuilder::new();
        b.send(s(0), s(1), m(0, 1));
        b.send(s(0), s(1), m(0, 1));
        assert!(b.build().is_err());
    }

    #[test]
    fn restriction_drops_cross_domain_messages() {
        let (p, q, r) = (s(0), s(1), s(2));
        let mut b = TraceBuilder::new();
        b.send(p, q, m(0, 1));
        b.receive(q, m(0, 1));
        b.send(q, r, m(1, 1));
        b.receive(r, m(1, 1));
        let t = b.build().unwrap();
        let restricted = t.restrict(&[p, q]);
        assert_eq!(restricted.message_count(), 1);
        assert!(restricted.message(m(1, 1)).is_none());
        assert!(restricted.message(m(0, 1)).is_some());
    }

    #[test]
    fn restriction_recomputes_precedence() {
        // m1: p->q in domain {p,q}; chain via r outside; m2: p->q.
        // In the full trace, m1 ≺ chain ≺ ... but restricted to {p,q} the
        // two messages keep their same-sender order only.
        let (p, q, r) = (s(0), s(1), s(2));
        let mut b = TraceBuilder::new();
        b.send(p, r, m(0, 1));
        b.receive(r, m(0, 1));
        b.send(r, q, m(2, 1));
        b.receive(q, m(2, 1));
        b.send(p, q, m(0, 2));
        b.receive(q, m(0, 2));
        let t = b.build().unwrap();
        // Full trace: m(0,1) ≺ m(2,1).
        assert!(t.precedes(m(0, 1), m(2, 1)));
        let restricted = t.restrict(&[p, q]);
        // Restricted trace contains only m(0,2).
        assert_eq!(restricted.message_count(), 1);
        assert!(restricted.check_causality().is_ok());
    }

    #[test]
    fn deliveries_and_processes_accessors() {
        let mut b = TraceBuilder::new();
        b.send(s(0), s(1), m(0, 1));
        b.receive(s(1), m(0, 1));
        let t = b.build().unwrap();
        assert_eq!(t.deliveries_at(s(1)), vec![m(0, 1)]);
        assert!(t.deliveries_at(s(0)).is_empty());
        assert_eq!(t.processes(), vec![s(0), s(1)]);
        assert_eq!(t.messages().len(), 1);
        assert_eq!(t.message(m(0, 1)).unwrap().dst, s(1));
    }
}
