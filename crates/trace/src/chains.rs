//! Chains, paths, cycles and virtual traces (§4.2).
//!
//! These are the combinatorial notions the paper's proof is built from:
//!
//! - a **(process) path** is a sequence of processes in which consecutive
//!   processes share a domain; *direct* if all processes differ; *minimal*
//!   if additionally it never "lingers" in a domain (no shortcut between
//!   non-consecutive processes); a **cycle** is a direct path whose source
//!   and destination share a domain while no single domain contains the
//!   whole path;
//! - a **(message) chain** is a sequence of messages where each message is
//!   sent by the receiver of the previous one, after receiving it; its
//!   *associated path* is the sequence of senders plus the final receiver;
//! - a **virtual trace** treats selected non-crossing minimal chains as
//!   single messages between domains.

use aaa_base::{MessageId, ServerId};

use crate::trace::Trace;

/// Returns `true` if `procs` is a (process) path for the given domain
/// member lists: non-empty, with every consecutive pair sharing a domain.
pub fn is_path(domains: &[Vec<ServerId>], procs: &[ServerId]) -> bool {
    if procs.is_empty() {
        return false;
    }
    procs.windows(2).all(|w| {
        domains
            .iter()
            .any(|d| d.contains(&w[0]) && d.contains(&w[1]))
    })
}

/// Returns `true` if `procs` is a *direct* path: a path with all processes
/// pairwise distinct.
pub fn is_direct_path(domains: &[Vec<ServerId>], procs: &[ServerId]) -> bool {
    if !is_path(domains, procs) {
        return false;
    }
    let mut seen = procs.to_vec();
    seen.sort_unstable();
    seen.windows(2).all(|w| w[0] != w[1])
}

/// Returns `true` if `procs` is a *minimal* path: direct, and no domain
/// contains two non-consecutive processes of the path
/// (`i + 1 < j ⇒ ¬∃d: pᵢ ∈ d ∧ pⱼ ∈ d`).
pub fn is_minimal_path(domains: &[Vec<ServerId>], procs: &[ServerId]) -> bool {
    if !is_direct_path(domains, procs) {
        return false;
    }
    for i in 0..procs.len() {
        for j in i + 2..procs.len() {
            if domains
                .iter()
                .any(|d| d.contains(&procs[i]) && d.contains(&procs[j]))
            {
                return false;
            }
        }
    }
    true
}

/// Returns `true` if `procs` is a *cycle* (§4.2): a direct path such that
/// some domain contains both its source and destination, while no single
/// domain contains every process of the path.
pub fn is_cycle(domains: &[Vec<ServerId>], procs: &[ServerId]) -> bool {
    if procs.len() < 2 || !is_direct_path(domains, procs) {
        return false;
    }
    let (src, dst) = (procs[0], procs[procs.len() - 1]);
    let endpoints_share = domains.iter().any(|d| d.contains(&src) && d.contains(&dst));
    let some_domain_has_all = domains.iter().any(|d| procs.iter().all(|p| d.contains(p)));
    endpoints_share && !some_domain_has_all
}

/// Returns `true` if `msgs` forms a (message) chain in `trace`: each
/// message after the first is sent by the receiver of the preceding
/// message, after the receive.
///
/// The "after the receive" condition uses the exact event positions of
/// the history: `receive(mᵢ)` must occur before `send(mᵢ₊₁)` in the local
/// order of the shared process.
pub fn is_chain(trace: &Trace, msgs: &[MessageId]) -> bool {
    if msgs.is_empty() {
        return false;
    }
    msgs.iter().all(|m| trace.message(*m).is_some())
        && msgs
            .windows(2)
            .all(|w| trace.received_before_sent(w[0], w[1]))
}

/// The path associated with a chain: `(src(m₁), …, src(mₖ), dst(mₖ))`.
///
/// Returns `None` if `msgs` is not a chain of `trace`.
pub fn chain_path(trace: &Trace, msgs: &[MessageId]) -> Option<Vec<ServerId>> {
    if !is_chain(trace, msgs) {
        return None;
    }
    let mut path: Vec<ServerId> = msgs
        .iter()
        .map(|m| trace.message(*m).expect("chain checked").src)
        .collect();
    path.push(trace.message(*msgs.last()?).expect("chain checked").dst);
    Some(path)
}

/// Returns `true` if a chain is *direct* (its associated path is direct).
pub fn is_direct_chain(trace: &Trace, domains: &[Vec<ServerId>], msgs: &[MessageId]) -> bool {
    chain_path(trace, msgs).is_some_and(|p| is_direct_path(domains, &p))
}

/// Returns `true` if a chain is *minimal* (its associated path is minimal).
pub fn is_minimal_chain(trace: &Trace, domains: &[Vec<ServerId>], msgs: &[MessageId]) -> bool {
    chain_path(trace, msgs).is_some_and(|p| is_minimal_path(domains, &p))
}

/// Checks the virtual-trace *no-crossover* condition (§4.2, Figure 3) for a
/// set of chains: if `mᵢ` and `mᵢ₊₁` are consecutive messages of one chain,
/// no message of another chain may be sent by `dst(mᵢ)` after `mᵢ` is
/// received and before `mᵢ₊₁` is sent.
///
/// Returns `true` if no crossover exists (the chains define a valid
/// virtual trace).
pub fn chains_do_not_cross(trace: &Trace, chains: &[Vec<MessageId>]) -> bool {
    for (ci, chain) in chains.iter().enumerate() {
        for w in chain.windows(2) {
            let (mi, mi1) = (w[0], w[1]);
            let hop = trace.message(mi).expect("chain message").dst;
            for (cj, other) in chains.iter().enumerate() {
                if ci == cj {
                    continue;
                }
                for &x in other {
                    let xm = trace.message(x).expect("chain message");
                    // x sent by the relay process, causally after m_i and
                    // before m_{i+1}: a crossover.
                    if xm.src == hop && trace.precedes(mi, x) && trace.precedes(x, mi1) {
                        return false;
                    }
                }
            }
        }
    }
    true
}

/// Implements the construction of the paper's **Lemma 1**: given any
/// chain whose source and destination differ, produce a *direct* chain
/// with the same source and destination by cutting out the loops
/// (`pᵢ = pⱼ ⇒ splice (m₁..mᵢ₋₁, mⱼ..mₖ)`).
///
/// Returns `None` if `msgs` is not a chain, or its endpoints coincide.
///
/// The lemma also asserts `m₁ ≤ n₁` and `n_L ≤ m_k` in the local orders of
/// the endpoints; the construction below only ever drops prefixes and
/// suffixes *between* the first and last messages of a loop, so the first
/// returned message is never sent later than `m₁` and the last never
/// received earlier than `m_k` — the property test in this crate's test
/// suite checks both.
pub fn directify_chain(trace: &Trace, msgs: &[MessageId]) -> Option<Vec<MessageId>> {
    if !is_chain(trace, msgs) {
        return None;
    }
    let path = chain_path(trace, msgs)?;
    if path.first() == path.last() {
        return None;
    }
    let mut chain: Vec<MessageId> = msgs.to_vec();
    loop {
        let path = chain_path(trace, &chain).expect("invariant: still a chain");
        // Find the first repeated process pair (i < j, p_i == p_j).
        let mut cut: Option<(usize, usize)> = None;
        'outer: for i in 0..path.len() {
            for j in i + 1..path.len() {
                if path[i] == path[j] {
                    cut = Some((i, j));
                    break 'outer;
                }
            }
        }
        let Some((i, j)) = cut else {
            return Some(chain);
        };
        // Path index p_i is the sender of message i (or the final receiver
        // when i == len-1). Splice out messages i..j (keep m_0..m_{i-1}
        // and m_j..): cases (a), (b), (c) of the paper's Appendix B.
        let mut next = Vec::with_capacity(chain.len());
        next.extend_from_slice(&chain[..i]);
        next.extend_from_slice(&chain[j.min(chain.len())..]);
        debug_assert!(!next.is_empty(), "endpoints differ, so a piece remains");
        chain = next;
    }
}

/// Derives the paper's **virtual trace**: every chain in `chains` is
/// replaced by one virtual message from the chain's source to its
/// destination (sent at the first send, received at the last receive);
/// messages not covered by any chain are kept as-is.
///
/// Returns `None` if any chain is invalid, chains overlap, or they
/// [cross over](chains_do_not_cross) — the conditions of §4.2.
pub fn derive_virtual_trace(trace: &Trace, chains: &[Vec<MessageId>]) -> Option<Trace> {
    use std::collections::HashSet;

    // Validate: each is a minimal-ready chain and none overlap.
    let mut covered: HashSet<MessageId> = HashSet::new();
    for chain in chains {
        if !is_chain(trace, chain) {
            return None;
        }
        for m in chain {
            if !covered.insert(*m) {
                return None; // overlapping chains
            }
        }
    }
    if !chains_do_not_cross(trace, chains) {
        return None;
    }

    // Rebuild the event history: the virtual message takes the place of
    // the chain head's send and the chain tail's receive; interior events
    // disappear.
    let mut builder = crate::trace::TraceBuilder::new();
    let head_of: std::collections::HashMap<MessageId, &Vec<MessageId>> = chains
        .iter()
        .filter_map(|c| c.first().map(|m| (*m, c)))
        .collect();
    let tail_of: std::collections::HashMap<MessageId, &Vec<MessageId>> = chains
        .iter()
        .filter_map(|c| c.last().map(|m| (*m, c)))
        .collect();

    for event in trace.raw_events() {
        match event {
            crate::trace::RawEvent::Send { process, msg } => {
                if let Some(chain) = head_of.get(&msg) {
                    // The virtual message: src of head, dst of tail.
                    let tail = *chain.last().expect("chains are non-empty");
                    let dst = trace.message(tail).expect("chain message").dst;
                    builder.send(process, dst, msg);
                } else if !covered.contains(&msg) {
                    let info = trace.message(msg).expect("event message exists");
                    builder.send(process, info.dst, msg);
                }
            }
            crate::trace::RawEvent::Receive { process, msg } => {
                if let Some(chain) = tail_of.get(&msg) {
                    let head = *chain.first().expect("chains are non-empty");
                    builder.receive(process, head);
                } else if !covered.contains(&msg) {
                    builder.receive(process, msg);
                }
            }
        }
    }
    builder.build().ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceBuilder;
    use aaa_base::MessageId;

    fn s(i: u16) -> ServerId {
        ServerId::new(i)
    }

    fn m(origin: u16, seq: u64) -> MessageId {
        MessageId::new(s(origin), seq)
    }

    /// Figure-2-like domains (0-based).
    fn domains() -> Vec<Vec<ServerId>> {
        vec![
            vec![s(0), s(1), s(2)],
            vec![s(3), s(4)],
            vec![s(6), s(7)],
            vec![s(2), s(4), s(5), s(6)],
        ]
    }

    #[test]
    fn path_predicates() {
        let d = domains();
        assert!(is_path(&d, &[s(0), s(2), s(6), s(7)]));
        assert!(!is_path(&d, &[s(0), s(7)]));
        assert!(!is_path(&d, &[]));
        assert!(is_direct_path(&d, &[s(0), s(2), s(6)]));
        assert!(!is_direct_path(&d, &[s(0), s(2), s(0)]));
    }

    #[test]
    fn minimal_path_rejects_lingering() {
        let d = domains();
        // 0 -> 1 -> 2 lingers in domain 0 (0 and 2 share a domain).
        assert!(!is_minimal_path(&d, &[s(0), s(1), s(2)]));
        assert!(is_minimal_path(&d, &[s(0), s(2), s(6)]));
        // A minimal path of length > 2 has endpoints in different domains.
        assert!(is_minimal_path(&d, &[s(1), s(2), s(4)]));
    }

    #[test]
    fn cycle_detection() {
        // Triangle of domains: {0,1}, {1,2}, {2,0}.
        let d = vec![vec![s(0), s(1)], vec![s(1), s(2)], vec![s(2), s(0)]];
        assert!(is_cycle(&d, &[s(0), s(1), s(2)]));
        // Within a single domain there is no cycle.
        assert!(!is_cycle(&d, &[s(0), s(1)]));
        // Acyclic decomposition: no cycle on any path.
        let d2 = domains();
        assert!(!is_cycle(&d2, &[s(0), s(2), s(6)]));
        assert!(!is_cycle(&d2, &[s(0), s(2), s(6), s(7)]));
    }

    #[test]
    fn chain_recognition_and_path() {
        let mut b = TraceBuilder::new();
        b.send(s(0), s(2), m(0, 1));
        b.receive(s(2), m(0, 1));
        b.send(s(2), s(6), m(2, 1));
        b.receive(s(6), m(2, 1));
        b.send(s(6), s(7), m(6, 1));
        b.receive(s(7), m(6, 1));
        let t = b.build().unwrap();
        let chain = [m(0, 1), m(2, 1), m(6, 1)];
        assert!(is_chain(&t, &chain));
        assert_eq!(
            chain_path(&t, &chain).unwrap(),
            vec![s(0), s(2), s(6), s(7)]
        );
        let d = domains();
        assert!(is_direct_chain(&t, &d, &chain));
        assert!(is_minimal_chain(&t, &d, &chain));
    }

    #[test]
    fn non_chain_rejected() {
        let mut b = TraceBuilder::new();
        b.send(s(0), s(2), m(0, 1));
        b.send(s(2), s(6), m(2, 1)); // sent BEFORE receiving m(0,1)
        b.receive(s(2), m(0, 1));
        b.receive(s(6), m(2, 1));
        let t = b.build().unwrap();
        assert!(!is_chain(&t, &[m(0, 1), m(2, 1)]));
        assert!(chain_path(&t, &[m(0, 1), m(2, 1)]).is_none());
        assert!(!is_chain(&t, &[]));
        // Unknown messages are not chains either.
        assert!(!is_chain(&t, &[m(9, 9)]));
    }

    #[test]
    fn crossover_detected() {
        // Figure 3: two chains p -> r -> q; the second chain's relay
        // message leaves r between the receive and the relay of the first.
        let (p, q, r) = (s(0), s(1), s(2));
        let mut b = TraceBuilder::new();
        b.send(p, r, m(0, 1)); // chain A hop 1
        b.receive(r, m(0, 1));
        b.send(p, r, m(0, 2)); // chain B hop 1
        b.receive(r, m(0, 2));
        b.send(r, q, m(2, 1)); // chain B hop 2 — sent between A's receive and A's relay
        b.send(r, q, m(2, 2)); // chain A hop 2
        b.receive(q, m(2, 1));
        b.receive(q, m(2, 2));
        let t = b.build().unwrap();
        let chain_a = vec![m(0, 1), m(2, 2)];
        let chain_b = vec![m(0, 2), m(2, 1)];
        assert!(is_chain(&t, &chain_a));
        assert!(is_chain(&t, &chain_b));
        assert!(!chains_do_not_cross(&t, &[chain_a, chain_b]));
    }

    #[test]
    fn directify_removes_loops() {
        // Chain 0 -> 1 -> 0 -> 2: process 0 repeats; Lemma 1 promises a
        // direct chain 0 -> 2 (here: the final message alone).
        let mut b = TraceBuilder::new();
        b.send(s(0), s(1), m(0, 1));
        b.receive(s(1), m(0, 1));
        b.send(s(1), s(0), m(1, 1));
        b.receive(s(0), m(1, 1));
        b.send(s(0), s(2), m(0, 2));
        b.receive(s(2), m(0, 2));
        let t = b.build().unwrap();
        let chain = [m(0, 1), m(1, 1), m(0, 2)];
        assert!(is_chain(&t, &chain));
        let direct = directify_chain(&t, &chain).expect("directifies");
        assert_eq!(direct, vec![m(0, 2)]);
        let path = chain_path(&t, &direct).unwrap();
        assert_eq!(path, vec![s(0), s(2)]);
    }

    #[test]
    fn directify_keeps_already_direct_chains() {
        let mut b = TraceBuilder::new();
        b.send(s(0), s(1), m(0, 1));
        b.receive(s(1), m(0, 1));
        b.send(s(1), s(2), m(1, 1));
        b.receive(s(2), m(1, 1));
        let t = b.build().unwrap();
        let chain = vec![m(0, 1), m(1, 1)];
        assert_eq!(directify_chain(&t, &chain), Some(chain));
    }

    #[test]
    fn directify_rejects_closed_chains() {
        // Endpoints coincide (0 -> 1 -> 0): Lemma 1 does not apply.
        let mut b = TraceBuilder::new();
        b.send(s(0), s(1), m(0, 1));
        b.receive(s(1), m(0, 1));
        b.send(s(1), s(0), m(1, 1));
        b.receive(s(0), m(1, 1));
        let t = b.build().unwrap();
        assert_eq!(directify_chain(&t, &[m(0, 1), m(1, 1)]), None);
        // And non-chains are rejected.
        assert_eq!(directify_chain(&t, &[m(1, 1), m(0, 1)]), None);
    }

    #[test]
    fn directify_longer_loop() {
        // 0 -> 1 -> 2 -> 1 -> 3: process 1 repeats.
        let mut b = TraceBuilder::new();
        b.send(s(0), s(1), m(0, 1));
        b.receive(s(1), m(0, 1));
        b.send(s(1), s(2), m(1, 1));
        b.receive(s(2), m(1, 1));
        b.send(s(2), s(1), m(2, 1));
        b.receive(s(1), m(2, 1));
        b.send(s(1), s(3), m(1, 2));
        b.receive(s(3), m(1, 2));
        let t = b.build().unwrap();
        let chain = [m(0, 1), m(1, 1), m(2, 1), m(1, 2)];
        let direct = directify_chain(&t, &chain).expect("directifies");
        let path = chain_path(&t, &direct).unwrap();
        // All processes distinct, same endpoints.
        assert_eq!(path.first(), Some(&s(0)));
        assert_eq!(path.last(), Some(&s(3)));
        let mut sorted = path.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), path.len(), "path must be direct: {path:?}");
    }

    #[test]
    fn virtual_trace_collapses_chain() {
        // A relayed message 0 -> 1 -> 2 becomes one virtual message 0 -> 2.
        let mut b = TraceBuilder::new();
        b.send(s(0), s(1), m(0, 1));
        b.receive(s(1), m(0, 1));
        b.send(s(1), s(2), m(1, 1));
        b.receive(s(2), m(1, 1));
        let t = b.build().unwrap();
        let virt =
            derive_virtual_trace(&t, &[vec![m(0, 1), m(1, 1)]]).expect("valid virtual trace");
        assert_eq!(virt.message_count(), 1);
        let info = virt
            .message(m(0, 1))
            .expect("virtual message keeps head id");
        assert_eq!(info.src, s(0));
        assert_eq!(info.dst, s(2));
        assert!(virt.check_causality().is_ok());
    }

    #[test]
    fn virtual_trace_preserves_other_messages() {
        let mut b = TraceBuilder::new();
        b.send(s(0), s(1), m(0, 1)); // chain head
        b.receive(s(1), m(0, 1));
        b.send(s(1), s(2), m(1, 1)); // chain tail
        b.send(s(0), s(2), m(0, 2)); // ordinary message
        b.receive(s(2), m(1, 1));
        b.receive(s(2), m(0, 2));
        let t = b.build().unwrap();
        let virt = derive_virtual_trace(&t, &[vec![m(0, 1), m(1, 1)]]).expect("derives");
        assert_eq!(virt.message_count(), 2);
        assert!(virt.message(m(0, 2)).is_some());
    }

    #[test]
    fn virtual_trace_rejects_crossovers_and_overlaps() {
        let (p, q, r) = (s(0), s(1), s(2));
        let mut b = TraceBuilder::new();
        b.send(p, r, m(0, 1));
        b.receive(r, m(0, 1));
        b.send(p, r, m(0, 2));
        b.receive(r, m(0, 2));
        b.send(r, q, m(2, 1)); // crosses over chain A
        b.send(r, q, m(2, 2));
        b.receive(q, m(2, 1));
        b.receive(q, m(2, 2));
        let t = b.build().unwrap();
        let chain_a = vec![m(0, 1), m(2, 2)];
        let chain_b = vec![m(0, 2), m(2, 1)];
        assert!(derive_virtual_trace(&t, &[chain_a.clone(), chain_b]).is_none());
        // Overlapping chains rejected too.
        assert!(derive_virtual_trace(&t, &[chain_a.clone(), chain_a]).is_none());
        // Invalid chains rejected.
        assert!(derive_virtual_trace(&t, &[vec![m(2, 2), m(0, 1)]]).is_none());
    }

    #[test]
    fn real_trace_is_a_virtual_trace_of_itself() {
        // The paper: "Several virtual traces may be derived from a (real)
        // trace, including the real trace itself (by defining
        // C = {(m1), ..., (mq)})".
        let mut b = TraceBuilder::new();
        b.send(s(0), s(1), m(0, 1));
        b.receive(s(1), m(0, 1));
        b.send(s(1), s(2), m(1, 1));
        b.receive(s(2), m(1, 1));
        let t = b.build().unwrap();
        let singletons: Vec<Vec<MessageId>> = t.messages().iter().map(|i| vec![i.id]).collect();
        let virt = derive_virtual_trace(&t, &singletons).expect("identity derivation");
        assert_eq!(virt.message_count(), t.message_count());
        for info in t.messages() {
            let v = virt.message(info.id).expect("message kept");
            assert_eq!(v.src, info.src);
            assert_eq!(v.dst, info.dst);
        }
    }

    #[test]
    fn non_crossing_chains_accepted() {
        let (p, q, r) = (s(0), s(1), s(2));
        let mut b = TraceBuilder::new();
        // Chain A completes before chain B starts at the relay.
        b.send(p, r, m(0, 1));
        b.receive(r, m(0, 1));
        b.send(r, q, m(2, 1));
        b.send(p, r, m(0, 2));
        b.receive(r, m(0, 2));
        b.send(r, q, m(2, 2));
        b.receive(q, m(2, 1));
        b.receive(q, m(2, 2));
        let t = b.build().unwrap();
        let chain_a = vec![m(0, 1), m(2, 1)];
        let chain_b = vec![m(0, 2), m(2, 2)];
        assert!(chains_do_not_cross(&t, &[chain_a, chain_b]));
    }
}
