#![warn(missing_docs)]
#![forbid(unsafe_code)]

//! The paper's formal trace model (§4.2), executable.
//!
//! A *computation* is a set of messages exchanged by processes grouped in
//! domains; its *trace* is the global history of send and receive events.
//! This crate implements the paper's definitions verbatim so that the main
//! theorem can be exercised by tests and experiments:
//!
//! - [`TraceBuilder`] / [`Trace`] — record a computation and query it;
//! - causal precedence `m ≺ m'` between messages ([`Trace::precedes`]),
//!   computed with an independent vector-clock oracle;
//! - the causal-delivery checkers ([`Trace::check_causality`] globally and
//!   [`Trace::check_causality_in`] per domain restriction);
//! - [`chains`] — message chains, their associated process paths, the
//!   direct / minimal / cycle predicates of §4.2 and virtual-trace
//!   crossover checking.
//!
//! The `aaa-mom` runtime records every send and delivery into a
//! [`TraceRecorder`]; integration tests then assert the theorem's
//! conclusion (local causality in every domain ⇒ global causality) on real
//! executions — and its converse on deliberately cyclic topologies.
//!
//! # Example
//!
//! ```
//! use aaa_base::{MessageId, ServerId};
//! use aaa_trace::TraceBuilder;
//!
//! let p = ServerId::new(0);
//! let q = ServerId::new(1);
//! let m1 = MessageId::new(p, 1);
//! let m2 = MessageId::new(p, 2);
//!
//! let mut b = TraceBuilder::new();
//! b.send(p, q, m1);
//! b.send(p, q, m2);
//! b.receive(q, m2); // FIFO violation: m1 ≺ m2 but m2 delivered first
//! b.receive(q, m1);
//! let trace = b.build()?;
//! assert!(trace.check_causality().is_err());
//! # Ok::<(), aaa_base::Error>(())
//! ```

pub mod chains;
mod recorder;
mod subscriber;
mod trace;

pub use recorder::TraceRecorder;
pub use subscriber::{SubscriberCheck, SubscriberReport};
pub use trace::{MessageInfo, Trace, TraceBuilder, Violation};
