//! Per-subscriber delivery-order checking for the store-and-forward relay.
//!
//! The relay promises each subscriber an *exactly-once, in-order* view of
//! every publication its home relay queued for it, keyed by the relay's
//! dense 1-based per-subscriber sequence numbers — even across
//! disconnects, reconnects and relay crashes. [`SubscriberCheck`] is the
//! test-side oracle for that promise: agents record `(subscriber, origin,
//! seq)` for every delivery they observe, and the final
//! [`SubscriberReport`] counts duplicates, reorderings and gaps per
//! `(subscriber, origin)` stream.
//!
//! Because the relay assigns sequence numbers in its (causally ordered)
//! delivery order, a clean report — zero duplicates, zero reorderings,
//! zero gaps — certifies per-subscriber causal order: no subscriber ever
//! observed a publication *m'* before a publication *m* that causally
//! precedes it on the same stream.

use std::collections::{HashMap, HashSet};
use std::sync::{Arc, Mutex};

use aaa_base::{AgentId, ServerId};

/// Aggregate verdict over every `(subscriber, origin)` stream.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct SubscriberReport {
    /// Deliveries recorded (every [`SubscriberCheck::record`] call).
    pub delivered: u64,
    /// Deliveries of a sequence number already seen on its stream
    /// (exactly-once violations).
    pub duplicates: u64,
    /// First-time deliveries that arrived *after* a higher sequence
    /// number on the same stream (ordering violations).
    pub reordered: u64,
    /// Sequence numbers below a stream's highest that never arrived
    /// (lost-message symptoms).
    pub gaps: u64,
    /// Distinct `(subscriber, origin)` streams observed.
    pub streams: u64,
}

impl SubscriberReport {
    /// `true` when every stream was exactly-once, gap-free and in order.
    pub fn is_clean(&self) -> bool {
        self.duplicates == 0 && self.reordered == 0 && self.gaps == 0
    }
}

/// One stream's acceptance state: the contiguous prefix `[1, next)` has
/// been seen exactly once; `ahead` holds early arrivals past a hole. For
/// a clean run `ahead` stays empty and the state is two integers.
#[derive(Debug, Default)]
struct StreamState {
    /// Lowest sequence number not yet seen (with everything below it
    /// seen exactly once). Starts at 1.
    next: u64,
    /// Highest sequence number seen.
    max_seen: u64,
    /// Early arrivals: seqs in `(next, max_seen]` seen before the hole
    /// below them filled.
    ahead: HashSet<u64>,
    delivered: u64,
    duplicates: u64,
    reordered: u64,
}

impl StreamState {
    fn record(&mut self, seq: u64) {
        self.delivered += 1;
        if self.next == 0 {
            self.next = 1;
        }
        if seq < self.next || self.ahead.contains(&seq) {
            self.duplicates += 1;
            return;
        }
        if seq < self.max_seen {
            // First sighting, but something newer already arrived.
            self.reordered += 1;
        }
        self.max_seen = self.max_seen.max(seq);
        if seq == self.next {
            self.next += 1;
            while self.ahead.remove(&self.next) {
                self.next += 1;
            }
        } else {
            self.ahead.insert(seq);
        }
    }

    /// Sequence numbers below `max_seen` still missing.
    fn gaps(&self) -> u64 {
        if self.max_seen < self.next {
            return 0;
        }
        (self.max_seen - self.next + 1).saturating_sub(self.ahead.len() as u64)
    }
}

/// A shared, thread-safe per-subscriber delivery-order oracle.
///
/// Clone one into every subscribing agent; each clone shares the same
/// state. Call [`record`](SubscriberCheck::record) on every delivery and
/// [`report`](SubscriberCheck::report) once the run has quiesced.
#[derive(Debug, Clone, Default)]
pub struct SubscriberCheck {
    inner: Arc<Mutex<HashMap<(AgentId, ServerId), StreamState>>>,
}

impl SubscriberCheck {
    /// Creates an empty check.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records that `subscriber` observed sequence number `seq` of the
    /// stream fed by the relay on `origin`. Sequence numbers are the
    /// relay's dense 1-based per-subscriber counters.
    pub fn record(&self, subscriber: AgentId, origin: ServerId, seq: u64) {
        self.inner
            .lock()
            .expect("subscriber check poisoned")
            .entry((subscriber, origin))
            .or_default()
            .record(seq);
    }

    /// Aggregates the verdict. Pure read: recording may continue after.
    pub fn report(&self) -> SubscriberReport {
        let map = self.inner.lock().expect("subscriber check poisoned");
        let mut report = SubscriberReport {
            streams: map.len() as u64,
            ..SubscriberReport::default()
        };
        for st in map.values() {
            report.delivered += st.delivered;
            report.duplicates += st.duplicates;
            report.reordered += st.reordered;
            report.gaps += st.gaps();
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sub(i: u32) -> AgentId {
        AgentId::new(ServerId::new(1), i)
    }

    fn origin() -> ServerId {
        ServerId::new(0)
    }

    #[test]
    fn in_order_streams_are_clean() {
        let check = SubscriberCheck::new();
        for s in 0..3 {
            for seq in 1..=100 {
                check.record(sub(s), origin(), seq);
            }
        }
        let r = check.report();
        assert!(r.is_clean(), "{r:?}");
        assert_eq!(r.delivered, 300);
        assert_eq!(r.streams, 3);
    }

    #[test]
    fn late_arrival_counts_as_reorder_not_gap() {
        let check = SubscriberCheck::new();
        check.record(sub(0), origin(), 1);
        check.record(sub(0), origin(), 3);
        check.record(sub(0), origin(), 2); // fills the hole, out of order
        let r = check.report();
        assert_eq!(r.delivered, 3);
        assert_eq!(r.reordered, 1);
        assert_eq!(r.gaps, 0);
        assert_eq!(r.duplicates, 0);
        assert!(!r.is_clean());
    }

    #[test]
    fn unfilled_hole_counts_as_gap() {
        let check = SubscriberCheck::new();
        check.record(sub(0), origin(), 1);
        check.record(sub(0), origin(), 4);
        let r = check.report();
        assert_eq!(r.gaps, 2);
        assert_eq!(r.delivered, 2);
        assert!(!r.is_clean());
    }

    #[test]
    fn repeats_count_as_duplicates_wherever_they_land() {
        let check = SubscriberCheck::new();
        check.record(sub(0), origin(), 1);
        check.record(sub(0), origin(), 2);
        check.record(sub(0), origin(), 2); // dup of the contiguous prefix
        check.record(sub(0), origin(), 4);
        check.record(sub(0), origin(), 4); // dup of an early arrival
        let r = check.report();
        assert_eq!(r.duplicates, 2);
        assert_eq!(r.gaps, 1); // seq 3 never arrived
        assert_eq!(r.reordered, 0);
        assert!(!r.is_clean());
    }

    #[test]
    fn streams_are_independent_and_clones_share_state() {
        let check = SubscriberCheck::new();
        let clone = check.clone();
        check.record(sub(0), origin(), 1);
        clone.record(sub(1), ServerId::new(2), 1);
        let r = check.report();
        assert_eq!(r.streams, 2);
        assert!(r.is_clean());
        assert_eq!(r.delivered, 2);
    }
}
