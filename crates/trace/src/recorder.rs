//! Thread-safe online trace recording.

use std::sync::{Arc, Mutex};

use aaa_base::{MessageId, Result, ServerId};

use crate::trace::{Trace, TraceBuilder};

/// A shared, thread-safe trace recorder.
///
/// The MOM runtime clones one `TraceRecorder` into every agent server;
/// channels call [`TraceRecorder::record_send`] when an application message
/// first enters the bus and [`TraceRecorder::record_delivery`] when it is
/// delivered to its destination engine. Tests then
/// [snapshot](TraceRecorder::snapshot) the trace and run the causality
/// checkers on it.
///
/// Recording order defines the per-process local order, so callers must
/// record an event *while holding whatever lock serializes that process's
/// steps* — the sans-IO channel cores do this naturally, since each core is
/// stepped by one thread at a time.
#[derive(Debug, Clone, Default)]
pub struct TraceRecorder {
    inner: Arc<Mutex<TraceBuilder>>,
}

impl TraceRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records that `src` sent `msg` to `dst` (end-to-end, ignoring any
    /// intermediate routing hops).
    pub fn record_send(&self, src: ServerId, dst: ServerId, msg: MessageId) {
        self.inner
            .lock()
            .expect("trace recorder poisoned")
            .send(src, dst, msg);
    }

    /// Records that `process` delivered `msg` to its engine.
    pub fn record_delivery(&self, process: ServerId, msg: MessageId) {
        self.inner
            .lock()
            .expect("trace recorder poisoned")
            .receive(process, msg);
    }

    /// Number of events recorded so far.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("trace recorder poisoned").len()
    }

    /// Returns `true` if nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Builds a validated [`Trace`] from the events recorded so far.
    ///
    /// # Errors
    ///
    /// Propagates [`TraceBuilder::build`] validation errors (which would
    /// indicate a bug in the recording call sites).
    pub fn snapshot(&self) -> Result<Trace> {
        self.inner.lock().expect("trace recorder poisoned").build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(i: u16) -> ServerId {
        ServerId::new(i)
    }

    #[test]
    fn record_and_snapshot() {
        let rec = TraceRecorder::new();
        assert!(rec.is_empty());
        let id = MessageId::new(s(0), 1);
        rec.record_send(s(0), s(1), id);
        rec.record_delivery(s(1), id);
        assert_eq!(rec.len(), 2);
        let t = rec.snapshot().unwrap();
        assert_eq!(t.message_count(), 1);
        assert!(t.check_causality().is_ok());
    }

    #[test]
    fn clones_share_state() {
        let rec = TraceRecorder::new();
        let rec2 = rec.clone();
        rec.record_send(s(0), s(1), MessageId::new(s(0), 1));
        assert_eq!(rec2.len(), 1);
    }

    #[test]
    fn concurrent_recording() {
        let rec = TraceRecorder::new();
        let mut handles = Vec::new();
        for i in 0..4u16 {
            let rec = rec.clone();
            handles.push(std::thread::spawn(move || {
                for seq in 0..50u64 {
                    let id = MessageId::new(s(i), seq);
                    rec.record_send(s(i), s((i + 1) % 4), id);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(rec.len(), 200);
        let t = rec.snapshot().unwrap();
        assert_eq!(t.message_count(), 200);
    }
}
