//! Crash-safety properties of the file-backed storage: torn-write and
//! truncated-tail recovery.
//!
//! A crash can cut a write at *any* byte. These tests write a known
//! sequence of records, truncate the file at every byte boundary (the
//! exhaustive crash schedule), reopen, and require that the intact record
//! prefix is recovered and the torn tail rejected cleanly — never a
//! partial record, never an error, never a record that was not written.

use std::fs;
use std::path::PathBuf;

use aaa_storage::{FileLog, Log, QueueConfig, SegmentQueue};
use proptest::prelude::*;

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "aaa-storage-crash-{name}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// Length-prefixed framing: how many whole records of `records` fit in
/// the first `cut` bytes of their on-disk image.
fn intact_prefix(records: &[Vec<u8>], cut: usize) -> usize {
    let mut offset = 0usize;
    let mut whole = 0usize;
    for rec in records {
        offset += 4 + rec.len();
        if offset > cut {
            break;
        }
        whole += 1;
    }
    whole
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// FileLog: for every record set and every truncation point, reopen
    /// recovers exactly the records whose bytes fully survived.
    #[test]
    fn file_log_recovers_intact_prefix_at_every_cut(
        records in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..40), 1..6),
    ) {
        let dir = tmp_dir("log-prefix");
        let path = dir.join("journal");
        {
            let log = FileLog::open(&path).unwrap();
            for rec in &records {
                log.append(rec).unwrap();
            }
        }
        let full = fs::read(&path).unwrap();
        for cut in 0..=full.len() {
            fs::write(&path, &full[..cut]).unwrap();
            let log = FileLog::open(&path).unwrap();
            let recovered = log.read_all().unwrap();
            let want = intact_prefix(&records, cut);
            prop_assert_eq!(
                recovered.len(), want,
                "cut at byte {} of {}", cut, full.len()
            );
            prop_assert_eq!(&recovered[..], &records[..want]);
            // Restore for the next cut.
            fs::write(&path, &full).unwrap();
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    /// SegmentQueue: the same exhaustive truncation schedule over one
    /// segment. The recovered queue holds the intact record prefix, the
    /// ack state never exceeds what was journaled before the cut, and the
    /// queue accepts new appends afterwards (the tear is rolled past, not
    /// written behind).
    #[test]
    fn segment_queue_recovers_intact_prefix_at_every_cut(
        payloads in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..24), 1..5),
        ack_first in any::<bool>(),
    ) {
        let dir = tmp_dir("queue-prefix");
        let cfg = QueueConfig { max_depth: 64, ttl_ticks: None, segment_max_records: 64, ..QueueConfig::default() };
        {
            let mut q = SegmentQueue::open(&dir, cfg).unwrap();
            for (i, p) in payloads.iter().enumerate() {
                q.enqueue(i as u64, vec![i as u8], p.clone()).unwrap();
                if ack_first && i == 0 {
                    q.ack_up_to(1).unwrap();
                }
            }
        }
        let seg = dir.join("seg-000000.q");
        let full = fs::read(&seg).unwrap();
        for cut in 0..=full.len() {
            // A fresh directory per cut: recovery must see only the
            // truncated segment, not the previous iteration's roll-over.
            let probe = tmp_dir("queue-probe");
            fs::create_dir_all(&probe).unwrap();
            fs::write(probe.join("seg-000000.q"), &full[..cut]).unwrap();
            let mut q = SegmentQueue::open(&probe, cfg).unwrap();
            // Every recovered entry is one that was written, in order.
            let got: Vec<(u64, Vec<u8>)> =
                q.pending(u64::MAX).map(|e| (e.seq, e.payload.clone())).collect();
            for (seq, payload) in &got {
                let idx = (*seq - 1) as usize;
                prop_assert_eq!(payload, &payloads[idx], "cut {}", cut);
            }
            prop_assert!(q.acked() <= 1, "ack beyond what was journaled (cut {})", cut);
            // The full image must recover everything unacked.
            if cut == full.len() {
                let want = payloads.len() - usize::from(ack_first);
                prop_assert_eq!(got.len(), want);
                prop_assert_eq!(q.acked(), u64::from(ack_first));
            }
            // The tail is rejected *cleanly*: the queue keeps working.
            let seq = q.enqueue(99, vec![], b"post-crash".to_vec()).unwrap();
            prop_assert!(seq > got.last().map(|(s, _)| *s).unwrap_or(0));
            drop(q);
            let reread = SegmentQueue::open(&probe, cfg).unwrap();
            prop_assert_eq!(reread.depth(), got.len() + 1, "cut {}", cut);
            fs::remove_dir_all(&probe).unwrap();
        }
        fs::remove_dir_all(&dir).unwrap();
    }
}
