//! Cross-backend storage tests: trait-object use, concurrency, and
//! memory-vs-file behavioural equivalence.

use std::sync::Arc;

use aaa_storage::{DirStore, FileLog, Log, MemoryLog, MemoryStore, StableStore};

fn tmp(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("aaa-storage-it-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Runs the same scenario against any store and returns the observable
/// outcome, for backend-equivalence checks.
fn store_scenario(store: &dyn StableStore) -> Vec<(String, Option<Vec<u8>>)> {
    store.put("a", b"1").unwrap();
    store.put("b", b"2").unwrap();
    store.put("a", b"3").unwrap(); // overwrite
    store.remove("b").unwrap();
    store.put("c/d e", b"4").unwrap(); // key needing escaping on disk
    let mut keys = store.keys().unwrap();
    keys.sort();
    keys.into_iter()
        .map(|k| {
            let v = store.get(&k).unwrap();
            (k, v)
        })
        .collect()
}

#[test]
fn memory_and_dir_stores_behave_identically() {
    let mem = MemoryStore::new();
    let dir = tmp("equiv");
    let disk = DirStore::open(&dir).unwrap();
    assert_eq!(store_scenario(&mem), store_scenario(&disk));
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn memory_and_file_logs_behave_identically() {
    fn log_scenario(log: &dyn Log) -> (u64, Vec<Vec<u8>>) {
        log.append(b"one").unwrap();
        log.append(b"").unwrap();
        log.append(b"three").unwrap();
        (log.len().unwrap(), log.read_all().unwrap())
    }
    let mem = MemoryLog::new();
    let dir = tmp("logequiv");
    let file = FileLog::open(dir.join("log")).unwrap();
    assert_eq!(log_scenario(&mem), log_scenario(&file));
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn concurrent_store_access_through_trait_object() {
    let store: Arc<dyn StableStore> = Arc::new(MemoryStore::new());
    let mut handles = Vec::new();
    for t in 0..4 {
        let store = store.clone();
        handles.push(std::thread::spawn(move || {
            for i in 0..100 {
                store
                    .put(&format!("t{t}/k{i}"), &[t as u8, i as u8])
                    .unwrap();
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(store.keys().unwrap().len(), 400);
    assert_eq!(store.stats().writes(), 400);
}

#[test]
fn concurrent_log_appends_keep_every_record() {
    let log: Arc<dyn Log> = Arc::new(MemoryLog::new());
    let mut handles = Vec::new();
    for t in 0..4u8 {
        let log = log.clone();
        handles.push(std::thread::spawn(move || {
            for i in 0..50u8 {
                log.append(&[t, i]).unwrap();
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let records = log.read_all().unwrap();
    assert_eq!(records.len(), 200);
    // Every (t, i) pair present exactly once.
    let mut sorted = records.clone();
    sorted.sort();
    sorted.dedup();
    assert_eq!(sorted.len(), 200);
}

#[test]
fn file_log_interleaved_with_reopen() {
    let dir = tmp("reopen-interleave");
    let path = dir.join("log");
    {
        let log = FileLog::open(&path).unwrap();
        log.append(b"a").unwrap();
    }
    {
        let log = FileLog::open(&path).unwrap();
        assert_eq!(log.len().unwrap(), 1);
        log.append(b"b").unwrap();
    }
    let log = FileLog::open(&path).unwrap();
    assert_eq!(log.read_all().unwrap(), vec![b"a".to_vec(), b"b".to_vec()]);
    std::fs::remove_dir_all(&dir).unwrap();
}
