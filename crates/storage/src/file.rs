//! File-backed storage: one file per key, and an append-only journal file.

use std::fs;
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

use aaa_base::{Error, Result};
use parking_lot::Mutex;

use crate::log::Log;
use crate::stats::StorageStats;
use crate::StableStore;

fn storage_err(context: &str, e: std::io::Error) -> Error {
    Error::Storage(format!("{context}: {e}"))
}

/// Escapes a key into a safe file name (alphanumerics, `-`, `_`, `.` pass
/// through; everything else becomes `%XX`).
fn escape_key(key: &str) -> String {
    let mut out = String::with_capacity(key.len());
    for b in key.bytes() {
        match b {
            b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9' | b'-' | b'_' | b'.' => out.push(b as char),
            _ => out.push_str(&format!("%{b:02X}")),
        }
    }
    out
}

fn unescape_key(name: &str) -> Option<String> {
    let bytes = name.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'%' {
            let hex = name.get(i + 1..i + 3)?;
            out.push(u8::from_str_radix(hex, 16).ok()?);
            i += 3;
        } else {
            out.push(bytes[i]);
            i += 1;
        }
    }
    String::from_utf8(out).ok()
}

/// A [`StableStore`] persisting each key as one file in a directory.
///
/// Writes are crash-atomic per key: the value is written to a temporary
/// file and renamed over the target, so recovery sees either the old or the
/// new value.
#[derive(Debug)]
pub struct DirStore {
    dir: PathBuf,
    stats: StorageStats,
}

impl DirStore {
    /// Opens (creating if needed) a store rooted at `dir`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Storage`] if the directory cannot be created.
    pub fn open(dir: impl AsRef<Path>) -> Result<Self> {
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir).map_err(|e| storage_err("create store dir", e))?;
        Ok(DirStore {
            dir,
            stats: StorageStats::new(),
        })
    }

    fn path_for(&self, key: &str) -> PathBuf {
        self.dir.join(escape_key(key))
    }
}

impl StableStore for DirStore {
    fn put(&self, key: &str, value: &[u8]) -> Result<()> {
        self.stats.record_write(value.len() as u64);
        let target = self.path_for(key);
        let tmp = self.dir.join(format!(".tmp-{}", escape_key(key)));
        fs::write(&tmp, value).map_err(|e| storage_err("write temp file", e))?;
        fs::rename(&tmp, &target).map_err(|e| storage_err("rename into place", e))
    }

    fn get(&self, key: &str) -> Result<Option<Vec<u8>>> {
        match fs::read(self.path_for(key)) {
            Ok(v) => {
                self.stats.record_read(v.len() as u64);
                Ok(Some(v))
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(storage_err("read value", e)),
        }
    }

    fn remove(&self, key: &str) -> Result<()> {
        self.stats.record_write(0);
        match fs::remove_file(self.path_for(key)) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(storage_err("remove value", e)),
        }
    }

    fn keys(&self) -> Result<Vec<String>> {
        let mut out = Vec::new();
        let entries = fs::read_dir(&self.dir).map_err(|e| storage_err("list store dir", e))?;
        for entry in entries {
            let entry = entry.map_err(|e| storage_err("read dir entry", e))?;
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if name.starts_with(".tmp-") {
                continue;
            }
            if let Some(key) = unescape_key(&name) {
                out.push(key);
            }
        }
        Ok(out)
    }

    fn stats(&self) -> &StorageStats {
        &self.stats
    }
}

/// A [`Log`] backed by a single append-only file of length-prefixed
/// records.
///
/// Record framing: `u32` little-endian length, then the record bytes. A
/// torn final record (crash mid-append) is detected and ignored on
/// recovery.
#[derive(Debug)]
pub struct FileLog {
    path: PathBuf,
    file: Mutex<fs::File>,
    count: Mutex<u64>,
    stats: StorageStats,
}

impl FileLog {
    /// Opens (creating if needed) the log file at `path`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Storage`] if the file cannot be opened.
    pub fn open(path: impl AsRef<Path>) -> Result<Self> {
        let path = path.as_ref().to_path_buf();
        if let Some(parent) = path.parent() {
            fs::create_dir_all(parent).map_err(|e| storage_err("create log dir", e))?;
        }
        let file = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .read(true)
            .open(&path)
            .map_err(|e| storage_err("open log file", e))?;
        let log = FileLog {
            path,
            file: Mutex::new(file),
            count: Mutex::new(0),
            stats: StorageStats::new(),
        };
        // Count (and implicitly validate) existing records.
        let existing = log.read_records()?;
        *log.count.lock() = existing.len() as u64;
        Ok(log)
    }

    fn read_records(&self) -> Result<Vec<Vec<u8>>> {
        let mut buf = Vec::new();
        {
            let mut file = fs::File::open(&self.path).map_err(|e| storage_err("open log", e))?;
            // Cold path: `read_records` runs only from `FileLog::open`
            // (recovery, or first touch of a durable log) — never
            // per-datagram. The step-entry edge the audit sees is a
            // simple-name merge with `SegmentQueue::open`, which the
            // relay opens once per cold subscriber and caches.
            // audit:allow(block-in-step)
            file.read_to_end(&mut buf)
                .map_err(|e| storage_err("read log", e))?;
        }
        let mut out = Vec::new();
        let mut i = 0usize;
        while i + 4 <= buf.len() {
            let len = u32::from_le_bytes([buf[i], buf[i + 1], buf[i + 2], buf[i + 3]]) as usize;
            if i + 4 + len > buf.len() {
                break; // torn final record: ignore
            }
            out.push(buf[i + 4..i + 4 + len].to_vec());
            i += 4 + len;
        }
        Ok(out)
    }
}

impl Log for FileLog {
    fn append(&self, record: &[u8]) -> Result<u64> {
        self.stats.record_write(record.len() as u64 + 4);
        let mut file = self.file.lock();
        // Saturating prefix: a >4 GiB record cannot be represented; the
        // saturated header makes recovery treat it as a torn record instead
        // of silently truncating to a wrapped length.
        let len = u32::try_from(record.len())
            .unwrap_or(u32::MAX)
            .to_le_bytes();
        // Intentional coupling (group commit): the file lock must span
        // header + record + flush, or concurrent appends interleave and
        // tear the log. Durability ordering is the point of the hold.
        // audit:allow(guard-across-blocking)
        file.write_all(&len)
            // audit:allow(guard-across-blocking)
            .and_then(|()| file.write_all(record))
            .and_then(|()| file.flush())
            .map_err(|e| storage_err("append record", e))?;
        let mut count = self.count.lock();
        let idx = *count;
        *count += 1;
        Ok(idx)
    }

    fn read_all(&self) -> Result<Vec<Vec<u8>>> {
        let records = self.read_records()?;
        let total: u64 = records.iter().map(|r| r.len() as u64 + 4).sum();
        self.stats.record_read(total);
        Ok(records)
    }

    fn clear(&self) -> Result<()> {
        self.stats.record_write(0);
        let mut file = self.file.lock();
        *file = fs::OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .read(true)
            .open(&self.path)
            .map_err(|e| storage_err("truncate log", e))?;
        *self.count.lock() = 0;
        Ok(())
    }

    fn len(&self) -> Result<u64> {
        Ok(*self.count.lock())
    }

    fn stats(&self) -> &StorageStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("aaa-storage-test-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn dir_store_roundtrip() {
        let dir = tmp_dir("kv");
        let store = DirStore::open(&dir).unwrap();
        store.put("matrix/d0", b"hello").unwrap();
        store.put("agent#1", b"state").unwrap();
        assert_eq!(
            store.get("matrix/d0").unwrap().as_deref(),
            Some(&b"hello"[..])
        );
        assert_eq!(store.get("nope").unwrap(), None);
        let mut keys = store.keys().unwrap();
        keys.sort();
        assert_eq!(keys, vec!["agent#1", "matrix/d0"]);
        store.remove("agent#1").unwrap();
        assert_eq!(store.get("agent#1").unwrap(), None);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn dir_store_survives_reopen() {
        let dir = tmp_dir("reopen");
        {
            let store = DirStore::open(&dir).unwrap();
            store.put("k", b"persisted").unwrap();
        }
        let store = DirStore::open(&dir).unwrap();
        assert_eq!(store.get("k").unwrap().as_deref(), Some(&b"persisted"[..]));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn key_escaping_roundtrips() {
        for key in ["plain", "with/slash", "sp ace", "uni\u{e9}", "%weird%"] {
            assert_eq!(unescape_key(&escape_key(key)).as_deref(), Some(key));
        }
    }

    #[test]
    fn file_log_roundtrip_and_recovery() {
        let dir = tmp_dir("log");
        let path = dir.join("server0.journal");
        {
            let log = FileLog::open(&path).unwrap();
            log.append(b"rec1").unwrap();
            log.append(b"record-two").unwrap();
            assert_eq!(log.len().unwrap(), 2);
        }
        // Re-open: records survive.
        let log = FileLog::open(&path).unwrap();
        assert_eq!(log.len().unwrap(), 2);
        assert_eq!(
            log.read_all().unwrap(),
            vec![b"rec1".to_vec(), b"record-two".to_vec()]
        );
        log.append(b"three").unwrap();
        assert_eq!(log.len().unwrap(), 3);
        log.clear().unwrap();
        assert!(log.is_empty().unwrap());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn file_log_ignores_torn_tail() {
        let dir = tmp_dir("torn");
        let path = dir.join("torn.journal");
        {
            let log = FileLog::open(&path).unwrap();
            log.append(b"good").unwrap();
        }
        // Simulate a crash mid-append: a length prefix promising more bytes
        // than exist.
        {
            let mut f = fs::OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(&100u32.to_le_bytes()).unwrap();
            f.write_all(b"onlyafew").unwrap();
        }
        let log = FileLog::open(&path).unwrap();
        assert_eq!(log.read_all().unwrap(), vec![b"good".to_vec()]);
        assert_eq!(log.len().unwrap(), 1);
        fs::remove_dir_all(&dir).unwrap();
    }
}
