//! Byte-exact storage accounting.

use std::sync::atomic::{AtomicU64, Ordering};

/// Thread-safe counters of storage traffic.
///
/// The paper identifies "high disk I/O activity to maintain a persistent
/// image of the matrix on each server" as one of the two scalability
/// problems (§3); experiments use these counters to report persistence
/// bytes per delivered message, with and without domains.
#[derive(Debug, Default)]
pub struct StorageStats {
    writes: AtomicU64,
    bytes_written: AtomicU64,
    reads: AtomicU64,
    bytes_read: AtomicU64,
}

impl StorageStats {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one write of `bytes` bytes.
    pub fn record_write(&self, bytes: u64) {
        self.writes.fetch_add(1, Ordering::Relaxed);
        self.bytes_written.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Records one read of `bytes` bytes.
    pub fn record_read(&self, bytes: u64) {
        self.reads.fetch_add(1, Ordering::Relaxed);
        self.bytes_read.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Number of write operations so far.
    pub fn writes(&self) -> u64 {
        self.writes.load(Ordering::Relaxed)
    }

    /// Total bytes written so far.
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written.load(Ordering::Relaxed)
    }

    /// Number of read operations so far.
    pub fn reads(&self) -> u64 {
        self.reads.load(Ordering::Relaxed)
    }

    /// Total bytes read so far.
    pub fn bytes_read(&self) -> u64 {
        self.bytes_read.load(Ordering::Relaxed)
    }

    /// Resets every counter to zero (between experiment phases).
    pub fn reset(&self) {
        self.writes.store(0, Ordering::Relaxed);
        self.bytes_written.store(0, Ordering::Relaxed);
        self.reads.store(0, Ordering::Relaxed);
        self.bytes_read.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_accumulate() {
        let s = StorageStats::new();
        s.record_write(10);
        s.record_write(5);
        s.record_read(3);
        assert_eq!(s.writes(), 2);
        assert_eq!(s.bytes_written(), 15);
        assert_eq!(s.reads(), 1);
        assert_eq!(s.bytes_read(), 3);
    }

    #[test]
    fn reset_zeroes() {
        let s = StorageStats::new();
        s.record_write(10);
        s.reset();
        assert_eq!(s.writes(), 0);
        assert_eq!(s.bytes_written(), 0);
    }

    #[test]
    fn concurrent_updates() {
        let s = std::sync::Arc::new(StorageStats::new());
        let mut handles = Vec::new();
        for _ in 0..4 {
            let s = s.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    s.record_write(1);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(s.writes(), 4000);
        assert_eq!(s.bytes_written(), 4000);
    }
}
