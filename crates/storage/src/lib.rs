#![warn(missing_docs)]
#![forbid(unsafe_code)]

//! Stable storage substrate for agent-server recovery.
//!
//! The AAA MOM is fault-tolerant: agents are persistent, reactions are
//! atomic, and each server keeps "a persistent image of the matrix on each
//! server in order to recover communication in case of failure" (§3). The
//! paper specifically calls the resulting disk I/O one of the two costs the
//! domain decomposition reduces.
//!
//! This crate provides the storage the reproduction needs:
//!
//! - [`StableStore`] — a key-value store for snapshots (agent state, matrix
//!   clock images), with [`MemoryStore`] and [`DirStore`] (one file per
//!   key, atomic replace) implementations;
//! - [`Log`] — an append-only record log for write-ahead journaling, with
//!   [`MemoryLog`] and [`FileLog`] implementations;
//! - [`SegmentQueue`] — a durable, bounded, TTL-retained delivery queue
//!   (append-only segments plus a crash-safe compaction pass) backing the
//!   relay's store-and-forward redelivery in `aaa-mom`;
//! - [`StorageStats`] — byte-exact write/read accounting shared by all
//!   backends, so experiments can report persistence traffic per message
//!   (experiment X2 of DESIGN.md).
//!
//! # Example
//!
//! ```
//! use aaa_storage::{MemoryStore, StableStore};
//!
//! let store = MemoryStore::new();
//! store.put("matrix/d0", b"...cells...")?;
//! assert_eq!(store.get("matrix/d0")?.as_deref(), Some(&b"...cells..."[..]));
//! assert_eq!(store.stats().bytes_written(), 11);
//! # Ok::<(), aaa_base::Error>(())
//! ```

mod file;
mod log;
mod memory;
mod queue;
mod stats;

pub use file::{DirStore, FileLog};
pub use log::{Log, MemoryLog};
pub use memory::MemoryStore;
pub use queue::{CompactionReport, QueueConfig, QueueEntry, SegmentQueue, SyncPolicy};
pub use stats::StorageStats;

use aaa_base::Result;

/// A durable key-value store.
///
/// Implementations must make [`StableStore::put`] atomic per key: after a
/// crash, [`StableStore::get`] returns either the previous or the new
/// value, never a mixture. Methods take `&self`; implementations are
/// internally synchronized so a store can be shared across server threads.
pub trait StableStore: Send + Sync {
    /// Stores `value` under `key`, replacing any previous value.
    ///
    /// # Errors
    ///
    /// Returns [`aaa_base::Error::Storage`] if the backing medium fails.
    fn put(&self, key: &str, value: &[u8]) -> Result<()>;

    /// Fetches the value stored under `key`, if any.
    ///
    /// # Errors
    ///
    /// Returns [`aaa_base::Error::Storage`] if the backing medium fails.
    fn get(&self, key: &str) -> Result<Option<Vec<u8>>>;

    /// Removes `key` if present; removing an absent key is not an error.
    ///
    /// # Errors
    ///
    /// Returns [`aaa_base::Error::Storage`] if the backing medium fails.
    fn remove(&self, key: &str) -> Result<()>;

    /// Lists the stored keys, in unspecified order.
    ///
    /// # Errors
    ///
    /// Returns [`aaa_base::Error::Storage`] if the backing medium fails.
    fn keys(&self) -> Result<Vec<String>>;

    /// The write/read accounting for this store.
    fn stats(&self) -> &StorageStats;
}
