//! In-memory stable store (accounting-faithful stand-in for a disk).

use std::collections::HashMap;

use aaa_base::Result;
use parking_lot::Mutex;

use crate::stats::StorageStats;
use crate::StableStore;

/// A [`StableStore`] backed by a hash map.
///
/// Used in tests, the discrete-event simulator (where only the *accounting*
/// of persistence matters, not actual durability) and anywhere a scratch
/// store is handy. Crash-restart tests share one `MemoryStore` across the
/// "crash": the store plays the role of the disk that survives.
#[derive(Debug, Default)]
pub struct MemoryStore {
    map: Mutex<HashMap<String, Vec<u8>>>,
    stats: StorageStats,
}

impl MemoryStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of keys currently stored.
    pub fn len(&self) -> usize {
        self.map.lock().len()
    }

    /// Returns `true` if no key is stored.
    pub fn is_empty(&self) -> bool {
        self.map.lock().is_empty()
    }
}

impl StableStore for MemoryStore {
    fn put(&self, key: &str, value: &[u8]) -> Result<()> {
        self.stats.record_write(value.len() as u64);
        self.map.lock().insert(key.to_owned(), value.to_vec());
        Ok(())
    }

    fn get(&self, key: &str) -> Result<Option<Vec<u8>>> {
        let map = self.map.lock();
        let v = map.get(key).cloned();
        if let Some(ref v) = v {
            self.stats.record_read(v.len() as u64);
        }
        Ok(v)
    }

    fn remove(&self, key: &str) -> Result<()> {
        self.stats.record_write(0);
        self.map.lock().remove(key);
        Ok(())
    }

    fn keys(&self) -> Result<Vec<String>> {
        Ok(self.map.lock().keys().cloned().collect())
    }

    fn stats(&self) -> &StorageStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_remove() {
        let s = MemoryStore::new();
        assert!(s.is_empty());
        s.put("a", b"1").unwrap();
        s.put("b", b"22").unwrap();
        assert_eq!(s.len(), 2);
        assert_eq!(s.get("a").unwrap().as_deref(), Some(&b"1"[..]));
        assert_eq!(s.get("missing").unwrap(), None);
        s.remove("a").unwrap();
        assert_eq!(s.get("a").unwrap(), None);
        s.remove("a").unwrap(); // idempotent
        let mut keys = s.keys().unwrap();
        keys.sort();
        assert_eq!(keys, vec!["b"]);
    }

    #[test]
    fn overwrite_replaces() {
        let s = MemoryStore::new();
        s.put("k", b"old").unwrap();
        s.put("k", b"new!").unwrap();
        assert_eq!(s.get("k").unwrap().as_deref(), Some(&b"new!"[..]));
        assert_eq!(s.stats().writes(), 2);
        assert_eq!(s.stats().bytes_written(), 7);
    }

    #[test]
    fn usable_as_trait_object() {
        let s: Box<dyn StableStore> = Box::new(MemoryStore::new());
        s.put("x", b"y").unwrap();
        assert_eq!(s.get("x").unwrap().as_deref(), Some(&b"y"[..]));
    }
}
