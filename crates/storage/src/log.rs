//! Append-only record logs for write-ahead journaling.

use aaa_base::Result;
use parking_lot::Mutex;

use crate::stats::StorageStats;

/// An append-only log of opaque records.
///
/// Records are byte strings; framing (length prefixes on disk) is the
/// implementation's business. Recovery reads the whole log back in append
/// order. Typed journaling (encoding channel/engine transactions) is
/// layered on top by `aaa-mom`.
pub trait Log: Send + Sync {
    /// Appends one record, returning its zero-based index.
    ///
    /// # Errors
    ///
    /// Returns [`aaa_base::Error::Storage`] if the backing medium fails.
    fn append(&self, record: &[u8]) -> Result<u64>;

    /// Reads every record, in append order.
    ///
    /// # Errors
    ///
    /// Returns [`aaa_base::Error::Storage`] if the backing medium fails or
    /// the log is corrupt.
    fn read_all(&self) -> Result<Vec<Vec<u8>>>;

    /// Discards every record (after a snapshot makes them redundant).
    ///
    /// # Errors
    ///
    /// Returns [`aaa_base::Error::Storage`] if the backing medium fails.
    fn clear(&self) -> Result<()>;

    /// Number of records currently in the log.
    ///
    /// # Errors
    ///
    /// Returns [`aaa_base::Error::Storage`] if the backing medium fails.
    fn len(&self) -> Result<u64>;

    /// Returns `true` if the log holds no records.
    ///
    /// # Errors
    ///
    /// Returns [`aaa_base::Error::Storage`] if the backing medium fails.
    fn is_empty(&self) -> Result<bool> {
        Ok(self.len()? == 0)
    }

    /// The write/read accounting for this log.
    fn stats(&self) -> &StorageStats;
}

/// A [`Log`] kept in memory — the simulator's and tests' journal device.
#[derive(Debug, Default)]
pub struct MemoryLog {
    records: Mutex<Vec<Vec<u8>>>,
    stats: StorageStats,
}

impl MemoryLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Log for MemoryLog {
    fn append(&self, record: &[u8]) -> Result<u64> {
        self.stats.record_write(record.len() as u64);
        let mut records = self.records.lock();
        records.push(record.to_vec());
        Ok(records.len() as u64 - 1)
    }

    fn read_all(&self) -> Result<Vec<Vec<u8>>> {
        let records = self.records.lock();
        let total: u64 = records.iter().map(|r| r.len() as u64).sum();
        self.stats.record_read(total);
        Ok(records.clone())
    }

    fn clear(&self) -> Result<()> {
        self.stats.record_write(0);
        self.records.lock().clear();
        Ok(())
    }

    fn len(&self) -> Result<u64> {
        Ok(self.records.lock().len() as u64)
    }

    fn stats(&self) -> &StorageStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn append_and_read_back() {
        let log = MemoryLog::new();
        assert!(log.is_empty().unwrap());
        assert_eq!(log.append(b"one").unwrap(), 0);
        assert_eq!(log.append(b"two").unwrap(), 1);
        assert_eq!(log.len().unwrap(), 2);
        assert_eq!(
            log.read_all().unwrap(),
            vec![b"one".to_vec(), b"two".to_vec()]
        );
    }

    #[test]
    fn clear_empties() {
        let log = MemoryLog::new();
        log.append(b"x").unwrap();
        log.clear().unwrap();
        assert!(log.is_empty().unwrap());
        assert!(log.read_all().unwrap().is_empty());
    }

    #[test]
    fn accounting_tracks_bytes() {
        let log = MemoryLog::new();
        log.append(b"12345").unwrap();
        log.append(b"67").unwrap();
        assert_eq!(log.stats().writes(), 2);
        assert_eq!(log.stats().bytes_written(), 7);
        let _ = log.read_all().unwrap();
        assert_eq!(log.stats().bytes_read(), 7);
    }

    #[test]
    fn empty_records_are_fine() {
        let log = MemoryLog::new();
        log.append(b"").unwrap();
        assert_eq!(log.read_all().unwrap(), vec![Vec::<u8>::new()]);
    }
}
