//! Durable per-subscriber queues: append-only segments with TTL-bound
//! retention and a crash-safe compaction pass.
//!
//! The store-and-forward relay (see `aaa-mom`) journals every publication
//! destined for a subscriber *before* attempting delivery, so a subscriber
//! that is disconnected — or a relay that crashes mid-fan-out — never
//! loses a message or the causal stamp that orders it. Each subscriber
//! gets one [`SegmentQueue`]:
//!
//! - **Append-only segments.** Records are framed exactly like
//!   [`FileLog`](crate::FileLog) (`u32` little-endian length prefix), so a
//!   torn final record from a crash mid-append is detected and ignored on
//!   recovery. Segments roll at a configured record count; the highest
//!   generation is the active tail.
//! - **Cumulative acks.** Delivery commits by journaling an `AckUpTo`
//!   record; acknowledged entries stay on disk until compaction reclaims
//!   them, so recovery replays at-least-once and the receiver's dedup map
//!   restores exactly-once.
//! - **TTL retention.** Entries older than `ttl_ticks` are no longer
//!   offered for delivery and are dropped (and counted) at compaction —
//!   the bound that keeps a forever-cold subscriber from pinning disk.
//! - **Crash-safe compaction.** [`SegmentQueue::compact`] rewrites the
//!   live suffix into a fresh highest-generation segment via
//!   tmp-write → fsync → rename → directory fsync, then deletes the old
//!   segments. A crash in any window leaves either the `.tmp` (ignored
//!   on open) or duplicate records across generations (deduplicated by
//!   sequence number on open), so recovery always reconstructs the same
//!   queue.
//! - **Sync policy.** Under the default [`SyncPolicy::Always`] every
//!   append is `fdatasync`ed and segment creation/rename is made
//!   durable with a directory fsync, so the journal survives OS crash
//!   and power loss — not just a process crash. [`SyncPolicy::OsBuffered`]
//!   trades that down to process-crash durability for throughput.
//!
//! The queue is sans-IO-adjacent: it is single-owner (`&mut self`
//! throughout, no locks) and all durability flows through one internal
//! `append_record` seed, which the `persist-before-deliver` audit rule
//! treats as a stable-store write.

use std::collections::BTreeMap;
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};

use aaa_base::{Error, Result};

use crate::stats::StorageStats;

fn storage_err(context: &str, e: std::io::Error) -> Error {
    Error::Storage(format!("{context}: {e}"))
}

/// Record tags on disk. `Enqueue` carries a full entry; `AckUpTo` commits
/// cumulative delivery.
const TAG_ENQUEUE: u8 = 1;
const TAG_ACK_UP_TO: u8 = 2;

/// Shape of one segment file name: `seg-NNNNNN.q`.
const SEG_PREFIX: &str = "seg-";
const SEG_SUFFIX: &str = ".q";

/// How aggressively queue writes are pushed to stable storage.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum SyncPolicy {
    /// `fdatasync` every appended record and fsync the queue directory
    /// around segment creation and the compaction rename: journaled
    /// entries survive an OS crash or power loss, not just a process
    /// crash. The default — the relay's journal-before-deliver guarantee
    /// is only as strong as the journal.
    #[default]
    Always,
    /// Leave writes in the OS page cache (no `fsync`). Entries survive a
    /// process crash but **not** an OS crash or power loss. For tests,
    /// simulators and deployments that accept replay loss in exchange
    /// for throughput.
    OsBuffered,
}

/// Retention and sizing policy of a [`SegmentQueue`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueConfig {
    /// Maximum unacknowledged entries held; `enqueue` beyond this returns
    /// [`Error::Backpressure`] instead of growing without bound.
    pub max_depth: usize,
    /// Entries enqueued more than this many ticks ago are expired: no
    /// longer offered by [`SegmentQueue::pending`], reclaimed (and
    /// counted) by [`SegmentQueue::compact`]. `None` retains forever.
    pub ttl_ticks: Option<u64>,
    /// Records per segment before the active segment rolls.
    pub segment_max_records: usize,
    /// Durability of the journal against OS crash / power loss.
    pub sync: SyncPolicy,
}

impl Default for QueueConfig {
    fn default() -> QueueConfig {
        QueueConfig {
            max_depth: 4096,
            ttl_ticks: None,
            segment_max_records: 1024,
            sync: SyncPolicy::Always,
        }
    }
}

/// One journaled publication awaiting acknowledged delivery.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueueEntry {
    /// Per-queue sequence number (1-based, dense).
    pub seq: u64,
    /// Enqueue time in the owner's tick domain (TTL reference).
    pub tick: u64,
    /// The wire causal stamp journaled with the payload (empty for
    /// stampless local publications); re-validated on redelivery.
    pub stamp: Vec<u8>,
    /// Opaque payload (the relay's encoded publication).
    pub payload: Vec<u8>,
}

impl QueueEntry {
    fn encoded(&self) -> Vec<u8> {
        let mut rec = Vec::with_capacity(1 + 8 + 8 + 4 + self.stamp.len() + 4 + self.payload.len());
        rec.push(TAG_ENQUEUE);
        rec.extend_from_slice(&self.seq.to_le_bytes());
        rec.extend_from_slice(&self.tick.to_le_bytes());
        let stamp_len = u32::try_from(self.stamp.len()).unwrap_or(u32::MAX);
        rec.extend_from_slice(&stamp_len.to_le_bytes());
        rec.extend_from_slice(&self.stamp);
        let payload_len = u32::try_from(self.payload.len()).unwrap_or(u32::MAX);
        rec.extend_from_slice(&payload_len.to_le_bytes());
        rec.extend_from_slice(&self.payload);
        rec
    }
}

/// What one [`SegmentQueue::compact`] pass reclaimed.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CompactionReport {
    /// Old segment files deleted (the rewritten generation excluded).
    pub segments_removed: usize,
    /// Acknowledged records reclaimed.
    pub acked_dropped: u64,
    /// Live-but-expired entries dropped by the TTL bound.
    pub expired_dropped: u64,
    /// Disk bytes reclaimed (old segment sizes minus the new segment).
    pub bytes_reclaimed: u64,
}

/// The file-backed half of a queue: the directory, the active tail file
/// and its record count.
#[derive(Debug)]
struct DirBackend {
    dir: PathBuf,
    active_gen: u64,
    active: fs::File,
    active_records: usize,
}

impl DirBackend {
    fn seg_path(dir: &Path, gen: u64) -> PathBuf {
        dir.join(format!("{SEG_PREFIX}{gen:06}{SEG_SUFFIX}"))
    }

    fn open_active(dir: &Path, gen: u64) -> Result<fs::File> {
        fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(Self::seg_path(dir, gen))
            .map_err(|e| storage_err("open active segment", e))
    }

    /// Makes directory metadata (a created segment or a compaction
    /// rename) durable. Only called under [`SyncPolicy::Always`].
    fn sync_dir(dir: &Path) -> Result<()> {
        fs::File::open(dir)
            .and_then(|d| d.sync_all())
            .map_err(|e| storage_err("sync queue dir", e))
    }

    /// Lists committed segment generations in ascending order. `.tmp`
    /// files (a compaction that crashed before its rename) are ignored.
    fn list_gens(dir: &Path) -> Result<Vec<u64>> {
        let mut gens = Vec::new();
        let entries = fs::read_dir(dir).map_err(|e| storage_err("list queue dir", e))?;
        for entry in entries {
            let entry = entry.map_err(|e| storage_err("read queue dir entry", e))?;
            let name = entry.file_name();
            let name = name.to_string_lossy();
            let Some(rest) = name.strip_prefix(SEG_PREFIX) else {
                continue;
            };
            let Some(num) = rest.strip_suffix(SEG_SUFFIX) else {
                continue; // `.q.tmp` and strangers
            };
            if let Ok(gen) = num.parse::<u64>() {
                gens.push(gen);
            }
        }
        gens.sort_unstable();
        Ok(gens)
    }
}

/// A durable, bounded, TTL-retained delivery queue for one subscriber.
///
/// Invariants: `entries` holds exactly the unacknowledged entries (acked
/// ones are removed in memory, reclaimed on disk at compaction);
/// sequence numbers are dense and 1-based; `acked` only grows.
#[derive(Debug)]
pub struct SegmentQueue {
    cfg: QueueConfig,
    backend: Option<DirBackend>,
    entries: BTreeMap<u64, QueueEntry>,
    next_seq: u64,
    acked: u64,
    /// Torn or malformed records found in a *non-final* generation at
    /// recovery. A tear in the final segment is the expected signature
    /// of a crash mid-append; one anywhere else truncated records that
    /// later generations may not re-cover, so it is surfaced instead of
    /// silently swallowed.
    recovery_anomalies: u64,
    stats: StorageStats,
}

impl SegmentQueue {
    /// A volatile queue (tests, simulator, relays that accept replay
    /// loss): same API and bookkeeping, no files.
    pub fn in_memory(cfg: QueueConfig) -> SegmentQueue {
        SegmentQueue {
            cfg,
            backend: None,
            entries: BTreeMap::new(),
            next_seq: 1,
            acked: 0,
            recovery_anomalies: 0,
            stats: StorageStats::new(),
        }
    }

    /// Opens (creating if needed) a durable queue rooted at `dir`,
    /// recovering state from the committed segments: records are replayed
    /// in generation order, deduplicated by sequence number, and the
    /// highest journaled ack wins. A torn final record in any segment is
    /// ignored, and `.tmp` files from a crashed compaction are removed.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Storage`] if the directory or a segment cannot be
    /// read.
    pub fn open(dir: impl AsRef<Path>, cfg: QueueConfig) -> Result<SegmentQueue> {
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir).map_err(|e| storage_err("create queue dir", e))?;
        let gens = DirBackend::list_gens(&dir)?;
        let mut entries: BTreeMap<u64, QueueEntry> = BTreeMap::new();
        let mut acked = 0u64;
        let mut next_seq = 1u64;
        let mut bytes_read = 0u64;
        let mut active_records = 0usize;
        let mut tail_torn = false;
        let mut recovery_anomalies = 0u64;
        for (idx, &gen) in gens.iter().enumerate() {
            let buf = fs::read(DirBackend::seg_path(&dir, gen))
                .map_err(|e| storage_err("read segment", e))?;
            bytes_read += buf.len() as u64;
            let (records, consumed) = parse_records(&buf);
            let torn = consumed < buf.len();
            if idx + 1 == gens.len() {
                // A tear in the highest generation is the expected
                // crash-mid-append signature; the tail rolls past it.
                active_records = records.len();
                tail_torn = torn;
            } else if torn {
                // A tear in the *middle* of the generation chain
                // truncated that segment's remaining records even though
                // later generations still parse — an anomaly the caller
                // must be able to see, not a normal crash signature.
                recovery_anomalies += 1;
            }
            for rec in records {
                match rec {
                    ParsedRecord::Enqueue(entry) => {
                        next_seq = next_seq.max(entry.seq.saturating_add(1));
                        // Duplicates across generations (compaction crash
                        // window) collapse here; last copy wins but they
                        // are byte-identical by construction.
                        entries.insert(entry.seq, entry);
                    }
                    ParsedRecord::AckUpTo(upto) => acked = acked.max(upto),
                }
            }
        }
        entries.retain(|&seq, _| seq > acked);
        // A fully-acked, fully-compacted queue leaves only an `AckUpTo`
        // record behind: without this clamp `next_seq` would reset to 1
        // while `acked` stays high, and every new enqueue would land at
        // a sequence the ack watermark already covers — skipped by the
        // relay's dispatch and dropped by the retain above on the next
        // reopen, i.e. silent message loss.
        next_seq = next_seq.max(acked.saturating_add(1));
        // Clear crashed-compaction leftovers so they cannot shadow a
        // future generation of the same number.
        if let Ok(listing) = fs::read_dir(&dir) {
            for entry in listing.flatten() {
                if entry.file_name().to_string_lossy().ends_with(".tmp") {
                    // Best-effort cleanup; a survivor is ignored on open.
                    // audit:allow(error-swallow)
                    let _ = fs::remove_file(entry.path());
                }
            }
        }
        // A torn tail means the last segment ends in garbage; appending
        // behind it would strand every later record, so the active tail
        // rolls to a fresh generation and the tear is never written past.
        let mut active_gen = gens.last().copied().unwrap_or(0);
        if tail_torn {
            active_gen = active_gen.saturating_add(1);
            active_records = 0;
        }
        let active = DirBackend::open_active(&dir, active_gen)?;
        if cfg.sync == SyncPolicy::Always {
            // The active segment's directory entry (freshly created on a
            // first open or a roll past a torn tail) must survive power
            // loss, or the records synced into it are lost with it.
            DirBackend::sync_dir(&dir)?;
        }
        let stats = StorageStats::new();
        stats.record_read(bytes_read);
        Ok(SegmentQueue {
            cfg,
            backend: Some(DirBackend {
                dir,
                active_gen,
                active,
                active_records,
            }),
            entries,
            next_seq,
            acked,
            recovery_anomalies,
            stats,
        })
    }

    /// The retention policy in force.
    pub fn config(&self) -> QueueConfig {
        self.cfg
    }

    /// Unacknowledged entries currently held (expired ones included until
    /// compaction reclaims them).
    pub fn depth(&self) -> usize {
        self.entries.len()
    }

    /// Highest cumulatively acknowledged sequence number (0 = none).
    pub fn acked(&self) -> u64 {
        self.acked
    }

    /// The sequence number the next [`SegmentQueue::enqueue`] will assign.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Committed segment files on disk (1 for an in-memory queue's
    /// logical tail).
    pub fn segment_count(&self) -> usize {
        match &self.backend {
            Some(b) => DirBackend::list_gens(&b.dir).map(|g| g.len()).unwrap_or(1),
            None => 1,
        }
    }

    /// Torn or malformed records detected in a non-final generation at
    /// the last [`SegmentQueue::open`] (0 for clean recoveries and
    /// in-memory queues). A non-zero value means a middle segment lost
    /// its suffix — acknowledged state or entries may have been dropped,
    /// so callers should surface it rather than trust the queue blindly.
    pub fn recovery_anomalies(&self) -> u64 {
        self.recovery_anomalies
    }

    /// Storage traffic accounting.
    pub fn stats(&self) -> &StorageStats {
        &self.stats
    }

    /// `true` if `entry` is past its TTL at `now_tick`.
    fn is_expired(&self, entry: &QueueEntry, now_tick: u64) -> bool {
        match self.cfg.ttl_ticks {
            Some(ttl) => now_tick.saturating_sub(entry.tick) > ttl,
            None => false,
        }
    }

    /// The durability seed: every state change that must survive a crash
    /// flows through this single append (length-prefixed, then
    /// `fdatasync`ed under [`SyncPolicy::Always`]). The in-memory backend
    /// accounts the bytes and returns.
    fn append_record(&mut self, record: &[u8]) -> Result<()> {
        self.stats.record_write(record.len() as u64 + 4);
        let sync = self.cfg.sync;
        let Some(backend) = &mut self.backend else {
            return Ok(());
        };
        if backend.active_records >= self.cfg.segment_max_records {
            let next_gen = backend.active_gen.saturating_add(1);
            backend.active = DirBackend::open_active(&backend.dir, next_gen)?;
            if sync == SyncPolicy::Always {
                // The rolled segment's directory entry must be durable
                // before records synced into it can count as durable.
                DirBackend::sync_dir(&backend.dir)?;
            }
            backend.active_gen = next_gen;
            backend.active_records = 0;
        }
        let len = u32::try_from(record.len())
            .unwrap_or(u32::MAX)
            .to_le_bytes();
        backend
            .active
            .write_all(&len)
            .and_then(|()| backend.active.write_all(record))
            .and_then(|()| match sync {
                SyncPolicy::Always => backend.active.sync_data(),
                SyncPolicy::OsBuffered => backend.active.flush(),
            })
            .map_err(|e| storage_err("append queue record", e))?;
        backend.active_records += 1;
        Ok(())
    }

    /// Journals one publication, assigning and returning its sequence
    /// number. Under [`SyncPolicy::Always`] (the default) the entry is
    /// durable against power loss before this returns; under
    /// [`SyncPolicy::OsBuffered`] it survives a process crash only.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Backpressure`] when the queue already holds
    /// `max_depth` unacknowledged entries — the caller drops (and counts)
    /// rather than growing without bound — or [`Error::Storage`] if the
    /// journal write fails.
    pub fn enqueue(&mut self, tick: u64, stamp: Vec<u8>, payload: Vec<u8>) -> Result<u64> {
        if self.entries.len() >= self.cfg.max_depth {
            return Err(Error::Backpressure);
        }
        let entry = QueueEntry {
            seq: self.next_seq,
            tick,
            stamp,
            payload,
        };
        self.append_record(&entry.encoded())?;
        self.next_seq = self.next_seq.saturating_add(1);
        self.entries.insert(entry.seq, entry);
        Ok(self.next_seq - 1)
    }

    /// Commits cumulative delivery up to and including `upto`: journals
    /// the ack, then releases the covered entries. Idempotent — a stale or
    /// duplicate ack is a no-op that touches no disk.
    ///
    /// `upto` is clamped to the highest sequence number this queue has
    /// assigned: acks arrive from remote receivers, and a corrupt or
    /// malicious ack beyond the assigned range must not journal a bogus
    /// watermark that would swallow entries enqueued later (and, via the
    /// recovery path, wedge the queue permanently).
    ///
    /// # Errors
    ///
    /// Returns [`Error::Storage`] if the journal write fails.
    pub fn ack_up_to(&mut self, upto: u64) -> Result<u64> {
        let upto = upto.min(self.next_seq.saturating_sub(1));
        if upto <= self.acked {
            return Ok(0);
        }
        let mut rec = Vec::with_capacity(9);
        rec.push(TAG_ACK_UP_TO);
        rec.extend_from_slice(&upto.to_le_bytes());
        self.append_record(&rec)?;
        self.acked = upto;
        let before = self.entries.len();
        self.entries.retain(|&seq, _| seq > upto);
        Ok((before - self.entries.len()) as u64)
    }

    /// Unacknowledged, unexpired entries in sequence order — the relay's
    /// redelivery window source.
    pub fn pending(&self, now_tick: u64) -> impl Iterator<Item = &QueueEntry> {
        self.entries
            .values()
            .filter(move |e| !self.is_expired(e, now_tick))
    }

    /// The highest sequence number `s` such that *every* unacknowledged
    /// entry in `acked+1 ..= s` is TTL-expired at `now_tick` (0 when the
    /// head of the queue is still live). The relay acks this prefix away
    /// so TTL-dropped entries cannot wedge the redelivery window.
    pub fn expired_prefix(&self, now_tick: u64) -> u64 {
        let mut upto = self.acked;
        for entry in self.entries.values() {
            if entry.seq == upto + 1 && self.is_expired(entry, now_tick) {
                upto = entry.seq;
            } else {
                break;
            }
        }
        if upto > self.acked {
            upto
        } else {
            0
        }
    }

    /// Unacknowledged entries past their TTL at `now_tick`.
    pub fn expired(&self, now_tick: u64) -> u64 {
        self.entries
            .values()
            .filter(|e| self.is_expired(e, now_tick))
            .count() as u64
    }

    /// Rewrites the live (unacked, unexpired) suffix into a fresh
    /// highest-generation segment and deletes the old ones, reclaiming
    /// acknowledged and TTL-expired records.
    ///
    /// Crash-safety: the new segment is written to a `.tmp`, fsynced
    /// (under [`SyncPolicy::Always`]), renamed into place and the rename
    /// made durable with a directory fsync before any old segment is
    /// deleted. A crash before the rename leaves only the ignored
    /// `.tmp`; a crash after it leaves duplicate records that
    /// [`SegmentQueue::open`] deduplicates by sequence number — every
    /// window recovers to the same state.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Storage`] on filesystem failure.
    pub fn compact(&mut self, now_tick: u64) -> Result<CompactionReport> {
        // TTL expiry is decided here, in memory first, so the in-memory
        // and on-disk views agree after the pass.
        let expired: Vec<u64> = self
            .entries
            .values()
            .filter(|e| self.is_expired(e, now_tick))
            .map(|e| e.seq)
            .collect();
        let expired_dropped = expired.len() as u64;
        for seq in expired {
            self.entries.remove(&seq);
        }
        let Some(backend) = &mut self.backend else {
            return Ok(CompactionReport {
                expired_dropped,
                ..CompactionReport::default()
            });
        };
        let old_gens = DirBackend::list_gens(&backend.dir)?;
        let old_bytes: u64 = old_gens
            .iter()
            .map(|&g| {
                fs::metadata(DirBackend::seg_path(&backend.dir, g))
                    .map(|m| m.len())
                    .unwrap_or(0)
            })
            .sum();
        let new_gen = backend.active_gen.saturating_add(1);
        let final_path = DirBackend::seg_path(&backend.dir, new_gen);
        let tmp_path = backend.dir.join(format!(".compact-{new_gen:06}.tmp"));
        let mut live_records = 0usize;
        let mut written = 0u64;
        {
            let mut tmp =
                fs::File::create(&tmp_path).map_err(|e| storage_err("create compaction tmp", e))?;
            let mut write_rec = |rec: &[u8]| -> Result<()> {
                let len = u32::try_from(rec.len()).unwrap_or(u32::MAX).to_le_bytes();
                tmp.write_all(&len)
                    .and_then(|()| tmp.write_all(rec))
                    .map_err(|e| storage_err("write compaction record", e))
            };
            for entry in self.entries.values() {
                let rec = entry.encoded();
                written += rec.len() as u64 + 4;
                write_rec(&rec)?;
                live_records += 1;
            }
            if self.acked > 0 {
                let mut rec = Vec::with_capacity(9);
                rec.push(TAG_ACK_UP_TO);
                rec.extend_from_slice(&self.acked.to_le_bytes());
                written += rec.len() as u64 + 4;
                write_rec(&rec)?;
                live_records += 1;
            }
            match self.cfg.sync {
                // The tmp's contents must hit stable storage before the
                // rename publishes it, or power loss could leave a
                // committed-looking segment full of garbage.
                SyncPolicy::Always => tmp.sync_all(),
                SyncPolicy::OsBuffered => tmp.flush(),
            }
            .map_err(|e| storage_err("flush compaction", e))?;
        }
        self.stats.record_write(written);
        fs::rename(&tmp_path, &final_path).map_err(|e| storage_err("commit compaction", e))?;
        if self.cfg.sync == SyncPolicy::Always {
            // Make the rename itself durable before deleting the old
            // segments it supersedes.
            DirBackend::sync_dir(&backend.dir)?;
        }
        // The compacted generation is durable; everything older is now
        // redundant (recovery dedups by seq if this loop is interrupted).
        let mut segments_removed = 0usize;
        for &gen in &old_gens {
            if gen == new_gen {
                continue;
            }
            fs::remove_file(DirBackend::seg_path(&backend.dir, gen))
                .map_err(|e| storage_err("remove stale segment", e))?;
            segments_removed += 1;
        }
        backend.active = DirBackend::open_active(&backend.dir, new_gen)?;
        backend.active_gen = new_gen;
        backend.active_records = live_records;
        let new_bytes = fs::metadata(&final_path).map(|m| m.len()).unwrap_or(0);
        Ok(CompactionReport {
            segments_removed,
            acked_dropped: 0,
            expired_dropped,
            bytes_reclaimed: old_bytes.saturating_sub(new_bytes),
        })
    }
}

enum ParsedRecord {
    Enqueue(QueueEntry),
    AckUpTo(u64),
}

fn le_u32(buf: &[u8], i: usize) -> Option<u32> {
    Some(u32::from_le_bytes([
        *buf.get(i)?,
        *buf.get(i + 1)?,
        *buf.get(i + 2)?,
        *buf.get(i + 3)?,
    ]))
}

fn le_u64(buf: &[u8], i: usize) -> Option<u64> {
    let mut bytes = [0u8; 8];
    for (k, b) in bytes.iter_mut().enumerate() {
        *b = *buf.get(i + k)?;
    }
    Some(u64::from_le_bytes(bytes))
}

/// Decodes the length-prefixed records of one segment. Parsing stops at
/// the first torn or malformed record — everything before the tear is the
/// recovered prefix, the tail is rejected. Returns the records and the
/// number of bytes cleanly consumed (short of the buffer length exactly
/// when the tail was torn).
fn parse_records(buf: &[u8]) -> (Vec<ParsedRecord>, usize) {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i + 4 <= buf.len() {
        let Some(len) = le_u32(buf, i) else { break };
        let len = len as usize;
        if i + 4 + len > buf.len() {
            break; // torn final record
        }
        let rec = &buf[i + 4..i + 4 + len];
        let Some(parsed) = parse_one(rec) else {
            break; // malformed body: treat like a tear, reject the tail
        };
        out.push(parsed);
        i += 4 + len;
    }
    (out, i)
}

fn parse_one(rec: &[u8]) -> Option<ParsedRecord> {
    match *rec.first()? {
        TAG_ENQUEUE => {
            let seq = le_u64(rec, 1)?;
            let tick = le_u64(rec, 9)?;
            let stamp_len = le_u32(rec, 17)? as usize;
            let stamp = rec.get(21..21 + stamp_len)?.to_vec();
            let payload_len = le_u32(rec, 21 + stamp_len)? as usize;
            let start = 25 + stamp_len;
            let payload = rec.get(start..start + payload_len)?.to_vec();
            Some(ParsedRecord::Enqueue(QueueEntry {
                seq,
                tick,
                stamp,
                payload,
            }))
        }
        TAG_ACK_UP_TO => Some(ParsedRecord::AckUpTo(le_u64(rec, 1)?)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("aaa-storage-test-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn cfg(max_depth: usize, ttl: Option<u64>, seg: usize) -> QueueConfig {
        QueueConfig {
            max_depth,
            ttl_ticks: ttl,
            segment_max_records: seg,
            sync: SyncPolicy::Always,
        }
    }

    #[test]
    fn enqueue_ack_pending_in_memory() {
        let mut q = SegmentQueue::in_memory(cfg(8, None, 4));
        for i in 0..5u8 {
            let seq = q.enqueue(i as u64, vec![], vec![i]).unwrap();
            assert_eq!(seq, i as u64 + 1);
        }
        assert_eq!(q.depth(), 5);
        let seqs: Vec<u64> = q.pending(10).map(|e| e.seq).collect();
        assert_eq!(seqs, vec![1, 2, 3, 4, 5]);
        assert_eq!(q.ack_up_to(3).unwrap(), 3);
        assert_eq!(q.depth(), 2);
        assert_eq!(q.acked(), 3);
        // Stale / duplicate acks are no-ops.
        assert_eq!(q.ack_up_to(3).unwrap(), 0);
        assert_eq!(q.ack_up_to(1).unwrap(), 0);
        let seqs: Vec<u64> = q.pending(10).map(|e| e.seq).collect();
        assert_eq!(seqs, vec![4, 5]);
    }

    #[test]
    fn backpressure_at_max_depth() {
        let mut q = SegmentQueue::in_memory(cfg(2, None, 4));
        q.enqueue(0, vec![], b"a".to_vec()).unwrap();
        q.enqueue(0, vec![], b"b".to_vec()).unwrap();
        assert!(matches!(
            q.enqueue(0, vec![], b"c".to_vec()),
            Err(Error::Backpressure)
        ));
        // Acking frees budget.
        q.ack_up_to(1).unwrap();
        assert_eq!(q.enqueue(0, vec![], b"c".to_vec()).unwrap(), 3);
    }

    #[test]
    fn ttl_expires_pending_entries() {
        let mut q = SegmentQueue::in_memory(cfg(8, Some(5), 4));
        q.enqueue(0, vec![], b"old".to_vec()).unwrap();
        q.enqueue(4, vec![], b"new".to_vec()).unwrap();
        assert_eq!(q.pending(4).count(), 2);
        // Tick 6: entry from tick 0 is 6 > 5 ticks old.
        let live: Vec<&[u8]> = q.pending(6).map(|e| e.payload.as_slice()).collect();
        assert_eq!(live, vec![b"new".as_slice()]);
        assert_eq!(q.expired(6), 1);
        let report = q.compact(6).unwrap();
        assert_eq!(report.expired_dropped, 1);
        assert_eq!(q.depth(), 1);
    }

    #[test]
    fn expired_prefix_tracks_the_head_only() {
        let mut q = SegmentQueue::in_memory(cfg(8, Some(5), 4));
        q.enqueue(0, vec![], b"a".to_vec()).unwrap();
        q.enqueue(1, vec![], b"b".to_vec()).unwrap();
        q.enqueue(9, vec![], b"c".to_vec()).unwrap();
        // Nothing expired yet.
        assert_eq!(q.expired_prefix(4), 0);
        // Tick 8: entries 1 and 2 are past TTL, entry 3 is live.
        assert_eq!(q.expired_prefix(8), 2);
        // A live head blocks the prefix even if later entries expire.
        q.ack_up_to(2).unwrap();
        assert_eq!(q.expired_prefix(8), 0);
        assert_eq!(q.expired_prefix(100), 3);
    }

    #[test]
    fn durable_queue_recovers_after_reopen() {
        let dir = tmp_dir("queue-reopen");
        {
            let mut q = SegmentQueue::open(&dir, cfg(16, None, 4)).unwrap();
            for i in 0..6u8 {
                q.enqueue(i as u64, vec![0xAA, i], vec![i; 3]).unwrap();
            }
            q.ack_up_to(2).unwrap();
        }
        let q = SegmentQueue::open(&dir, cfg(16, None, 4)).unwrap();
        assert_eq!(q.acked(), 2);
        assert_eq!(q.depth(), 4);
        assert_eq!(q.next_seq(), 7);
        let entries: Vec<(u64, Vec<u8>)> =
            q.pending(100).map(|e| (e.seq, e.stamp.clone())).collect();
        assert_eq!(entries[0], (3, vec![0xAA, 2]));
        assert_eq!(entries.len(), 4);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn segments_roll_and_compaction_reclaims() {
        let dir = tmp_dir("queue-compact");
        let mut q = SegmentQueue::open(&dir, cfg(64, None, 3)).unwrap();
        for i in 0..10u8 {
            q.enqueue(0, vec![], vec![i; 8]).unwrap();
        }
        assert!(q.segment_count() > 1, "segments must roll");
        q.ack_up_to(8).unwrap();
        let report = q.compact(0).unwrap();
        assert!(report.segments_removed >= 1);
        assert!(report.bytes_reclaimed > 0);
        assert_eq!(q.segment_count(), 1);
        // Queue state is unchanged by compaction...
        assert_eq!(q.depth(), 2);
        assert_eq!(q.acked(), 8);
        // ...and survives a reopen of the compacted directory.
        drop(q);
        let q = SegmentQueue::open(&dir, cfg(64, None, 3)).unwrap();
        assert_eq!(q.depth(), 2);
        assert_eq!(q.acked(), 8);
        assert_eq!(q.next_seq(), 11);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fully_acked_compacted_queue_stays_usable_after_reopen() {
        let dir = tmp_dir("queue-full-ack");
        {
            let mut q = SegmentQueue::open(&dir, cfg(16, None, 4)).unwrap();
            for i in 0..3u8 {
                q.enqueue(0, vec![], vec![i]).unwrap();
            }
            // Ack everything and compact: only an AckUpTo record remains
            // on disk.
            q.ack_up_to(3).unwrap();
            q.compact(0).unwrap();
        }
        let mut q = SegmentQueue::open(&dir, cfg(16, None, 4)).unwrap();
        assert_eq!(q.acked(), 3);
        assert_eq!(q.depth(), 0);
        // next_seq must resume past the ack watermark, or the new entry
        // would be assigned an already-acked sequence: skipped by the
        // dispatcher and silently dropped on the next reopen.
        assert_eq!(q.next_seq(), 4);
        let seq = q.enqueue(1, vec![], b"after".to_vec()).unwrap();
        assert!(seq > q.acked(), "new entries land beyond the watermark");
        assert_eq!(q.pending(1).count(), 1);
        drop(q);
        let q = SegmentQueue::open(&dir, cfg(16, None, 4)).unwrap();
        assert_eq!(q.depth(), 1, "the post-compaction entry survives");
        let payloads: Vec<&[u8]> = q.pending(1).map(|e| e.payload.as_slice()).collect();
        assert_eq!(payloads, vec![b"after".as_slice()]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn ack_beyond_assigned_range_is_clamped() {
        let dir = tmp_dir("queue-ack-clamp");
        {
            let mut q = SegmentQueue::open(&dir, cfg(16, None, 8)).unwrap();
            q.enqueue(0, vec![], b"a".to_vec()).unwrap();
            q.enqueue(0, vec![], b"b".to_vec()).unwrap();
            // A corrupt or malicious remote ack far past the assigned
            // range commits only what was actually assigned.
            assert_eq!(q.ack_up_to(u64::MAX).unwrap(), 2);
            assert_eq!(q.acked(), 2);
        }
        // The journaled watermark is the clamped one, so entries
        // enqueued after recovery are not swallowed by a bogus ack.
        let mut q = SegmentQueue::open(&dir, cfg(16, None, 8)).unwrap();
        assert_eq!(q.acked(), 2);
        assert_eq!(q.next_seq(), 3);
        q.enqueue(1, vec![], b"c".to_vec()).unwrap();
        drop(q);
        let q = SegmentQueue::open(&dir, cfg(16, None, 8)).unwrap();
        assert_eq!(q.depth(), 1);
        fs::remove_dir_all(&dir).unwrap();

        // An empty queue rejects any positive ack outright.
        let mut q = SegmentQueue::in_memory(cfg(4, None, 4));
        assert_eq!(q.ack_up_to(10).unwrap(), 0);
        assert_eq!(q.acked(), 0);
    }

    #[test]
    fn torn_middle_generation_is_surfaced_as_anomaly() {
        let dir = tmp_dir("queue-torn-middle");
        {
            // Three entries across two generations (2 + 1).
            let mut q = SegmentQueue::open(&dir, cfg(16, None, 2)).unwrap();
            for i in 0..3u8 {
                q.enqueue(0, vec![], vec![i]).unwrap();
            }
        }
        // Tear the *first* generation's tail while the later generation
        // stays intact: entry 2 is gone even though parsing continues.
        let gen0 = DirBackend::seg_path(&dir, 0);
        let bytes = fs::read(&gen0).unwrap();
        fs::write(&gen0, &bytes[..bytes.len() - 3]).unwrap();
        let q = SegmentQueue::open(&dir, cfg(16, None, 2)).unwrap();
        assert_eq!(
            q.recovery_anomalies(),
            1,
            "a torn non-final generation must be surfaced, not swallowed"
        );
        let seqs: Vec<u64> = q.pending(0).map(|e| e.seq).collect();
        assert_eq!(seqs, vec![1, 3], "the tear dropped entry 2");
        // A clean reopen reports no anomaly, and a tear in the *final*
        // generation stays the ordinary crash signature (no anomaly).
        drop(q);
        let q = SegmentQueue::open(&dir, cfg(16, None, 2)).unwrap();
        assert_eq!(q.recovery_anomalies(), 1, "tear persists until compaction");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn crash_between_rename_and_delete_recovers_by_dedup() {
        let dir = tmp_dir("queue-crash-dup");
        let mut q = SegmentQueue::open(&dir, cfg(64, None, 2)).unwrap();
        for i in 0..5u8 {
            q.enqueue(0, vec![], vec![i]).unwrap();
        }
        q.ack_up_to(2).unwrap();
        // Save the pre-compaction segments, compact, then restore one old
        // segment: the state a crash after rename-but-before-delete leaves.
        let saved: Vec<(PathBuf, Vec<u8>)> = DirBackend::list_gens(&dir)
            .unwrap()
            .iter()
            .map(|&g| {
                let p = DirBackend::seg_path(&dir, g);
                (p.clone(), fs::read(&p).unwrap())
            })
            .collect();
        q.compact(0).unwrap();
        drop(q);
        let (old_path, old_bytes) = &saved[0];
        fs::write(old_path, old_bytes).unwrap();
        let q = SegmentQueue::open(&dir, cfg(64, None, 2)).unwrap();
        assert_eq!(q.acked(), 2, "highest journaled ack wins");
        assert_eq!(q.depth(), 3, "duplicates collapse by seq");
        assert_eq!(q.next_seq(), 6);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn crash_before_rename_leaves_tmp_which_is_ignored() {
        let dir = tmp_dir("queue-crash-tmp");
        {
            let mut q = SegmentQueue::open(&dir, cfg(64, None, 8)).unwrap();
            q.enqueue(0, vec![], b"live".to_vec()).unwrap();
        }
        // A compaction that crashed before its rename: stray tmp file.
        fs::write(dir.join(".compact-000042.tmp"), b"garbage").unwrap();
        let q = SegmentQueue::open(&dir, cfg(64, None, 8)).unwrap();
        assert_eq!(q.depth(), 1);
        assert!(
            !dir.join(".compact-000042.tmp").exists(),
            "leftover tmp cleaned up"
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_rejected_cleanly() {
        let dir = tmp_dir("queue-torn");
        {
            let mut q = SegmentQueue::open(&dir, cfg(64, None, 8)).unwrap();
            q.enqueue(0, vec![1, 2], b"intact".to_vec()).unwrap();
        }
        // Crash mid-append: a promising length prefix with a short body.
        let seg = DirBackend::seg_path(&dir, 0);
        let mut f = fs::OpenOptions::new().append(true).open(&seg).unwrap();
        f.write_all(&500u32.to_le_bytes()).unwrap();
        f.write_all(b"torn").unwrap();
        drop(f);
        let mut q = SegmentQueue::open(&dir, cfg(64, None, 8)).unwrap();
        assert_eq!(q.depth(), 1);
        assert_eq!(
            q.recovery_anomalies(),
            0,
            "a torn final record is the normal crash signature"
        );
        let payloads: Vec<&[u8]> = q.pending(0).map(|e| e.payload.as_slice()).collect();
        assert_eq!(payloads, vec![b"intact".as_slice()]);
        // The queue stays appendable after recovering past a tear: the
        // new record lands in a fresh generation, not behind the garbage.
        q.enqueue(1, vec![], b"after".to_vec()).unwrap();
        drop(q);
        let q = SegmentQueue::open(&dir, cfg(64, None, 8)).unwrap();
        assert_eq!(q.depth(), 2);
        fs::remove_dir_all(&dir).unwrap();
    }
}
