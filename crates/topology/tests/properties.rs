//! Property-based tests for topology validation, routing and splitting.

use aaa_base::{Error, ServerId};
use aaa_topology::split::{split_by_traffic, SplitConfig, TrafficMatrix};
use aaa_topology::{trace_route, RoutingTable, TopologySpec};
use proptest::prelude::*;

/// Strategy: a random tree-structured decomposition description.
/// Returns (domain sizes, attach choices) from which we build a spec that
/// is acyclic by construction.
fn tree_spec_strategy() -> impl Strategy<Value = TopologySpec> {
    (
        prop::collection::vec(2usize..5, 1..6),
        prop::collection::vec((0usize..100, 0usize..100), 0..6),
    )
        .prop_map(|(sizes, attach)| {
            let mut domains: Vec<Vec<u16>> = Vec::new();
            let mut next = 0u16;
            for (i, &size) in sizes.iter().enumerate() {
                let mut members = Vec::with_capacity(size);
                if i > 0 {
                    // Attach through a random server of a random earlier domain.
                    let (d_pick, s_pick) = attach.get(i - 1).copied().unwrap_or((0, 0));
                    let parent = &domains[d_pick % domains.len()];
                    members.push(parent[s_pick % parent.len()]);
                }
                while members.len() < size {
                    members.push(next);
                    next += 1;
                }
                domains.push(members);
            }
            TopologySpec::from_domains(domains)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Tree-structured decompositions always validate and are acyclic.
    #[test]
    fn tree_specs_validate(spec in tree_spec_strategy()) {
        let topo = spec.validate().expect("tree-structured specs are valid");
        prop_assert!(topo.is_acyclic());
        prop_assert!(topo.server_count() >= 1);
    }

    /// Adding one extra membership that links two existing domains through
    /// a fresh shared server closes a cycle and must be rejected —
    /// *unless* one of the involved domains was the other's unique
    /// neighbour through that same server already (we construct a genuine
    /// chord: a server already present in domain A is inserted into
    /// domain B where A and B are distinct and already connected).
    #[test]
    fn chords_are_rejected(spec in tree_spec_strategy(), pick in 0usize..1000) {
        let domains = spec.domains().to_vec();
        prop_assume!(domains.len() >= 2);
        // Choose a victim server from domain 0 and insert it into another
        // domain it is not already in.
        let victim = domains[0][pick % domains[0].len()];
        let target = 1 + pick % (domains.len() - 1);
        prop_assume!(!domains[target].contains(&victim));
        let mut chorded: Vec<Vec<u16>> = domains
            .iter()
            .map(|d| d.iter().map(|s| s.as_u16()).collect())
            .collect();
        chorded[target].push(victim.as_u16());
        // The spec stays structurally fine but now has a bipartite cycle
        // (victim connects domain 0 and `target`, which were already
        // connected through the tree).
        let result = TopologySpec::from_domains(chorded).validate();
        prop_assert!(
            matches!(result, Err(Error::CyclicDomainGraph { .. })),
            "expected cycle rejection, got {result:?}"
        );
    }

    /// On every valid topology: routes exist between all pairs, follow
    /// shared domains hop by hop, and have symmetric lengths.
    #[test]
    fn routing_is_total_and_consistent(spec in tree_spec_strategy()) {
        let topo = spec.validate().expect("valid");
        let tables = RoutingTable::build_all(&topo).expect("tables build");
        let n = topo.server_count() as u16;
        for a in 0..n {
            for b in 0..n {
                let (a, b) = (ServerId::new(a), ServerId::new(b));
                let path = trace_route(&tables, a, b).expect("route exists");
                prop_assert_eq!(path.first().copied(), Some(a));
                prop_assert_eq!(path.last().copied(), Some(b));
                for w in path.windows(2) {
                    prop_assert!(topo.shared_domain(w[0], w[1]).is_some());
                }
                prop_assert_eq!(
                    tables[a.as_usize()].hops(b).unwrap(),
                    tables[b.as_usize()].hops(a).unwrap()
                );
                prop_assert_eq!(path.len() as u32 - 1, tables[a.as_usize()].hops(b).unwrap());
            }
        }
    }

    /// The splitter always produces a valid acyclic decomposition covering
    /// every server, whatever the traffic looks like.
    #[test]
    fn splitter_output_always_valid(
        n in 2usize..14,
        max_size in 2usize..7,
        rates in prop::collection::vec(0u32..20, 0..60),
    ) {
        let mut traffic = TrafficMatrix::new(n);
        for (k, rate) in rates.iter().enumerate() {
            let i = k % n;
            let j = (k / n + i + 1) % n;
            if i != j {
                traffic.set(i, j, f64::from(*rate));
            }
        }
        let spec = split_by_traffic(&traffic, &SplitConfig { max_domain_size: max_size })
            .expect("split succeeds");
        let topo = spec.validate().expect("split output validates");
        prop_assert!(topo.is_acyclic());
        prop_assert_eq!(topo.server_count(), n);
    }

    /// Figure 9 builders are always valid for reasonable parameters.
    #[test]
    fn figure9_builders_always_valid(k in 1u16..8, s in 2u16..8, d in 0u16..3) {
        let bus = TopologySpec::bus(k, s).validate().expect("bus valid");
        prop_assert!(bus.is_acyclic());
        let daisy = TopologySpec::daisy(k, s).validate().expect("daisy valid");
        prop_assert!(daisy.is_acyclic());
        let fanout = 2.min(s - 1).max(1);
        let tree = TopologySpec::tree(d, fanout, s).validate().expect("tree valid");
        prop_assert!(tree.is_acyclic());
    }
}
