//! Static routing tables, built at boot by shortest-path search (§5).
//!
//! The paper follows "the classical network protocol approach, using a
//! routing table": for each destination server, the table holds the
//! identifier of the server the message should be sent to next — the
//! destination itself when it shares a domain, a causal router-server
//! otherwise. Tables are built statically at boot time from the topology.

use serde::{Deserialize, Serialize};

use aaa_base::{Error, Result, ServerId};

use crate::topology::Topology;

/// One server's routing table: next hop and hop count per destination.
///
/// Built by breadth-first search over the server graph (an edge joins two
/// servers sharing a domain), with neighbors examined in ascending id order
/// so every boot produces identical tables.
///
/// # Examples
///
/// ```
/// use aaa_base::ServerId;
/// use aaa_topology::{RoutingTable, TopologySpec};
///
/// let topo = TopologySpec::from_domains(vec![
///     vec![0, 1, 2],
///     vec![2, 3, 4, 5],
///     vec![5, 6, 7],
/// ])
/// .validate()?;
/// let table = RoutingTable::build(&topo, ServerId::new(0))?;
/// // S0 -> S7 must go through the routers S2 then S5 (cf. Figure 2's
/// // S1 -> S3 -> S7 -> S8 route).
/// assert_eq!(table.next_hop(ServerId::new(7))?, ServerId::new(2));
/// assert_eq!(table.hops(ServerId::new(7))?, 3);
/// # Ok::<(), aaa_base::Error>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RoutingTable {
    me: ServerId,
    next: Vec<ServerId>,
    hops: Vec<u32>,
}

impl RoutingTable {
    /// Builds the routing table of server `me` for `topology`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownServer`] if `me` is not in the topology.
    /// (Unreachable destinations cannot occur: validation guarantees a
    /// connected server graph.)
    pub fn build(topology: &Topology, me: ServerId) -> Result<RoutingTable> {
        topology.check_server(me)?;
        let n = topology.server_count();
        let mut next = vec![me; n];
        let mut hops = vec![u32::MAX; n];
        hops[me.as_usize()] = 0;

        // BFS recording, for every destination, the *first hop* taken out
        // of `me` on a shortest path.
        let mut queue = std::collections::VecDeque::new();
        queue.push_back(me);
        while let Some(v) = queue.pop_front() {
            for &w in topology.neighbors(v) {
                if hops[w.as_usize()] == u32::MAX {
                    hops[w.as_usize()] = hops[v.as_usize()] + 1;
                    next[w.as_usize()] = if v == me { w } else { next[v.as_usize()] };
                    queue.push_back(w);
                }
            }
        }
        debug_assert!(
            hops.iter().all(|&h| h != u32::MAX),
            "validated topologies are connected"
        );
        Ok(RoutingTable { me, next, hops })
    }

    /// Builds the routing tables of every server, indexed by server id.
    ///
    /// # Errors
    ///
    /// Propagates any error from [`RoutingTable::build`] (none occur for a
    /// validated topology).
    pub fn build_all(topology: &Topology) -> Result<Vec<RoutingTable>> {
        topology
            .servers()
            .map(|s| Self::build(topology, s))
            .collect()
    }

    /// The server this table belongs to.
    pub fn me(&self) -> ServerId {
        self.me
    }

    /// The server to forward to next on the way to `dest`.
    ///
    /// Returns `me` itself when `dest == me` (local delivery).
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownServer`] if `dest` is out of range.
    pub fn next_hop(&self, dest: ServerId) -> Result<ServerId> {
        self.next
            .get(dest.as_usize())
            .copied()
            .ok_or(Error::UnknownServer(dest))
    }

    /// Number of hops to `dest` (0 for `me` itself).
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownServer`] if `dest` is out of range.
    pub fn hops(&self, dest: ServerId) -> Result<u32> {
        self.hops
            .get(dest.as_usize())
            .copied()
            .ok_or(Error::UnknownServer(dest))
    }

    /// The largest hop count in the table (the server's eccentricity).
    pub fn max_hops(&self) -> u32 {
        self.hops.iter().copied().max().unwrap_or(0)
    }
}

/// Follows the per-server tables from `from` to `to`, returning the full
/// server path, endpoints included — like a `traceroute` over the MOM.
///
/// # Errors
///
/// Returns [`Error::UnknownServer`] if either endpoint is out of range for
/// `tables`, or [`Error::NoRoute`] if the tables do not converge within
/// `tables.len()` hops (impossible for tables produced by
/// [`RoutingTable::build_all`]).
pub fn trace_route(tables: &[RoutingTable], from: ServerId, to: ServerId) -> Result<Vec<ServerId>> {
    if from.as_usize() >= tables.len() {
        return Err(Error::UnknownServer(from));
    }
    let mut path = vec![from];
    let mut cur = from;
    while cur != to {
        if path.len() > tables.len() {
            return Err(Error::NoRoute { from, to });
        }
        cur = tables[cur.as_usize()].next_hop(to)?;
        path.push(cur);
    }
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::TopologySpec;

    fn figure2() -> Topology {
        TopologySpec::from_domains(vec![
            vec![0, 1, 2],
            vec![3, 4],
            vec![6, 7],
            vec![2, 4, 5, 6],
        ])
        .validate()
        .unwrap()
    }

    fn s(i: u16) -> ServerId {
        ServerId::new(i)
    }

    #[test]
    fn intra_domain_is_direct() {
        let t = figure2();
        let rt = RoutingTable::build(&t, s(0)).unwrap();
        assert_eq!(rt.next_hop(s(1)).unwrap(), s(1));
        assert_eq!(rt.next_hop(s(2)).unwrap(), s(2));
        assert_eq!(rt.hops(s(1)).unwrap(), 1);
        assert_eq!(rt.next_hop(s(0)).unwrap(), s(0));
        assert_eq!(rt.hops(s(0)).unwrap(), 0);
    }

    #[test]
    fn paper_route_s1_to_s8() {
        // Paper: S1→S3, S3→S7, S7→S8 — in 0-based ids: 0→2→6→7.
        let t = figure2();
        let tables = RoutingTable::build_all(&t).unwrap();
        let path = trace_route(&tables, s(0), s(7)).unwrap();
        assert_eq!(path, vec![s(0), s(2), s(6), s(7)]);
    }

    #[test]
    fn routes_are_symmetric_in_length() {
        let t = figure2();
        let tables = RoutingTable::build_all(&t).unwrap();
        for a in t.servers() {
            for b in t.servers() {
                assert_eq!(
                    tables[a.as_usize()].hops(b).unwrap(),
                    tables[b.as_usize()].hops(a).unwrap(),
                    "asymmetric hop count {a}->{b}"
                );
            }
        }
    }

    #[test]
    fn every_hop_shares_a_domain() {
        let t = figure2();
        let tables = RoutingTable::build_all(&t).unwrap();
        for a in t.servers() {
            for b in t.servers() {
                let path = trace_route(&tables, a, b).unwrap();
                for w in path.windows(2) {
                    assert!(
                        t.shared_domain(w[0], w[1]).is_some(),
                        "hop {}->{} crosses no domain",
                        w[0],
                        w[1]
                    );
                }
            }
        }
    }

    #[test]
    fn max_hops_of_bus() {
        let t = TopologySpec::bus(4, 5).validate().unwrap();
        let tables = RoutingTable::build_all(&t).unwrap();
        // Leaf server -> router -> other router -> leaf server = 3 hops.
        let worst = tables.iter().map(|t| t.max_hops()).max().unwrap();
        assert_eq!(worst, 3);
    }

    #[test]
    fn unknown_destination_errors() {
        let t = figure2();
        let rt = RoutingTable::build(&t, s(0)).unwrap();
        assert!(matches!(rt.next_hop(s(99)), Err(Error::UnknownServer(_))));
        assert!(matches!(rt.hops(s(99)), Err(Error::UnknownServer(_))));
        assert!(matches!(
            RoutingTable::build(&t, s(99)),
            Err(Error::UnknownServer(_))
        ));
    }

    #[test]
    fn routing_is_deterministic() {
        let t = TopologySpec::tree(2, 2, 3).validate().unwrap();
        let a = RoutingTable::build_all(&t).unwrap();
        let b = RoutingTable::build_all(&t).unwrap();
        assert_eq!(a, b);
    }
}
