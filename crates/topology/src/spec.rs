//! Declarative topology specifications and the Figure 9 builders.

use serde::{Deserialize, Serialize};

use aaa_base::{Error, Result, ServerId};

use crate::topology::Topology;

/// A declarative description of a domain decomposition: which servers exist
/// and how they are grouped into domains of causality.
///
/// A spec is cheap to construct and may be invalid; [`TopologySpec::validate`]
/// turns it into a checked [`Topology`]. Builders are provided for the
/// paper's organizations (Figure 9): [`bus`](TopologySpec::bus),
/// [`daisy`](TopologySpec::daisy) and [`tree`](TopologySpec::tree), plus the
/// no-decomposition baseline [`single_domain`](TopologySpec::single_domain).
///
/// # Examples
///
/// ```
/// use aaa_topology::TopologySpec;
///
/// let spec = TopologySpec::bus(4, 5); // 4 leaf domains of 5 servers + backbone
/// let topo = spec.validate().unwrap();
/// assert_eq!(topo.server_count(), 20);
/// assert_eq!(topo.domain_count(), 5); // 4 leaves + the backbone
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TopologySpec {
    domains: Vec<Vec<ServerId>>,
}

impl TopologySpec {
    /// Builds a spec from explicit domain member lists (raw `u16` server
    /// ids for convenience).
    ///
    /// Server ids must form a dense range `0..n`; this is checked by
    /// [`TopologySpec::validate`].
    pub fn from_domains(domains: Vec<Vec<u16>>) -> Self {
        TopologySpec {
            domains: domains
                .into_iter()
                .map(|d| d.into_iter().map(ServerId::new).collect())
                .collect(),
        }
    }

    /// Builds a spec from explicit domain member lists of [`ServerId`].
    pub fn from_server_domains(domains: Vec<Vec<ServerId>>) -> Self {
        TopologySpec { domains }
    }

    /// The classical, non-decomposed MOM: all `n` servers in one domain.
    ///
    /// This is the baseline of Figures 7 and 8, with `O(n²)` causal-ordering
    /// cost.
    pub fn single_domain(n: u16) -> Self {
        TopologySpec {
            domains: vec![(0..n).map(ServerId::new).collect()],
        }
    }

    /// The **bus** organization of Figure 9 and the Figure 10 experiment:
    /// `k` leaf domains of `s` servers each, whose first servers are linked
    /// by a backbone domain `D0`.
    ///
    /// Total servers: `k × s`. Domain 0 is the backbone; domains `1..=k` are
    /// the leaves. The first server of each leaf is its causal
    /// router-server.
    ///
    /// # Panics
    ///
    /// Panics if `k` or `s` is zero.
    pub fn bus(k: u16, s: u16) -> Self {
        assert!(
            k > 0 && s > 0,
            "bus needs at least one domain and one server"
        );
        let mut domains = Vec::with_capacity(k as usize + 1);
        // Backbone first so it gets DomainId 0, matching Figure 9's D0.
        domains.push((0..k).map(|i| ServerId::new(i * s)).collect());
        for i in 0..k {
            domains.push((0..s).map(|j| ServerId::new(i * s + j)).collect());
        }
        TopologySpec { domains }
    }

    /// The **daisy** organization of Figure 9: a chain of `k` domains of `s`
    /// servers, adjacent domains sharing one router-server.
    ///
    /// Total servers: `k × s − (k − 1)` (each shared router is counted
    /// once).
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero, or `s < 2` while `k > 1` (a chain link needs a
    /// server on each side of the shared router).
    pub fn daisy(k: u16, s: u16) -> Self {
        assert!(k > 0, "daisy needs at least one domain");
        assert!(
            k == 1 || s >= 2,
            "daisy links need domains of at least 2 servers"
        );
        let mut domains = Vec::with_capacity(k as usize);
        let mut next = 0u16;
        for i in 0..k {
            let start = if i == 0 { 0 } else { next - 1 }; // share last server
            let members: Vec<ServerId> = (start..start + s).map(ServerId::new).collect();
            next = start + s;
            domains.push(members);
        }
        TopologySpec { domains }
    }

    /// The **hierarchical (tree)** organization of Figure 9: a root domain
    /// of `s` servers; every domain at depth `< depth` has `fanout` child
    /// domains, each sharing its first server with one server of the parent
    /// generation.
    ///
    /// Each child domain contributes `s − 1` new servers (its router is a
    /// parent member... precisely: the child's router *is* a fresh server
    /// that also joins the parent domain would change parent size, so
    /// instead the child's first member is one of the parent's existing
    /// servers). With `s` servers per domain and `k = fanout`, depth `d`,
    /// the server count matches the paper's
    /// `n = 1 + (s−1)(k^(d+1) − 1)/(k − 1)` for `k > 1`.
    ///
    /// # Panics
    ///
    /// Panics if `s < 2` and `depth > 0`, or `fanout` is zero while
    /// `depth > 0`, or the tree would have more domains than parent slots
    /// (`fanout > s` with each parent server hosting at most one child per
    /// level... concretely `fanout ≤ s − 1` is required for depth ≥ 1 so
    /// each child hangs off a distinct non-router parent server, plus the
    /// root may also use its first server).
    pub fn tree(depth: u16, fanout: u16, s: u16) -> Self {
        if depth == 0 {
            return TopologySpec::single_domain(s);
        }
        assert!(s >= 2, "tree domains need at least 2 servers");
        assert!(fanout >= 1, "tree needs a fanout of at least 1");
        assert!(
            fanout <= s,
            "fanout {fanout} exceeds the {s} attachment points per domain"
        );
        let mut domains: Vec<Vec<ServerId>> = Vec::new();
        let mut next = 0u16;
        // Root domain.
        let root: Vec<ServerId> = (0..s).map(ServerId::new).collect();
        next += s;
        domains.push(root);
        // Grow level by level; `frontier` holds indices of domains whose
        // children are still to be created.
        let mut frontier = vec![0usize];
        for _ in 0..depth {
            let mut next_frontier = Vec::new();
            for &parent_idx in &frontier {
                for c in 0..fanout {
                    // Child root = the (c+1 mod s)-th member of the parent,
                    // skipping index 0 when possible so leaf routers differ
                    // from the parent's own router.
                    let attach = domains[parent_idx][((c + 1) % s) as usize];
                    let mut child = Vec::with_capacity(s as usize);
                    child.push(attach);
                    for _ in 1..s {
                        child.push(ServerId::new(next));
                        next += 1;
                    }
                    domains.push(child);
                    next_frontier.push(domains.len() - 1);
                }
            }
            frontier = next_frontier;
        }
        TopologySpec { domains }
    }

    /// Parses the plain-text topology format: one domain per line, member
    /// server ids separated by whitespace; `#` starts a comment; blank
    /// lines are ignored.
    ///
    /// ```text
    /// # Figure 2 of the paper (0-based)
    /// 0 1 2      # domain A
    /// 3 4        # domain B
    /// 6 7        # domain C
    /// 2 4 5 6    # domain D
    /// ```
    ///
    /// # Errors
    ///
    /// Returns [`Error::Config`] on unparsable ids; structural problems
    /// (duplicates, sparse ids, cycles) surface later from
    /// [`TopologySpec::validate`].
    ///
    /// # Examples
    ///
    /// ```
    /// use aaa_topology::TopologySpec;
    ///
    /// let spec = TopologySpec::parse("0 1 2\n2 3 4 # second domain\n")?;
    /// assert_eq!(spec.domain_count(), 2);
    /// # Ok::<(), aaa_base::Error>(())
    /// ```
    pub fn parse(text: &str) -> Result<TopologySpec> {
        let mut domains = Vec::new();
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let mut members = Vec::new();
            for token in line.split_whitespace() {
                let id: u16 = token.parse().map_err(|_| {
                    Error::Config(format!("line {}: invalid server id {token:?}", lineno + 1))
                })?;
                members.push(ServerId::new(id));
            }
            domains.push(members);
        }
        if domains.is_empty() {
            return Err(Error::Config("no domains in topology text".into()));
        }
        Ok(TopologySpec { domains })
    }

    /// Renders the spec in the format accepted by [`TopologySpec::parse`].
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for members in &self.domains {
            let ids: Vec<String> = members.iter().map(|s| s.as_u16().to_string()).collect();
            out.push_str(&ids.join(" "));
            out.push('\n');
        }
        out
    }

    /// The domain member lists.
    pub fn domains(&self) -> &[Vec<ServerId>] {
        &self.domains
    }

    /// Number of domains in the spec.
    pub fn domain_count(&self) -> usize {
        self.domains.len()
    }

    /// Number of distinct servers mentioned in the spec.
    pub fn server_count(&self) -> usize {
        let mut ids: Vec<u16> = self.domains.iter().flatten().map(|s| s.as_u16()).collect();
        ids.sort_unstable();
        ids.dedup();
        ids.len()
    }

    /// Validates the spec into a [`Topology`].
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidTopology`] if a domain is empty or contains a
    /// duplicate member, if server ids are not dense `0..n`, or if the
    /// server graph is disconnected; returns [`Error::CyclicDomainGraph`]
    /// if the domain interconnection structure has a cycle (precondition P2
    /// of the paper's theorem).
    pub fn validate(self) -> Result<Topology> {
        Topology::build(self)
    }

    /// Validates the spec like [`TopologySpec::validate`] but *allows* a
    /// cyclic domain graph.
    ///
    /// Cyclic decompositions violate the theorem's precondition and can
    /// break global causality — this constructor exists so that tests and
    /// experiments can demonstrate exactly that (Figure 4).
    pub fn validate_allow_cycles(self) -> Result<Topology> {
        Topology::build_allow_cycles(self)
    }
}

impl FromIterator<Vec<ServerId>> for TopologySpec {
    fn from_iter<T: IntoIterator<Item = Vec<ServerId>>>(iter: T) -> Self {
        TopologySpec {
            domains: iter.into_iter().collect(),
        }
    }
}

/// Validation helpers shared with `Topology::build`.
pub(crate) fn check_structure(spec: &TopologySpec) -> Result<usize> {
    if spec.domains.is_empty() {
        return Err(Error::InvalidTopology("no domains".into()));
    }
    let mut seen: Vec<u16> = Vec::new();
    for (i, members) in spec.domains.iter().enumerate() {
        if members.is_empty() {
            return Err(Error::InvalidTopology(format!("domain D{i} is empty")));
        }
        let mut sorted: Vec<u16> = members.iter().map(|s| s.as_u16()).collect();
        sorted.sort_unstable();
        if sorted.windows(2).any(|w| w[0] == w[1]) {
            return Err(Error::InvalidTopology(format!(
                "domain D{i} contains a duplicate member"
            )));
        }
        seen.extend(sorted);
    }
    seen.sort_unstable();
    seen.dedup();
    let n = seen.len();
    if seen[0] != 0 || seen[n - 1] as usize != n - 1 {
        return Err(Error::InvalidTopology(format!(
            "server ids must be dense 0..{n}, got range {}..={}",
            seen[0],
            seen[n - 1]
        )));
    }
    Ok(n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_domain_shape() {
        let spec = TopologySpec::single_domain(5);
        assert_eq!(spec.domain_count(), 1);
        assert_eq!(spec.server_count(), 5);
    }

    #[test]
    fn bus_shape() {
        let spec = TopologySpec::bus(3, 4);
        assert_eq!(spec.domain_count(), 4);
        assert_eq!(spec.server_count(), 12);
        // Backbone = the first server of each leaf.
        assert_eq!(
            spec.domains()[0],
            vec![ServerId::new(0), ServerId::new(4), ServerId::new(8)]
        );
    }

    #[test]
    fn daisy_shape() {
        let spec = TopologySpec::daisy(3, 4);
        assert_eq!(spec.domain_count(), 3);
        // 3*4 - 2 shared = 10 servers
        assert_eq!(spec.server_count(), 10);
        // adjacent domains share exactly one server
        let d0: Vec<u16> = spec.domains()[0].iter().map(|s| s.as_u16()).collect();
        let d1: Vec<u16> = spec.domains()[1].iter().map(|s| s.as_u16()).collect();
        let shared: Vec<u16> = d0.iter().filter(|x| d1.contains(x)).copied().collect();
        assert_eq!(shared.len(), 1);
    }

    #[test]
    fn tree_matches_paper_count_formula() {
        // Paper §6.2: n = 1 + (s-1)(k^(d+1) - 1)/(k-1).
        for (d, k, s) in [(1u16, 2u16, 3u16), (2, 2, 3), (1, 3, 4), (2, 2, 4)] {
            let spec = TopologySpec::tree(d, k, s);
            let expected =
                1 + (s as usize - 1) * ((k as usize).pow(d as u32 + 1) - 1) / (k as usize - 1);
            assert_eq!(
                spec.server_count(),
                expected,
                "tree(depth={d}, fanout={k}, s={s})"
            );
        }
    }

    #[test]
    fn tree_depth_zero_is_single_domain() {
        let spec = TopologySpec::tree(0, 2, 7);
        assert_eq!(spec, TopologySpec::single_domain(7));
    }

    #[test]
    fn structure_rejects_empty_domain() {
        let spec = TopologySpec::from_domains(vec![vec![0], vec![]]);
        assert!(matches!(
            check_structure(&spec),
            Err(Error::InvalidTopology(_))
        ));
    }

    #[test]
    fn structure_rejects_duplicate_member() {
        let spec = TopologySpec::from_domains(vec![vec![0, 0]]);
        assert!(matches!(
            check_structure(&spec),
            Err(Error::InvalidTopology(_))
        ));
    }

    #[test]
    fn structure_rejects_sparse_ids() {
        let spec = TopologySpec::from_domains(vec![vec![0, 2]]);
        assert!(matches!(
            check_structure(&spec),
            Err(Error::InvalidTopology(_))
        ));
        let spec = TopologySpec::from_domains(vec![vec![1, 2]]);
        assert!(matches!(
            check_structure(&spec),
            Err(Error::InvalidTopology(_))
        ));
    }

    #[test]
    fn parse_and_render_roundtrip() {
        let text = "# header comment\n0 1 2\n\n2 3 4 # trailing comment\n";
        let spec = TopologySpec::parse(text).unwrap();
        assert_eq!(spec.domain_count(), 2);
        assert_eq!(spec.server_count(), 5);
        let rendered = spec.to_text();
        assert_eq!(rendered, "0 1 2\n2 3 4\n");
        assert_eq!(TopologySpec::parse(&rendered).unwrap(), spec);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(TopologySpec::parse("0 1 banana").is_err());
        assert!(TopologySpec::parse("").is_err());
        assert!(TopologySpec::parse("# only comments\n").is_err());
        assert!(TopologySpec::parse("70000").is_err()); // > u16::MAX
    }

    #[test]
    fn parsed_spec_validates_like_any_other() {
        let spec = TopologySpec::parse("0 1\n1 2\n2 0\n").unwrap();
        assert!(spec.validate().is_err(), "cycle must still be caught");
        let spec = TopologySpec::parse("0 1 2\n2 3\n").unwrap();
        assert!(spec.validate().is_ok());
    }

    #[test]
    fn from_iterator_collects() {
        let spec: TopologySpec = vec![vec![ServerId::new(0), ServerId::new(1)]]
            .into_iter()
            .collect();
        assert_eq!(spec.domain_count(), 1);
    }

    #[test]
    #[should_panic(expected = "at least 2 servers")]
    fn daisy_rejects_short_domains() {
        let _ = TopologySpec::daisy(3, 1);
    }
}
