//! The validated topology: membership tables and domain id tables.

use serde::{Deserialize, Serialize};

use aaa_base::{DomainId, DomainServerId, Error, Result, ServerId};

use crate::graph;
use crate::spec::{check_structure, TopologySpec};

/// One validated domain of causality.
///
/// Members are kept in ascending [`ServerId`] order; a server's
/// [`DomainServerId`] is its index in that order — this is the `idTable` of
/// the paper's `DomainItem` structure (§5), mapping between the global and
/// per-domain namespaces.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DomainInfo {
    id: DomainId,
    members: Vec<ServerId>,
}

impl DomainInfo {
    /// The domain identifier.
    pub fn id(&self) -> DomainId {
        self.id
    }

    /// The member servers, ascending.
    pub fn members(&self) -> &[ServerId] {
        &self.members
    }

    /// Number of member servers (`s` in the paper's cost model).
    pub fn size(&self) -> usize {
        self.members.len()
    }

    /// Returns `true` if `server` is a member.
    pub fn contains(&self, server: ServerId) -> bool {
        self.members.binary_search(&server).is_ok()
    }

    /// Translates a global server id to its id within this domain.
    pub fn domain_server_id(&self, server: ServerId) -> Option<DomainServerId> {
        self.members
            .binary_search(&server)
            .ok()
            .map(|i| DomainServerId::new(i as u16))
    }

    /// Translates a per-domain id back to the global server id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range for this domain.
    pub fn server_at(&self, id: DomainServerId) -> ServerId {
        self.members[id.as_usize()]
    }
}

/// A validated domain decomposition.
///
/// Produced by [`TopologySpec::validate`]; guarantees that server ids are
/// dense, domains are non-empty and duplicate-free, the server graph is
/// connected, and — unless built with
/// [`TopologySpec::validate_allow_cycles`] — that the domain interconnection
/// graph is acyclic (the theorem's precondition P2).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Topology {
    spec: TopologySpec,
    n: usize,
    domains: Vec<DomainInfo>,
    memberships: Vec<Vec<DomainId>>,
    adjacency: Vec<Vec<ServerId>>,
    acyclic: bool,
}

impl Topology {
    pub(crate) fn build(spec: TopologySpec) -> Result<Topology> {
        Self::build_inner(spec, false)
    }

    pub(crate) fn build_allow_cycles(spec: TopologySpec) -> Result<Topology> {
        Self::build_inner(spec, true)
    }

    fn build_inner(spec: TopologySpec, allow_cycles: bool) -> Result<Topology> {
        let n = check_structure(&spec)?;
        let checked = graph::check(&spec, n, allow_cycles)?;
        let acyclic = !allow_cycles || graph::check(&spec, n, false).is_ok();
        let adjacency = graph::server_adjacency(&spec, n);
        let domains = spec
            .domains()
            .iter()
            .enumerate()
            .map(|(i, members)| {
                let mut members = members.clone();
                members.sort_unstable();
                DomainInfo {
                    id: DomainId::new(i as u16),
                    members,
                }
            })
            .collect();
        Ok(Topology {
            spec,
            n,
            domains,
            memberships: checked.memberships,
            adjacency,
            acyclic,
        })
    }

    /// The original specification.
    pub fn spec(&self) -> &TopologySpec {
        &self.spec
    }

    /// Number of servers in the MOM.
    pub fn server_count(&self) -> usize {
        self.n
    }

    /// Number of domains of causality.
    pub fn domain_count(&self) -> usize {
        self.domains.len()
    }

    /// Iterates over all server ids.
    pub fn servers(&self) -> impl Iterator<Item = ServerId> + '_ {
        (0..self.n as u16).map(ServerId::new)
    }

    /// All domains.
    pub fn domains(&self) -> &[DomainInfo] {
        &self.domains
    }

    /// A domain by id.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownDomain`] if the id is out of range.
    pub fn domain(&self, id: DomainId) -> Result<&DomainInfo> {
        self.domains
            .get(id.as_usize())
            .ok_or(Error::UnknownDomain(id))
    }

    /// The domains `server` belongs to, ascending.
    ///
    /// # Panics
    ///
    /// Panics if `server` is out of range.
    pub fn memberships(&self, server: ServerId) -> &[DomainId] {
        &self.memberships[server.as_usize()]
    }

    /// Returns `true` if `server` belongs to two or more domains — i.e., it
    /// is a causal router-server (§4.1).
    ///
    /// # Panics
    ///
    /// Panics if `server` is out of range.
    pub fn is_router(&self, server: ServerId) -> bool {
        self.memberships[server.as_usize()].len() >= 2
    }

    /// All causal router-servers, ascending.
    pub fn routers(&self) -> Vec<ServerId> {
        self.servers().filter(|&s| self.is_router(s)).collect()
    }

    /// The smallest-id domain containing both servers, if any.
    ///
    /// The channel stamps a message with the clock of the domain shared with
    /// the next hop; taking the smallest id makes the choice deterministic
    /// on both sides of the link.
    ///
    /// # Panics
    ///
    /// Panics if either server is out of range.
    pub fn shared_domain(&self, a: ServerId, b: ServerId) -> Option<DomainId> {
        let (da, db) = (
            &self.memberships[a.as_usize()],
            &self.memberships[b.as_usize()],
        );
        // Both lists are sorted: linear intersection, first hit wins.
        let (mut i, mut j) = (0, 0);
        while i < da.len() && j < db.len() {
            match da[i].cmp(&db[j]) {
                std::cmp::Ordering::Equal => return Some(da[i]),
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
            }
        }
        None
    }

    /// Servers sharing at least one domain with `server`, ascending.
    ///
    /// # Panics
    ///
    /// Panics if `server` is out of range.
    pub fn neighbors(&self, server: ServerId) -> &[ServerId] {
        &self.adjacency[server.as_usize()]
    }

    /// Whether the domain interconnection graph is acyclic (theorem
    /// precondition P2). Always `true` for topologies built with
    /// [`TopologySpec::validate`].
    pub fn is_acyclic(&self) -> bool {
        self.acyclic
    }

    /// Renders the decomposition as a Graphviz `dot` graph: one cluster
    /// per domain, servers as nodes (router-servers doubled-circled),
    /// cluster membership edges for routers.
    ///
    /// ```bash
    /// cargo run --bin aaa-demo figure2 | … # or from code:
    /// ```
    ///
    /// ```
    /// use aaa_topology::TopologySpec;
    ///
    /// let topo = TopologySpec::bus(2, 2).validate()?;
    /// let dot = topo.to_dot();
    /// assert!(dot.starts_with("graph domains {"));
    /// assert!(dot.contains("cluster_d0"));
    /// # Ok::<(), aaa_base::Error>(())
    /// ```
    pub fn to_dot(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("graph domains {\n");
        for s in self.servers() {
            let shape = if self.is_router(s) {
                "doublecircle"
            } else {
                "circle"
            };
            let _ = writeln!(out, "  s{} [label=\"{}\", shape={}];", s.as_u16(), s, shape);
        }
        for d in &self.domains {
            let _ = writeln!(out, "  subgraph cluster_d{} {{", d.id().as_u16());
            let _ = writeln!(out, "    label=\"{}\";", d.id());
            // A simple chain of edges keeps every member visibly grouped.
            for w in d.members().windows(2) {
                let _ = writeln!(out, "    s{} -- s{};", w[0].as_u16(), w[1].as_u16());
            }
            if d.size() == 1 {
                let _ = writeln!(out, "    s{};", d.members()[0].as_u16());
            }
            let _ = writeln!(out, "  }}");
        }
        out.push_str("}\n");
        out
    }

    /// Checks that `server` exists.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownServer`] if it does not.
    pub fn check_server(&self, server: ServerId) -> Result<()> {
        if server.as_usize() < self.n {
            Ok(())
        } else {
            Err(Error::UnknownServer(server))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn figure2() -> Topology {
        TopologySpec::from_domains(vec![
            vec![0, 1, 2],
            vec![3, 4],
            vec![6, 7],
            vec![2, 4, 5, 6],
        ])
        .validate()
        .unwrap()
    }

    #[test]
    fn figure2_basics() {
        let t = figure2();
        assert_eq!(t.server_count(), 8);
        assert_eq!(t.domain_count(), 4);
        assert!(t.is_acyclic());
        assert_eq!(
            t.routers(),
            vec![ServerId::new(2), ServerId::new(4), ServerId::new(6)]
        );
        assert!(!t.is_router(ServerId::new(0)));
    }

    #[test]
    fn domain_id_tables() {
        let t = figure2();
        let d3 = t.domain(DomainId::new(3)).unwrap();
        assert_eq!(d3.size(), 4);
        assert_eq!(
            d3.domain_server_id(ServerId::new(5)),
            Some(DomainServerId::new(2))
        );
        assert_eq!(d3.server_at(DomainServerId::new(1)), ServerId::new(4));
        assert_eq!(d3.domain_server_id(ServerId::new(0)), None);
        assert!(d3.contains(ServerId::new(6)));
    }

    #[test]
    fn shared_domain_lookup() {
        let t = figure2();
        assert_eq!(
            t.shared_domain(ServerId::new(0), ServerId::new(2)),
            Some(DomainId::new(0))
        );
        assert_eq!(
            t.shared_domain(ServerId::new(2), ServerId::new(6)),
            Some(DomainId::new(3))
        );
        assert_eq!(t.shared_domain(ServerId::new(0), ServerId::new(7)), None);
    }

    #[test]
    fn neighbors_follow_domains() {
        let t = figure2();
        assert_eq!(
            t.neighbors(ServerId::new(0)),
            &[ServerId::new(1), ServerId::new(2)]
        );
        assert_eq!(
            t.neighbors(ServerId::new(2)),
            &[
                ServerId::new(0),
                ServerId::new(1),
                ServerId::new(4),
                ServerId::new(5),
                ServerId::new(6)
            ]
        );
    }

    #[test]
    fn unknown_lookups_error() {
        let t = figure2();
        assert!(matches!(
            t.domain(DomainId::new(99)),
            Err(Error::UnknownDomain(_))
        ));
        assert!(matches!(
            t.check_server(ServerId::new(99)),
            Err(Error::UnknownServer(_))
        ));
        assert!(t.check_server(ServerId::new(7)).is_ok());
    }

    #[test]
    fn cyclic_spec_rejected_but_allowed_explicitly() {
        let cyclic = TopologySpec::from_domains(vec![vec![0, 1], vec![1, 2], vec![2, 0]]);
        assert!(cyclic.clone().validate().is_err());
        let t = cyclic.validate_allow_cycles().unwrap();
        assert!(!t.is_acyclic());
    }

    #[test]
    fn dot_export_shape() {
        let t = figure2();
        let dot = t.to_dot();
        assert!(dot.starts_with("graph domains {"));
        assert!(dot.trim_end().ends_with('}'));
        // Every server appears; routers double-circled.
        for s in 0..8 {
            assert!(dot.contains(&format!("s{s} [label=\"S{s}\"")));
        }
        assert!(dot.contains("s2 [label=\"S2\", shape=doublecircle]"));
        assert!(dot.contains("s0 [label=\"S0\", shape=circle]"));
        // One cluster per domain.
        for d in 0..4 {
            assert!(dot.contains(&format!("cluster_d{d}")));
        }
        // Singleton domains render their lone member.
        let single = TopologySpec::from_domains(vec![vec![0, 1], vec![1]])
            .validate_allow_cycles()
            .unwrap();
        assert!(single.to_dot().contains("cluster_d1"));
    }

    #[test]
    fn membership_lists_are_sorted() {
        let t = figure2();
        for s in t.servers() {
            let m = t.memberships(s);
            assert!(m.windows(2).all(|w| w[0] < w[1]));
            assert!(!m.is_empty());
        }
    }
}
