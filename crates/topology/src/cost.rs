//! The analytical cost model of §6.2.
//!
//! The paper explains the measured scaling with a simple model: sending one
//! message inside a domain of `s` servers costs `s²` (matrix-clock
//! maintenance), and a message crossing a tree of domains of depth `d`
//! traverses at most `2d + 1` domains, so the worst-case cost of one
//! end-to-end message is `C ≈ (2d + 1)·s²`.
//!
//! - **no decomposition**: one domain of `n` servers, `C ≈ n²` (quadratic —
//!   Figures 7 and 8);
//! - **bus** (depth `d = 1`, `√n` domains of `s = √n` servers):
//!   `C ≈ 3·n` (linear — Figure 10);
//! - **general tree** with fixed `s` and fanout `k`:
//!   `C ≈ 2·s²·ln(n)/ln(k)` (logarithmic), but with a larger constant — the
//!   paper notes a tree may lose to a bus once routing overhead
//!   (proportional to `d`) is accounted for.

/// Cost, in abstract "matrix cell operations", of one message delivery in a
/// domain of `s` servers.
///
/// The paper takes the cost of sending a message in a domain of `s` servers
/// to be `s²` (§6.2).
pub fn domain_crossing_cost(s: usize) -> u64 {
    (s as u64) * (s as u64)
}

/// Worst-case end-to-end message cost in a domain tree of depth `d` with
/// `s` servers per domain: `(2d + 1)·s²` (§6.2).
pub fn tree_message_cost(depth: usize, s: usize) -> u64 {
    (2 * depth as u64 + 1) * domain_crossing_cost(s)
}

/// Total number of servers in a domain tree of depth `d`, fanout `k`, `s`
/// servers per domain: `n = 1 + (s−1)(k^(d+1) − 1)/(k − 1)` (§6.2).
///
/// # Panics
///
/// Panics if `k < 2` (the paper's formula assumes a branching tree; use a
/// bus or daisy for `k = 1`).
pub fn tree_server_count(depth: usize, k: usize, s: usize) -> u64 {
    assert!(k >= 2, "the tree formula requires fanout >= 2");
    let k = k as u64;
    let s = s as u64;
    1 + (s - 1) * (k.pow(depth as u32 + 1) - 1) / (k - 1)
}

/// Cost of one message in the non-decomposed MOM of `n` servers: `n²`.
pub fn flat_message_cost(n: usize) -> u64 {
    domain_crossing_cost(n)
}

/// Cost of one remote message in the bus organization used for Figure 10:
/// `√n` leaf domains of `√n` servers on a backbone, depth 1, so
/// `C ≈ 3·(√n)² = 3·n` — linear in the application size.
pub fn bus_message_cost(n: usize) -> u64 {
    let s = (n as f64).sqrt().ceil() as usize;
    tree_message_cost(1, s)
}

/// Per-message control-information *storage* on one server (cells held in
/// matrix clocks): `n²` without decomposition, `Σ s_d²` over the server's
/// domains with it.
pub fn server_state_cells(domain_sizes: &[usize]) -> u64 {
    domain_sizes.iter().map(|&s| (s as u64) * (s as u64)).sum()
}

/// Simple least-squares fit helpers used by the experiment harness to
/// check the *shape* of measured series (quadratic for Figure 7/8, linear
/// for Figure 10).
pub mod fit {
    /// Least-squares fit of `y = a + b·x`, returning `(a, b, rmse)`.
    ///
    /// # Panics
    ///
    /// Panics if the slices differ in length or have fewer than 2 points.
    pub fn linear(xs: &[f64], ys: &[f64]) -> (f64, f64, f64) {
        fit_with(xs, ys, |x| x)
    }

    /// Least-squares fit of `y = a + b·x²`, returning `(a, b, rmse)`.
    ///
    /// # Panics
    ///
    /// Panics if the slices differ in length or have fewer than 2 points.
    pub fn quadratic(xs: &[f64], ys: &[f64]) -> (f64, f64, f64) {
        fit_with(xs, ys, |x| x * x)
    }

    fn fit_with(xs: &[f64], ys: &[f64], basis: impl Fn(f64) -> f64) -> (f64, f64, f64) {
        assert_eq!(xs.len(), ys.len(), "mismatched series lengths");
        assert!(xs.len() >= 2, "need at least two points to fit");
        let n = xs.len() as f64;
        let ts: Vec<f64> = xs.iter().map(|&x| basis(x)).collect();
        let st: f64 = ts.iter().sum();
        let sy: f64 = ys.iter().sum();
        let stt: f64 = ts.iter().map(|t| t * t).sum();
        let sty: f64 = ts.iter().zip(ys).map(|(t, y)| t * y).sum();
        let denom = n * stt - st * st;
        let b = if denom.abs() < f64::EPSILON {
            0.0
        } else {
            (n * sty - st * sy) / denom
        };
        let a = (sy - b * st) / n;
        let mse: f64 = ts
            .iter()
            .zip(ys)
            .map(|(t, y)| {
                let e = y - (a + b * t);
                e * e
            })
            .sum::<f64>()
            / n;
        (a, b, mse.sqrt())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_cost_is_quadratic() {
        assert_eq!(flat_message_cost(10), 100);
        assert_eq!(flat_message_cost(50), 2500);
        // 5x servers -> 25x cost
        assert_eq!(flat_message_cost(50) / flat_message_cost(10), 25);
    }

    #[test]
    fn bus_cost_is_linear() {
        // C(n) ≈ 3n for perfect squares.
        assert_eq!(bus_message_cost(100), 300);
        assert_eq!(bus_message_cost(400), 1200);
        assert_eq!(bus_message_cost(400) / bus_message_cost(100), 4);
    }

    #[test]
    fn tree_cost_formula() {
        assert_eq!(tree_message_cost(0, 7), 49);
        assert_eq!(tree_message_cost(2, 4), 5 * 16);
    }

    #[test]
    fn tree_count_matches_builder() {
        use crate::TopologySpec;
        for (d, k, s) in [(1usize, 2usize, 3usize), (2, 2, 3), (1, 3, 4)] {
            let spec = TopologySpec::tree(d as u16, k as u16, s as u16);
            assert_eq!(spec.server_count() as u64, tree_server_count(d, k, s));
        }
    }

    #[test]
    fn decomposition_beats_flat_beyond_small_n() {
        // The crossover the paper's Figure 11 shows: for small n the flat
        // MOM is cheaper; for large n the bus wins by a widening margin.
        assert!(flat_message_cost(2) <= bus_message_cost(2));
        assert!(flat_message_cost(100) > bus_message_cost(100));
        assert!(flat_message_cost(10_000) / bus_message_cost(10_000) > 300);
    }

    #[test]
    fn state_cells_sum_over_domains() {
        // A router in two domains of 5 stores 50 cells instead of n² = 100
        // for a flat 10-server MOM.
        assert_eq!(server_state_cells(&[5, 5]), 50);
        assert_eq!(server_state_cells(&[10]), 100);
        assert_eq!(server_state_cells(&[]), 0);
    }

    #[test]
    fn linear_fit_recovers_coefficients() {
        let xs: Vec<f64> = (1..=10).map(|x| x as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 + 2.0 * x).collect();
        let (a, b, rmse) = fit::linear(&xs, &ys);
        assert!((a - 3.0).abs() < 1e-9);
        assert!((b - 2.0).abs() < 1e-9);
        assert!(rmse < 1e-9);
    }

    #[test]
    fn quadratic_fit_recovers_coefficients() {
        let xs: Vec<f64> = (1..=10).map(|x| x as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 5.0 + 0.5 * x * x).collect();
        let (a, b, rmse) = fit::quadratic(&xs, &ys);
        assert!((a - 5.0).abs() < 1e-9);
        assert!((b - 0.5).abs() < 1e-9);
        assert!(rmse < 1e-9);
    }

    #[test]
    fn quadratic_fits_paper_figure7_better_than_linear() {
        // The paper's Figure 7 series.
        let xs = [10.0, 20.0, 30.0, 40.0, 50.0];
        let ys = [61.0, 69.0, 88.0, 136.0, 201.0];
        let (_, _, rmse_lin) = fit::linear(&xs, &ys);
        let (_, _, rmse_quad) = fit::quadratic(&xs, &ys);
        assert!(
            rmse_quad < rmse_lin,
            "paper's own data should prefer the quadratic fit"
        );
    }

    #[test]
    fn linear_fits_paper_figure10_better_than_quadratic() {
        // The paper's Figure 10 series.
        let xs = [10.0, 20.0, 30.0, 40.0, 50.0, 60.0, 90.0, 120.0, 150.0];
        let ys = [
            159.0, 175.0, 185.0, 192.0, 189.0, 205.0, 212.0, 217.0, 218.0,
        ];
        let (_, b_lin, rmse_lin) = fit::linear(&xs, &ys);
        let (_, _, rmse_quad) = fit::quadratic(&xs, &ys);
        assert!(rmse_lin < rmse_quad);
        assert!(
            b_lin > 0.0 && b_lin < 1.0,
            "gentle linear slope, got {b_lin}"
        );
    }

    #[test]
    #[should_panic(expected = "fanout >= 2")]
    fn tree_count_rejects_k1() {
        let _ = tree_server_count(1, 1, 3);
    }
}
