//! Automatic domain splitting — the paper's future work (§7), implemented.
//!
//! "The division of the MOM in domains needs to be done carefully and the
//! new problem is to find an optimal splitting. […] it can be made
//! according to the application's topology. This latter solution exploits
//! the description of applications […] to obtain the application graph
//! connectivity and to determine an optimal split of the communication
//! architecture."
//!
//! This module takes an application *traffic matrix* (message rates
//! between servers) and produces an acyclic domain decomposition:
//!
//! 1. **Clustering** — greedy agglomerative merging of the
//!    heaviest-communicating server groups into domains, bounded by a
//!    maximum domain size (the `s` of the §6.2 cost model);
//! 2. **Interconnection** — a *maximum* spanning tree over inter-cluster
//!    traffic, so the heaviest inter-domain flows cross the fewest
//!    routers; each tree edge is realized by adding one border server of
//!    one domain (the one with the most traffic toward the other) into the
//!    other domain, making it a causal router-server. The result is a tree
//!    in the bipartite membership graph, hence acyclic by construction —
//!    the theorem's precondition P2 holds for free;
//! 3. **Evaluation** — [`expected_cost`] prices a decomposition against a
//!    traffic matrix using the §6.2 model (per-hop constant plus `2s²`
//!    matrix-cell work per domain crossed), so alternative splits can be
//!    compared quantitatively.

use aaa_base::{Error, Result, ServerId};

use crate::routing::{trace_route, RoutingTable};
use crate::spec::TopologySpec;
use crate::topology::Topology;

/// Message rates between servers: `rate(i, j)` messages per time unit
/// from `i` to `j`.
///
/// # Examples
///
/// ```
/// use aaa_topology::split::TrafficMatrix;
///
/// let mut t = TrafficMatrix::new(3);
/// t.set(0, 1, 10.0);
/// t.set(1, 0, 2.0);
/// assert_eq!(t.weight(0, 1), 12.0); // symmetrized
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TrafficMatrix {
    n: usize,
    rates: Vec<f64>,
}

impl TrafficMatrix {
    /// Creates an all-zero matrix over `n` servers.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "traffic matrix needs at least one server");
        TrafficMatrix {
            n,
            rates: vec![0.0; n * n],
        }
    }

    /// Uniform all-to-all traffic at the given per-pair rate.
    pub fn uniform(n: usize, rate: f64) -> Self {
        let mut t = TrafficMatrix::new(n);
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    t.set(i, j, rate);
                }
            }
        }
        t
    }

    /// Number of servers.
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` when the matrix covers no servers (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Sets the rate from `i` to `j`.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range, `i == j`, or the rate is
    /// negative or non-finite.
    pub fn set(&mut self, i: usize, j: usize, rate: f64) {
        assert!(i < self.n && j < self.n, "server index out of range");
        assert_ne!(i, j, "self-traffic never crosses the bus");
        assert!(
            rate.is_finite() && rate >= 0.0,
            "rates must be non-negative"
        );
        self.rates[i * self.n + j] = rate;
    }

    /// The rate from `i` to `j`.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        assert!(i < self.n && j < self.n, "server index out of range");
        self.rates[i * self.n + j]
    }

    /// Symmetrized weight: `rate(i, j) + rate(j, i)`.
    pub fn weight(&self, i: usize, j: usize) -> f64 {
        self.get(i, j) + self.get(j, i)
    }

    /// Sum of all rates.
    pub fn total(&self) -> f64 {
        self.rates.iter().sum()
    }
}

/// Tuning knobs for [`split_by_traffic`].
#[derive(Debug, Clone, Copy)]
pub struct SplitConfig {
    /// Largest allowed domain (the `s` that bounds the quadratic term).
    pub max_domain_size: usize,
}

impl Default for SplitConfig {
    fn default() -> Self {
        SplitConfig { max_domain_size: 8 }
    }
}

/// Splits `n` servers into an acyclic domain decomposition guided by the
/// traffic matrix (see the [module docs](self) for the algorithm).
///
/// # Errors
///
/// Returns [`Error::Config`] if `max_domain_size < 2` (domains need room
/// for a member and a router), or validation errors if the resulting spec
/// is somehow degenerate (not expected).
pub fn split_by_traffic(traffic: &TrafficMatrix, config: &SplitConfig) -> Result<TopologySpec> {
    if config.max_domain_size < 2 {
        return Err(Error::Config("max_domain_size must be at least 2".into()));
    }
    let n = traffic.len();
    if n == 1 {
        return Ok(TopologySpec::single_domain(1));
    }

    // --- 1. Greedy agglomerative clustering ------------------------------
    // Start with singleton clusters; repeatedly merge the pair with the
    // heaviest inter-cluster traffic that still fits the size bound.
    let mut clusters: Vec<Vec<usize>> = (0..n).map(|i| vec![i]).collect();
    loop {
        let mut best: Option<(usize, usize, f64)> = None;
        for a in 0..clusters.len() {
            for b in a + 1..clusters.len() {
                if clusters[a].len() + clusters[b].len() > config.max_domain_size {
                    continue;
                }
                let w: f64 = clusters[a]
                    .iter()
                    .flat_map(|&i| clusters[b].iter().map(move |&j| (i, j)))
                    .map(|(i, j)| traffic.weight(i, j))
                    .sum();
                if w > 0.0 && best.is_none_or(|(_, _, bw)| w > bw) {
                    best = Some((a, b, w));
                }
            }
        }
        let Some((a, b, _)) = best else { break };
        let merged = clusters.remove(b);
        clusters[a].extend(merged);
    }

    // Servers with no traffic at all still need a home: keep their
    // singleton clusters (they become leaf domains attached arbitrarily).

    // --- 2. Maximum spanning tree over inter-cluster traffic -------------
    let k = clusters.len();
    if k == 1 {
        let members: Vec<u16> = clusters[0].iter().map(|&s| s as u16).collect();
        return Ok(TopologySpec::from_domains(vec![members]));
    }
    let cluster_weight = |a: &[usize], b: &[usize]| -> f64 {
        a.iter()
            .flat_map(|&i| b.iter().map(move |&j| (i, j)))
            .map(|(i, j)| traffic.weight(i, j))
            .sum()
    };
    // Prim's algorithm, maximizing weight (zero-weight edges allowed so
    // the tree always spans).
    let mut in_tree = vec![false; k];
    let mut edges: Vec<(usize, usize)> = Vec::with_capacity(k - 1);
    in_tree[0] = true;
    for _ in 1..k {
        let mut best: Option<(usize, usize, f64)> = None;
        for a in 0..k {
            if !in_tree[a] {
                continue;
            }
            for b in 0..k {
                if in_tree[b] {
                    continue;
                }
                let w = cluster_weight(&clusters[a], &clusters[b]);
                if best.is_none_or(|(_, _, bw)| w > bw) {
                    best = Some((a, b, w));
                }
            }
        }
        let (a, b, _) = best.expect("graph is complete");
        in_tree[b] = true;
        edges.push((a, b));
    }

    // --- 3. Realize tree edges with border router-servers ----------------
    // For edge (a, b): the server of b with the most traffic toward a
    // joins domain a as its router into b.
    let mut domains: Vec<Vec<usize>> = clusters.clone();
    for (a, b) in edges {
        let router = *clusters[b]
            .iter()
            .max_by(|&&x, &&y| {
                let wx: f64 = clusters[a].iter().map(|&i| traffic.weight(i, x)).sum();
                let wy: f64 = clusters[a].iter().map(|&i| traffic.weight(i, y)).sum();
                wx.partial_cmp(&wy).expect("finite weights")
            })
            .expect("clusters are non-empty");
        domains[a].push(router);
    }

    Ok(TopologySpec::from_domains(
        domains
            .into_iter()
            .map(|d| d.into_iter().map(|s| s as u16).collect())
            .collect(),
    ))
}

/// Prices of one message hop for [`expected_cost`].
#[derive(Debug, Clone, Copy)]
pub struct HopCost {
    /// Constant per hop (transfer, serialization, agent save).
    pub base: f64,
    /// Cost per matrix cell touched; a hop in a domain of `s` servers
    /// touches about `2s²` cells.
    pub per_cell: f64,
}

impl Default for HopCost {
    fn default() -> Self {
        // The simulator's calibrated constants, in microseconds.
        HopCost {
            base: 27_500.0,
            per_cell: 14.6,
        }
    }
}

/// Expected per-time-unit cost of running `traffic` over `topology`:
/// `Σ rate(i,j) × path_cost(i,j)` where a path's cost sums, per hop, the
/// constant term plus `2s²` cell operations in the domain crossed.
///
/// # Errors
///
/// Returns [`Error::Config`] if the traffic matrix width does not match
/// the topology, and propagates routing errors (none for validated
/// topologies).
pub fn expected_cost(topology: &Topology, traffic: &TrafficMatrix, hop: &HopCost) -> Result<f64> {
    if traffic.len() != topology.server_count() {
        return Err(Error::Config(format!(
            "traffic matrix covers {} servers, topology has {}",
            traffic.len(),
            topology.server_count()
        )));
    }
    let tables = RoutingTable::build_all(topology)?;
    let mut total = 0.0;
    for i in 0..traffic.len() {
        for j in 0..traffic.len() {
            let rate = traffic.get(i, j);
            if rate == 0.0 || i == j {
                continue;
            }
            let path = trace_route(&tables, ServerId::new(i as u16), ServerId::new(j as u16))?;
            let mut cost = 0.0;
            for w in path.windows(2) {
                let d = topology
                    .shared_domain(w[0], w[1])
                    .expect("hops share a domain");
                let s = topology.domain(d)?.size() as f64;
                cost += hop.base + hop.per_cell * 2.0 * s * s;
            }
            total += rate * cost;
        }
    }
    Ok(total)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two communities of four servers with heavy internal traffic and a
    /// single weak external flow.
    fn two_communities() -> TrafficMatrix {
        let mut t = TrafficMatrix::new(8);
        for group in [[0usize, 1, 2, 3], [4, 5, 6, 7]] {
            for &i in &group {
                for &j in &group {
                    if i != j {
                        t.set(i, j, 10.0);
                    }
                }
            }
        }
        t.set(3, 4, 0.5);
        t
    }

    #[test]
    fn traffic_matrix_basics() {
        let mut t = TrafficMatrix::new(2);
        assert!(!t.is_empty());
        t.set(0, 1, 3.0);
        assert_eq!(t.get(0, 1), 3.0);
        assert_eq!(t.get(1, 0), 0.0);
        assert_eq!(t.weight(0, 1), 3.0);
        assert_eq!(t.total(), 3.0);
        let u = TrafficMatrix::uniform(3, 1.0);
        assert_eq!(u.total(), 6.0);
    }

    #[test]
    #[should_panic(expected = "self-traffic")]
    fn self_traffic_rejected() {
        TrafficMatrix::new(2).set(1, 1, 1.0);
    }

    #[test]
    fn split_keeps_communities_together() {
        let t = two_communities();
        let spec = split_by_traffic(&t, &SplitConfig { max_domain_size: 4 }).expect("splits");
        let topo = spec.validate().expect("split result must be acyclic");
        assert_eq!(topo.server_count(), 8);
        // The two communities must land in two (leaf) domains; the router
        // membership adds one cross-listing.
        assert_eq!(topo.domain_count(), 2);
        // Servers 0..3 share a domain; servers 4..7 share a domain. (The
        // first element of each probe group is a non-router member, whose
        // single membership is the community domain.)
        for group in [[0u16, 1, 2, 3], [5, 6, 7, 4]] {
            let d0 = topo.memberships(ServerId::new(group[0]))[0];
            for &s in &group[1..] {
                assert!(
                    topo.memberships(ServerId::new(s)).contains(&d0),
                    "server {s} should share domain {d0} with its community"
                );
            }
        }
        // Exactly one router bridges them.
        assert_eq!(topo.routers().len(), 1);
    }

    #[test]
    fn split_result_is_always_acyclic() {
        // Random-ish dense traffic; whatever the clustering does, the
        // interconnection must validate (P2 by construction).
        for n in [3usize, 7, 12, 20] {
            let mut t = TrafficMatrix::new(n);
            for i in 0..n {
                for j in 0..n {
                    if i != j {
                        t.set(i, j, ((i * 7 + j * 13) % 11) as f64);
                    }
                }
            }
            for max in [2usize, 3, 5, 8] {
                let spec = split_by_traffic(
                    &t,
                    &SplitConfig {
                        max_domain_size: max,
                    },
                )
                .expect("split succeeds");
                let topo = spec.validate().unwrap_or_else(|e| {
                    panic!("n={n} max={max}: split produced invalid topology: {e}")
                });
                assert!(topo.is_acyclic());
                assert_eq!(topo.server_count(), n);
            }
        }
    }

    #[test]
    fn split_respects_size_bound_before_routers() {
        let t = TrafficMatrix::uniform(12, 1.0);
        let spec = split_by_traffic(&t, &SplitConfig { max_domain_size: 4 }).unwrap();
        // Leaf clusters have at most 4 servers; router cross-listings may
        // push a domain to at most 4 + (degree) members.
        let topo = spec.validate().unwrap();
        for d in topo.domains() {
            assert!(d.size() <= 4 + topo.domain_count(), "domain too large");
        }
    }

    #[test]
    fn expected_cost_prefers_traffic_aware_split() {
        let t = two_communities();
        let hop = HopCost::default();
        let aware = split_by_traffic(&t, &SplitConfig { max_domain_size: 4 })
            .unwrap()
            .validate()
            .unwrap();
        // A deliberately bad split: communities interleaved.
        let bad = TopologySpec::from_domains(vec![vec![0, 4, 1, 5], vec![1, 2, 6, 3], vec![3, 7]])
            .validate()
            .unwrap();
        let flat = TopologySpec::single_domain(8).validate().unwrap();
        let c_aware = expected_cost(&aware, &t, &hop).unwrap();
        let c_bad = expected_cost(&bad, &t, &hop).unwrap();
        let c_flat = expected_cost(&flat, &t, &hop).unwrap();
        assert!(
            c_aware < c_bad,
            "traffic-aware split ({c_aware}) must beat an interleaved one ({c_bad})"
        );
        // At n = 8 the flat domain is still competitive (small quadratic
        // term) but the aware split must not be dramatically worse.
        assert!(c_aware < c_flat * 1.5);
    }

    #[test]
    fn expected_cost_grows_with_domain_size() {
        let t = TrafficMatrix::uniform(16, 1.0);
        let hop = HopCost {
            base: 0.0,
            per_cell: 1.0,
        };
        let flat = TopologySpec::single_domain(16).validate().unwrap();
        let bus = TopologySpec::bus(4, 4).validate().unwrap();
        let c_flat = expected_cost(&flat, &t, &hop).unwrap();
        let c_bus = expected_cost(&bus, &t, &hop).unwrap();
        assert!(
            c_bus < c_flat,
            "pure cell cost must favour the decomposition: {c_bus} vs {c_flat}"
        );
    }

    #[test]
    fn degenerate_inputs() {
        let t = TrafficMatrix::new(1);
        let spec = split_by_traffic(&t, &SplitConfig::default()).unwrap();
        assert_eq!(spec.server_count(), 1);

        assert!(matches!(
            split_by_traffic(&TrafficMatrix::new(4), &SplitConfig { max_domain_size: 1 }),
            Err(Error::Config(_))
        ));

        // Zero traffic: every server is its own cluster, joined by a tree.
        let spec =
            split_by_traffic(&TrafficMatrix::new(5), &SplitConfig { max_domain_size: 2 }).unwrap();
        let topo = spec.validate().expect("still a valid tree");
        assert_eq!(topo.server_count(), 5);
    }

    #[test]
    fn cost_rejects_mismatched_width() {
        let flat = TopologySpec::single_domain(4).validate().unwrap();
        let t = TrafficMatrix::new(5);
        assert!(matches!(
            expected_cost(&flat, &t, &HopCost::default()),
            Err(Error::Config(_))
        ));
    }
}
