#![warn(missing_docs)]
#![forbid(unsafe_code)]

//! Domains of causality: topology, validation and routing.
//!
//! The paper's key architectural move (§4) is to replace the single-bus MOM
//! by a *virtual multi-bus* ("snow flake") architecture: servers are grouped
//! into **domains of causality**, and causal order is only maintained inside
//! each domain. Servers belonging to several domains are **causal
//! router-servers**; they forward messages between domains. The main theorem
//! requires the domain interconnection structure to be acyclic.
//!
//! This crate provides:
//!
//! - [`TopologySpec`] — a declarative description of the decomposition, with
//!   builders for the paper's bus / daisy / tree organizations (Figure 9);
//! - [`Topology`] — the validated form: membership tables, per-domain server
//!   id tables, connectivity and acyclicity checks;
//! - [`RoutingTable`] — per-server static next-hop tables built at boot by a
//!   shortest-path search (§5);
//! - [`cost`] — the analytical cost model of §6.2
//!   (`C ≈ (2d+1)·s²`, bus-vs-tree trade-off).
//!
//! # Example
//!
//! ```
//! use aaa_topology::TopologySpec;
//!
//! // The 8-server, 4-domain example of Figure 2 (0-based server ids).
//! let spec = TopologySpec::from_domains(vec![
//!     vec![0, 1, 2],       // domain A = {S1,S2,S3} of the paper
//!     vec![3, 4],          // domain B = {S4,S5}
//!     vec![6, 7],          // domain C = {S7,S8}
//!     vec![2, 4, 5, 6],    // domain D = {S3,S5,S6,S7}
//! ]);
//! let topo = spec.validate().expect("figure 2 is a valid acyclic topology");
//! assert_eq!(topo.server_count(), 8);
//! assert!(topo.is_router(aaa_base::ServerId::new(2)));
//! ```

pub mod cost;
mod graph;
mod routing;
mod spec;
pub mod split;
mod topology;

pub use routing::{trace_route, RoutingTable};
pub use spec::TopologySpec;
pub use topology::{DomainInfo, Topology};
