//! The domain interconnection graph: acyclicity and connectivity checks.
//!
//! The theorem's precondition P2 demands that the domain interconnection
//! graph be acyclic (§4.2–4.3). We check acyclicity of the **bipartite
//! incidence graph** (vertices = servers ∪ domains, one edge per
//! membership). This is slightly stronger than "the graph with one node per
//! domain and an edge per shared server is acyclic", and is exactly the
//! condition an implementation needs:
//!
//! - a single server in three domains is a star in the bipartite graph —
//!   acyclic, and indeed harmless (it is an ordinary multi-way router);
//!   the naive domain graph would wrongly see a triangle there;
//! - two domains sharing *two* servers form a bipartite 4-cycle. The paper's
//!   trace model tolerates this case (no §4.2 path-cycle exists), but a real
//!   MOM stamps every message in exactly one domain's clock, so traffic
//!   between the two shared servers could be split across two independent
//!   clocks and lose causality — we reject it.

use aaa_base::{DomainId, Error, Result, ServerId};

use crate::spec::TopologySpec;

/// Outcome of analysing a spec's membership structure.
#[derive(Debug, Clone)]
pub(crate) struct GraphCheck {
    /// For every server, the domains it belongs to, in ascending order.
    pub memberships: Vec<Vec<DomainId>>,
}

/// Vertex index helpers: servers are `0..n`, domain `d` is `n + d`.
struct Incidence {
    n: usize,
    adj: Vec<Vec<usize>>,
}

impl Incidence {
    fn new(n: usize, m: usize) -> Self {
        Incidence {
            n,
            adj: vec![Vec::new(); n + m],
        }
    }

    fn add(&mut self, server: usize, domain: usize) {
        self.adj[server].push(self.n + domain);
        self.adj[self.n + domain].push(server);
    }

    /// BFS path from `a` to `b`, returned as vertex indices (inclusive).
    fn path(&self, a: usize, b: usize) -> Option<Vec<usize>> {
        let mut prev = vec![usize::MAX; self.adj.len()];
        let mut queue = std::collections::VecDeque::new();
        prev[a] = a;
        queue.push_back(a);
        while let Some(v) = queue.pop_front() {
            if v == b {
                let mut path = vec![b];
                let mut cur = b;
                while cur != a {
                    cur = prev[cur];
                    path.push(cur);
                }
                path.reverse();
                return Some(path);
            }
            for &w in &self.adj[v] {
                if prev[w] == usize::MAX {
                    prev[w] = v;
                    queue.push_back(w);
                }
            }
        }
        None
    }
}

/// Simple union-find over `len` elements.
struct UnionFind {
    parent: Vec<usize>,
}

impl UnionFind {
    fn new(len: usize) -> Self {
        UnionFind {
            parent: (0..len).collect(),
        }
    }

    fn find(&mut self, x: usize) -> usize {
        if self.parent[x] != x {
            let root = self.find(self.parent[x]);
            self.parent[x] = root;
        }
        self.parent[x]
    }

    fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        self.parent[ra] = rb;
        true
    }
}

/// Checks the domain structure of `spec` over `n` servers.
///
/// With `allow_cycles`, the bipartite cycle check is skipped (used to build
/// deliberately broken topologies for the Figure 4 counterexample), but
/// connectivity is still required.
pub(crate) fn check(spec: &TopologySpec, n: usize, allow_cycles: bool) -> Result<GraphCheck> {
    let m = spec.domain_count();
    let mut inc = Incidence::new(n, m);
    let mut uf = UnionFind::new(n + m);
    let mut memberships: Vec<Vec<DomainId>> = vec![Vec::new(); n];

    for (d, members) in spec.domains().iter().enumerate() {
        for s in members {
            let sv = s.as_usize();
            if !uf.union(sv, n + d) && !allow_cycles {
                // Adding this edge closes a cycle; extract a witness from
                // the edges added so far.
                let path = inc
                    .path(sv, n + d)
                    .expect("union-find cycle implies an existing path");
                let mut cycle: Vec<DomainId> = path
                    .into_iter()
                    .filter(|&v| v >= n)
                    .map(|v| DomainId::new((v - n) as u16))
                    .collect();
                cycle.push(DomainId::new(d as u16));
                return Err(Error::CyclicDomainGraph { cycle });
            }
            inc.add(sv, d);
            memberships[sv].push(DomainId::new(d as u16));
        }
    }

    // Connectivity: every server reachable from server 0.
    let root = uf.find(0);
    for s in 1..n {
        if uf.find(s) != root {
            return Err(Error::InvalidTopology(format!(
                "server S{s} is unreachable from S0 (disconnected topology)"
            )));
        }
    }

    for doms in &mut memberships {
        doms.sort_unstable();
    }
    Ok(GraphCheck { memberships })
}

/// Builds the server-level adjacency used by routing: `adj[s]` lists the
/// servers sharing at least one domain with `s` (excluding `s`), ascending.
pub(crate) fn server_adjacency(spec: &TopologySpec, n: usize) -> Vec<Vec<ServerId>> {
    let mut adj: Vec<Vec<u16>> = vec![Vec::new(); n];
    for members in spec.domains() {
        for a in members {
            for b in members {
                if a != b {
                    adj[a.as_usize()].push(b.as_u16());
                }
            }
        }
    }
    adj.into_iter()
        .map(|mut v| {
            v.sort_unstable();
            v.dedup();
            v.into_iter().map(ServerId::new).collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(domains: Vec<Vec<u16>>) -> TopologySpec {
        TopologySpec::from_domains(domains)
    }

    #[test]
    fn figure2_is_acyclic() {
        // 0-based rendition of Figure 2.
        let s = spec(vec![
            vec![0, 1, 2],
            vec![3, 4],
            vec![6, 7],
            vec![2, 4, 5, 6],
        ]);
        let check = check(&s, 8, false).expect("figure 2 is acyclic");
        assert_eq!(
            check.memberships[2],
            vec![DomainId::new(0), DomainId::new(3)]
        );
        assert_eq!(check.memberships[1], vec![DomainId::new(0)]);
    }

    #[test]
    fn triangle_of_domains_is_cyclic() {
        // D0={0,1}, D1={1,2}, D2={2,0}: a cycle of three domains.
        let s = spec(vec![vec![0, 1], vec![1, 2], vec![2, 0]]);
        let err = check(&s, 3, false).unwrap_err();
        match err {
            Error::CyclicDomainGraph { cycle } => {
                assert!(
                    cycle.len() >= 3,
                    "witness should name the domains: {cycle:?}"
                );
            }
            other => panic!("expected cycle error, got {other}"),
        }
    }

    #[test]
    fn two_domains_sharing_two_servers_is_cyclic() {
        let s = spec(vec![vec![0, 1], vec![0, 1]]);
        assert!(matches!(
            check(&s, 2, false),
            Err(Error::CyclicDomainGraph { .. })
        ));
    }

    #[test]
    fn server_in_three_domains_is_fine() {
        // A star router: harmless, must NOT be flagged as a cycle.
        let s = spec(vec![vec![0, 1], vec![0, 2], vec![0, 3]]);
        assert!(check(&s, 4, false).is_ok());
    }

    #[test]
    fn allow_cycles_bypasses_the_check() {
        let s = spec(vec![vec![0, 1], vec![1, 2], vec![2, 0]]);
        assert!(check(&s, 3, true).is_ok());
    }

    #[test]
    fn disconnected_is_rejected() {
        let s = spec(vec![vec![0, 1], vec![2, 3]]);
        assert!(matches!(
            check(&s, 4, false),
            Err(Error::InvalidTopology(_))
        ));
    }

    #[test]
    fn adjacency_covers_shared_domains() {
        let s = spec(vec![vec![0, 1, 2], vec![2, 3]]);
        let adj = server_adjacency(&s, 4);
        assert_eq!(adj[0], vec![ServerId::new(1), ServerId::new(2)]);
        assert_eq!(
            adj[2],
            vec![ServerId::new(0), ServerId::new(1), ServerId::new(3)]
        );
        assert_eq!(adj[3], vec![ServerId::new(2)]);
    }
}
