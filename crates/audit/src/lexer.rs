//! A minimal, panic-free Rust lexer.
//!
//! The auditor cannot depend on `syn` (the vendor tree is offline), and it
//! does not need full parsing: every rule in this crate works on a *token
//! stream* with accurate line numbers, as long as the lexer gets the hard
//! parts right — strings (plain, raw, byte), character literals vs.
//! lifetimes, and nested block comments. Anything the lexer does not
//! recognise degrades to a one-character [`TokKind::Punct`] token; it never
//! panics and never loses position information (see the proptest in
//! `tests/lexer_props.rs`).

/// The classification of one token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`fn`, `unwrap`, `Stamp`, ...).
    Ident,
    /// Lifetime such as `'static` (without trailing quote).
    Lifetime,
    /// Numeric literal (integers, floats, suffixed forms).
    Number,
    /// String literal: plain, raw, byte, or raw-byte. `text` holds the
    /// *content* (without quotes/prefix) so rules can match on it.
    Str,
    /// Character or byte-character literal.
    Char,
    /// Line or block comment (doc comments included). `text` holds the
    /// full comment body including delimiters.
    Comment,
    /// Any single punctuation / operator character.
    Punct,
}

/// One lexed token with its source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tok {
    /// Token classification.
    pub kind: TokKind,
    /// Token text (see [`TokKind`] for what exactly is stored).
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: u32,
    /// 1-based line of the token's last character (differs from `line`
    /// for multi-line strings and block comments).
    pub end_line: u32,
}

impl Tok {
    /// `true` if this token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// `true` if this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == c.len_utf8() && self.text.starts_with(c)
    }
}

struct Cursor<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
    line: u32,
}

impl<'a> Cursor<'a> {
    fn new(src: &'a str) -> Self {
        Cursor {
            src,
            bytes: src.as_bytes(),
            pos: 0,
            line: 1,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn peek_at(&self, off: usize) -> Option<u8> {
        self.bytes.get(self.pos + off).copied()
    }

    /// Advances one byte, maintaining the line counter.
    fn bump(&mut self) {
        if let Some(b) = self.peek() {
            if b == b'\n' {
                self.line += 1;
            }
            self.pos += 1;
        }
    }

    /// Advances `n` bytes.
    fn bump_n(&mut self, n: usize) {
        for _ in 0..n {
            self.bump();
        }
    }

    fn slice(&self, from: usize) -> &'a str {
        self.src.get(from..self.pos).unwrap_or("")
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Lexes `src` into a token stream. Whitespace is dropped; comments are
/// kept (rules need them for `// audit:allow(...)` escapes). Total
/// function: malformed input produces `Punct` tokens, never a panic.
pub fn lex(src: &str) -> Vec<Tok> {
    let mut c = Cursor::new(src);
    let mut out = Vec::new();
    while let Some(b) = c.peek() {
        let start = c.pos;
        let line = c.line;
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => {
                c.bump();
            }
            b'/' if c.peek_at(1) == Some(b'/') => {
                while let Some(nb) = c.peek() {
                    if nb == b'\n' {
                        break;
                    }
                    c.bump();
                }
                out.push(Tok {
                    kind: TokKind::Comment,
                    text: c.slice(start).to_owned(),
                    line,
                    end_line: c.line,
                });
            }
            b'/' if c.peek_at(1) == Some(b'*') => {
                c.bump_n(2);
                let mut depth = 1usize;
                while depth > 0 {
                    match (c.peek(), c.peek_at(1)) {
                        (Some(b'/'), Some(b'*')) => {
                            depth += 1;
                            c.bump_n(2);
                        }
                        (Some(b'*'), Some(b'/')) => {
                            depth -= 1;
                            c.bump_n(2);
                        }
                        (Some(_), _) => c.bump(),
                        (None, _) => break, // unterminated: swallow to EOF
                    }
                }
                out.push(Tok {
                    kind: TokKind::Comment,
                    text: c.slice(start).to_owned(),
                    line,
                    end_line: c.line,
                });
            }
            b'"' => {
                c.bump();
                let content_start = c.pos;
                lex_plain_string_body(&mut c);
                let content_end = c.pos.saturating_sub(1).max(content_start);
                out.push(Tok {
                    kind: TokKind::Str,
                    text: c
                        .src
                        .get(content_start..content_end)
                        .unwrap_or("")
                        .to_owned(),
                    line,
                    end_line: c.line,
                });
            }
            b'\'' => {
                lex_quote(&mut c, &mut out, line);
            }
            b'r' | b'b' if starts_prefixed_literal(&c) => {
                lex_prefixed_literal(&mut c, &mut out, line);
            }
            _ if is_ident_start(b) => {
                while let Some(nb) = c.peek() {
                    if is_ident_continue(nb) {
                        c.bump();
                    } else {
                        break;
                    }
                }
                out.push(Tok {
                    kind: TokKind::Ident,
                    text: c.slice(start).to_owned(),
                    line,
                    end_line: c.line,
                });
            }
            _ if b.is_ascii_digit() => {
                while let Some(nb) = c.peek() {
                    if is_ident_continue(nb) {
                        c.bump();
                    } else {
                        break;
                    }
                }
                // One fractional part: `1.5` but not the range `0..10`.
                if c.peek() == Some(b'.')
                    && c.peek_at(1).map(|d| d.is_ascii_digit()).unwrap_or(false)
                {
                    c.bump();
                    while let Some(nb) = c.peek() {
                        if is_ident_continue(nb) {
                            c.bump();
                        } else {
                            break;
                        }
                    }
                }
                out.push(Tok {
                    kind: TokKind::Number,
                    text: c.slice(start).to_owned(),
                    line,
                    end_line: c.line,
                });
            }
            _ => {
                c.bump();
                out.push(Tok {
                    kind: TokKind::Punct,
                    text: c.slice(start).to_owned(),
                    line,
                    end_line: c.line,
                });
            }
        }
    }
    out
}

/// Consumes a plain string body after the opening `"`, handling `\"` and
/// `\\` escapes; stops after the closing quote (or EOF).
fn lex_plain_string_body(c: &mut Cursor<'_>) {
    while let Some(b) = c.peek() {
        match b {
            b'\\' => c.bump_n(2),
            b'"' => {
                c.bump();
                return;
            }
            _ => c.bump(),
        }
    }
}

/// Does the cursor sit at `r"`, `r#`, `b"`, `b'`, `br`, or `rb`-style
/// literal prefix (rather than a plain identifier starting with r/b)?
fn starts_prefixed_literal(c: &Cursor<'_>) -> bool {
    let b0 = c.peek();
    let b1 = c.peek_at(1);
    let b2 = c.peek_at(2);
    match (b0, b1) {
        (Some(b'r'), Some(b'"')) | (Some(b'r'), Some(b'#')) => true,
        (Some(b'b'), Some(b'"')) | (Some(b'b'), Some(b'\'')) => true,
        (Some(b'b'), Some(b'r')) => matches!(b2, Some(b'"') | Some(b'#')),
        _ => false,
    }
}

/// Lexes `r"..."`, `r#"..."#`, `b"..."`, `br#"..."#`, `b'x'`.
fn lex_prefixed_literal(c: &mut Cursor<'_>, out: &mut Vec<Tok>, line: u32) {
    let raw = c.peek() == Some(b'r') || (c.peek() == Some(b'b') && c.peek_at(1) == Some(b'r'));
    let byte_char = c.peek() == Some(b'b') && c.peek_at(1) == Some(b'\'');
    // Consume the prefix letters: `r`, `b`, or `br` (guaranteed by
    // `starts_prefixed_literal` to be followed by `"`, `'`, or `#`).
    c.bump();
    if matches!(c.peek(), Some(b'r')) && raw {
        c.bump();
    }
    if byte_char {
        // b'x' — reuse the char/lifetime path.
        c.bump(); // the opening quote
        let mut chars = 0usize;
        while let Some(b) = c.peek() {
            match b {
                b'\\' => {
                    c.bump_n(2);
                    chars += 1;
                }
                b'\'' => {
                    c.bump();
                    break;
                }
                b'\n' => break,
                _ => {
                    c.bump();
                    chars += 1;
                }
            }
            if chars > 4 {
                break; // malformed; bail without panicking
            }
        }
        out.push(Tok {
            kind: TokKind::Char,
            text: String::new(),
            line,
            end_line: c.line,
        });
        return;
    }
    if raw {
        // Count the hashes, then find `"` ... `"` + same number of hashes.
        let mut hashes = 0usize;
        while c.peek() == Some(b'#') {
            hashes += 1;
            c.bump();
        }
        if c.peek() != Some(b'"') {
            // `r#foo` raw identifier: emit as ident.
            let start = c.pos;
            while let Some(nb) = c.peek() {
                if is_ident_continue(nb) {
                    c.bump();
                } else {
                    break;
                }
            }
            out.push(Tok {
                kind: TokKind::Ident,
                text: c.slice(start).to_owned(),
                line,
                end_line: c.line,
            });
            return;
        }
        c.bump(); // opening quote
        let content_start = c.pos;
        let mut content_end = c.pos;
        'scan: while let Some(b) = c.peek() {
            if b == b'"' {
                // Candidate close: check for `hashes` hashes after it.
                let mut ok = true;
                for i in 0..hashes {
                    if c.peek_at(1 + i) != Some(b'#') {
                        ok = false;
                        break;
                    }
                }
                if ok {
                    content_end = c.pos;
                    c.bump_n(1 + hashes);
                    break 'scan;
                }
            }
            c.bump();
            content_end = c.pos;
        }
        out.push(Tok {
            kind: TokKind::Str,
            text: c
                .src
                .get(content_start..content_end)
                .unwrap_or("")
                .to_owned(),
            line,
            end_line: c.line,
        });
    } else {
        // b"..." plain byte string.
        c.bump(); // opening quote
        let content_start = c.pos;
        lex_plain_string_body(c);
        let content_end = c.pos.saturating_sub(1).max(content_start);
        out.push(Tok {
            kind: TokKind::Str,
            text: c
                .src
                .get(content_start..content_end)
                .unwrap_or("")
                .to_owned(),
            line,
            end_line: c.line,
        });
    }
}

/// Disambiguates `'a'` / `'\n'` (char literals) from `'a` / `'static`
/// (lifetimes). Called with the cursor on the opening quote.
fn lex_quote(c: &mut Cursor<'_>, out: &mut Vec<Tok>, line: u32) {
    c.bump(); // the quote
    match c.peek() {
        Some(b'\\') => {
            // Escaped char literal: `'\n'`, `'\''`, `'\u{1F600}'`.
            c.bump_n(2);
            while let Some(b) = c.peek() {
                if b == b'\'' {
                    c.bump();
                    break;
                }
                if b == b'\n' {
                    break;
                }
                c.bump();
            }
            out.push(Tok {
                kind: TokKind::Char,
                text: String::new(),
                line,
                end_line: c.line,
            });
        }
        Some(b) if is_ident_start(b) => {
            let start = c.pos;
            while let Some(nb) = c.peek() {
                if is_ident_continue(nb) {
                    c.bump();
                } else {
                    break;
                }
            }
            if c.peek() == Some(b'\'') {
                // 'a' — a char literal (possibly malformed multi-char;
                // swallow it whole either way).
                c.bump();
                out.push(Tok {
                    kind: TokKind::Char,
                    text: String::new(),
                    line,
                    end_line: c.line,
                });
            } else {
                out.push(Tok {
                    kind: TokKind::Lifetime,
                    text: c.slice(start).to_owned(),
                    line,
                    end_line: c.line,
                });
            }
        }
        Some(_) => {
            // `'(' )` or similar single odd char: treat as char literal if
            // closed, else as a stray quote Punct.
            let b = c.peek();
            c.bump();
            if c.peek() == Some(b'\'') {
                c.bump();
                out.push(Tok {
                    kind: TokKind::Char,
                    text: String::new(),
                    line,
                    end_line: c.line,
                });
            } else {
                let _ = b;
                out.push(Tok {
                    kind: TokKind::Punct,
                    text: "'".to_owned(),
                    line,
                    end_line: c.line,
                });
            }
        }
        None => out.push(Tok {
            kind: TokKind::Punct,
            text: "'".to_owned(),
            line,
            end_line: c.line,
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn idents_numbers_puncts() {
        let toks = kinds("let x = 42 + y_2;");
        assert_eq!(
            toks,
            vec![
                (TokKind::Ident, "let".into()),
                (TokKind::Ident, "x".into()),
                (TokKind::Punct, "=".into()),
                (TokKind::Number, "42".into()),
                (TokKind::Punct, "+".into()),
                (TokKind::Ident, "y_2".into()),
                (TokKind::Punct, ";".into()),
            ]
        );
    }

    #[test]
    fn strings_with_escapes() {
        let toks = kinds(r#"f("a \" b", "\\")"#);
        assert_eq!(toks[2], (TokKind::Str, r#"a \" b"#.into()));
        assert_eq!(toks[4], (TokKind::Str, r"\\".into()));
    }

    #[test]
    fn raw_strings_and_hashes() {
        let toks = kinds(r###"x(r"plain", r#"with "quotes""#)"###);
        assert_eq!(toks[2], (TokKind::Str, "plain".into()));
        assert_eq!(toks[4], (TokKind::Str, r#"with "quotes""#.into()));
    }

    #[test]
    fn byte_strings() {
        let toks = kinds(r##"f(b"bytes", br#"raw bytes"#)"##);
        assert_eq!(toks[2], (TokKind::Str, "bytes".into()));
        assert_eq!(toks[4], (TokKind::Str, "raw bytes".into()));
    }

    #[test]
    fn nested_block_comments() {
        let toks = kinds("a /* one /* two */ still */ b");
        assert_eq!(toks.len(), 3);
        assert_eq!(toks[1].0, TokKind::Comment);
        assert_eq!(toks[2], (TokKind::Ident, "b".into()));
    }

    #[test]
    fn char_vs_lifetime() {
        let toks = kinds("x<'a> = 'b'; y: &'static str = '\\n';");
        let lifetimes: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Lifetime)
            .map(|(_, t)| t.clone())
            .collect();
        assert_eq!(lifetimes, vec!["a".to_owned(), "static".to_owned()]);
        let chars = toks.iter().filter(|(k, _)| *k == TokKind::Char).count();
        assert_eq!(chars, 2);
    }

    #[test]
    fn line_numbers_track_newlines() {
        let toks = lex("a\nb\n  c // tail\nd");
        let find = |name: &str| {
            toks.iter()
                .find(|t| t.is_ident(name))
                .map(|t| t.line)
                .unwrap_or(0)
        };
        assert_eq!(find("a"), 1);
        assert_eq!(find("b"), 2);
        assert_eq!(find("c"), 3);
        assert_eq!(find("d"), 4);
    }

    #[test]
    fn multiline_string_spans_lines() {
        let toks = lex("let s = \"one\ntwo\"; x");
        let s = &toks[3];
        assert_eq!(s.kind, TokKind::Str);
        assert_eq!(s.line, 1);
        assert_eq!(s.end_line, 2);
        let x = toks.iter().find(|t| t.is_ident("x")).map(|t| t.line);
        assert_eq!(x, Some(2));
    }

    #[test]
    fn unterminated_inputs_do_not_panic() {
        for src in [
            "\"never closed",
            "r#\"never closed",
            "/* never closed",
            "'",
            "b'",
            "r#",
            "br#\"x",
            "'\\",
        ] {
            let _ = lex(src);
        }
    }

    #[test]
    fn raw_identifier() {
        let toks = kinds("r#match = 1");
        assert_eq!(toks[0], (TokKind::Ident, "match".into()));
    }
}
