//! A lexed workspace source file, with test-region and escape-hatch
//! bookkeeping shared by every rule.

use std::collections::{BTreeMap, BTreeSet};

use crate::lexer::{lex, Tok, TokKind};

/// One source file, lexed and annotated.
#[derive(Debug)]
pub struct SourceFile {
    /// Path relative to the workspace root, with `/` separators.
    pub rel: String,
    /// Raw file contents.
    pub text: String,
    /// Token stream with comments removed (what rules scan).
    pub toks: Vec<Tok>,
    /// `test_mask[i]` is `true` when `toks[i]` lies inside a
    /// `#[cfg(test)]` / `#[test]` / `#[bench]`-gated item.
    pub test_mask: Vec<bool>,
    /// Lines on which `// audit:allow(rule)` comments grant suppression:
    /// line number → set of rule ids allowed there.
    pub allows: BTreeMap<u32, BTreeSet<String>>,
}

impl SourceFile {
    /// Lexes and annotates `text`.
    pub fn parse(rel: impl Into<String>, text: impl Into<String>) -> SourceFile {
        let text = text.into();
        let all = lex(&text);
        let mut toks = Vec::with_capacity(all.len());
        let mut allows: BTreeMap<u32, BTreeSet<String>> = BTreeMap::new();
        for t in all {
            if t.kind == TokKind::Comment {
                for rule in parse_allow_rules(&t.text) {
                    // The escape covers the comment's own line(s) and the
                    // line right after it (a comment above the flagged
                    // statement).
                    for line in t.line..=t.end_line.saturating_add(1) {
                        allows.entry(line).or_default().insert(rule.clone());
                    }
                }
            } else {
                toks.push(t);
            }
        }
        let test_mask = compute_test_mask(&toks);
        SourceFile {
            rel: rel.into(),
            text,
            toks,
            test_mask,
            allows,
        }
    }

    /// The trimmed source text of 1-based `line` (empty if out of range).
    pub fn trimmed_line(&self, line: u32) -> &str {
        self.text
            .lines()
            .nth(line.saturating_sub(1) as usize)
            .map(str::trim)
            .unwrap_or("")
    }

    /// `true` if an inline `// audit:allow(rule)` escape covers `line`.
    pub fn is_allowed_inline(&self, line: u32, rule: &str) -> bool {
        self.allows
            .get(&line)
            .map(|set| set.contains(rule) || set.contains("all"))
            .unwrap_or(false)
    }

    /// Iterator over indices of non-test tokens.
    pub fn non_test_indices(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.toks.len()).filter(move |&i| !self.test_mask[i])
    }
}

/// Extracts rule ids from every `audit:allow(a, b)` marker in a comment.
fn parse_allow_rules(comment: &str) -> Vec<String> {
    let mut rules = Vec::new();
    let mut rest = comment;
    while let Some(at) = rest.find("audit:allow(") {
        rest = &rest[at + "audit:allow(".len()..];
        let Some(close) = rest.find(')') else { break };
        for part in rest[..close].split(',') {
            let part = part.trim();
            if !part.is_empty() {
                rules.push(part.to_owned());
            }
        }
        rest = &rest[close + 1..];
    }
    rules
}

/// Marks token ranges covered by test-gated items.
///
/// An item is test-gated when an attribute `#[...]` immediately preceding
/// it contains the identifier `test` or `bench` (covers `#[test]`,
/// `#[cfg(test)]`, `#[cfg(any(test, ...))]`, `#[bench]`). The gated range
/// runs from the attribute through the end of the item: its brace-matched
/// `{ ... }` block or the first top-level `;`, whichever comes first.
fn compute_test_mask(toks: &[Tok]) -> Vec<bool> {
    let mut mask = vec![false; toks.len()];
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].is_punct('#') && i + 1 < toks.len() && toks[i + 1].is_punct('[') {
            let attr_start = i;
            let Some(attr_end) = match_bracket(toks, i + 1) else {
                break;
            };
            let gated = toks[i + 2..attr_end]
                .iter()
                .any(|t| t.is_ident("test") || t.is_ident("bench"));
            i = attr_end + 1;
            if !gated {
                continue;
            }
            // Skip further stacked attributes.
            while i + 1 < toks.len() && toks[i].is_punct('#') && toks[i + 1].is_punct('[') {
                match match_bracket(toks, i + 1) {
                    Some(end) => i = end + 1,
                    None => break,
                }
            }
            // Find the item end: first `;` at depth 0 or the close of the
            // first `{ ... }` block.
            let mut j = i;
            let mut depth_paren = 0i32;
            let mut depth_bracket = 0i32;
            let item_end = loop {
                if j >= toks.len() {
                    break toks.len().saturating_sub(1);
                }
                let t = &toks[j];
                if t.is_punct('(') {
                    depth_paren += 1;
                } else if t.is_punct(')') {
                    depth_paren -= 1;
                } else if t.is_punct('[') {
                    depth_bracket += 1;
                } else if t.is_punct(']') {
                    depth_bracket -= 1;
                } else if t.is_punct(';') && depth_paren <= 0 && depth_bracket <= 0 {
                    break j;
                } else if t.is_punct('{') {
                    break match_brace(toks, j).unwrap_or(toks.len() - 1);
                }
                j += 1;
            };
            for m in mask
                .iter_mut()
                .take((item_end + 1).min(toks.len()))
                .skip(attr_start)
            {
                *m = true;
            }
            i = item_end + 1;
        } else {
            i += 1;
        }
    }
    mask
}

/// Given `toks[open]` == `[`, returns the index of the matching `]`.
pub fn match_bracket(toks: &[Tok], open: usize) -> Option<usize> {
    let mut depth = 0i32;
    for (j, t) in toks.iter().enumerate().skip(open) {
        if t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(']') {
            depth -= 1;
            if depth == 0 {
                return Some(j);
            }
        }
    }
    None
}

/// Given `toks[open]` == `{`, returns the index of the matching `}`.
pub fn match_brace(toks: &[Tok], open: usize) -> Option<usize> {
    let mut depth = 0i32;
    for (j, t) in toks.iter().enumerate().skip(open) {
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return Some(j);
            }
        }
    }
    None
}

/// Finds every `fn <name>` in the file and returns the union of the token
/// index ranges of their bodies (inclusive start, exclusive end).
pub fn fn_bodies(file: &SourceFile, name: &str) -> Vec<(usize, usize)> {
    let toks = &file.toks;
    let mut out = Vec::new();
    let mut i = 0usize;
    while i + 1 < toks.len() {
        if toks[i].is_ident("fn") && toks[i + 1].is_ident(name) {
            // Scan forward to the body's opening brace.
            let mut j = i + 2;
            while j < toks.len() && !toks[j].is_punct('{') && !toks[j].is_punct(';') {
                j += 1;
            }
            if j < toks.len() && toks[j].is_punct('{') {
                let end = match_brace(toks, j).unwrap_or(toks.len() - 1);
                out.push((j, end + 1));
                i = end + 1;
                continue;
            }
        }
        i += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allow_comment_grants_current_and_next_line() {
        let f = SourceFile::parse(
            "x.rs",
            "// audit:allow(panic-freedom)\nfoo();\nbar(); // audit:allow(determinism)\n",
        );
        assert!(f.is_allowed_inline(1, "panic-freedom"));
        assert!(f.is_allowed_inline(2, "panic-freedom"));
        assert!(!f.is_allowed_inline(3, "panic-freedom"));
        assert!(f.is_allowed_inline(3, "determinism"));
        assert!(f.is_allowed_inline(4, "determinism"));
    }

    #[test]
    fn allow_comment_multiple_rules() {
        let f = SourceFile::parse("x.rs", "// audit:allow(a, b)\nz();\n");
        assert!(f.is_allowed_inline(2, "a"));
        assert!(f.is_allowed_inline(2, "b"));
        assert!(!f.is_allowed_inline(2, "c"));
    }

    #[test]
    fn cfg_test_mod_is_masked() {
        let src = r#"
fn live() { x.unwrap(); }

#[cfg(test)]
mod tests {
    fn helper() { y.unwrap(); }
}
"#;
        let f = SourceFile::parse("x.rs", src);
        let live: Vec<bool> = f
            .toks
            .iter()
            .zip(&f.test_mask)
            .filter(|(t, _)| t.is_ident("unwrap"))
            .map(|(_, &m)| m)
            .collect();
        assert_eq!(live, vec![false, true]);
    }

    #[test]
    fn test_attribute_masks_single_fn() {
        let src = "#[test]\nfn t() { a.unwrap(); }\nfn live() { b.unwrap(); }\n";
        let f = SourceFile::parse("x.rs", src);
        let masked: Vec<bool> = f
            .toks
            .iter()
            .zip(&f.test_mask)
            .filter(|(t, _)| t.is_ident("unwrap"))
            .map(|(_, &m)| m)
            .collect();
        assert_eq!(masked, vec![true, false]);
    }

    #[test]
    fn cfg_test_use_statement_ends_at_semicolon() {
        let src = "#[cfg(test)]\nuse crate::tests::helper;\nfn live() { c.unwrap(); }\n";
        let f = SourceFile::parse("x.rs", src);
        let masked: Vec<bool> = f
            .toks
            .iter()
            .zip(&f.test_mask)
            .filter(|(t, _)| t.is_ident("unwrap"))
            .map(|(_, &m)| m)
            .collect();
        assert_eq!(masked, vec![false]);
    }

    #[test]
    fn derive_attribute_is_not_a_test_gate() {
        let src = "#[derive(Debug)]\nstruct S;\nfn live() { d.unwrap(); }\n";
        let f = SourceFile::parse("x.rs", src);
        let masked: Vec<bool> = f
            .toks
            .iter()
            .zip(&f.test_mask)
            .filter(|(t, _)| t.is_ident("unwrap"))
            .map(|(_, &m)| m)
            .collect();
        assert_eq!(masked, vec![false]);
    }

    #[test]
    fn fn_bodies_finds_braced_ranges() {
        let src = "fn a() -> u8 { 1 }\nfn b();\nimpl X { fn a(&self) { inner() } }\n";
        let f = SourceFile::parse("x.rs", src);
        let bodies = fn_bodies(&f, "a");
        assert_eq!(bodies.len(), 2);
        for (s, e) in bodies {
            assert!(f.toks[s].is_punct('{'));
            assert!(f.toks[e - 1].is_punct('}'));
        }
        assert!(fn_bodies(&f, "b").is_empty());
    }
}
