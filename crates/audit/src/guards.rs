//! Guard-tracking dataflow: which `Mutex`/`RwLock` guards are live where.
//!
//! PR 3's `lock-across-send` was a token-proximity scanner: it saw a
//! `let g = x.lock()` and a `.send(..)` in the same block and guessed.
//! The concurrency rules added in this PR (`lock-order`,
//! `guard-across-blocking`) need the real thing: per-function
//! **lock-acquisition spans** — for every acquisition site, the token
//! range over which the produced guard is live — including guards that a
//! helper returns up the call chain (`fn conns(&self) -> MutexGuard<..>`).
//!
//! This module computes exactly that on top of [`tree`](crate::tree):
//!
//! - [`returned_guard_map`]: which functions hand a live guard to their
//!   caller, and which lock *resource* that guard protects;
//! - [`guard_spans_in`]: every acquisition inside one `fn` body with its
//!   liveness range — a `let` binding lives to the end of its enclosing
//!   block (ended early by `drop(guard)`), an `if let`/`while let` guard
//!   lives for the conditional's block, and an expression temporary
//!   (`x.lock().touch()`) dies at its statement's `;`.
//!
//! Resources are identified by the receiver's field/binding name
//! (`self.conns[shard].lock()` → `conns`), the same name-based philosophy
//! as the call graph: no type resolution, collisions merge nodes. For
//! `lock-order` a merge can at worst *add* an ordering edge between
//! already-related resources; rules stay deterministic either way.

use std::collections::BTreeMap;

use crate::lexer::TokKind;
use crate::source::SourceFile;
use crate::tree::{fn_spans, FnSpan};

/// Zero-argument method names that acquire a guard.
pub const ACQUIRE_METHODS: &[&str] =
    &["lock", "try_lock", "read", "write", "try_read", "try_write"];

/// One guard-acquisition site and the range over which its guard lives.
#[derive(Debug, Clone)]
pub struct GuardSpan {
    /// Name of the locked resource (receiver field or binding name).
    pub resource: String,
    /// The guard's `let` binding name, when it has one.
    pub binding: Option<String>,
    /// Acquisition method (`lock`, `read`, `write`, `try_lock`, ...) or
    /// the name of the guard-returning helper that was called.
    pub method: String,
    /// Token index of the acquisition (the method/helper identifier).
    pub acq_tok: usize,
    /// Liveness range in token indices: `[start, end)`.
    pub start: usize,
    /// Exclusive end of the liveness range.
    pub end: usize,
    /// 1-based line of the acquisition.
    pub line: u32,
}

/// Maps function name → locked resource for every non-test function whose
/// return type mentions a guard (`MutexGuard`, `RwLockReadGuard`, ...):
/// calling such a function acquires its resource in the *caller*.
pub fn returned_guard_map<'a>(
    files: impl IntoIterator<Item = &'a SourceFile>,
) -> BTreeMap<String, String> {
    let mut map = BTreeMap::new();
    for file in files {
        for span in fn_spans(file) {
            if span.is_test || !span.ret.contains("Guard") {
                continue;
            }
            let Some((bs, be)) = span.body else { continue };
            // The resource is the first direct acquisition in the body.
            if let Some((resource, method, _, _)) = first_acquisition(file, bs, be) {
                let _ = method;
                map.entry(span.name.clone()).or_insert(resource);
            }
        }
    }
    map
}

/// First direct `.lock()`-style acquisition in `[start, end)`:
/// `(resource, method, method token index, line)`.
fn first_acquisition(
    file: &SourceFile,
    start: usize,
    end: usize,
) -> Option<(String, String, usize, u32)> {
    let toks = &file.toks;
    let end = end.min(toks.len());
    (start..end).find_map(|i| {
        method_acquisition(file, i).map(|(resource, method)| (resource, method, i, toks[i].line))
    })
}

/// If `toks[i]` is the method identifier of a zero-argument guard
/// acquisition (`recv.lock()`), returns `(resource, method)`.
fn method_acquisition(file: &SourceFile, i: usize) -> Option<(String, String)> {
    let toks = &file.toks;
    let t = toks.get(i)?;
    if t.kind != TokKind::Ident || !ACQUIRE_METHODS.contains(&t.text.as_str()) {
        return None;
    }
    if i == 0 || !toks[i - 1].is_punct('.') {
        return None;
    }
    // Zero-argument call: `( )` directly after the name.
    if !(toks.get(i + 1).map(|t| t.is_punct('(')).unwrap_or(false)
        && toks.get(i + 2).map(|t| t.is_punct(')')).unwrap_or(false))
    {
        return None;
    }
    // Receiver's last path segment, skipping an index expression:
    // `self.conns[shard].lock()` → `conns`.
    let mut j = i.checked_sub(2)?;
    if toks[j].is_punct(']') {
        let mut depth = 0i32;
        loop {
            if toks[j].is_punct(']') {
                depth += 1;
            } else if toks[j].is_punct('[') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            j = j.checked_sub(1)?;
        }
        j = j.checked_sub(1)?;
    }
    if toks[j].is_punct(')') {
        // `make_table().lock()` — name the producing call instead.
        let mut depth = 0i32;
        loop {
            if toks[j].is_punct(')') {
                depth += 1;
            } else if toks[j].is_punct('(') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            j = j.checked_sub(1)?;
        }
        j = j.checked_sub(1)?;
    }
    if toks[j].kind != TokKind::Ident {
        return None;
    }
    Some((toks[j].text.clone(), t.text.clone()))
}

/// If `toks[i]` calls a guard-returning helper from `returned`, returns
/// `(resource, helper name)`.
fn helper_acquisition(
    file: &SourceFile,
    i: usize,
    returned: &BTreeMap<String, String>,
) -> Option<(String, String)> {
    let toks = &file.toks;
    let t = toks.get(i)?;
    if t.kind != TokKind::Ident {
        return None;
    }
    let resource = returned.get(&t.text)?;
    if !toks.get(i + 1).map(|n| n.is_punct('(')).unwrap_or(false) {
        return None;
    }
    // Not a macro, definition or attribute.
    if i > 0 && (toks[i - 1].is_punct('!') || toks[i - 1].is_ident("fn")) {
        return None;
    }
    Some((resource.clone(), t.text.clone()))
}

/// Brace depth before each token, computed once per body walk.
fn brace_depths(file: &SourceFile) -> Vec<i32> {
    let toks = &file.toks;
    let mut depths = Vec::with_capacity(toks.len());
    let mut depth = 0i32;
    for t in toks {
        if t.is_punct('}') {
            depth -= 1;
        }
        depths.push(depth);
        if t.is_punct('{') {
            depth += 1;
        }
    }
    depths
}

/// Every guard-acquisition span inside `span`'s body. `returned` is the
/// workspace-wide [`returned_guard_map`]; pass an empty map to consider
/// only direct `.lock()`-style acquisitions.
pub fn guard_spans_in(
    file: &SourceFile,
    span: &FnSpan,
    returned: &BTreeMap<String, String>,
) -> Vec<GuardSpan> {
    let toks = &file.toks;
    let Some((bs, be)) = span.body else {
        return Vec::new();
    };
    let be = be.min(toks.len());
    let depths = brace_depths(file);
    let mut out = Vec::new();
    for (i, tok) in toks
        .iter()
        .enumerate()
        .take(be.saturating_sub(1))
        .skip(bs + 1)
    {
        let acq = method_acquisition(file, i).or_else(|| helper_acquisition(file, i, returned));
        let Some((resource, method)) = acq else {
            continue;
        };
        let (binding, start, end) = liveness(file, &depths, i, bs, be);
        out.push(GuardSpan {
            resource,
            binding,
            method,
            acq_tok: i,
            start,
            end,
            line: tok.line,
        });
    }
    out
}

/// Computes the binding name (if any) and liveness token range for an
/// acquisition at token `acq` inside body `[bs, be)`.
fn liveness(
    file: &SourceFile,
    depths: &[i32],
    acq: usize,
    bs: usize,
    be: usize,
) -> (Option<String>, usize, usize) {
    let toks = &file.toks;
    // Statement start: nearest `;` / `{` / `}` to the left.
    let mut st = acq;
    while st > bs {
        let t = &toks[st - 1];
        if t.is_punct(';') || t.is_punct('{') || t.is_punct('}') {
            break;
        }
        st -= 1;
    }
    // Classify the statement head.
    let mut k = st;
    let conditional = toks
        .get(k)
        .map(|t| t.is_ident("if") || t.is_ident("while"))
        .unwrap_or(false);
    if conditional {
        k += 1;
    }
    let is_let = toks.get(k).map(|t| t.is_ident("let")).unwrap_or(false);
    let binding = if is_let {
        binding_name(file, k + 1, acq)
    } else {
        None
    };
    let stmt_depth = depths[acq];

    if conditional && is_let {
        // `if let Ok(g) = x.lock() { ... }` — the guard lives for the
        // conditional's block.
        let mut j = acq;
        while j < be {
            if toks[j].is_punct('{') && depths[j] <= stmt_depth {
                let close = crate::source::match_brace(toks, j).unwrap_or(be.saturating_sub(1));
                return (binding, acq, (close + 1).min(be));
            }
            j += 1;
        }
        return (binding, acq, be);
    }

    // Statement end: first `;` at the let's depth (an interior
    // `else { ...; }` block sits deeper and is skipped).
    let let_depth = depths.get(st).copied().unwrap_or(stmt_depth);
    let mut stmt_end = acq;
    while stmt_end < be {
        if toks[stmt_end].is_punct(';') && depths[stmt_end] <= let_depth {
            break;
        }
        stmt_end += 1;
    }

    match &binding {
        Some(name) if name != "_" => {
            // Live from the acquisition to the end of the enclosing block
            // (depth drops below the binding's), or an explicit
            // `drop(name)`.
            let mut j = stmt_end + 1;
            while j < be {
                if depths[j] < let_depth {
                    return (binding, acq, j);
                }
                if toks[j].is_ident("drop")
                    && toks.get(j + 1).map(|t| t.is_punct('(')).unwrap_or(false)
                    && toks.get(j + 2).map(|t| t.is_ident(name)).unwrap_or(false)
                {
                    return (binding, acq, j);
                }
                j += 1;
            }
            (binding, acq, be)
        }
        // `let _ = ...` or a plain expression statement: the temporary
        // guard dies at the statement's `;`.
        _ => (binding, acq, (stmt_end + 1).min(be)),
    }
}

/// Extracts the bound name from a `let` pattern between `from` and the
/// acquisition: skips `mut`, `&`, enum wrappers (`Some(`, `Ok(`) and
/// tuple/struct punctuation, returning the first plain identifier.
fn binding_name(file: &SourceFile, from: usize, until: usize) -> Option<String> {
    const WRAPPERS: &[&str] = &["Some", "Ok", "Err", "mut", "ref"];
    let toks = &file.toks;
    let mut j = from;
    while j < until {
        let t = &toks[j];
        if t.is_punct('=') {
            return None; // reached the initializer without a name
        }
        if t.kind == TokKind::Ident && !WRAPPERS.contains(&t.text.as_str()) {
            return Some(t.text.clone());
        }
        j += 1;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::fn_spans;

    fn spans_of(src: &str) -> Vec<GuardSpan> {
        let f = SourceFile::parse("crates/net/src/x.rs", src);
        let fns = fn_spans(&f);
        guard_spans_in(&f, &fns[0], &BTreeMap::new())
    }

    #[test]
    fn let_binding_lives_to_block_end() {
        let src = "fn f(&self) { let g = self.conns.lock(); g.push(1); self.other(); }";
        let s = spans_of(src);
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].resource, "conns");
        assert_eq!(s[0].binding.as_deref(), Some("g"));
        let f = SourceFile::parse("x.rs", src);
        // The span covers the trailing `other` call.
        let other = f.toks.iter().position(|t| t.is_ident("other")).unwrap();
        assert!(s[0].start <= other && other < s[0].end);
    }

    #[test]
    fn drop_ends_liveness() {
        let src = "fn f(&self) { let g = self.conns.lock(); drop(g); self.other(); }";
        let s = spans_of(src);
        let f = SourceFile::parse("x.rs", src);
        let other = f.toks.iter().position(|t| t.is_ident("other")).unwrap();
        assert!(s[0].end <= other, "span must end at drop(g): {s:?}");
    }

    #[test]
    fn temporary_dies_at_statement() {
        let src = "fn f(&self) { self.map.lock().insert(k, v); self.other(); }";
        let s = spans_of(src);
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].binding, None);
        let f = SourceFile::parse("x.rs", src);
        let other = f.toks.iter().position(|t| t.is_ident("other")).unwrap();
        assert!(s[0].end <= other, "temporary outlived its statement: {s:?}");
    }

    #[test]
    fn indexed_receiver_names_the_field() {
        let s = spans_of("fn f(&self, i: usize) { let c = self.conns[i].lock(); c.write(); }");
        assert_eq!(s[0].resource, "conns");
    }

    #[test]
    fn let_else_binds_and_lives_on() {
        let src = "fn f(&self) { let Some(mut g) = self.state.try_lock() else { return; }; \
                    g.step(); self.other(); }";
        let s = spans_of(src);
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].resource, "state");
        assert_eq!(s[0].binding.as_deref(), Some("g"));
        let f = SourceFile::parse("x.rs", src);
        let other = f.toks.iter().position(|t| t.is_ident("other")).unwrap();
        assert!(
            other < s[0].end,
            "let-else binding must outlive its else: {s:?}"
        );
    }

    #[test]
    fn if_let_spans_the_conditional_block() {
        let src = "fn f(&self) { if let Some(n) = self.slot.read() { n.call(); } self.after(); }";
        let s = spans_of(src);
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].resource, "slot");
        let f = SourceFile::parse("x.rs", src);
        let call = f.toks.iter().position(|t| t.is_ident("call")).unwrap();
        let after = f.toks.iter().position(|t| t.is_ident("after")).unwrap();
        assert!(s[0].start <= call && call < s[0].end);
        assert!(
            s[0].end <= after,
            "guard must die with the if-let block: {s:?}"
        );
    }

    #[test]
    fn io_read_with_args_is_not_an_acquisition() {
        let s = spans_of("fn f(&self) { let n = stream.read(&mut buf); }");
        assert!(s.is_empty(), "{s:?}");
    }

    #[test]
    fn returned_guard_map_finds_helpers() {
        let f = SourceFile::parse(
            "crates/net/src/x.rs",
            "impl T { fn table(&self) -> MutexGuard<'_, Vec<u8>> { self.conns.lock() } }",
        );
        let map = returned_guard_map([&f]);
        assert_eq!(map.get("table").map(String::as_str), Some("conns"));
    }

    #[test]
    fn helper_call_counts_as_acquisition() {
        let f = SourceFile::parse(
            "crates/net/src/x.rs",
            "impl T { fn table(&self) -> MutexGuard<'_, V> { self.conns.lock() }\n\
             fn f(&self) { let t = self.table(); t.push(1); } }",
        );
        let fns = fn_spans(&f);
        let returned = returned_guard_map([&f]);
        let target = fns.iter().find(|s| s.name == "f").unwrap();
        let spans = guard_spans_in(&f, target, &returned);
        assert_eq!(spans.len(), 1, "{spans:?}");
        assert_eq!(spans[0].resource, "conns");
        assert_eq!(spans[0].method, "table");
    }
}
