//! A hand-rolled bounded interleaving explorer (mini-loom; no new deps).
//!
//! `cargo test` cannot buy confidence in the evented runtime's wakeup
//! protocol: the races it would need to hit live in two-instruction
//! windows that a scheduler lands on once per million runs. This module
//! takes the opposite route — model the protocol as a finite transition
//! system (every shared-memory access is one atomic action) and
//! *exhaustively* enumerate every interleaving up to a bounded depth,
//! checking invariants in every reachable state, in the spirit of the
//! machine-checked Matrix event-graph analysis (PAPERS.md): prove the
//! structure, not the sampling.
//!
//! Two layers:
//!
//! * a generic [`Model`] + [`explore`] DFS with state memoization — any
//!   protocol with `Clone + Ord` states and a deterministic successor
//!   function can be checked;
//! * [`SlotModel`], the evented runtime's `Slot` protocol
//!   (`crates/mom/src/runtime/evented.rs`): the `scheduled` swap gate,
//!   clear-before-drain, `try_lock` stealing, the `dead` latch, the
//!   timer `deadline_us` CAS, saturation requeue — with sabotage knobs
//!   ([`SlotConfig::clear_scheduled_on_step`],
//!   [`SlotConfig::recheck_dead_under_lock`]) so the acceptance tests
//!   can demonstrate the explorer *finds* the bugs when the protocol is
//!   mutated.
//!
//! Exploration is deterministic: the DFS visits successors in a
//! seed-permuted but fully reproducible order, and — when the depth
//! bound does not truncate — the reachable state *set* is independent
//! of the seed (same protocol, same states; only the visit order
//! moves). Both are hashed into [`Exploration`] so tests can pin them.

use std::collections::BTreeSet;

pub mod engine_model;

pub use engine_model::{EngineConfig, EngineModel, EngineNet};

/// Every shared-memory access (as `field.method`) in
/// `crates/mom/src/runtime/evented.rs` that [`SlotModel`] models with a
/// protocol action. The `model-drift` audit rule statically extracts the
/// access set reachable from the evented entry points and fails if this
/// list no longer covers it — so the PR 8 proof cannot silently rot when
/// the runtime grows a new atomic, lock or queue operation.
///
/// Keep sorted; each entry names the model action that covers it:
///
/// | access | covering model action |
/// |---|---|
/// | `cmd_rx.is_empty` | `Requeue` backlog condition |
/// | `cmd_rx.try_recv` | `Cmds` drain |
/// | `cmd_tx.send` | `client: command deposited` |
/// | `dead.load` | `CheckDead` / `schedule()` dead gate / `send_cmd` |
/// | `dead.store` | `process shutdown command` latch |
/// | `deadline_us.compare_exchange` | `timer: deadline CAS claimed` |
/// | `deadline_us.load` | `timer: deadline CAS claimed` |
/// | `deadline_us.store` | `Tick` deadline store / shutdown disarm |
/// | `runq_rx.recv_timeout` | `worker: pop run queue` |
/// | `runq_tx.send` | `schedule()` enqueue |
/// | `scheduled.store` | `Clear` (clear-before-drain) |
/// | `scheduled.swap` | `schedule()` swap gate |
/// | `state.try_lock` | `TryLock` won/lost |
/// | `stop.load` | worker/timer loop condition (exit modeled as quiescence) |
pub const COVERED_ACCESSES: &[&str] = &[
    "cmd_rx.is_empty",
    "cmd_rx.try_recv",
    "cmd_tx.send",
    "dead.load",
    "dead.store",
    "deadline_us.compare_exchange",
    "deadline_us.load",
    "deadline_us.store",
    "runq_rx.recv_timeout",
    "runq_tx.send",
    "scheduled.store",
    "scheduled.swap",
    "state.try_lock",
    "stop.load",
];

/// A finite-state protocol the explorer can check.
pub trait Model {
    /// One global protocol state. `Ord` gives memoization and a
    /// canonical ordering for the state-set hash.
    type State: Clone + Ord + std::fmt::Debug;

    /// The initial state.
    fn initial(&self) -> Self::State;

    /// Every enabled transition from `s`: a human-readable action label
    /// plus either the successor state or a violation raised by taking
    /// that action (e.g. "stepping a dead slot"). Must be deterministic
    /// in `s`.
    fn successors(&self, s: &Self::State) -> Vec<(String, Result<Self::State, String>)>;

    /// Invariant checked on every reachable state.
    fn invariant(&self, s: &Self::State) -> Result<(), String> {
        let _ = s;
        Ok(())
    }

    /// Invariant checked on quiescent states (no enabled transition).
    fn terminal(&self, s: &Self::State) -> Result<(), String> {
        let _ = s;
        Ok(())
    }
}

/// Exploration parameters.
#[derive(Debug, Clone, Copy)]
pub struct Options {
    /// Longest action sequence followed before truncating (a liveness
    /// backstop, not the usual limiter — memoization bounds the work).
    /// Exhaustiveness claims require the result's `truncated == false`.
    pub max_depth: usize,
    /// Permutes successor visit order (deterministically). The reachable
    /// state set is seed-independent unless truncation bites.
    pub seed: u64,
}

impl Default for Options {
    fn default() -> Options {
        Options {
            max_depth: 10_000,
            seed: 0,
        }
    }
}

/// A successful exhaustive exploration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Exploration {
    /// Distinct reachable states visited.
    pub states: usize,
    /// Transitions followed (edges, counted once per source state).
    pub transitions: usize,
    /// `true` when `max_depth` cut at least one path short — the state
    /// set is then a lower bound, not the full reachable set.
    pub truncated: bool,
    /// FNV-1a over the canonically-ordered state set (seed-independent
    /// when not truncated).
    pub state_set_hash: u64,
    /// FNV-1a over states in visit order (same seed → same hash).
    pub visit_order_hash: u64,
}

/// An invariant violation, with the action trace that reaches it.
#[derive(Debug, Clone)]
pub struct Violation {
    /// What went wrong.
    pub message: String,
    /// Action labels from the initial state to the violation.
    pub trace: Vec<String>,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "violation: {}", self.message)?;
        for (i, a) in self.trace.iter().enumerate() {
            writeln!(f, "  {i:3}. {a}")?;
        }
        Ok(())
    }
}

fn fnv1a(h: &mut u64, bytes: &[u8]) {
    for b in bytes {
        *h ^= u64::from(*b);
        *h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
}

/// Deterministic Fisher–Yates driven by a splitmix-style LCG.
fn shuffle<T>(v: &mut [T], seed: u64) {
    let mut s = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
    for i in (1..v.len()).rev() {
        s = s
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let j = (s >> 33) as usize % (i + 1);
        v.swap(i, j);
    }
}

/// Exhaustively explores `m` from its initial state.
///
/// Depth-first with full-state memoization: each distinct state is
/// expanded exactly once, so the walk terminates on any finite-state
/// model regardless of cycles (a model that never quiesces simply has
/// no terminal states to check).
///
/// # Errors
///
/// Returns the first [`Violation`] encountered, with its trace.
pub fn explore<M: Model>(m: &M, opts: Options) -> Result<Exploration, Box<Violation>> {
    let mut visited: BTreeSet<M::State> = BTreeSet::new();
    let mut order_hash = 0xcbf2_9ce4_8422_2325u64;
    let mut transitions = 0usize;
    let mut truncated = false;
    // Explicit stack: (state, depth, trace-so-far index). Traces are kept
    // as a parent-pointer arena so a deep DFS stays cheap.
    struct Node {
        parent: usize,
        label: String,
    }
    fn fail(arena: &[Node], trace_idx: usize, message: String) -> Box<Violation> {
        let mut trace = Vec::new();
        let mut cur = trace_idx;
        while cur != 0 {
            trace.push(arena[cur].label.clone());
            cur = arena[cur].parent;
        }
        trace.reverse();
        Box::new(Violation { message, trace })
    }
    let mut arena: Vec<Node> = vec![Node {
        parent: usize::MAX,
        label: String::new(),
    }];
    let mut stack: Vec<(M::State, usize, usize)> = vec![(m.initial(), 0, 0)];
    while let Some((state, depth, trace_idx)) = stack.pop() {
        if visited.contains(&state) {
            continue;
        }
        fnv1a(&mut order_hash, format!("{state:?}").as_bytes());
        if let Err(msg) = m.invariant(&state) {
            return Err(fail(&arena, trace_idx, msg));
        }
        let mut succ = m.successors(&state);
        if succ.is_empty() {
            if let Err(msg) = m.terminal(&state) {
                return Err(fail(&arena, trace_idx, msg));
            }
            visited.insert(state);
            continue;
        }
        if depth >= opts.max_depth {
            truncated = true;
            visited.insert(state);
            continue;
        }
        shuffle(
            &mut succ,
            opts.seed ^ (depth as u64).wrapping_mul(0x1000_0000_01b3),
        );
        for (label, next) in succ {
            transitions += 1;
            match next {
                Ok(ns) => {
                    arena.push(Node {
                        parent: trace_idx,
                        label: label.clone(),
                    });
                    let idx = arena.len() - 1;
                    stack.push((ns, depth + 1, idx));
                }
                Err(msg) => {
                    let mut v = fail(&arena, trace_idx, msg);
                    v.trace.push(label);
                    return Err(v);
                }
            }
        }
        visited.insert(state);
    }
    let mut set_hash = 0xcbf2_9ce4_8422_2325u64;
    for s in &visited {
        fnv1a(&mut set_hash, format!("{s:?}").as_bytes());
    }
    Ok(Exploration {
        states: visited.len(),
        transitions,
        truncated,
        state_set_hash: set_hash,
        visit_order_hash: order_hash,
    })
}

// ---------------------------------------------------------------------
// The evented Slot protocol.
// ---------------------------------------------------------------------

/// Workload and protocol knobs for [`SlotModel`].
#[derive(Debug, Clone, Copy)]
pub struct SlotConfig {
    /// Datagram arrivals; each is two atomic actions (deposit bytes,
    /// then run the readiness notifier).
    pub notifiers: u8,
    /// Normal commands sent through `send_cmd` (deposit + schedule).
    pub commands: u8,
    /// Whether a `Shutdown` command arrives (after the normal commands).
    pub shutdown: bool,
    /// Shard workers racing over the run queue.
    pub workers: u8,
    /// Whether a timer deadline is armed at start (exercises the
    /// `deadline_us` CAS-claim path).
    pub deadline_armed: bool,
    /// `MAX_STEP_DRAIN` stand-in: datagrams per step before the
    /// saturation requeue.
    pub drain_cap: u8,
    /// Protocol as written: `run_ready_server` clears `scheduled`
    /// *before* draining. Sabotage knob — `false` drops the reset and
    /// must produce a lost wakeup.
    pub clear_scheduled_on_step: bool,
    /// Re-check `dead` after winning `try_lock`. Sabotage knob —
    /// `false` reproduces the step-after-dead race.
    pub recheck_dead_under_lock: bool,
}

impl SlotConfig {
    /// The canonical CI workload: enough concurrency for every race
    /// window (two workers, racing notifier/command/shutdown/timer),
    /// small enough to stay exhaustive in well under a second.
    pub fn ci() -> SlotConfig {
        SlotConfig {
            notifiers: 2,
            commands: 1,
            shutdown: true,
            workers: 2,
            deadline_armed: true,
            drain_cap: 1,
            clear_scheduled_on_step: true,
            recheck_dead_under_lock: true,
        }
    }

    /// Scales the workload by an `AAA_MODEL_DEPTH` level: 0/1 = the CI
    /// shape, 2 = deep (main-branch CI), 3+ = deeper still.
    pub fn at_depth(level: u8) -> SlotConfig {
        let mut c = SlotConfig::ci();
        if level >= 2 {
            c.notifiers = 3;
            c.drain_cap = 2;
        }
        if level >= 3 {
            c.workers = 3;
            c.commands = 2;
        }
        c
    }
}

/// Per-worker program counter through `run_ready_server`, one shared-
/// memory access per variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Wpc {
    /// In the `worker()` loop, not holding a queue entry.
    Idle,
    /// Popped an index; about to clear `scheduled`.
    Clear,
    /// Cleared; about to load `dead`.
    CheckDead,
    /// `dead` was false; about to `try_lock`.
    TryLock,
    /// Lock won; about to (re-)check `dead` under the lock.
    Recheck,
    /// Draining `cmd_rx` one command at a time.
    Cmds,
    /// Draining datagrams; the payload counts this step's drains.
    Data(u8),
    /// Batch done (payload: saturated); about to tick, store the next
    /// deadline and drop the guard.
    Tick(bool),
    /// Guard dropped (payload: saturated); about to evaluate the
    /// requeue condition.
    Requeue(bool),
}

/// One global state of the slot protocol.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct SlotState {
    scheduled: bool,
    dead: bool,
    /// Run-queue entries naming this slot.
    queue: u8,
    /// Datagrams deposited but not yet drained.
    pending: u8,
    /// Arrival events not yet deposited.
    undelivered: u8,
    /// Deposited arrivals whose readiness notifier has not run yet.
    unnotified: u8,
    /// Commands in `cmd_rx`.
    cmds_pending: u8,
    /// `send_cmd` calls not yet made.
    cmds_undeposited: u8,
    /// `send_cmd` deposits whose `schedule()` has not run yet.
    cmd_notifies: u8,
    /// The shutdown `send_cmd` has not been made yet.
    shutdown_undeposited: bool,
    /// Shutdown sits in `cmd_rx` (visible to a draining worker the
    /// moment the send completes, before its `schedule()` runs).
    shutdown_queued: bool,
    /// The shutdown sender's `schedule()` call is still owed.
    shutdown_notify: bool,
    /// `deadline_us != NO_DEADLINE` and due.
    deadline: bool,
    /// Timer won the CAS but has not called `schedule()` yet.
    timer_claimed: bool,
    workers: Vec<Wpc>,
}

impl SlotState {
    fn locked_worker(&self) -> Option<usize> {
        self.workers
            .iter()
            .position(|w| matches!(w, Wpc::Recheck | Wpc::Cmds | Wpc::Data(_) | Wpc::Tick(_)))
    }

    /// `PoolShared::schedule`: dead check, `swap(true)` gate, enqueue.
    fn schedule(&mut self) {
        if !self.dead && !self.scheduled {
            self.scheduled = true;
            self.queue += 1;
        }
    }
}

/// The evented `Slot` notify/step/requeue protocol as a [`Model`].
#[derive(Debug, Clone, Copy)]
pub struct SlotModel {
    /// Workload size and sabotage knobs.
    pub cfg: SlotConfig,
}

impl Model for SlotModel {
    type State = SlotState;

    fn initial(&self) -> SlotState {
        SlotState {
            scheduled: false,
            dead: false,
            queue: 0,
            pending: 0,
            undelivered: self.cfg.notifiers,
            unnotified: 0,
            cmds_pending: 0,
            cmds_undeposited: self.cfg.commands,
            cmd_notifies: 0,
            shutdown_undeposited: self.cfg.shutdown,
            shutdown_queued: false,
            shutdown_notify: false,
            deadline: self.cfg.deadline_armed,
            timer_claimed: false,
            workers: vec![Wpc::Idle; self.cfg.workers as usize],
        }
    }

    fn successors(&self, s: &SlotState) -> Vec<(String, Result<SlotState, String>)> {
        let mut out: Vec<(String, Result<SlotState, String>)> = Vec::new();
        let mut push = |label: String, next: Result<SlotState, String>| out.push((label, next));

        // Environment: datagram arrival, then its readiness notifier.
        if s.undelivered > 0 {
            let mut n = s.clone();
            n.undelivered -= 1;
            n.pending += 1;
            n.unnotified += 1;
            push("net: datagram deposited".into(), Ok(n));
        }
        if s.unnotified > 0 {
            let mut n = s.clone();
            n.unnotified -= 1;
            n.schedule();
            push("net: notifier -> schedule()".into(), Ok(n));
        }
        // Client: send_cmd = dead check, deposit, then schedule.
        if s.cmds_undeposited > 0 {
            let mut n = s.clone();
            n.cmds_undeposited -= 1;
            if !n.dead {
                n.cmds_pending += 1;
                n.cmd_notifies += 1;
            }
            push("client: command deposited".into(), Ok(n));
        }
        if s.cmd_notifies > 0 {
            let mut n = s.clone();
            n.cmd_notifies -= 1;
            n.schedule();
            push("client: send_cmd -> schedule()".into(), Ok(n));
        }
        // Shutdown command: only after every normal command went in
        // (send_cmd is called from one control thread, in order).
        if s.shutdown_undeposited && s.cmds_undeposited == 0 {
            let mut n = s.clone();
            n.shutdown_undeposited = false;
            if !n.dead {
                n.shutdown_queued = true;
                n.shutdown_notify = true;
            }
            push("client: shutdown deposited".into(), Ok(n));
        }
        if s.shutdown_notify {
            let mut n = s.clone();
            n.shutdown_notify = false;
            n.schedule();
            push("client: shutdown -> schedule()".into(), Ok(n));
        }
        // Timer thread: deadline CAS claim, then schedule.
        if s.deadline && !s.timer_claimed {
            let mut n = s.clone();
            n.deadline = false;
            n.timer_claimed = true;
            push("timer: deadline CAS claimed".into(), Ok(n));
        }
        if s.timer_claimed {
            let mut n = s.clone();
            n.timer_claimed = false;
            n.schedule();
            push("timer: schedule()".into(), Ok(n));
        }

        // Shard workers.
        for (w, pc) in s.workers.iter().enumerate() {
            let step = |f: &dyn Fn(&mut SlotState)| {
                let mut n = s.clone();
                f(&mut n);
                n
            };
            match *pc {
                Wpc::Idle => {
                    if s.queue > 0 {
                        let n = step(&|n| {
                            n.queue -= 1;
                            n.workers[w] = Wpc::Clear;
                        });
                        push(format!("worker {w}: pop run queue"), Ok(n));
                    }
                }
                Wpc::Clear => {
                    let clear = self.cfg.clear_scheduled_on_step;
                    let n = step(&|n| {
                        if clear {
                            n.scheduled = false;
                        }
                        n.workers[w] = Wpc::CheckDead;
                    });
                    push(format!("worker {w}: clear scheduled"), Ok(n));
                }
                Wpc::CheckDead => {
                    let n = step(&|n| {
                        n.workers[w] = if n.dead { Wpc::Idle } else { Wpc::TryLock };
                    });
                    push(format!("worker {w}: load dead"), Ok(n));
                }
                Wpc::TryLock => {
                    if s.locked_worker().is_none() {
                        let n = step(&|n| {
                            n.workers[w] = Wpc::Recheck;
                        });
                        push(format!("worker {w}: try_lock won"), Ok(n));
                    } else {
                        let n = step(&|n| {
                            n.schedule();
                            n.workers[w] = Wpc::Idle;
                        });
                        push(format!("worker {w}: try_lock lost -> reschedule"), Ok(n));
                    }
                }
                Wpc::Recheck => {
                    let recheck = self.cfg.recheck_dead_under_lock;
                    let n = step(&|n| {
                        n.workers[w] = if recheck && n.dead {
                            Wpc::Idle
                        } else {
                            Wpc::Cmds
                        };
                    });
                    push(format!("worker {w}: recheck dead under lock"), Ok(n));
                }
                Wpc::Cmds => {
                    let label = format!("worker {w}: drain one command");
                    if s.dead {
                        push(
                            label,
                            Err("step-after-dead: handling a command on a slot whose \
                                 shutdown (final flush + group commit) already ran"
                                .into()),
                        );
                    } else if s.cmds_pending > 0 {
                        let n = step(&|n| {
                            n.cmds_pending -= 1;
                        });
                        push(label, Ok(n));
                    } else if s.shutdown_queued {
                        // handle_command returned false: latch dead,
                        // disarm the deadline, return (guard drops).
                        let n = step(&|n| {
                            n.shutdown_queued = false;
                            n.dead = true;
                            n.deadline = false;
                            n.workers[w] = Wpc::Idle;
                        });
                        push(format!("worker {w}: process shutdown command"), Ok(n));
                    } else {
                        let n = step(&|n| {
                            n.workers[w] = Wpc::Data(0);
                        });
                        push(format!("worker {w}: cmd_rx empty -> drain data"), Ok(n));
                    }
                }
                Wpc::Data(d) => {
                    let label = format!("worker {w}: poll_recv datagram");
                    if s.dead {
                        push(
                            label,
                            Err("step-after-dead: polling the endpoint of a slot whose \
                                 shutdown already ran"
                                .into()),
                        );
                    } else if s.pending > 0 && d < self.cfg.drain_cap {
                        let n = step(&|n| {
                            n.pending -= 1;
                            n.workers[w] = Wpc::Data(d + 1);
                        });
                        push(label, Ok(n));
                    } else {
                        let saturated = d >= self.cfg.drain_cap;
                        let n = step(&|n| {
                            n.workers[w] = Wpc::Tick(saturated);
                        });
                        push(format!("worker {w}: batch done"), Ok(n));
                    }
                }
                Wpc::Tick(saturated) => {
                    let label = format!("worker {w}: tick + store deadline + unlock");
                    if s.dead {
                        push(
                            label,
                            Err("step-after-dead: ticking the driver of a slot whose \
                                 shutdown already ran"
                                .into()),
                        );
                    } else {
                        let n = step(&|n| {
                            // The drained step consumed the due deadline;
                            // the quiesced driver has no next wakeup.
                            n.deadline = false;
                            n.workers[w] = Wpc::Requeue(saturated);
                        });
                        push(label, Ok(n));
                    }
                }
                Wpc::Requeue(saturated) => {
                    let n = step(&|n| {
                        if saturated || n.cmds_pending > 0 || n.shutdown_queued {
                            n.schedule();
                        }
                        n.workers[w] = Wpc::Idle;
                    });
                    push(format!("worker {w}: saturation/backlog requeue"), Ok(n));
                }
            }
        }
        out
    }

    fn invariant(&self, s: &SlotState) -> Result<(), String> {
        // No double-step: the state Mutex admits one worker.
        let locked = s
            .workers
            .iter()
            .filter(|w| matches!(w, Wpc::Recheck | Wpc::Cmds | Wpc::Data(_) | Wpc::Tick(_)))
            .count();
        if locked > 1 {
            return Err(format!(
                "double-step: {locked} workers inside the slot lock"
            ));
        }
        Ok(())
    }

    fn terminal(&self, s: &SlotState) -> Result<(), String> {
        if !s.dead && (s.pending > 0 || s.cmds_pending > 0 || s.shutdown_queued) {
            return Err(format!(
                "lost wakeup: quiescent with work pending \
                 (pending={}, cmds={}, shutdown_queued={}) and nothing scheduled",
                s.pending, s.cmds_pending, s.shutdown_queued
            ));
        }
        if s.scheduled && s.queue == 0 && s.workers.iter().all(|w| *w == Wpc::Idle) {
            return Err("wakeup token leaked: scheduled set with empty queue".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ci_protocol_is_sound() {
        let m = SlotModel {
            cfg: SlotConfig::ci(),
        };
        let ex = explore(&m, Options::default()).unwrap_or_else(|v| panic!("{v}"));
        assert!(!ex.truncated, "CI workload must stay exhaustive");
        assert!(ex.states > 100, "suspiciously small space: {}", ex.states);
    }

    #[test]
    fn dropping_the_scheduled_reset_loses_a_wakeup() {
        let mut cfg = SlotConfig::ci();
        cfg.clear_scheduled_on_step = false;
        cfg.shutdown = false;
        cfg.commands = 0;
        let v = explore(&SlotModel { cfg }, Options::default())
            .expect_err("mutated protocol must lose a wakeup");
        assert!(v.message.contains("lost wakeup"), "{v}");
        assert!(!v.trace.is_empty(), "violation carries its trace");
    }

    #[test]
    fn skipping_the_dead_recheck_steps_a_dead_slot() {
        let mut cfg = SlotConfig::ci();
        cfg.recheck_dead_under_lock = false;
        let v = explore(&SlotModel { cfg }, Options::default())
            .expect_err("unfixed protocol must step after dead");
        assert!(v.message.contains("step-after-dead"), "{v}");
    }

    #[test]
    fn state_set_is_seed_independent_and_order_is_seeded() {
        let m = SlotModel {
            cfg: SlotConfig::ci(),
        };
        let a = explore(
            &m,
            Options {
                seed: 1,
                ..Options::default()
            },
        )
        .expect("sound");
        let b = explore(
            &m,
            Options {
                seed: 2,
                ..Options::default()
            },
        )
        .expect("sound");
        let a2 = explore(
            &m,
            Options {
                seed: 1,
                ..Options::default()
            },
        )
        .expect("sound");
        assert_eq!(a.states, b.states);
        assert_eq!(a.state_set_hash, b.state_set_hash);
        assert_eq!(a, a2, "same seed reproduces the exploration exactly");
    }

    #[test]
    fn depth_bound_reports_truncation() {
        let m = SlotModel {
            cfg: SlotConfig::ci(),
        };
        let ex = explore(
            &m,
            Options {
                max_depth: 3,
                seed: 0,
            },
        )
        .expect("no violation that shallow");
        assert!(ex.truncated);
    }
}
